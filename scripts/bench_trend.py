#!/usr/bin/env python3
"""Aggregate every checked-in BENCH_*.json into one trajectory table.

Each PR that lands a measured change checks in a machine-readable report
(BENCH_PR2.json, BENCH_PR4.json, ...). The formats differ by what the PR
measured — "ctms-repro-run/1" carries paper-claim checks, "ctms-perf/1"
through "ctms-perf/3" carry scheduler wall-clock results (with /3 adding
per-topology sections for the graph-shape benchmarks) — so this script
normalizes all of them into a long-format table: one row per headline
metric, ordered by PR number. Malformed reports (unparseable JSON, or a
structurally broken section) are listed on stderr and make the exit code
non-zero. Stdlib only; run from anywhere:

    python3 scripts/bench_trend.py [repo-root]
    python3 scripts/bench_trend.py --selftest   # exercise the malformed
                                                # handling, exit 0 if OK
"""

import io
import json
import re
import sys
import tempfile
from pathlib import Path


def fmt_speedup(x):
    return f"{x:.2f}x"


def rows_repro(report):
    """ctms-repro-run/1: per-experiment paper-claim pass counts."""
    total = passed = 0
    for exp in report.get("experiments", []):
        claims = exp.get("claims", [])
        total += len(claims)
        passed += sum(1 for c in claims if c.get("holds"))
    yield ("paper claims holding", f"{passed}/{total}")
    if passed < total:
        for exp in report.get("experiments", []):
            for c in exp.get("claims", []):
                if not c.get("holds"):
                    yield (f"  FAILED {exp['name']}.{c['id']}", str(c.get("measured")))


def rows_sharded(label, section):
    """The single-vs-sharded block shared by chain and topology rows."""
    single = section["single"]["events_per_sec"]
    yield (f"{label} single-threaded", f"{single / 1e6:.2f}M ev/s")
    for s in section.get("sharded", []):
        threads = s.get("threads")
        t = f" threads={threads}" if threads is not None else ""
        parity = "parity OK" if s.get("ground_truth_parity") else "PARITY BROKEN"
        yield (
            f"{label} shards={s['shards']}{t}",
            f"{fmt_speedup(s['speedup'])} ({parity})",
        )


def rows_perf(report):
    """ctms-perf/1 through /3: scheduler speedups, allocs, sharded
    chain, and (since /3) per-topology graph-shape results."""
    cores = report.get("cores")
    if cores is not None:
        # Older reports predate the explicit flag; infer it from the
        # core count so single-core numbers are always flagged.
        degraded = report.get("degraded_parallelism", cores == 1)
        note = ", DEGRADED PARALLELISM" if degraded else ""
        yield ("measured on", f"{cores} core(s){note}")
    for case in report.get("cases", []):
        ev = case["indexed"]["events_per_sec"]
        yield (
            f"{case['name']} indexed vs lazy",
            f"{fmt_speedup(case['speedup'])} ({ev / 1e6:.2f}M ev/s)",
        )
    steady = report.get("steady_state")
    if steady:
        yield (
            "steady-state allocs/event (indexed)",
            f"{steady['indexed']['allocs_per_event']:g}",
        )
    chain = report.get("chain")
    if chain:
        yield from rows_sharded(f"chain/{chain['rings']}", chain)
    for topo in report.get("topologies") or []:
        yield from rows_sharded(f"{topo['shape']}/{topo['rings']}", topo)


def rows_for(report):
    fmt = report.get("format", "")
    if fmt.startswith("ctms-repro-run/"):
        return list(rows_repro(report))
    if fmt.startswith("ctms-perf/"):
        return list(rows_perf(report))
    return [("unrecognized format", fmt or "<missing>")]


def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)", path.name)
    return int(m.group(1)) if m else 10**9


def render(root, out, err):
    reports = sorted(root.glob("BENCH_*.json"), key=pr_number)
    if not reports:
        print(f"no BENCH_*.json under {root}", file=err)
        return 1
    table = []
    malformed = []
    for path in reports:
        try:
            report = json.loads(path.read_text())
            rows = rows_for(report)
        except (OSError, json.JSONDecodeError) as e:
            malformed.append((path, e))
            continue
        except (KeyError, TypeError, AttributeError) as e:
            # Parseable JSON, broken structure — a chain or topology
            # section missing a required key is as malformed as bad
            # syntax, and must not pass silently.
            malformed.append((path, f"bad section structure: {e!r}"))
            continue
        for metric, value in rows:
            table.append((path.name, metric, value))
    if table:
        w0 = max(len(r[0]) for r in table)
        w1 = max(len(r[1]) for r in table)
        print(f"{'report':{w0}}  {'metric':{w1}}  value", file=out)
        print(f"{'-' * w0}  {'-' * w1}  {'-' * 5}", file=out)
        last = None
        for name, metric, value in table:
            shown = name if name != last else ""
            last = name
            print(f"{shown:{w0}}  {metric:{w1}}  {value}", file=out)
    if malformed:
        for path, e in malformed:
            print(f"bench_trend: {path.name} is malformed: {e}", file=err)
        print(
            f"bench_trend: {len(malformed)} malformed report(s) — "
            "re-record with `cargo run -p ctms-bench --bin perf -- --json <path>`",
            file=err,
        )
        return 1
    return 0


WELL_FORMED = {
    "format": "ctms-perf/3",
    "cores": 4,
    "degraded_parallelism": False,
    "cases": [
        {
            "name": "case_a",
            "indexed": {"events_per_sec": 2.5e6},
            "speedup": 1.5,
        }
    ],
    "chain": {
        "rings": 128,
        "single": {"events_per_sec": 3.0e6},
        "sharded": [
            {"shards": 2, "threads": 2, "speedup": 1.4, "ground_truth_parity": True}
        ],
    },
    "topologies": [
        {
            "shape": "tree",
            "rings": 1024,
            "single": {"events_per_sec": 2.0e6},
            "sharded": [
                {"shards": 4, "threads": 4, "speedup": 1.8, "ground_truth_parity": True}
            ],
        }
    ],
}


def selftest():
    """Pins the malformed-report contract: bad syntax and a broken
    topology section both produce a non-zero exit, a clean tree of
    reports a zero one."""

    def run_on(files):
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            for name, text in files.items():
                (root / name).write_text(text)
            out, err = io.StringIO(), io.StringIO()
            code = render(root, out, err)
            return code, out.getvalue(), err.getvalue()

    # A well-formed /3 report renders per-topology rows and exits 0.
    code, out, err = run_on({"BENCH_PR7.json": json.dumps(WELL_FORMED)})
    assert code == 0, f"well-formed report must exit 0: {err}"
    assert "tree/1024 shards=4" in out, f"missing per-topology row:\n{out}"
    assert "1.80x (parity OK)" in out, f"missing topology speedup:\n{out}"

    # Syntactically malformed JSON: non-zero, named on stderr.
    code, _, err = run_on(
        {
            "BENCH_PR7.json": json.dumps(WELL_FORMED),
            "BENCH_PR8.json": "{ this is not json",
        }
    )
    assert code == 1, "syntactic damage must fail the run"
    assert "BENCH_PR8.json is malformed" in err, err

    # Structurally malformed topology section (entry missing its
    # "single" block): equally fatal, not a silent skip.
    broken = json.loads(json.dumps(WELL_FORMED))
    del broken["topologies"][0]["single"]
    code, _, err = run_on({"BENCH_PR7.json": json.dumps(broken)})
    assert code == 1, "a broken topology section must fail the run"
    assert "bad section structure" in err, err

    # Same for a topology entry of the wrong JSON type entirely.
    broken = json.loads(json.dumps(WELL_FORMED))
    broken["topologies"] = [42]
    code, _, err = run_on({"BENCH_PR7.json": json.dumps(broken)})
    assert code == 1, "a non-object topology entry must fail the run"

    print("bench_trend selftest: OK")
    return 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--selftest":
        return selftest()
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    return render(root, sys.stdout, sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
