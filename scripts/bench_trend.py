#!/usr/bin/env python3
"""Aggregate every checked-in BENCH_*.json into one trajectory table.

Each PR that lands a measured change checks in a machine-readable report
(BENCH_PR2.json, BENCH_PR4.json, ...). The formats differ by what the PR
measured — "ctms-repro-run/1" carries paper-claim checks, "ctms-perf/1"
and "ctms-perf/2" carry scheduler wall-clock results — so this script
normalizes all of them into a long-format table: one row per headline
metric, ordered by PR number. Stdlib only; run from anywhere:

    python3 scripts/bench_trend.py [repo-root]
"""

import json
import re
import sys
from pathlib import Path


def fmt_speedup(x):
    return f"{x:.2f}x"


def rows_repro(report):
    """ctms-repro-run/1: per-experiment paper-claim pass counts."""
    total = passed = 0
    for exp in report.get("experiments", []):
        claims = exp.get("claims", [])
        total += len(claims)
        passed += sum(1 for c in claims if c.get("holds"))
    yield ("paper claims holding", f"{passed}/{total}")
    if passed < total:
        for exp in report.get("experiments", []):
            for c in exp.get("claims", []):
                if not c.get("holds"):
                    yield (f"  FAILED {exp['name']}.{c['id']}", str(c.get("measured")))


def rows_perf(report):
    """ctms-perf/1 and /2: scheduler speedups, allocs, sharded chain."""
    cores = report.get("cores")
    if cores is not None:
        # Older reports predate the explicit flag; infer it from the
        # core count so single-core numbers are always flagged.
        degraded = report.get("degraded_parallelism", cores == 1)
        note = ", DEGRADED PARALLELISM" if degraded else ""
        yield ("measured on", f"{cores} core(s){note}")
    for case in report.get("cases", []):
        ev = case["indexed"]["events_per_sec"]
        yield (
            f"{case['name']} indexed vs lazy",
            f"{fmt_speedup(case['speedup'])} ({ev / 1e6:.2f}M ev/s)",
        )
    steady = report.get("steady_state")
    if steady:
        yield (
            "steady-state allocs/event (indexed)",
            f"{steady['indexed']['allocs_per_event']:g}",
        )
    chain = report.get("chain")
    if chain:
        cores = report.get("cores")
        env = f", {cores} core(s)" if cores is not None else ""
        single = chain["single"]["events_per_sec"]
        yield (
            f"chain/{chain['rings']} single-threaded",
            f"{single / 1e6:.2f}M ev/s{env}",
        )
        for s in chain.get("sharded", []):
            threads = s.get("threads")
            t = f" threads={threads}" if threads is not None else ""
            parity = "parity OK" if s.get("ground_truth_parity") else "PARITY BROKEN"
            yield (
                f"chain/{chain['rings']} shards={s['shards']}{t}",
                f"{fmt_speedup(s['speedup'])} ({parity})",
            )


def rows_for(report):
    fmt = report.get("format", "")
    if fmt.startswith("ctms-repro-run/"):
        return list(rows_repro(report))
    if fmt.startswith("ctms-perf/"):
        return list(rows_perf(report))
    return [("unrecognized format", fmt or "<missing>")]


def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)", path.name)
    return int(m.group(1)) if m else 10**9


def main():
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    reports = sorted(root.glob("BENCH_*.json"), key=pr_number)
    if not reports:
        print(f"no BENCH_*.json under {root}", file=sys.stderr)
        return 1
    table = []
    malformed = []
    for path in reports:
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            malformed.append((path, e))
            continue
        for metric, value in rows_for(report):
            table.append((path.name, metric, value))
    if table:
        w0 = max(len(r[0]) for r in table)
        w1 = max(len(r[1]) for r in table)
        print(f"{'report':{w0}}  {'metric':{w1}}  value")
        print(f"{'-' * w0}  {'-' * w1}  {'-' * 5}")
        last = None
        for name, metric, value in table:
            shown = name if name != last else ""
            last = name
            print(f"{shown:{w0}}  {metric:{w1}}  {value}")
    if malformed:
        for path, err in malformed:
            print(f"bench_trend: {path.name} is malformed: {err}", file=sys.stderr)
        print(
            f"bench_trend: {len(malformed)} malformed report(s) — "
            "re-record with `cargo run -p ctms-bench --bin perf -- --json <path>`",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
