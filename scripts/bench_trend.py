#!/usr/bin/env python3
"""Aggregate every checked-in BENCH_*.json into one trajectory table.

Each PR that lands a measured change checks in a machine-readable report
(BENCH_PR2.json, BENCH_PR4.json, ...). The formats differ by what the PR
measured — "ctms-repro-run/1" carries paper-claim checks, "ctms-perf/1"
through "ctms-perf/5" carry scheduler wall-clock results (/3 added
per-topology sections for the graph-shape benchmarks, /4 adds the
window-protocol efficiency counters and the fixed-lookahead ablation
baseline, /5 adds the optimistic-execution ablation with its
speculation counters and the requested-thread stamp) — so this script
normalizes all of them into a long-format
table: one row per headline metric, ordered by PR number. Sharded rows
carry an events-per-sync-instant column when the report recorded window
counters, and an "[opt]" ablation row (rollback count and speculation
efficiency) when the report measured optimistic execution. "ctms-perf/6"
reports add a capacity ("scale") section — per topology size, the build
wall time (with peak build bytes when the report was recorded with the
counting allocator), the steady-state events/sec with the shard counts
whose streamed checkpoints round-tripped byte-identically, and the
streaming-checkpoint write/read throughput in MB/s. Malformed
reports (unparseable JSON, or a structurally broken
section) are listed on stderr and make the exit code non-zero — as does
a recorded sharded configuration running more than 10% slower than its
own single-threaded row, unless the report is flagged
"degraded_parallelism" (measured on one core, where sub-1.0x parallel
speedups are expected and documented). Stdlib only; run from anywhere:

    python3 scripts/bench_trend.py [repo-root]
    python3 scripts/bench_trend.py --selftest   # exercise the malformed
                                                # handling, exit 0 if OK
"""

import io
import json
import re
import sys
import tempfile
from pathlib import Path


def fmt_speedup(x):
    return f"{x:.2f}x"


def fmt_bytes(n):
    if n >= 1e9:
        return f"{n / 1e9:.1f} GB"
    if n >= 1e6:
        return f"{n / 1e6:.1f} MB"
    if n >= 1e3:
        return f"{n / 1e3:.1f} kB"
    return f"{n} B"


def rows_repro(report):
    """ctms-repro-run/1: per-experiment paper-claim pass counts."""
    total = passed = 0
    for exp in report.get("experiments", []):
        claims = exp.get("claims", [])
        total += len(claims)
        passed += sum(1 for c in claims if c.get("holds"))
    yield ("paper claims holding", f"{passed}/{total}")
    if passed < total:
        for exp in report.get("experiments", []):
            for c in exp.get("claims", []):
                if not c.get("holds"):
                    yield (f"  FAILED {exp['name']}.{c['id']}", str(c.get("measured")))


def fmt_ev_per_sync(run, window):
    """Events per sync instant — the protocol-efficiency headline of the
    /4 reports. Zero sync instants means the whole run needed no global
    barrier at all; shown as the full event count with a marker."""
    if not window or not run or run.get("events") is None:
        return ""
    sync = window.get("sync_instants", 0)
    eps = run["events"] / max(sync, 1)
    mark = " (no sync)" if sync == 0 else ""
    return f", {eps:,.0f} ev/sync{mark}"


def rows_sharded(label, section):
    """The single-vs-sharded block shared by chain and topology rows."""
    single = section["single"]["events_per_sec"]
    yield (f"{label} single-threaded", f"{single / 1e6:.2f}M ev/s")
    for s in section.get("sharded", []):
        threads = s.get("threads")
        t = f" threads={threads}" if threads is not None else ""
        parity = "parity OK" if s.get("ground_truth_parity") else "PARITY BROKEN"
        eps = fmt_ev_per_sync(s.get("run"), s.get("window"))
        yield (
            f"{label} shards={s['shards']}{t}",
            f"{fmt_speedup(s['speedup'])} ({parity}{eps})",
        )
        fixed = s.get("fixed_lookahead")
        if fixed:
            eps = fmt_ev_per_sync(fixed.get("run"), fixed.get("window"))
            reduction = fixed.get("sync_instant_reduction")
            red = f", {reduction:.0f}x more syncs" if reduction is not None else ""
            yield (
                f"{label} shards={s['shards']}{t} [fixed]",
                f"{fmt_speedup(fixed['speedup'])} (ablation{eps}{red})",
            )
        opt = s.get("optimistic")
        if opt:
            spec = opt["speculation"]
            eff = spec["speculation_efficiency"]
            yield (
                f"{label} shards={s['shards']}{t} [opt]",
                f"{fmt_speedup(opt['speedup'])} (ablation, "
                f"{spec['rollbacks']} rollbacks, {eff:.1%} efficient)",
            )


def rows_scale(scale):
    """ctms-perf/6: the city-scale capacity section — per topology size,
    build wall time, steady-state events/sec, and streaming-checkpoint
    throughput. Parity here means the run's ground-truth digests matched
    the single-threaded run AND the streamed checkpoint round-tripped
    byte-identically at every listed shard count."""
    shape = scale["shape"]
    for e in scale["entries"]:
        label = f"{shape}/{e['rings']} [scale]"
        run = e["run"]
        ck = e["checkpoint"]
        parity = "parity OK" if e["ground_truth_parity"] else "PARITY BROKEN"
        shards = ",".join(str(s) for s in e["stream_parity_shards"])
        peak = e["build_peak_bytes"]
        peak_txt = f", peak {fmt_bytes(peak)}" if peak is not None else ""
        yield (
            f"{label} build",
            f"{e['nodes']} nodes in {e['build_wall_secs']:.2f}s{peak_txt}",
        )
        yield (
            f"{label} run",
            f"{run['events_per_sec'] / 1e6:.2f}M ev/s "
            f"({parity}, stream shards {shards})",
        )
        yield (
            f"{label} checkpoint",
            f"{fmt_bytes(ck['bytes'])} in {ck['chunks']} chunks, "
            f"write {ck['write_mb_per_sec']:.0f} MB/s, "
            f"read {ck['read_mb_per_sec']:.0f} MB/s",
        )


def report_degraded(report):
    """True when the report was measured without real parallelism.
    Older reports predate the explicit flag; infer it from the core
    count so single-core numbers are always treated as degraded."""
    cores = report.get("cores")
    inferred = cores == 1 if cores is not None else False
    return bool(report.get("degraded_parallelism", inferred))


def sharded_regressions(report):
    """Sharded configurations running >10% slower than their own
    single-threaded row — the conservative row and, when the report
    measured it, the optimistic ablation too (speculation that is >10%
    below single-threaded on real cores means rollback churn ate the
    parallelism and must not land silently). Exempt on
    degraded_parallelism reports: on one core the window protocol runs
    inline, so sub-1.0x is the expected (and separately flagged) shape,
    not a regression."""
    if not report.get("format", "").startswith("ctms-perf/"):
        return []
    if report_degraded(report):
        return []
    sections = []
    chain = report.get("chain")
    if chain:
        sections.append((f"chain/{chain['rings']}", chain))
    for topo in report.get("topologies") or []:
        sections.append((f"{topo['shape']}/{topo['rings']}", topo))
    found = []
    for label, section in sections:
        for s in section.get("sharded", []):
            if s["speedup"] < 0.9:
                found.append(
                    f"{label} shards={s['shards']}: "
                    f"{fmt_speedup(s['speedup'])} vs single-threaded"
                )
            opt = s.get("optimistic")
            if opt and opt["speedup"] < 0.9:
                found.append(
                    f"{label} shards={s['shards']} [opt]: "
                    f"{fmt_speedup(opt['speedup'])} vs single-threaded"
                )
    return found


def rows_perf(report):
    """ctms-perf/1 through /3: scheduler speedups, allocs, sharded
    chain, and (since /3) per-topology graph-shape results."""
    cores = report.get("cores")
    if cores is not None:
        note = ", DEGRADED PARALLELISM" if report_degraded(report) else ""
        yield ("measured on", f"{cores} core(s){note}")
    for case in report.get("cases", []):
        ev = case["indexed"]["events_per_sec"]
        yield (
            f"{case['name']} indexed vs lazy",
            f"{fmt_speedup(case['speedup'])} ({ev / 1e6:.2f}M ev/s)",
        )
    steady = report.get("steady_state")
    if steady:
        yield (
            "steady-state allocs/event (indexed)",
            f"{steady['indexed']['allocs_per_event']:g}",
        )
    chain = report.get("chain")
    if chain:
        yield from rows_sharded(f"chain/{chain['rings']}", chain)
    for topo in report.get("topologies") or []:
        yield from rows_sharded(f"{topo['shape']}/{topo['rings']}", topo)
    scale = report.get("scale")
    if scale:
        yield from rows_scale(scale)


def rows_for(report):
    fmt = report.get("format", "")
    if fmt.startswith("ctms-repro-run/"):
        return list(rows_repro(report))
    if fmt.startswith("ctms-perf/"):
        return list(rows_perf(report))
    return [("unrecognized format", fmt or "<missing>")]


def pr_number(path):
    m = re.search(r"BENCH_PR(\d+)", path.name)
    return int(m.group(1)) if m else 10**9


def render(root, out, err):
    reports = sorted(root.glob("BENCH_*.json"), key=pr_number)
    if not reports:
        print(f"no BENCH_*.json under {root}", file=err)
        return 1
    table = []
    malformed = []
    regressions = []
    for path in reports:
        try:
            report = json.loads(path.read_text())
            rows = rows_for(report)
            regressions += [(path, r) for r in sharded_regressions(report)]
        except (OSError, json.JSONDecodeError) as e:
            malformed.append((path, e))
            continue
        except (KeyError, TypeError, AttributeError) as e:
            # Parseable JSON, broken structure — a chain or topology
            # section missing a required key is as malformed as bad
            # syntax, and must not pass silently.
            malformed.append((path, f"bad section structure: {e!r}"))
            continue
        for metric, value in rows:
            table.append((path.name, metric, value))
    if table:
        w0 = max(len(r[0]) for r in table)
        w1 = max(len(r[1]) for r in table)
        print(f"{'report':{w0}}  {'metric':{w1}}  value", file=out)
        print(f"{'-' * w0}  {'-' * w1}  {'-' * 5}", file=out)
        last = None
        for name, metric, value in table:
            shown = name if name != last else ""
            last = name
            print(f"{shown:{w0}}  {metric:{w1}}  {value}", file=out)
    failed = False
    if malformed:
        for path, e in malformed:
            print(f"bench_trend: {path.name} is malformed: {e}", file=err)
        print(
            f"bench_trend: {len(malformed)} malformed report(s) — "
            "re-record with `cargo run -p ctms-bench --bin perf -- --json <path>`",
            file=err,
        )
        failed = True
    if regressions:
        for path, r in regressions:
            print(f"bench_trend: {path.name}: sharded regression: {r}", file=err)
        print(
            f"bench_trend: {len(regressions)} sharded configuration(s) >10% below "
            "their single-threaded row on a multi-core measurement",
            file=err,
        )
        failed = True
    return 1 if failed else 0


WELL_FORMED = {
    "format": "ctms-perf/3",
    "cores": 4,
    "degraded_parallelism": False,
    "cases": [
        {
            "name": "case_a",
            "indexed": {"events_per_sec": 2.5e6},
            "speedup": 1.5,
        }
    ],
    "chain": {
        "rings": 128,
        "single": {"events_per_sec": 3.0e6},
        "sharded": [
            {"shards": 2, "threads": 2, "speedup": 1.4, "ground_truth_parity": True}
        ],
    },
    "topologies": [
        {
            "shape": "tree",
            "rings": 1024,
            "single": {"events_per_sec": 2.0e6},
            "sharded": [
                {"shards": 4, "threads": 4, "speedup": 1.8, "ground_truth_parity": True}
            ],
        }
    ],
}


WELL_FORMED_V4 = {
    "format": "ctms-perf/4",
    "cores": 4,
    "degraded_parallelism": False,
    "cases": [
        {
            "name": "case_a",
            "indexed": {"events_per_sec": 2.5e6},
            "speedup": 1.5,
        }
    ],
    "chain": {
        "rings": 32,
        "single": {"events_per_sec": 5.0e6},
        "sharded": [
            {
                "shards": 2,
                "threads": 2,
                "run": {"events": 51662},
                "speedup": 1.3,
                "window": {"sync_instants": 0, "windows": 2, "mail_rounds": 1},
                "fixed_lookahead": {
                    "run": {"events": 51662},
                    "speedup": 0.95,
                    "window": {"sync_instants": 159, "windows": 4403},
                    "sync_instant_reduction": 159.0,
                },
                "ground_truth_parity": True,
            }
        ],
    },
    "topologies": None,
}


WELL_FORMED_V5 = {
    "format": "ctms-perf/5",
    "cores": 4,
    "degraded_parallelism": False,
    "cases": [
        {
            "name": "case_a",
            "indexed": {"events_per_sec": 2.5e6},
            "speedup": 1.5,
        }
    ],
    "chain": {
        "rings": 32,
        "single": {"events_per_sec": 5.0e6},
        "sharded": [
            {
                "shards": 4,
                "threads": 4,
                "threads_requested": None,
                "run": {"events": 27861},
                "speedup": 1.4,
                "window": {"sync_instants": 0, "windows": 4, "mail_rounds": 3},
                "optimistic": {
                    "run": {"events": 27861},
                    "speedup": 1.2,
                    "window": {"sync_instants": 0, "windows": 4},
                    "speculation": {
                        "rollbacks": 17,
                        "events_rolled_back": 512,
                        "snapshot_bytes": 84353,
                        "gvt_rounds": 5,
                        "speculation_efficiency": 0.982,
                    },
                },
                "ground_truth_parity": True,
            }
        ],
    },
    "topologies": None,
}


WELL_FORMED_V6 = {
    "format": "ctms-perf/6",
    "cores": 4,
    "degraded_parallelism": False,
    "cases": [
        {
            "name": "case_a",
            "indexed": {"events_per_sec": 2.5e6},
            "speedup": 1.5,
        }
    ],
    "chain": {
        "rings": 32,
        "single": {"events_per_sec": 5.0e6},
        "sharded": [
            {"shards": 2, "threads": 2, "speedup": 1.3, "ground_truth_parity": True}
        ],
    },
    "topologies": None,
    "scale": {
        "shape": "tree",
        "entries": [
            {
                "rings": 10000,
                "nodes": 20001,
                "build_wall_secs": 0.02,
                "build_peak_bytes": 31457280,
                "horizon_ms": 100,
                "run": {
                    "events": 199683,
                    "wall_secs": 0.0955,
                    "events_per_sec": 2.09e6,
                },
                "checkpoint": {
                    "bytes": 4521907,
                    "chunks": 37,
                    "write_secs": 0.0069,
                    "write_mb_per_sec": 655.6,
                    "read_secs": 0.0056,
                    "read_mb_per_sec": 804.3,
                },
                "stream_parity_shards": [1, 2, 4],
                "ground_truth_parity": True,
            }
        ],
    },
}


def selftest():
    """Pins the malformed-report contract (bad syntax and a broken
    topology section both produce a non-zero exit, a clean tree a zero
    one), the /4 efficiency columns, the /5 optimistic ablation row,
    the /6 scale section, and the sharded-regression gate (conservative
    and optimistic) with its degraded-parallelism exemption."""

    def run_on(files):
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            for name, text in files.items():
                (root / name).write_text(text)
            out, err = io.StringIO(), io.StringIO()
            code = render(root, out, err)
            return code, out.getvalue(), err.getvalue()

    # A well-formed /3 report renders per-topology rows and exits 0.
    code, out, err = run_on({"BENCH_PR7.json": json.dumps(WELL_FORMED)})
    assert code == 0, f"well-formed report must exit 0: {err}"
    assert "tree/1024 shards=4" in out, f"missing per-topology row:\n{out}"
    assert "1.80x (parity OK)" in out, f"missing topology speedup:\n{out}"

    # Syntactically malformed JSON: non-zero, named on stderr.
    code, _, err = run_on(
        {
            "BENCH_PR7.json": json.dumps(WELL_FORMED),
            "BENCH_PR8.json": "{ this is not json",
        }
    )
    assert code == 1, "syntactic damage must fail the run"
    assert "BENCH_PR8.json is malformed" in err, err

    # Structurally malformed topology section (entry missing its
    # "single" block): equally fatal, not a silent skip.
    broken = json.loads(json.dumps(WELL_FORMED))
    del broken["topologies"][0]["single"]
    code, _, err = run_on({"BENCH_PR7.json": json.dumps(broken)})
    assert code == 1, "a broken topology section must fail the run"
    assert "bad section structure" in err, err

    # Same for a topology entry of the wrong JSON type entirely.
    broken = json.loads(json.dumps(WELL_FORMED))
    broken["topologies"] = [42]
    code, _, err = run_on({"BENCH_PR7.json": json.dumps(broken)})
    assert code == 1, "a non-object topology entry must fail the run"

    # A /4 report renders the events-per-sync-instant column and the
    # fixed-lookahead ablation row, and exits 0 when nothing regressed.
    code, out, err = run_on({"BENCH_PR8.json": json.dumps(WELL_FORMED_V4)})
    assert code == 0, f"well-formed /4 report must exit 0: {err}"
    assert "51,662 ev/sync (no sync)" in out, f"missing ev/sync column:\n{out}"
    assert "chain/32 shards=2 threads=2 [fixed]" in out, f"missing ablation row:\n{out}"
    assert "159x more syncs" in out, f"missing sync reduction:\n{out}"

    # A sharded row >10% below its single-threaded baseline fails the
    # run when the report was measured with real parallelism...
    regressed = json.loads(json.dumps(WELL_FORMED_V4))
    regressed["chain"]["sharded"][0]["speedup"] = 0.82
    code, _, err = run_on({"BENCH_PR8.json": json.dumps(regressed)})
    assert code == 1, "a >10% sharded regression must fail the run"
    assert "sharded regression" in err and "0.82x" in err, err

    # ...but is exempt on a degraded-parallelism (single-core) report,
    # where sub-1.0x parallel speedups are the documented expectation.
    degraded = json.loads(json.dumps(regressed))
    degraded["cores"] = 1
    degraded["degraded_parallelism"] = True
    code, _, err = run_on({"BENCH_PR8.json": json.dumps(degraded)})
    assert code == 0, f"degraded-parallelism reports must be exempt: {err}"

    # A /5 report renders the optimistic ablation row with its rollback
    # count and speculation efficiency, and exits 0 when healthy.
    code, out, err = run_on({"BENCH_PR9.json": json.dumps(WELL_FORMED_V5)})
    assert code == 0, f"well-formed /5 report must exit 0: {err}"
    assert "chain/32 shards=4 threads=4 [opt]" in out, f"missing [opt] row:\n{out}"
    assert "17 rollbacks, 98.2% efficient" in out, f"missing speculation columns:\n{out}"

    # The optimistic ablation is held to the same >10% regression gate
    # as the conservative row on real-core measurements...
    regressed = json.loads(json.dumps(WELL_FORMED_V5))
    regressed["chain"]["sharded"][0]["optimistic"]["speedup"] = 0.7
    code, _, err = run_on({"BENCH_PR9.json": json.dumps(regressed)})
    assert code == 1, "a >10% optimistic regression must fail the run"
    assert "[opt]: 0.70x" in err, err

    # ...and shares the degraded-parallelism exemption.
    degraded = json.loads(json.dumps(regressed))
    degraded["cores"] = 1
    degraded["degraded_parallelism"] = True
    code, _, err = run_on({"BENCH_PR9.json": json.dumps(degraded)})
    assert code == 0, f"degraded /5 reports must be exempt: {err}"

    # A /6 report renders the scale section's build, run, and checkpoint
    # rows and exits 0 — the capacity pass is display-only, but stays
    # subject to the same chain/topology regression gate as /4 and /5.
    code, out, err = run_on({"BENCH_PR10.json": json.dumps(WELL_FORMED_V6)})
    assert code == 0, f"well-formed /6 report must exit 0: {err}"
    assert "tree/10000 [scale] build" in out, f"missing scale build row:\n{out}"
    assert "20001 nodes in 0.02s, peak 31.5 MB" in out, f"missing build columns:\n{out}"
    assert "2.09M ev/s (parity OK, stream shards 1,2,4)" in out, (
        f"missing scale run row:\n{out}"
    )
    assert "4.5 MB in 37 chunks, write 656 MB/s, read 804 MB/s" in out, (
        f"missing checkpoint throughput row:\n{out}"
    )

    # Without the counting allocator the build row simply omits the peak.
    no_peak = json.loads(json.dumps(WELL_FORMED_V6))
    no_peak["scale"]["entries"][0]["build_peak_bytes"] = None
    code, out, err = run_on({"BENCH_PR10.json": json.dumps(no_peak)})
    assert code == 0, f"null build_peak_bytes must render: {err}"
    assert "20001 nodes in 0.02s" in out and "peak" not in out, out

    # A structurally broken scale entry (missing its checkpoint block)
    # is malformed, same as a broken topology section.
    broken = json.loads(json.dumps(WELL_FORMED_V6))
    del broken["scale"]["entries"][0]["checkpoint"]
    code, _, err = run_on({"BENCH_PR10.json": json.dumps(broken)})
    assert code == 1, "a broken scale entry must fail the run"
    assert "bad section structure" in err, err

    # The >10% sharded-regression gate still applies to /6 reports.
    regressed = json.loads(json.dumps(WELL_FORMED_V6))
    regressed["chain"]["sharded"][0]["speedup"] = 0.8
    code, _, err = run_on({"BENCH_PR10.json": json.dumps(regressed)})
    assert code == 1, "a /6 sharded regression must fail the run"
    assert "0.80x" in err, err

    print("bench_trend selftest: OK")
    return 0


def main():
    if len(sys.argv) > 1 and sys.argv[1] == "--selftest":
        return selftest()
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    return render(root, sys.stdout, sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
