#!/usr/bin/env bash
# Repo verification gate: formatting, lints, and the tier-1 suite.
# Run from the repository root. Everything here works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, deny warnings)"
cargo clippy --workspace -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "== tier-1: zero-alloc scheduler steady state (alloc-count)"
cargo test -q -p ctms-sim --features alloc-count --test zero_alloc

echo "== tier-1: zero-alloc sharded steady state (both window modes + optimistic)"
cargo test -q -p ctms-sim --features alloc-count --test zero_alloc_sharded

echo "== tier-1: sharded scheduler parity (golden digests at 1/2/4 shards)"
cargo test -q --test determinism sharded_harness_shares_the_golden_truth

echo "== tier-1: checkpoint parity (byte-identical resume, any shard count)"
cargo test -q --test checkpoint

echo "== tier-1: topology parity (tree/mesh/fddi golden truth at 1/2/4 shards)"
cargo test -q --test determinism topology_variants_share_the_golden_truth

echo "== tier-1: adaptive-vs-fixed window parity (chain/tree/mesh/fddi at 1/2/4 shards)"
cargo test -q --test determinism window_modes_share_the_golden_truth

echo "== tier-1: optimistic execution parity (golden truth; rollback+replay exercised)"
cargo test -q --test determinism optimistic_mode_shares_the_golden_truth
cargo test -q -p ctms-sim straggler

echo "== ctms-serve smoke (typed error kinds + optimistic session parity)"
cargo test -q -p ctms-bench --bin serve
cons_out=$(printf '%s\n' \
  '{"scenario":"chain","rings":8,"shards":2}' \
  '{"cmd":"run","until_ms":50}' \
  '{"cmd":"telemetry"}' \
  '{"cmd":"quit"}' \
  | cargo run --release -q -p ctms-bench --bin serve)
opt_out=$(printf '%s\n' \
  '{"scenario":"chain","rings":8,"shards":2,"exec":"optimistic"}' \
  '{"cmd":"run","until_ms":50}' \
  '{"cmd":"telemetry"}' \
  '{"cmd":"quit"}' \
  | cargo run --release -q -p ctms-bench --bin serve)
[ "$cons_out" = "$opt_out" ] \
  || { echo "serve smoke: optimistic session diverged from conservative" >&2; exit 1; }

echo "== ctms-serve smoke (session, run, checkpoint/restore round trip)"
serve_out=$(printf '%s\n' \
  '{"scenario":"case_a","seed":42}' \
  '{"cmd":"run","until_ms":1000}' \
  '{"cmd":"checkpoint"}' \
  '{"cmd":"quit"}' \
  | cargo run --release -q -p ctms-bench --bin serve)
ckpt=$(printf '%s' "$serve_out" | sed -n 's/.*"checkpoint":"\([0-9a-f]*\)".*/\1/p')
[ -n "$ckpt" ] || { echo "serve smoke: no checkpoint in output" >&2; exit 1; }
printf '%s\n' \
  '{"scenario":"case_a","seed":42}' \
  "{\"cmd\":\"restore\",\"checkpoint\":\"$ckpt\"}" \
  '{"cmd":"quit"}' \
  | cargo run --release -q -p ctms-bench --bin serve \
  | grep -q '"event":"restored","now_ms":1000' \
  || { echo "serve smoke: restore did not land at 1000 ms" >&2; exit 1; }

echo "== ctms-serve smoke (streamed checkpoint chunks concatenate to the monolithic hex)"
stream_out=$(printf '%s\n' \
  '{"scenario":"chain","rings":8,"shards":2}' \
  '{"cmd":"run","until_ms":200}' \
  '{"cmd":"checkpoint"}' \
  '{"cmd":"checkpoint_stream"}' \
  '{"cmd":"quit"}' \
  | cargo run --release -q -p ctms-bench --bin serve)
mono=$(printf '%s' "$stream_out" | sed -n 's/.*"checkpoint":"\([0-9a-f]*\)".*/\1/p')
chunks=$(printf '%s' "$stream_out" \
  | sed -n 's/.*"event":"checkpoint_chunk".*"data":"\([0-9a-f]*\)".*/\1/p' \
  | tr -d '\n')
[ -n "$mono" ] || { echo "serve smoke: no monolithic checkpoint hex" >&2; exit 1; }
[ "$chunks" = "$mono" ] \
  || { echo "serve smoke: streamed chunks do not concatenate to the checkpoint hex" >&2; exit 1; }
printf '%s' "$stream_out" | grep -q '"event":"checkpoint_done"' \
  || { echo "serve smoke: missing checkpoint_done line" >&2; exit 1; }

echo "== perf smoke (report-only, compares against checked-in BENCH_PR4.json)"
cargo run --release -q -p ctms-bench --features alloc-count --bin perf -- \
  --quick --compare BENCH_PR4.json

echo "== sharded perf smoke (parity-asserting, report-only vs BENCH_PR5.json)"
cargo run --release -q -p ctms-bench --features alloc-count --bin perf -- \
  --quick --shards 4 --rings 32 --compare BENCH_PR5.json

echo "== topology perf smoke (tree+mesh+fddi parity at 1 and 4 shards, vs BENCH_PR7.json)"
cargo run --release -q -p ctms-bench --features alloc-count --bin perf -- \
  --quick --shards 4 --rings 32 \
  --topology tree:16 --topology mesh:12 --topology fddi:8 \
  --compare BENCH_PR7.json

echo "== adaptive perf smoke (report-only: adaptive + fixed ablation, parity-asserting)"
cargo run --release -q -p ctms-bench --features alloc-count --bin perf -- \
  --quick --shards 4 --rings 32 --adaptive

echo "== optimistic perf smoke (report-only: speculation ablation, parity-asserting, vs BENCH_PR9.json)"
cargo run --release -q -p ctms-bench --features alloc-count --bin perf -- \
  --quick --shards 4 --rings 32 --adaptive --optimistic --compare BENCH_PR9.json

echo "== scale perf smoke (capacity section at small N: build, streamed-checkpoint parity at 1/2/4 shards, vs BENCH_PR10.json)"
cargo run --release -q -p ctms-bench --features alloc-count --bin perf -- \
  --quick --scale --compare BENCH_PR10.json

echo "== bench_trend selftest (malformed reports, incl. topology section, must fail)"
python3 scripts/bench_trend.py --selftest

echo "verify: OK"
