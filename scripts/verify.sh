#!/usr/bin/env bash
# Repo verification gate: formatting, lints, and the tier-1 suite.
# Run from the repository root. Everything here works offline.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (workspace, deny warnings)"
cargo clippy --workspace -- -D warnings

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

echo "verify: OK"
