//! # ctms-repro — umbrella crate
//!
//! Reproduction of *"Distributed Multimedia: How Can the Necessary Data
//! Rates be Supported?"* (Pasieka, Crumley, Marks, Infortuna; USENIX
//! 1991). See README.md for the tour and DESIGN.md for the architecture.
//!
//! This crate re-exports the workspace so examples and integration tests
//! have one front door; the implementation lives in `crates/*`.

pub use ctms_core as core;
pub use ctms_ctmsp as ctmsp;
pub use ctms_devices as devices;
pub use ctms_measure as measure;
pub use ctms_rtpc as rtpc;
pub use ctms_sim as sim;
pub use ctms_stats as stats;
pub use ctms_tokenring as tokenring;
pub use ctms_unixkern as unixkern;
pub use ctms_workloads as workloads;
