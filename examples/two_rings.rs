//! Crossing rings: the paper's footnote-5 scenario, implemented.
//!
//! §1, note 5: keeping the transmitter and receiver on one ring avoids
//! "the additional problem of creating a router that could keep up with
//! the data rates that we were using. This is possible but has not been
//! implemented." Here it is: the same CTMS stream, with the receiver
//! moved to a second Token Ring, forwarded by (a) a 1991 store-and-forward
//! host and (b) a hardware cut-through bridge.
//!
//! ```sh
//! cargo run --release --example two_rings
//! ```

use ctms_core::{DualRingTestbed, Scenario};
use ctms_measure::HistId;
use ctms_router::BridgeKind;
use ctms_sim::{Dur, SimTime};
use ctms_stats::Summary;

fn run(label: &str, sc: &Scenario, kind: BridgeKind, secs: u64) {
    let mut bed = DualRingTestbed::new(sc, kind);
    bed.run_until(SimTime::from_secs(secs));
    let (sent, received, drops) = bed.counters();
    let h7 = bed.measurement_set().samples_us(HistId::H7);
    let s = Summary::of(&h7);
    let q = bed.bridge(0).stats().queue_highwater;
    println!(
        "{label:<28} {received:>5}/{sent:<5} delivered  {drops:>4} dropped  \
         latency {:>6.1}/{:>6.1} ms (mean/max)  queue peak {q}",
        s.mean / 1000.0,
        s.max / 1000.0
    );
}

fn main() {
    let secs = 60;
    println!("CTMS stream at 2000 bytes / 12 ms (~167 KB/s), two private rings:\n");
    let sc = Scenario::test_case_a(7);
    run(
        "host router, full rate",
        &sc,
        BridgeKind::host_router_1991(),
        secs,
    );
    run(
        "cut-through bridge, full rate",
        &sc,
        BridgeKind::cut_through_bridge(),
        secs,
    );
    let mut half = sc.clone();
    half.period = Dur::from_ms(24);
    println!("\n…and at half rate (one packet per 24 ms):\n");
    run(
        "host router, half rate",
        &half,
        BridgeKind::host_router_1991(),
        secs,
    );
    run(
        "cut-through bridge, half rate",
        &half,
        BridgeKind::cut_through_bridge(),
        secs,
    );
    println!(
        "\nThe 1991 forwarding host needs ~12.6 ms per 2000-byte packet — more \
         than the stream's 12 ms period — so at full rate its queue overflows \
         and the stream breaks up; a cut-through bridge adds well under a \
         millisecond of forwarding and carries it easily. The crossover sits \
         between ~83 and ~167 KB/s, which is why the paper kept both machines \
         on one ring."
    );
}
