//! Quickstart: stream CTMS data between two simulated hosts and print
//! what the paper's measurement points saw.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ctms_core::{Scenario, Testbed};
use ctms_devices::{CtmsVcaSink, CtmsVcaSource};
use ctms_measure::HistId;
use ctms_sim::SimTime;
use ctms_stats::Summary;

fn main() {
    // Test case A of the paper: a private, unloaded 4 Mbit Token Ring,
    // two standalone IBM RT/PCs, a 2000-byte CTMSP packet every 12 ms
    // (~167 KB/s — "compressed video or Compact Disc quality audio").
    let scenario = Scenario::test_case_a(42);
    println!(
        "CTMS stream: {} bytes every {} (≈{:.0} KB/s) over a {}-station ring",
        scenario.pkt_len,
        scenario.period,
        scenario.data_rate() / 1000.0,
        scenario.station_count(),
    );

    let mut bed = Testbed::ctms(&scenario);
    bed.run_until(SimTime::from_secs(30));

    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("source driver");
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink driver");
    println!(
        "after 30 s: {} packets sent, {} received, {} gaps tolerated",
        src.stats().pkts_sent,
        sink.stats().received,
        sink.stats().gaps,
    );

    // The four measurement points of §5.2 and the paper's histogram 7
    // (transmitter→receiver latency, Figure 5-3).
    let set = bed.measurement_set();
    let h7 = set.samples_us(HistId::H7);
    let s = Summary::of(&h7);
    println!(
        "transfer latency (point 3 → point 4): min {:.0} µs, mean {:.0} µs, max {:.0} µs",
        s.min, s.mean, s.max
    );
    println!("paper (Figure 5-3): min 10 740 µs, mean 10 894 µs, 98 % within ±160 µs");

    let h6 = set.samples_us(HistId::H6);
    println!(
        "driver latency (point 2 → point 3): mean {:.0} µs (paper: 2600 µs = \
         2000 µs copy + 600 µs code)",
        Summary::of(&h6).mean
    );
}
