//! The measurement lab of §5.2: observe the same ground truth through
//! each of the paper's instruments and compare their errors.
//!
//! The paper spends half its length on instrumentation because every
//! figure carries instrument error; this example makes that error visible
//! by viewing one run's VCA-IRQ and transfer-latency signals through:
//!
//! * the logic analyzer (exact),
//! * the PC/AT parallel-port timestamper (2 µs clock, 60 µs loop),
//! * the in-kernel pseudo driver (122 µs clock, interrupt interference),
//! * TAP (ring-wide frame capture and traffic classification).
//!
//! ```sh
//! cargo run --release --example measurement_lab
//! ```

use ctms_core::{Scenario, Testbed};
use ctms_measure::{analyze_period, PcAt, PcAtCfg, PseudoCfg, PseudoDriver};
use ctms_sim::{Dur, EdgeLog, Pcg32, SimTime};
use ctms_stats::Summary;

fn spread_us(log: &EdgeLog) -> (f64, f64, f64) {
    let xs: Vec<f64> = log
        .inter_occurrence()
        .iter()
        .map(|d| d.as_us_f64())
        .collect();
    let s = Summary::of(&xs);
    (s.min, s.mean, s.max)
}

fn main() {
    let secs = 60;
    let sc = Scenario::test_case_b(11);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(secs));
    let truth = bed.measurement_set();

    println!("== the VCA IRQ line through each instrument ==");
    let pa = analyze_period(&truth.vca_irq, Dur::from_ms(12));
    println!(
        "logic analyzer : period mean {:.3} ms, max deviation {} ns \
         (§5.2.2: 'completely solid')",
        pa.mean_ns / 1e6,
        pa.max_deviation_ns
    );

    let mut pcat = PcAt::new(PcAtCfg::default(), Pcg32::new(5, 5));
    let cap = pcat.observe(&[&truth.vca_irq], SimTime::from_secs(secs));
    let rec = cap.reconstruct();
    let (min, mean, max) = spread_us(&rec[0]);
    println!(
        "PC/AT tool     : intervals {min:.0}–{max:.0} µs around {mean:.0} µs \
         (§5.2.3: ±120 µs spread, 60 µs loop)"
    );

    let mut pseudo = PseudoDriver::new(PseudoCfg::default(), Pcg32::new(6, 6));
    let view = pseudo.observe(&truth.vca_irq);
    let (min, mean, max) = spread_us(&view);
    println!(
        "pseudo driver  : intervals {min:.0}–{max:.0} µs around {mean:.0} µs \
         (§5.2.1: 122 µs clock, 'a poor method … extremely good at finding bugs')"
    );

    println!();
    println!("== the transfer latency (histogram 7) through the PC/AT tool ==");
    let exact: Vec<f64> = truth
        .pre_tx
        .deltas_to(&truth.ctmsp_rx)
        .iter()
        .map(|d| d.as_us_f64())
        .collect();
    let s = Summary::of(&exact);
    println!(
        "ground truth   : min {:.0} µs, mean {:.0} µs, sd {:.0} µs",
        s.min, s.mean, s.std_dev
    );
    // The real setup probes the transmitter and receiver with one PC/AT:
    // channels 0 and 1.
    let mut pcat = PcAt::new(PcAtCfg::default(), Pcg32::new(7, 7));
    let cap = pcat.observe(&[&truth.pre_tx, &truth.ctmsp_rx], SimTime::from_secs(secs));
    let rec = cap.reconstruct();
    let measured: Vec<f64> = rec[0]
        .deltas_to(&rec[1])
        .iter()
        .map(|d| d.as_us_f64())
        .collect();
    let m = Summary::of(&measured);
    println!(
        "through PC/AT  : min {:.0} µs, mean {:.0} µs, sd {:.0} µs \
         (instrument widens the spread; the paper's figures contain this)",
        m.min, m.mean, m.std_dev
    );

    println!();
    println!("== TAP's view of the ring ==");
    let b = bed.tap().breakdown();
    println!(
        "captured {} frames: {} MAC (~20 B), {} small (60–300 B), \
         {} file-transfer (~1522 B), {} CTMSP (2021 B), {} other",
        bed.tap().records().len(),
        b.mac,
        b.small,
        b.file_transfer,
        b.ctmsp,
        b.other
    );
    let a = bed.tap().analyze_stream();
    println!(
        "CTMSP stream: {} captured, {} out-of-order, {} gaps ({} missing), \
         {} duplicates — §5: 'the problem of out of order packets completely \
         disappeared' once critical sections were fixed",
        a.captured, a.out_of_order, a.gaps, a.missing, a.duplicates
    );
    println!(
        "ring utilization {:.1} %, {} purges observed, {} frames missed by \
         the capture-rate limit",
        bed.tap().utilization() * 100.0,
        bed.tap().purges(),
        bed.tap().missed()
    );
}
