//! CD-quality audio over the campus ring.
//!
//! §1: "with Compact Disc audio, the transfer rate is 176.4KBytes/sec
//! (44.1K samples, 16 bits per sample, 2 channels)". This example streams
//! exactly that rate over the loaded public ring (test-case-B conditions)
//! and sizes the receiver's playout buffer from the measured delay spread
//! — the §6 question: how much buffering does glitch-free playback need?
//!
//! ```sh
//! cargo run --release --example cd_audio
//! ```

use ctms_core::{Scenario, Testbed};
use ctms_devices::CtmsVcaSink;
use ctms_measure::HistId;
use ctms_sim::{Dur, SimTime};
use ctms_stats::{quantile, Summary};

fn main() {
    // 176.4 KB/s at one packet per 12 ms ⇒ 2117-byte packets.
    let mut scenario = Scenario::test_case_b(2026);
    scenario.pkt_len = 2117;
    println!(
        "CD audio: {} bytes / {} = {:.1} KB/s (paper: 176.4 KB/s)",
        scenario.pkt_len,
        scenario.period,
        scenario.data_rate() / 1000.0
    );

    let minutes = 3;
    let mut bed = Testbed::ctms(&scenario);
    bed.run_until(SimTime::from_secs(minutes * 60));

    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink");
    let received = sink.stats().received;
    let missed = sink.stats().missed_pkts;
    println!(
        "{minutes} min of playback: {received} packets received, {missed} lost \
         (recovery tolerates single losses, §5)"
    );

    // Delay spread → playout buffer. A receiver that delays playback by
    // (max - min) transfer time never underruns; the data buffered in
    // that window is the §6 requirement.
    let h7 = bed.measurement_set().samples_us(HistId::H7);
    let s = Summary::of(&h7);
    let p999 = quantile(&h7, 0.999);
    let rate = scenario.data_rate();
    let buf_worst = bed.buffer_requirement_bytes(rate, scenario.pkt_len);
    let buf_p999 = (p999 - s.min) * 1e-6 * rate + f64::from(scenario.pkt_len);
    println!(
        "transfer latency: min {:.1} ms, mean {:.1} ms, p99.9 {:.1} ms, max {:.1} ms",
        s.min / 1000.0,
        s.mean / 1000.0,
        p999 / 1000.0,
        s.max / 1000.0
    );
    println!(
        "playout buffer: {:.1} KB for the worst case, {:.1} KB at p99.9 \
         (paper §6: 'under 25KBytes' for 150 KB/s)",
        buf_worst / 1024.0,
        buf_p999 / 1024.0
    );
    let startup_delay = Dur::from_us_f64(s.max - s.min);
    println!("equivalent playback start-up delay: {startup_delay}");

    assert!(
        buf_worst < 32.0 * 1024.0,
        "CD audio should stay within a few packets of the paper's bound"
    );
}
