//! The paper's motivating experiment (§1): push the same media stream
//! through the stock UNIX user-process path and through the modified
//! in-kernel CTMS path, at 16 KB/s and at 150 KB/s.
//!
//! ```sh
//! cargo run --release --example stock_vs_ctms
//! ```

use ctms_core::{Scenario, Testbed};
use ctms_devices::{CtmsVcaSink, CtmsVcaSource, StockAudioSink, StockVcaSource};
use ctms_sim::SimTime;
use ctms_unixkern::SockProto;

fn stock_run(rate: u32, secs: u64) -> (f64, f64, f64) {
    let sc = Scenario::test_case_a(7);
    let mut bed = Testbed::stock(&sc, rate, SockProto::UdpLite);
    bed.run_until(SimTime::from_secs(secs));
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<StockVcaSource>(bed.roles.vca_src)
        .expect("source");
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<StockAudioSink>(bed.roles.vca_sink)
        .expect("sink");
    let produced = src.stats().produced.max(1) as f64;
    let lost = (src.stats().overrun_bytes + sink.stats().underrun_bytes) as f64;
    let glitches_per_min = sink.stats().underruns as f64 * 60.0 / secs as f64;
    let cpu = bed.host(0).machine.cpu_stats().busy_work_ns as f64 / (secs as f64 * 1e9);
    (lost / produced, glitches_per_min, cpu)
}

fn ctms_run(secs: u64) -> (f64, f64) {
    let sc = Scenario::test_case_b(7); // loaded public ring, no less
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(secs));
    let sent = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("source")
        .stats()
        .pkts_sent
        .max(1) as f64;
    let recv = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink")
        .stats()
        .received as f64;
    let cpu = bed.host(0).machine.cpu_stats().busy_work_ns as f64 / (secs as f64 * 1e9);
    (recv / sent, cpu)
}

fn main() {
    let secs = 60;
    println!("path                      rate        loss   glitches/min  tx CPU");
    for rate in [16_000u32, 150_000] {
        let (loss, glitches, cpu) = stock_run(rate, secs);
        println!(
            "stock user-process    {:>7} B/s   {:>6.2}%   {:>8.0}      {:>5.1}%",
            rate,
            loss * 100.0,
            glitches,
            cpu * 100.0
        );
    }
    let (delivery, cpu) = ctms_run(secs);
    println!(
        "CTMS in-kernel        {:>7} B/s   {:>6.2}%   {:>8}      {:>5.1}%",
        166_667,
        (1.0 - delivery) * 100.0,
        0,
        cpu * 100.0
    );
    println!();
    println!(
        "The paper's §1: 16 KB/s 'worked extremely well within the current \
         UNIX model'; 150 KB/s 'failed completely'. The modified system \
         (direct driver-to-driver transfers + CTMSP + IO Channel Memory) \
         carries ~167 KB/s on a loaded public ring."
    );
}
