//! Cross-crate integration tests: the full testbed, end to end.

use ctms_core::{Scenario, Testbed};
use ctms_devices::{CtmsVcaSink, CtmsVcaSource};
use ctms_measure::HistId;
use ctms_sim::SimTime;
use ctms_stats::Summary;
use ctms_tokenring::Disturb;
use ctms_unixkern::SockProto;

/// The simulation is fully deterministic: identical seeds produce
/// identical measurement sets, sample for sample.
#[test]
fn same_seed_same_run() {
    let run = || {
        let sc = Scenario::test_case_b(1234);
        let mut bed = Testbed::ctms(&sc);
        bed.run_until(SimTime::from_secs(10));
        bed.measurement_set().samples_us(HistId::H7)
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    assert_eq!(a, b);
}

/// Different seeds produce different (but statistically similar) runs.
#[test]
fn different_seed_different_run() {
    let run = |seed| {
        let sc = Scenario::test_case_b(seed);
        let mut bed = Testbed::ctms(&sc);
        bed.run_until(SimTime::from_secs(10));
        bed.measurement_set().samples_us(HistId::H7)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b);
    let (sa, sb) = (Summary::of(&a), Summary::of(&b));
    assert!(
        (sa.mean - sb.mean).abs() < 1000.0,
        "{} vs {}",
        sa.mean,
        sb.mean
    );
}

/// Case A sustains the stream with essentially no loss and a tight
/// latency distribution (Figure 5-3's headline shape).
#[test]
fn case_a_invariants() {
    let sc = Scenario::test_case_a(99);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(30));
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("src");
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink");
    assert_eq!(src.stats().mbuf_drops, 0);
    assert!(sink.stats().received >= src.stats().pkts_sent - 2);
    assert_eq!(sink.stats().duplicates, 0);
    let h7 = bed.measurement_set().samples_us(HistId::H7);
    let s = Summary::of(&h7);
    assert!(s.min >= 10_600.0, "min {}", s.min);
    assert!(s.mean < 11_100.0, "mean {}", s.mean);
    // Latency floor: the simulation can never beat the analytic floor.
    assert!(s.min >= sc.calib.h7_floor_us(sc.pkt_len), "below floor");
}

/// CTMSP packets are delivered strictly in order (the §3 sequencing
/// guarantee): the receiver never sees a packet number decrease.
#[test]
fn sequencing_guarantee() {
    let sc = Scenario::test_case_b(5);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(20));
    let mut last = 0u64;
    for (_, tag, _) in bed.presented() {
        assert!(*tag > last, "out of order: {tag} after {last}");
        last = *tag;
    }
    assert!(last > 1_500, "stream ran: {last}");
}

/// A station insertion purges the ring; the stream loses at most the
/// in-flight window and recovers by itself (§5's recovery code).
#[test]
fn insertion_recovery() {
    let sc = Scenario::test_case_a(77);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(5));
    bed.disturb(Disturb::StationInsertion);
    bed.run_until(SimTime::from_secs(15));
    let stats = bed.ring().stats();
    assert_eq!(stats.purge_sequences, 1);
    assert!((8..=12).contains(&(stats.purges as u32)));
    let sink_stats = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink")
        .stats();
    // The stream continues after the purge: packets received near the end.
    let received_after = bed
        .presented()
        .iter()
        .filter(|(t, _, _)| *t > SimTime::from_secs(14))
        .count();
    assert!(received_after > 50, "stream recovered: {received_after}");
    // At most the blocked backlog was lost (purge ≈ 130 ms ≈ 11 packets),
    // and the recovery tolerated every gap without stalling.
    assert!(sink_stats.missed_pkts <= 13, "{:?}", sink_stats);
    // The worst delayed packets show the 120–130 ms outlier signature.
    let h7 = bed.measurement_set().samples_us(HistId::H7);
    let max = h7.iter().copied().fold(0.0f64, f64::max);
    assert!(
        (100_000.0..200_000.0).contains(&max),
        "outlier packet delayed ~120-130 ms, got {max}"
    );
}

/// The purge-interrupt extension (the mode §5 wishes the adapter had)
/// recovers the lost packet by retransmission, at the cost of duplicates
/// the receiver must discard.
#[test]
fn purge_interrupt_retransmission() {
    let mut sc = Scenario::test_case_a(31);
    sc.purge_interrupt = true;
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(5));
    bed.disturb(Disturb::SoftError);
    bed.run_until(SimTime::from_secs(10));
    let tr = bed
        .host(0)
        .kernel
        .driver_ref::<ctms_ctmsp::TrDriver>(bed.roles.tr_tx)
        .expect("tr");
    assert!(tr.stats().retransmits >= 1, "{:?}", tr.stats());
}

/// The stock path's breakdown is rate-dependent: clean at 16 KB/s,
/// failing at 150 KB/s, with TCP-lite no better than UDP-lite.
#[test]
fn stock_path_rate_cliff() {
    let glitches = |rate: u32, proto: SockProto| {
        let sc = Scenario::test_case_a(3);
        let mut bed = Testbed::stock(&sc, rate, proto);
        bed.run_until(SimTime::from_secs(20));
        bed.host(1)
            .kernel
            .driver_ref::<ctms_devices::StockAudioSink>(bed.roles.vca_sink)
            .expect("sink")
            .stats()
            .underruns
    };
    assert_eq!(glitches(16_000, SockProto::UdpLite), 0);
    assert!(glitches(150_000, SockProto::UdpLite) > 10);
    assert!(glitches(150_000, SockProto::TcpLite) > 10);
}

/// TCP-lite generates the §3 complaint: extra ack traffic on the ring.
#[test]
fn tcp_ack_traffic_exists() {
    let sc = Scenario::test_case_a(13);
    let mut bed = Testbed::stock(&sc, 16_000, SockProto::TcpLite);
    bed.run_until(SimTime::from_secs(10));
    let acks = bed.host(1).kernel.stats().acks_tx;
    assert!(acks > 700, "one ack per segment, got {acks}");
    // And the transmitter processed them.
    let sock = bed
        .host(0)
        .kernel
        .sock(ctms_unixkern::Port(10))
        .expect("sock");
    assert!(sock.stats.acks_rx > 700);
    assert_eq!(bed.host(0).kernel.stats().retx, 0, "reliable ring: no retx");
}

/// TAP sees the same CTMSP stream the receiver gets: its loss/order
/// analysis agrees with the sink's recovery counters.
#[test]
fn tap_agrees_with_receiver() {
    let sc = Scenario::test_case_a(21);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(20));
    let a = bed.tap().analyze_stream();
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink");
    assert_eq!(a.out_of_order, 0);
    assert_eq!(a.duplicates, 0);
    // Frames on the wire ≥ frames delivered (losses happen after TAP's
    // vantage point only via receive-side drops).
    assert!(a.captured >= sink.stats().received);
}

/// Buffer accounting: mbuf pool drains back to the background level when
/// the stream stops (no leaks across the driver paths).
#[test]
fn mbuf_pool_conservation() {
    let sc = Scenario::test_case_a(8);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(10));
    for host in bed.hosts() {
        let stats = host.kernel.mbuf_stats();
        assert_eq!(stats.drops, 0, "no interrupt-level drops in case A");
        // In-flight CTMS data holds at most a few chains.
        assert!(
            host.kernel.mbuf_stats().peak_in_use < 200,
            "peak {}",
            stats.peak_in_use
        );
    }
}

/// The §5.1 control-plane path: a user process establishes the connection
/// through the ioctl sequence (mode, precomputed header, handles, start)
/// and exits; the stream then flows entirely in-kernel.
#[test]
fn explicit_ioctl_setup_starts_the_stream() {
    let mut sc = Scenario::test_case_a(55);
    sc.explicit_setup = true;
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(5));
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("src");
    assert!(src.setup().complete(), "{:?}", src.setup());
    assert!(src.setup().running);
    assert_eq!(src.stats().ioctl_rejects, 0);
    // The stream started a hair later than autostart (setup ioctls take
    // a few syscalls) but flows at full rate.
    assert!(src.stats().pkts_sent > 400, "{:?}", src.stats());
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink");
    assert!(sink.stats().received >= src.stats().pkts_sent - 2);
}

/// Before the control-plane ioctls run, a `require_setup` device is
/// inert — and out-of-order ioctls are rejected (§5.1's device state).
#[test]
fn stream_requires_setup_when_configured() {
    let mut sc = Scenario::test_case_a(56);
    sc.explicit_setup = true;
    let mut bed = Testbed::ctms(&sc);
    // Boot only: the setup process has not completed any ioctl yet.
    bed.run_until(SimTime::from_ns(1));
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("src");
    assert!(!src.setup().running, "inert before setup");
    assert!(!src.setup().complete());
    assert_eq!(src.stats().pkts_sent, 0);
    // After one second the control process has finished and the stream
    // flows; the setup sequence rejected nothing.
    bed.run_until(SimTime::from_secs(1));
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("src");
    assert!(src.setup().running);
    assert_eq!(src.stats().ioctl_rejects, 0);
    assert!(src.stats().pkts_sent > 50);
}

/// The latency distribution's *shape* is stable across seeds: different
/// randomness, same physics. Guards against accidental calibration drift
/// (a change that moves the distribution shows up as a large KS distance
/// between a current run and the physics the claims were tuned to).
#[test]
fn h7_distribution_stable_across_seeds() {
    let run = |seed| {
        let sc = Scenario::test_case_a(seed);
        let mut bed = Testbed::ctms(&sc);
        bed.run_until(SimTime::from_secs(20));
        bed.measurement_set().samples_us(HistId::H7)
    };
    let a = run(101);
    let b = run(202);
    let d = ctms_stats::ks_statistic(&a, &b);
    assert!(d < 0.12, "seed-to-seed KS distance {d}");
    // And both stay inside the Figure 5-3 envelope.
    for xs in [&a, &b] {
        let s = Summary::of(xs);
        assert!((10_700.0..10_800.0).contains(&s.min), "min {}", s.min);
        assert!((10_820.0..10_960.0).contains(&s.mean), "mean {}", s.mean);
    }
}
