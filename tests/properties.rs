//! Randomized tests on cross-crate invariants.
//!
//! These used to be `proptest` properties; they are now driven by the
//! in-crate deterministic [`Pcg32`] so the tier-1 suite needs nothing
//! outside the workspace (the build must succeed offline). Each test
//! draws its inputs from a fixed-seed generator and loops over many
//! cases, so the invariant coverage is equivalent and the failures are
//! reproducible: a failing case prints the trial index and the drawn
//! inputs.

use ctms_sim::{drain_component, Component, Dur, EdgeLog, Pcg32, SimTime};
use ctms_stats::Histogram;
use ctms_tokenring::{Frame, FrameKind, Proto, RingCmd, RingConfig, RingOut, StationId, TokenRing};
use ctms_unixkern::{AllocResult, MbufChain, MbufPool, SockMeta};

/// Number of randomized trials per invariant. Cheap invariants loop the
/// full count; simulation-heavy ones divide it down at the call site.
const TRIALS: usize = 256;

/// Socket metadata encoding round-trips for every port/kind/seq.
#[test]
fn sock_meta_roundtrip() {
    let mut rng = Pcg32::new(1, 101);
    for trial in 0..TRIALS {
        let port = rng.next_u32() as u16;
        let kind = match rng.below(3) {
            0 => ctms_unixkern::MetaKind::UdpData,
            1 => ctms_unixkern::MetaKind::TcpData,
            _ => ctms_unixkern::MetaKind::TcpAck,
        };
        let seq = rng.next_u32();
        let m = SockMeta {
            port: ctms_unixkern::Port(port),
            kind,
            seq,
        };
        assert_eq!(
            SockMeta::decode(m.encode()),
            Some(m),
            "trial {trial}: port={port} seq={seq}"
        );
    }
}

/// CTMSP header encoding round-trips.
#[test]
fn ctmsp_header_roundtrip() {
    let mut rng = Pcg32::new(2, 102);
    for trial in 0..TRIALS {
        let dev = rng.next_u32() as u8;
        let conn = rng.next_u32() as u16;
        let num = rng.next_u32();
        let h = ctms_ctmsp::encode_header(dev, conn, num);
        assert_eq!(
            ctms_ctmsp::decode_header(h),
            (dev, conn, num),
            "trial {trial}"
        );
    }
}

/// AC-byte field packing round-trips for all legal values.
#[test]
fn ac_byte_roundtrip() {
    // The legal space is tiny (8 × 2 × 8): cover it exhaustively.
    for p in 0u8..8 {
        for t in [false, true] {
            for r in 0u8..8 {
                let ac = ctms_tokenring::ac_byte(p, t, r);
                assert_eq!(ctms_tokenring::ac_fields(ac), (p, t, r));
            }
        }
    }
}

/// The mbuf pool conserves buffers under arbitrary alloc/free
/// interleavings: in_use returns to zero and never exceeds capacity.
#[test]
fn mbuf_pool_conserves() {
    let mut rng = Pcg32::new(4, 104);
    for trial in 0..TRIALS / 4 {
        let n_ops = 1 + rng.index(199);
        let mut pool = MbufPool::new(256);
        let mut live: Vec<MbufChain> = Vec::new();
        for _ in 0..n_ops {
            assert!(pool.in_use() <= 256, "trial {trial}");
            if rng.chance(0.5) {
                let len = rng.range_u64(1, 3999) as u32;
                if let Some(chain) = pool.alloc_nowait(len) {
                    live.push(chain);
                }
            } else if let Some(chain) = live.pop() {
                let ready = pool.free(chain);
                assert!(ready.is_empty(), "trial {trial}: no waiters were queued");
            }
        }
        for chain in live.drain(..) {
            let _ = pool.free(chain);
        }
        assert_eq!(pool.in_use(), 0, "trial {trial}");
    }
}

/// Process-level waiters are satisfied in FIFO order.
#[test]
fn mbuf_waiters_fifo() {
    let mut rng = Pcg32::new(5, 105);
    for trial in 0..TRIALS / 4 {
        let sizes: Vec<u32> = (0..2 + rng.index(8))
            .map(|_| rng.range_u64(1, 1999) as u32)
            .collect();
        let mut pool = MbufPool::new(64);
        let hog = pool.alloc_nowait(64 * 112).expect("whole pool");
        let mut tickets = Vec::new();
        for s in &sizes {
            match pool.alloc_wait(*s) {
                AllocResult::Wait(t) => tickets.push(t),
                AllocResult::Ok(_) => panic!("trial {trial}: pool is exhausted"),
            }
        }
        let ready = pool.free(hog);
        let got: Vec<u64> = ready.iter().map(|(t, _)| *t).collect();
        // Whatever prefix was satisfiable must preserve ticket order.
        assert_eq!(
            &got[..],
            &tickets[..got.len()],
            "trial {trial}: sizes {sizes:?}"
        );
        for (_, chain) in ready {
            let _ = pool.free(chain);
        }
    }
}

/// The token ring never loses or duplicates frames on a quiet ring:
/// every submitted unicast frame to an attached station is delivered
/// exactly once and stripped exactly once, in per-station FIFO order.
#[test]
fn ring_conservation() {
    let mut rng = Pcg32::new(6, 106);
    for trial in 0..TRIALS / 8 {
        let seed = rng.next_u64();
        let frames: Vec<(u32, u32, u32)> = (0..1 + rng.index(39))
            .map(|_| {
                (
                    rng.below(6) as u32,
                    rng.below(6) as u32,
                    rng.range_u64(64, 1999) as u32,
                )
            })
            .collect();
        let cfg = RingConfig {
            mac_rate_per_sec: 0.0,
            station_queue_cap: 1000,
            ..Default::default()
        };
        let mut ring = TokenRing::new(cfg, Pcg32::new(seed, 1));
        for _ in 0..6 {
            ring.add_station();
        }
        let mut sink = Vec::new();
        let mut submitted = Vec::new();
        for (k, (src, dst, len)) in frames.iter().enumerate() {
            if src == dst {
                continue;
            }
            let id = ring.alloc_frame_id();
            submitted.push(k as u64 + 1);
            ring.handle(
                SimTime::from_us(k as u64 * 100),
                RingCmd::Submit(Frame {
                    id,
                    src: StationId(*src),
                    dst: Some(StationId(*dst)),
                    kind: FrameKind::Llc(Proto::Ip),
                    info_len: *len,
                    priority: 0,
                    tag: k as u64 + 1,
                }),
                &mut sink,
            );
        }
        let evs = drain_component(&mut ring, SimTime::from_secs(600));
        let delivered: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Delivered { frame, .. } => Some(frame.tag),
                _ => None,
            })
            .collect();
        let stripped = evs
            .iter()
            .filter(|(_, e)| matches!(e, RingOut::Stripped { .. }))
            .count();
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        let mut expected = submitted.clone();
        expected.sort_unstable();
        assert_eq!(
            sorted, expected,
            "trial {trial}: each frame delivered exactly once"
        );
        assert_eq!(stripped, submitted.len(), "trial {trial}");
        // Per-source FIFO: tags from one source arrive in submission order.
        for s in 0..6u32 {
            let per: Vec<u64> = evs
                .iter()
                .filter_map(|(_, e)| match e {
                    RingOut::Delivered { frame, .. } if frame.src == StationId(s) => {
                        Some(frame.tag)
                    }
                    _ => None,
                })
                .collect();
            let mut sorted = per.clone();
            sorted.sort_unstable();
            assert_eq!(per, sorted, "trial {trial}: per-station order preserved");
        }
    }
}

/// The ring medium never carries two frames at once: observation
/// instants are separated by at least the shorter frame's wire time.
#[test]
fn ring_serializes_medium() {
    let mut rng = Pcg32::new(7, 107);
    for trial in 0..TRIALS / 16 {
        let seed = rng.next_u64();
        let cfg = RingConfig {
            mac_rate_per_sec: 200.0,
            ..Default::default()
        };
        let mut ring = TokenRing::new(cfg, Pcg32::new(seed, 2));
        for _ in 0..10 {
            ring.add_station();
        }
        let evs = drain_component(&mut ring, SimTime::from_secs(5));
        let obs: Vec<SimTime> = evs
            .iter()
            .filter_map(|(t, e)| matches!(e, RingOut::Observed(_)).then_some(*t))
            .collect();
        // MAC frames are 25 bytes = 50 µs; completions must be ≥ one
        // frame time + token apart.
        for w in obs.windows(2) {
            assert!(
                w[1].since(w[0]) >= Dur::from_us(50),
                "trial {trial} (ring seed {seed})"
            );
        }
    }
}

/// PC/AT reconstruction never errs by more than the service loop plus
/// one clock quantum, for any edge spacing that respects the loop.
#[test]
fn pcat_error_bound() {
    let mut rng = Pcg32::new(8, 108);
    for trial in 0..TRIALS / 4 {
        let gaps: Vec<u64> = (0..1 + rng.index(49))
            .map(|_| rng.range_u64(100, 99_999))
            .collect();
        let mut log = EdgeLog::new("p");
        let mut t = SimTime::ZERO;
        for (k, g) in gaps.iter().enumerate() {
            t += Dur::from_us(*g);
            log.record(t, k as u64);
        }
        let mut tool = ctms_measure::PcAt::new(ctms_measure::PcAtCfg::default(), Pcg32::new(7, 7));
        let cap = tool.observe(&[&log], t + Dur::from_ms(1));
        let rec = cap.reconstruct();
        assert_eq!(rec[0].len(), log.len(), "trial {trial}");
        for (orig, got) in log.edges().iter().zip(rec[0].edges()) {
            let err = got.at.as_ns().abs_diff(orig.at.as_ns());
            assert!(err <= 62_000, "trial {trial}: error {err} ns");
        }
    }
}

/// Histogram counts always sum to the number of binned samples and
/// exact statistics match the raw data.
#[test]
fn histogram_totals() {
    let mut rng = Pcg32::new(9, 109);
    for trial in 0..TRIALS / 2 {
        let xs: Vec<f64> = (0..1 + rng.index(499)).map(|_| rng.f64() * 1e6).collect();
        let h = Histogram::of(&xs, 0.0, 250.0);
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.underflow(), xs.len() as u64, "trial {trial}");
        let s = h.summary();
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!((s.max - max).abs() < 1e-9, "trial {trial}");
    }
}

/// Deterministic RNG streams: same seed and label give the same
/// sequence; sibling labels differ.
#[test]
fn rng_streams() {
    let mut rng = Pcg32::new(10, 110);
    for trial in 0..TRIALS {
        let seed = rng.next_u64();
        let root = Pcg32::new(seed, 1);
        let mut a1 = root.derive("x");
        let mut a2 = root.derive("x");
        let mut b = root.derive("y");
        let s1: Vec<u32> = (0..16).map(|_| a1.next_u32()).collect();
        let s2: Vec<u32> = (0..16).map(|_| a2.next_u32()).collect();
        let s3: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(s1, s2, "trial {trial} (seed {seed})");
        assert_ne!(s1, s3, "trial {trial} (seed {seed})");
    }
}

/// CPU work conservation: at full speed, every pushed job completes,
/// total busy time equals the sum of job costs, and completions
/// never precede the work they account for.
#[test]
fn cpu_conserves_work() {
    use ctms_rtpc::{Cpu, CpuCmd, CpuConfig, CpuOut, ExecLevel, Job};
    let mut rng = Pcg32::new(11, 111);
    for trial in 0..TRIALS / 8 {
        let jobs: Vec<(u64, u8)> = (0..1 + rng.index(59))
            .map(|_| (rng.range_u64(1, 4999), rng.below(8) as u8))
            .collect();
        let mut cpu: Cpu<u64> = Cpu::new(CpuConfig::default());
        let mut sink = Vec::new();
        let mut total = 0u64;
        for (k, (cost_us, lvl)) in jobs.iter().enumerate() {
            total += cost_us * 1_000;
            let level = match lvl {
                0 => ExecLevel::User,
                l => ExecLevel::KernelSpl(*l),
            };
            cpu.handle(
                SimTime::from_us(k as u64),
                CpuCmd::Push(Job {
                    tag: k as u64,
                    cost: Dur::from_us(*cost_us),
                    level,
                }),
                &mut sink,
            );
        }
        let evs = drain_component(&mut cpu, SimTime::from_secs(3600));
        let done: Vec<u64> = sink
            .iter()
            .chain(evs.iter().map(|(_, e)| e))
            .filter_map(|e| match e {
                CpuOut::JobDone { tag } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(done.len(), jobs.len(), "trial {trial}: every job completes");
        let mut sorted = done;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..jobs.len() as u64).collect::<Vec<_>>());
        assert_eq!(
            cpu.stats().busy_work_ns,
            total,
            "trial {trial}: work conserved"
        );
        assert!(cpu.is_idle(), "trial {trial}");
        // The last completion happens no earlier than the critical path
        // lower bound (total work / full speed from t=0).
        if let Some((t_last, _)) = evs.last() {
            assert!(
                t_last.as_ns() >= total,
                "trial {trial}: {t_last} vs {total}"
            );
        }
    }
}

/// spl semantics: an interrupt line never dispatches while work at or
/// above its level runs — handler-entry events only occur when the
/// preempted level was strictly lower.
#[test]
fn irq_never_preempts_equal_or_higher_spl() {
    use ctms_rtpc::{Cpu, CpuCmd, CpuConfig, CpuOut, ExecLevel, Job};
    for spl in 1u8..8 {
        let mut cpu: Cpu<u64> = Cpu::new(CpuConfig::default());
        let mut sink = Vec::new();
        cpu.handle(
            SimTime::ZERO,
            CpuCmd::Push(Job {
                tag: 1,
                cost: Dur::from_ms(1),
                level: ExecLevel::KernelSpl(spl),
            }),
            &mut sink,
        );
        // VCA line 2 sits at level 6 in the default config.
        cpu.handle(
            SimTime::from_us(10),
            CpuCmd::RaiseIrq { line: 2 },
            &mut sink,
        );
        let evs = drain_component(&mut cpu, SimTime::from_secs(1));
        let entry = evs
            .iter()
            .find_map(|(t, e)| matches!(e, CpuOut::IrqEntered { line: 2 }).then_some(*t))
            .expect("dispatched eventually");
        if spl >= 6 {
            // Blocked until the section ends (1 ms) + 25 µs dispatch.
            assert_eq!(entry, SimTime::from_us(1_025), "spl {spl}");
        } else {
            // Preempts immediately: 10 µs raise + 25 µs dispatch.
            assert_eq!(entry, SimTime::from_us(35), "spl {spl}");
        }
    }
}
