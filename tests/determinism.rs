//! Cross-harness determinism regression: a fixed seed must produce
//! bit-identical ground-truth logs, run after run and release after
//! release.
//!
//! The golden digests below were recorded from the unified
//! scheduler/event-bus harness (`ctms_sim::Harness`), which reproduces
//! the original per-testbed advance-and-route loops exactly: nodes are
//! serviced in registration order on deadline ties, so the event order —
//! and therefore every recorded edge — is unchanged. If a change to the
//! scheduler, the ring model, or the kernel model shifts even one edge
//! by one nanosecond, these digests move and the diff is caught here
//! rather than as a silent drift in the reproduced figures.

use ctms_core::{Scenario, Testbed};
use ctms_sim::{SchedMode, SimTime};
use ctms_unixkern::MeasurePoint;

fn digests(sc: &Scenario) -> [u64; 4] {
    digests_with_mode(sc, SchedMode::Indexed)
}

fn digests_with_mode(sc: &Scenario, mode: SchedMode) -> [u64; 4] {
    let mut bed = Testbed::ctms_with_mode(sc, mode);
    bed.run_until(SimTime::from_secs(10));
    let get = |host: usize, point: MeasurePoint| {
        bed.truth_log(host, point)
            .map(|log| log.digest())
            .unwrap_or(0)
    };
    [
        get(0, MeasurePoint::VcaIrq),
        get(0, MeasurePoint::VcaHandlerEntry),
        get(0, MeasurePoint::PreTransmit),
        get(1, MeasurePoint::CtmspIdentified),
    ]
}

#[test]
fn case_a_truth_digests_are_golden() {
    let got = digests(&Scenario::test_case_a(42));
    assert_eq!(
        got,
        [
            0x940268B83F8CF91A,
            0xF827E2062981EE34,
            0xD1E3D58CA7C69E09,
            0x612EFD91E2863AC5,
        ],
        "case A ground truth drifted: {got:#018X?}"
    );
}

#[test]
fn case_b_truth_digests_are_golden() {
    let got = digests(&Scenario::test_case_b(42));
    assert_eq!(
        got,
        [
            0x940268B83F8CF91A,
            0xF827E2062981EE34,
            0x83B4DADF58457160,
            0x866F7B1998BFE1CF,
        ],
        "case B ground truth drifted: {got:#018X?}"
    );
}

#[test]
fn scheduler_modes_share_the_golden_truth() {
    // The indexed deadline heap (default) and the lazy-invalidation
    // baseline it replaced must be observationally indistinguishable:
    // every edge the testbed records is bit-identical. This is what
    // licenses comparing their wall clocks in `perf`/BENCH_PR4.json as
    // a pure scheduler measurement.
    for sc in [Scenario::test_case_a(42), Scenario::test_case_b(42)] {
        assert_eq!(
            digests_with_mode(&sc, SchedMode::Indexed),
            digests_with_mode(&sc, SchedMode::LazyBaseline),
            "scheduler modes disagree on ground truth"
        );
    }
}

#[test]
fn sharded_harness_shares_the_golden_truth() {
    // The conservative-parallel scheduler's contract: parallelism may
    // never change the answer, only the wall clock. Three layers pin it:
    //
    // * Cases A and B are single-ring topologies, so `build_sharded`
    //   transparently falls back — and must still reproduce the exact
    //   golden digests and telemetry tree pinned above.
    // * A 16-ring chain genuinely partitions across 2 and 4 shards; its
    //   edge logs and canonical telemetry JSON must be byte-identical
    //   to the single-threaded chain, window protocol and all.
    use ctms_core::RingChainTestbed;
    use ctms_router::BridgeKind;

    for (sc, golden) in [
        (
            Scenario::test_case_a(42),
            [
                0x940268B83F8CF91A,
                0xF827E2062981EE34,
                0xD1E3D58CA7C69E09,
                0x612EFD91E2863AC5,
            ],
        ),
        (
            Scenario::test_case_b(42),
            [
                0x940268B83F8CF91A,
                0xF827E2062981EE34,
                0x83B4DADF58457160,
                0x866F7B1998BFE1CF,
            ],
        ),
    ] {
        let single_json = ctms_bench::telemetry_case(&sc);
        for shards in [1usize, 2, 4] {
            let (mut bus, _roles) = Testbed::ctms_sharded(&sc, shards);
            assert!(bus.is_single(), "single ring must fall back");
            bus.run_until(SimTime::from_secs(10));
            let get = |host: usize, point: MeasurePoint| {
                bus.truth_log(host, point)
                    .map(|log| log.digest())
                    .unwrap_or(0)
            };
            let got = [
                get(0, MeasurePoint::VcaIrq),
                get(0, MeasurePoint::VcaHandlerEntry),
                get(0, MeasurePoint::PreTransmit),
                get(1, MeasurePoint::CtmspIdentified),
            ];
            assert_eq!(got, golden, "sharded fallback drifted: {got:#018X?}");
            assert_eq!(
                bus.telemetry_json(),
                single_json,
                "fallback telemetry drifted (shards={shards})"
            );
        }
    }

    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let horizon = SimTime::from_secs(2);
    let chain_digests = |bed_truth: &dyn Fn(usize, MeasurePoint) -> u64| {
        [
            bed_truth(0, MeasurePoint::VcaIrq),
            bed_truth(0, MeasurePoint::VcaHandlerEntry),
            bed_truth(0, MeasurePoint::PreTransmit),
            bed_truth(1, MeasurePoint::CtmspIdentified),
        ]
    };
    let mut single = RingChainTestbed::chain(&sc, kind, 16);
    single.run_until(horizon);
    let single_json = single.telemetry_json();
    let single_digests = chain_digests(&|host, point| {
        single
            .bus()
            .measurements()
            .truth_log(host, point)
            .map(|log| log.digest())
            .unwrap_or(0)
    });
    for shards in [1usize, 2, 4] {
        let mut bed = RingChainTestbed::chain_sharded(&sc, kind, 16, shards);
        assert_eq!(bed.shard_count(), shards, "16 rings split into {shards}");
        bed.run_until(horizon);
        let got = chain_digests(&|host, point| {
            bed.bus()
                .truth_log(host, point)
                .map(|log| log.digest())
                .unwrap_or(0)
        });
        assert_eq!(
            got, single_digests,
            "sharded chain truth drifted (shards={shards}): {got:#018X?}"
        );
        assert_eq!(
            bed.telemetry_json(),
            single_json,
            "sharded chain telemetry drifted (shards={shards})"
        );
    }
}

#[test]
fn topology_variants_share_the_golden_truth() {
    // The graph generalization of the chain parity test: a tree, a mesh
    // with a redundant parallel bridge, and an FDDI-style dual-backbone
    // each run single-threaded and at 1, 2, and 4 graph-partitioned
    // shards. For every shape, every shard count must reproduce the
    // single-threaded run byte for byte — truth-log digests, counters,
    // event counts, and the whole canonical telemetry tree. This is the
    // license for `perf --topology` to compare wall clocks across
    // shapes: the per-cut-edge lookahead windows are pure scheduling.
    use ctms_core::{RingChainTestbed, RingGraph};
    use ctms_router::BridgeKind;

    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let horizon = SimTime::from_secs(2);
    for (name, graph) in [
        ("tree", RingGraph::tree(13, 3)),
        ("mesh", RingGraph::mesh(12, 42)),
        ("fddi", RingGraph::fddi(12)),
    ] {
        let mut single = RingChainTestbed::graph(&sc, kind, &graph);
        single.run_until(horizon);
        let single_json = single.telemetry_json();
        let single_counters = single.counters();
        let single_events = single.bus().events();
        let single_digests = [
            single.measurement_set().vca_irq.digest(),
            single.measurement_set().handler.digest(),
            single.measurement_set().pre_tx.digest(),
            single.measurement_set().ctmsp_rx.digest(),
        ];
        let (sent, received, _) = single_counters;
        assert!(sent > 100, "{name}: stream must actually flow ({sent})");
        assert!(
            received >= sent.saturating_sub(2),
            "{name}: stream must arrive ({received}/{sent})"
        );
        for shards in [1usize, 2, 4] {
            let mut bed = RingChainTestbed::graph_sharded(&sc, kind, &graph, shards);
            assert_eq!(
                bed.shard_count(),
                shards,
                "{name}: graph must fill {shards} shards"
            );
            bed.run_until(horizon);
            let got = [
                bed.measurement_set().vca_irq.digest(),
                bed.measurement_set().handler.digest(),
                bed.measurement_set().pre_tx.digest(),
                bed.measurement_set().ctmsp_rx.digest(),
            ];
            assert_eq!(
                got, single_digests,
                "{name} truth drifted (shards={shards}): {got:#018X?}"
            );
            assert_eq!(
                bed.counters(),
                single_counters,
                "{name} counters drifted (shards={shards})"
            );
            assert_eq!(
                bed.events(),
                single_events,
                "{name} event count drifted (shards={shards})"
            );
            assert_eq!(
                bed.telemetry_json(),
                single_json,
                "{name} telemetry drifted (shards={shards})"
            );
        }
    }
}

#[test]
fn window_modes_share_the_golden_truth() {
    // Adaptive windows (the default) versus the fixed-lookahead
    // baseline: the protocols may only differ in how many barriers the
    // coordinator erects, never in the answer. Every workload below is
    // run under both modes at 1, 2 and 4 shards and held to byte
    // identity — truth-log digests, event counts, and the canonical
    // telemetry tree. This is the license for `perf --adaptive` to
    // report the mode delta as pure synchronization overhead.
    use ctms_core::{RingChainTestbed, RingGraph};
    use ctms_router::BridgeKind;
    use ctms_sim::WindowMode;

    // Cases A and B are single-ring topologies: every shard count falls
    // back to the single-threaded bus, where the mode setter must be
    // accepted (as a no-op) and the golden digests must hold either way.
    for sc in [Scenario::test_case_a(42), Scenario::test_case_b(42)] {
        let mut got = Vec::new();
        for mode in [WindowMode::Adaptive, WindowMode::FixedLookahead] {
            let (mut bus, _roles) = Testbed::ctms_sharded(&sc, 4);
            bus.set_window_mode(mode);
            bus.run_until(SimTime::from_secs(10));
            got.push(
                bus.truth_log(1, MeasurePoint::CtmspIdentified)
                    .map(|log| log.digest())
                    .unwrap_or(0),
            );
        }
        assert_eq!(got[0], got[1], "fallback bus must ignore the mode");
    }

    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let horizon = SimTime::from_secs(2);
    let shapes: [(&str, Option<RingGraph>); 4] = [
        ("chain", None),
        ("tree", Some(RingGraph::tree(13, 3))),
        ("mesh", Some(RingGraph::mesh(12, 42))),
        ("fddi", Some(RingGraph::fddi(12))),
    ];
    for (name, graph) in shapes {
        for shards in [1usize, 2, 4] {
            let run = |mode: WindowMode| {
                let mut bed = match &graph {
                    None => RingChainTestbed::chain_sharded(&sc, kind, 16, shards),
                    Some(g) => RingChainTestbed::graph_sharded(&sc, kind, g, shards),
                };
                bed.bus_mut().set_window_mode(mode);
                bed.run_until(horizon);
                let digests = [
                    bed.measurement_set().vca_irq.digest(),
                    bed.measurement_set().handler.digest(),
                    bed.measurement_set().pre_tx.digest(),
                    bed.measurement_set().ctmsp_rx.digest(),
                ];
                (digests, bed.events(), bed.telemetry_json())
            };
            let adaptive = run(WindowMode::Adaptive);
            let fixed = run(WindowMode::FixedLookahead);
            assert_eq!(
                adaptive.0, fixed.0,
                "{name} truth diverged between window modes (shards={shards})"
            );
            assert_eq!(
                adaptive.1, fixed.1,
                "{name} event count diverged between window modes (shards={shards})"
            );
            assert_eq!(
                adaptive.2, fixed.2,
                "{name} telemetry diverged between window modes (shards={shards})"
            );
        }
    }
}

#[test]
fn optimistic_mode_shares_the_golden_truth() {
    // The Time-Warp-style optimistic engine versus the conservative
    // one: speculation and rollback may only change the wall clock and
    // the `sched.*` exec counters, never the answer. Cases A and B pin
    // the single-ring fallback (the setter must be accepted as a
    // no-op); chain/tree/mesh/fddi at 1, 2 and 4 shards are held to
    // byte identity against the single-threaded run — truth digests,
    // event counts, and the whole canonical telemetry tree — and the
    // multi-shard configurations must report actual rollbacks, so the
    // parity claim is not vacuously about runs that never speculated
    // past a straggler.
    use ctms_core::{RingChainTestbed, RingGraph};
    use ctms_router::BridgeKind;
    use ctms_sim::{ExecMode, WindowMode};

    for sc in [Scenario::test_case_a(42), Scenario::test_case_b(42)] {
        let mut got = Vec::new();
        for exec in [ExecMode::Conservative, ExecMode::Optimistic] {
            let (mut bus, _roles) = Testbed::ctms_sharded(&sc, 4);
            bus.set_exec_mode(exec);
            bus.run_until(SimTime::from_secs(10));
            got.push(
                bus.truth_log(1, MeasurePoint::CtmspIdentified)
                    .map(|log| log.digest())
                    .unwrap_or(0),
            );
        }
        assert_eq!(got[0], got[1], "fallback bus must ignore the exec mode");
    }

    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let horizon = SimTime::from_secs(2);
    let shapes: [(&str, Option<RingGraph>); 4] = [
        ("chain", None),
        ("tree", Some(RingGraph::tree(13, 3))),
        ("mesh", Some(RingGraph::mesh(12, 42))),
        ("fddi", Some(RingGraph::fddi(12))),
    ];
    for (name, graph) in shapes {
        let mut single = match &graph {
            None => RingChainTestbed::chain(&sc, kind, 16),
            Some(g) => RingChainTestbed::graph(&sc, kind, g),
        };
        single.run_until(horizon);
        let single_json = single.telemetry_json();
        let single_events = single.bus().events();
        let single_digests = [
            single.measurement_set().vca_irq.digest(),
            single.measurement_set().handler.digest(),
            single.measurement_set().pre_tx.digest(),
            single.measurement_set().ctmsp_rx.digest(),
        ];
        let mut rollbacks_seen = 0;
        for shards in [1usize, 2, 4] {
            // Speculation commits against whichever conservative
            // protocol is selected; both must reproduce the reference.
            // Adaptive bounds are often already tight enough that
            // nothing stragglers — the fixed-lookahead baseline is
            // where deep speculation (and therefore rollback) happens.
            for mode in [WindowMode::Adaptive, WindowMode::FixedLookahead] {
                let mut bed = match &graph {
                    None => RingChainTestbed::chain_sharded(&sc, kind, 16, shards),
                    Some(g) => RingChainTestbed::graph_sharded(&sc, kind, g, shards),
                };
                bed.bus_mut().set_window_mode(mode);
                bed.bus_mut().set_exec_mode(ExecMode::Optimistic);
                bed.run_until(horizon);
                let got = [
                    bed.measurement_set().vca_irq.digest(),
                    bed.measurement_set().handler.digest(),
                    bed.measurement_set().pre_tx.digest(),
                    bed.measurement_set().ctmsp_rx.digest(),
                ];
                assert_eq!(
                    got, single_digests,
                    "{name} optimistic truth drifted (shards={shards}, {mode:?}): {got:#018X?}"
                );
                assert_eq!(
                    bed.events(),
                    single_events,
                    "{name} optimistic event count drifted (shards={shards}, {mode:?})"
                );
                assert_eq!(
                    bed.telemetry_json(),
                    single_json,
                    "{name} optimistic telemetry drifted (shards={shards}, {mode:?})"
                );
                if let Some(reg) = bed.bus().exec_telemetry() {
                    rollbacks_seen += reg.counter_value("sched.rollbacks").unwrap_or(0);
                    assert!(
                        reg.counter_value("sched.gvt_rounds") > Some(0),
                        "{name} shards={shards} {mode:?}: optimistic engine must have run"
                    );
                }
            }
        }
        assert!(
            rollbacks_seen > 0,
            "{name}: no configuration rolled back — optimistic parity is vacuous"
        );
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    // Same seed, same process, two independently built testbeds: every
    // digest must agree (no hidden global state, no allocator or
    // HashMap-iteration dependence in the event order).
    let sc = Scenario::test_case_b(7);
    assert_eq!(digests(&sc), digests(&sc));
}

#[test]
fn telemetry_json_is_byte_identical_across_runs() {
    // The whole metric tree — every counter, gauge, histogram and text
    // in every crate's namespace — serialized twice from independently
    // built testbeds. Byte equality, not just digest equality: any
    // non-deterministic iteration order or float formatting anywhere in
    // the registry shows up as a readable diff here.
    for sc in [Scenario::test_case_a(42), Scenario::test_case_b(42)] {
        let first = ctms_bench::telemetry_case(&sc);
        let second = ctms_bench::telemetry_case(&sc);
        assert_eq!(first, second, "telemetry JSON drifted between runs");
    }
}

#[test]
fn telemetry_digests_are_golden() {
    // FNV-1a over the canonical JSON bytes, pinned like the edge-log
    // digests above: a change to any registered metric path or value —
    // or to the serializer itself — moves these and is caught as a
    // reviewable diff instead of silent telemetry drift.
    let digest =
        |sc: &Scenario| ctms_sim::telemetry::fnv1a(ctms_bench::telemetry_case(sc).as_bytes());
    let a = digest(&Scenario::test_case_a(42));
    let b = digest(&Scenario::test_case_b(42));
    assert_eq!(
        a, 0x4EFA_4772_20F4_EE0B,
        "case A telemetry drifted: {a:#018X}"
    );
    assert_eq!(
        b, 0xF9C7_8BD2_FDF4_71C1,
        "case B telemetry drifted: {b:#018X}"
    );
}
