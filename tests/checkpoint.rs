//! Checkpoint/restore equivalence: the tier-1 golden invariant of the
//! state-serialization layer.
//!
//! The contract under test: snapshot a run mid-flight, rebuild the
//! topology from the same scenario, restore, continue — and the result
//! is **byte-identical** to never having stopped. "Byte-identical" is
//! pinned against the same golden truth-log digests and canonical
//! telemetry JSON the determinism suite pins for uninterrupted runs, so
//! a checkpoint that silently loses any piece of state (an RNG stream,
//! a timer wheel, a TAP record, a half-open TCP retransmit) moves a
//! digest and fails here.
//!
//! The format is also shard-agnostic: a snapshot taken at 4 shards must
//! restore into 1- and 2-shard rebuilds (and the plain single-threaded
//! bus) and still continue onto the single-threaded goldens.

use ctms_core::{
    apply_mutations, fork, ForkSpec, Mutation, RingChainTestbed, RingGraph, Scenario, Testbed,
};
use ctms_router::BridgeKind;
use ctms_sim::{ChunkSink, Dur, PersistError, SimTime};
use ctms_unixkern::MeasurePoint;

/// Collects a chunk stream for inspection: every payload chunk in
/// order, plus the total the writer reported at finish.
struct CollectSink {
    chunks: Vec<Vec<u8>>,
    finished: Option<u64>,
}

impl CollectSink {
    fn new() -> Self {
        CollectSink {
            chunks: Vec::new(),
            finished: None,
        }
    }
}

impl ChunkSink for CollectSink {
    fn chunk(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        assert!(!bytes.is_empty(), "payload chunks are never empty");
        self.chunks.push(bytes.to_vec());
        Ok(())
    }

    fn finish(&mut self, payload: u64) -> Result<(), PersistError> {
        self.finished = Some(payload);
        Ok(())
    }
}

/// The four truth-log digests the determinism suite pins.
fn digests(bed: &Testbed) -> [u64; 4] {
    let get = |host: usize, point: MeasurePoint| {
        bed.truth_log(host, point)
            .map(|log| log.digest())
            .unwrap_or(0)
    };
    [
        get(0, MeasurePoint::VcaIrq),
        get(0, MeasurePoint::VcaHandlerEntry),
        get(0, MeasurePoint::PreTransmit),
        get(1, MeasurePoint::CtmspIdentified),
    ]
}

#[test]
fn resume_is_byte_identical_to_uninterrupted_run() {
    // Cases A and B: checkpoint at 5 s, restore into a fresh build,
    // continue to 10 s. Telemetry and digests must equal the
    // uninterrupted run — including the goldens pinned in
    // tests/determinism.rs, so resume correctness is anchored to the
    // same constants as plain determinism.
    for (sc, golden) in [
        (
            Scenario::test_case_a(42),
            [
                0x940268B83F8CF91A,
                0xF827E2062981EE34,
                0xD1E3D58CA7C69E09,
                0x612EFD91E2863AC5u64,
            ],
        ),
        (
            Scenario::test_case_b(42),
            [
                0x940268B83F8CF91A,
                0xF827E2062981EE34,
                0x83B4DADF58457160,
                0x866F7B1998BFE1CF,
            ],
        ),
    ] {
        let mut straight = Testbed::ctms(&sc);
        straight.run_until(SimTime::from_secs(10));
        let straight_json = straight.telemetry_json();
        assert_eq!(digests(&straight), golden, "uninterrupted run drifted");

        let mut first = Testbed::ctms(&sc);
        first.run_until(SimTime::from_secs(5));
        let snapshot = first.bus().checkpoint();

        let mut resumed = Testbed::ctms(&sc);
        resumed
            .bus_mut()
            .restore_checkpoint(&snapshot)
            .expect("restore into an identical rebuild");
        assert_eq!(resumed.now(), SimTime::from_secs(5));
        resumed.run_until(SimTime::from_secs(10));

        assert_eq!(digests(&resumed), golden, "resumed run drifted");
        assert_eq!(
            resumed.telemetry_json(),
            straight_json,
            "resumed telemetry is not byte-identical"
        );
    }
}

#[test]
fn checkpoint_round_trips_through_a_second_snapshot() {
    // Restore then immediately re-checkpoint: the bytes must match the
    // original snapshot exactly (the canonical encoding is a fixed
    // point), which is what lets a service hand checkpoints around
    // without generation drift.
    let sc = Scenario::test_case_a(42);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(5));
    let snapshot = bed.bus().checkpoint();

    let mut resumed = Testbed::ctms(&sc);
    resumed
        .bus_mut()
        .restore_checkpoint(&snapshot)
        .expect("restore");
    assert_eq!(
        resumed.bus().checkpoint(),
        snapshot,
        "re-checkpoint after restore is not a fixed point"
    );
}

#[test]
fn sharded_snapshot_restores_at_any_shard_count() {
    // The 16-ring chain genuinely partitions. Snapshot it at 4 shards
    // half-way, then restore at 1 and 2 shards — and into the plain
    // single-threaded chain — and continue. Every continuation must
    // land on the uninterrupted single-threaded run's telemetry and
    // truth digests.
    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let mid = SimTime::from_ms(1000);
    let end = SimTime::from_secs(2);

    let chain_digests = |get: &dyn Fn(usize, MeasurePoint) -> u64| {
        [
            get(0, MeasurePoint::VcaIrq),
            get(0, MeasurePoint::VcaHandlerEntry),
            get(0, MeasurePoint::PreTransmit),
            get(1, MeasurePoint::CtmspIdentified),
        ]
    };

    let mut straight = RingChainTestbed::chain(&sc, kind, 16);
    straight.run_until(end);
    let straight_json = straight.telemetry_json();
    let straight_digests = chain_digests(&|host, point| {
        straight
            .bus()
            .measurements()
            .truth_log(host, point)
            .map(|log| log.digest())
            .unwrap_or(0)
    });

    let mut origin = RingChainTestbed::chain_sharded(&sc, kind, 16, 4);
    assert_eq!(origin.shard_count(), 4, "snapshot origin must be sharded");
    origin.run_until(mid);
    let snapshot = origin.bus().checkpoint();

    // Restore into sharded rebuilds with *different* shard counts.
    for shards in [1usize, 2] {
        let mut bed = RingChainTestbed::chain_sharded(&sc, kind, 16, shards);
        bed.bus_mut()
            .restore_checkpoint(&snapshot)
            .unwrap_or_else(|e| panic!("restore at {shards} shards: {e}"));
        assert_eq!(bed.now(), mid);
        bed.run_until(end);
        let got = chain_digests(&|host, point| {
            bed.bus()
                .truth_log(host, point)
                .map(|log| log.digest())
                .unwrap_or(0)
        });
        assert_eq!(
            got, straight_digests,
            "restored chain truth drifted (shards={shards}): {got:#018X?}"
        );
        assert_eq!(
            bed.telemetry_json(),
            straight_json,
            "restored chain telemetry drifted (shards={shards})"
        );
    }

    // And into the plain single-threaded bus.
    let mut bed = RingChainTestbed::chain(&sc, kind, 16);
    bed.bus_mut()
        .restore_checkpoint(&snapshot)
        .expect("restore sharded snapshot into single-threaded bus");
    bed.run_until(end);
    assert_eq!(
        bed.telemetry_json(),
        straight_json,
        "single-threaded restore of a sharded snapshot drifted"
    );

    // Symmetrically: a single-threaded snapshot restores into a
    // sharded rebuild (the formats are one format).
    let mut single_origin = RingChainTestbed::chain(&sc, kind, 16);
    single_origin.run_until(mid);
    let single_snapshot = single_origin.bus().checkpoint();
    let mut bed = RingChainTestbed::chain_sharded(&sc, kind, 16, 4);
    bed.bus_mut()
        .restore_checkpoint(&single_snapshot)
        .expect("restore single snapshot into 4 shards");
    bed.run_until(end);
    assert_eq!(
        bed.telemetry_json(),
        straight_json,
        "sharded restore of a single-threaded snapshot drifted"
    );
}

#[test]
fn sharded_fallback_buses_share_the_checkpoint_format() {
    // Cases A and B are single-ring topologies: `ctms_sharded` falls
    // back to the single-threaded harness at every requested shard
    // count. Snapshot through the ShardedBus API at "4 shards" and
    // restore at 1 and 2 — the fallback must be transparent to the
    // checkpoint layer too.
    for sc in [Scenario::test_case_a(42), Scenario::test_case_b(42)] {
        let (mut origin, _roles) = Testbed::ctms_sharded(&sc, 4);
        origin.run_until(SimTime::from_secs(5));
        let snapshot = origin.checkpoint();

        let mut straight = Testbed::ctms(&sc);
        straight.run_until(SimTime::from_secs(10));
        let straight_json = straight.telemetry_json();

        for shards in [1usize, 2] {
            let (mut bus, _roles) = Testbed::ctms_sharded(&sc, shards);
            bus.restore_checkpoint(&snapshot)
                .unwrap_or_else(|e| panic!("restore at {shards} shards: {e}"));
            bus.run_until(SimTime::from_secs(10));
            assert_eq!(
                bus.telemetry_json(),
                straight_json,
                "fallback restore drifted (shards={shards})"
            );
        }
    }
}

#[test]
fn mutations_steer_deterministically() {
    // Mutations applied at a restore point must (a) actually change the
    // continuation, and (b) be exactly reproducible: two independent
    // restore-mutate-continue passes agree byte-for-byte.
    let sc = Scenario::test_case_a(42);
    let mut origin = Testbed::ctms(&sc);
    origin.run_until(SimTime::from_secs(5));
    let snapshot = origin.bus().checkpoint();
    let baseline_purges = {
        let mut bed = Testbed::ctms(&sc);
        bed.bus_mut()
            .restore_checkpoint(&snapshot)
            .expect("restore");
        bed.run_until(SimTime::from_secs(8));
        bed.purge_starts().len()
    };

    let mutated = |mutations: &[Mutation]| {
        let mut bed = Testbed::ctms(&sc);
        bed.bus_mut()
            .restore_checkpoint(&snapshot)
            .expect("restore");
        apply_mutations(bed.bus_mut(), mutations).expect("mutations apply");
        bed.run_until(SimTime::from_secs(8));
        let purges = bed.purge_starts().len();
        (purges, bed.telemetry_json())
    };

    let storm = [Mutation::PurgeStorm { ring: 0, count: 3 }];
    let (purges_1, json_1) = mutated(&storm);
    let (purges_2, json_2) = mutated(&storm);
    assert!(
        purges_1 > baseline_purges,
        "a purge storm must add purge sequences ({purges_1} vs {baseline_purges})"
    );
    assert_eq!(purges_1, purges_2, "mutated continuation not deterministic");
    assert_eq!(json_1, json_2, "mutated telemetry not deterministic");

    let churn = [Mutation::StationChurn { ring: 0 }];
    let (churn_purges, churn_json) = mutated(&churn);
    assert!(
        churn_purges > baseline_purges,
        "station churn must trigger an insertion purge burst"
    );
    assert_eq!(churn_json, mutated(&churn).1, "churn not deterministic");

    let stall = [Mutation::DmaStall {
        host: 0,
        extra: Dur::from_us(500),
    }];
    assert_eq!(
        mutated(&stall).1,
        mutated(&stall).1,
        "DMA stall not deterministic"
    );

    // Out-of-range targets are rejected, not silently dropped.
    let mut bed = Testbed::ctms(&sc);
    bed.bus_mut()
        .restore_checkpoint(&snapshot)
        .expect("restore");
    assert!(apply_mutations(bed.bus_mut(), &[Mutation::StationChurn { ring: 9 }]).is_err());
    assert!(apply_mutations(
        bed.bus_mut(),
        &[Mutation::DmaStall {
            host: 99,
            extra: Dur::from_us(1),
        }]
    )
    .is_err());
}

#[test]
fn fork_matches_sequential_restores() {
    // Warm-start forking on the sweep pool: each branch must produce
    // exactly what a sequential restore-mutate-run of the same spec
    // produces — parallelism may never change the answer.
    let sc = Scenario::test_case_a(42);
    let mut origin = Testbed::ctms(&sc);
    origin.run_until(SimTime::from_secs(5));
    let snapshot = origin.bus().checkpoint();
    let horizon = SimTime::from_secs(8);

    let branches = vec![
        ForkSpec {
            mutations: Vec::new(),
            run_to: horizon,
        },
        ForkSpec {
            mutations: vec![Mutation::PurgeStorm { ring: 0, count: 2 }],
            run_to: horizon,
        },
        ForkSpec {
            mutations: vec![Mutation::DmaStall {
                host: 0,
                extra: Dur::from_us(200),
            }],
            run_to: horizon,
        },
    ];

    let sequential: Vec<String> = branches
        .iter()
        .map(|spec| {
            let mut bed = Testbed::ctms(&sc);
            bed.bus_mut()
                .restore_checkpoint(&snapshot)
                .expect("restore");
            apply_mutations(bed.bus_mut(), &spec.mutations).expect("mutations");
            bed.run_until(spec.run_to);
            bed.telemetry_json()
        })
        .collect();

    let sc_fork = sc.clone();
    let forked = fork(
        snapshot,
        branches,
        3,
        move || Testbed::ctms(&sc_fork).into_bus(),
        |_idx, mut bus| bus.telemetry_json(),
    )
    .expect("fork runs");

    assert_eq!(
        forked, sequential,
        "forked branches diverged from sequential"
    );
}

#[test]
fn corrupt_and_mismatched_checkpoints_are_rejected() {
    let sc = Scenario::test_case_a(42);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(1));
    let good = bed.bus().checkpoint();

    let mut fresh = Testbed::ctms(&sc);

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    assert!(fresh.bus_mut().restore_checkpoint(&bad).is_err());

    // Unknown version.
    let mut bad = good.clone();
    bad[8] = bad[8].wrapping_add(1);
    assert!(fresh.bus_mut().restore_checkpoint(&bad).is_err());

    // Truncated stream.
    assert!(fresh
        .bus_mut()
        .restore_checkpoint(&good[..good.len() - 1])
        .is_err());

    // Trailing garbage.
    let mut bad = good.clone();
    bad.push(0);
    assert!(fresh.bus_mut().restore_checkpoint(&bad).is_err());

    // Wrong topology: a single-ring case-A snapshot cannot land on a
    // 16-ring chain (node count mismatch).
    let mut chain = RingChainTestbed::chain(&sc, BridgeKind::cut_through_bridge(), 16);
    assert!(chain.bus_mut().restore_checkpoint(&good).is_err());
}

#[test]
fn streamed_checkpoint_concatenates_to_the_monolithic_snapshot() {
    // The streaming writer's contract: chunk payloads concatenate to
    // **exactly** the bytes of the monolithic `checkpoint()`, on the
    // single-threaded bus and on genuinely sharded builds at every
    // shard count. The writer must also actually chunk — a snapshot
    // bigger than the chunk size may not arrive as one buffer.
    let sc = Scenario::test_case_a(42);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(5));
    let mono = bed.bus().checkpoint();
    let mut sink = CollectSink::new();
    let (payload, chunks) = bed.bus().checkpoint_stream(&mut sink).expect("stream");
    assert_eq!(sink.chunks.concat(), mono, "concatenation drifted (single)");
    assert_eq!(payload as usize, mono.len());
    assert_eq!(chunks as usize, sink.chunks.len());
    assert_eq!(sink.finished, Some(payload), "finish not reported");

    let chain_sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let tree = RingGraph::tree(12, 3);
    for shards in [1usize, 2, 4] {
        let mut origin = RingChainTestbed::graph_sharded(&chain_sc, kind, &tree, shards);
        origin.run_until(SimTime::from_ms(1000));
        let mono = origin.bus().checkpoint();
        let mut sink = CollectSink::new();
        let (payload, _) = origin
            .bus()
            .checkpoint_stream(&mut sink)
            .unwrap_or_else(|e| panic!("stream at {shards} shards: {e}"));
        assert_eq!(
            sink.chunks.concat(),
            mono,
            "concatenation drifted (shards={shards})"
        );
        assert_eq!(payload as usize, mono.len());
        assert!(
            sink.chunks.len() > 1,
            "snapshot of {} bytes should span multiple chunks",
            mono.len()
        );
    }
}

#[test]
fn framed_stream_round_trips_across_shard_counts() {
    // write_checkpoint at 4 shards, read_checkpoint at 1/2/4 and into
    // the plain single-threaded build: every continuation lands on the
    // uninterrupted run's telemetry, and the restored bus re-streams to
    // the identical framed bytes (the encoding stays a fixed point
    // through the chunked path).
    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let tree = RingGraph::tree(12, 3);
    let mid = SimTime::from_ms(1000);
    let end = SimTime::from_secs(2);

    let mut straight = RingChainTestbed::graph(&sc, kind, &tree);
    straight.run_until(end);
    let straight_json = straight.telemetry_json();

    let mut origin = RingChainTestbed::graph_sharded(&sc, kind, &tree, 4);
    assert_eq!(origin.shard_count(), 4, "tree must genuinely partition");
    origin.run_until(mid);
    let mut framed = Vec::new();
    origin.bus().write_checkpoint(&mut framed).expect("write");

    for shards in [1usize, 2, 4] {
        let mut bed = RingChainTestbed::graph_sharded(&sc, kind, &tree, shards);
        bed.bus_mut()
            .read_checkpoint(&mut framed.as_slice())
            .unwrap_or_else(|e| panic!("read at {shards} shards: {e}"));
        assert_eq!(bed.now(), mid);
        let mut again = Vec::new();
        bed.bus().write_checkpoint(&mut again).expect("re-write");
        assert_eq!(
            again, framed,
            "re-streamed checkpoint is not a fixed point (shards={shards})"
        );
        bed.run_until(end);
        assert_eq!(
            bed.telemetry_json(),
            straight_json,
            "streamed restore drifted (shards={shards})"
        );
    }

    let mut single = RingChainTestbed::graph(&sc, kind, &tree);
    single
        .bus_mut()
        .read_checkpoint(&mut framed.as_slice())
        .expect("read into single-threaded bus");
    single.run_until(end);
    assert_eq!(
        single.telemetry_json(),
        straight_json,
        "single-threaded streamed restore drifted"
    );
}

#[test]
fn truncated_stream_is_rejected_with_a_typed_error() {
    // A framed stream cut anywhere — mid-length-prefix, mid-chunk,
    // mid-terminator — must surface as `PersistError::UnexpectedEof`
    // from `read_checkpoint`, never a panic and never a partial apply
    // that leaves the bus half-restored and usable.
    let sc = Scenario::test_case_a(42);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(2));
    let mut framed = Vec::new();
    bed.bus().write_checkpoint(&mut framed).expect("write");

    let cuts = [
        0,                // before any byte
        2,                // inside the first chunk's length prefix
        framed.len() / 3, // mid-chunk payload
        framed.len() / 2,
        framed.len() - 10, // inside the terminator
        framed.len() - 1,
    ];
    for cut in cuts {
        let mut fresh = Testbed::ctms(&sc);
        let err = fresh
            .bus_mut()
            .read_checkpoint(&mut &framed[..cut])
            .expect_err("truncated stream must be rejected");
        assert_eq!(
            err,
            PersistError::UnexpectedEof,
            "cut at {cut}/{} should read as truncation",
            framed.len()
        );
    }

    // Corrupt magic inside an intact frame is a mismatch, not EOF —
    // the typed distinction callers branch on.
    let mut bad = framed.clone();
    bad[4] ^= 0xFF; // first magic byte (after the u32 chunk length)
    let mut fresh = Testbed::ctms(&sc);
    let err = fresh
        .bus_mut()
        .read_checkpoint(&mut bad.as_slice())
        .expect_err("bad magic must be rejected");
    assert!(
        matches!(err, PersistError::Mismatch(_)),
        "want Mismatch, got {err:?}"
    );
}

#[test]
fn graph_snapshot_restores_across_shard_counts() {
    // The v2 format on a topology that is *not* a chain: snapshot a
    // 12-ring tree at 4 shards mid-flight, restore at 1 shard and into
    // the plain single-threaded build, continue — byte-identical to the
    // uninterrupted run, and the restored bus re-checkpoints to the
    // exact snapshot bytes (the encoding is a fixed point regardless of
    // shard count).
    let sc = Scenario::scaled_chain(42);
    let kind = BridgeKind::cut_through_bridge();
    let tree = RingGraph::tree(12, 3);
    let mid = SimTime::from_ms(1000);
    let end = SimTime::from_secs(2);

    let mut straight = RingChainTestbed::graph(&sc, kind, &tree);
    straight.run_until(end);
    let straight_json = straight.telemetry_json();

    let mut origin = RingChainTestbed::graph_sharded(&sc, kind, &tree, 4);
    assert_eq!(origin.shard_count(), 4, "tree must genuinely partition");
    origin.run_until(mid);
    let snapshot = origin.bus().checkpoint();

    // Snapshot at 4 shards, restore at 1 (the sharded API's fallback):
    // the continuation and the re-checkpoint must both be exact.
    let mut at_one = RingChainTestbed::graph_sharded(&sc, kind, &tree, 1);
    at_one
        .bus_mut()
        .restore_checkpoint(&snapshot)
        .expect("restore tree snapshot at 1 shard");
    assert_eq!(at_one.now(), mid);
    assert_eq!(
        at_one.bus().checkpoint(),
        snapshot,
        "re-checkpoint after cross-shard restore is not a fixed point"
    );
    at_one.run_until(end);
    assert_eq!(
        at_one.telemetry_json(),
        straight_json,
        "tree restored at 1 shard drifted"
    );

    // And into the plain single-threaded build.
    let mut single = RingChainTestbed::graph(&sc, kind, &tree);
    single
        .bus_mut()
        .restore_checkpoint(&snapshot)
        .expect("restore tree snapshot into single-threaded bus");
    assert_eq!(
        single.bus().checkpoint(),
        snapshot,
        "single-threaded re-checkpoint is not a fixed point"
    );
    single.run_until(end);
    assert_eq!(single.telemetry_json(), straight_json);

    // The embedded graph signature catches shape mismatches loudly: a
    // tree snapshot aimed at a mesh (or FDDI) build of the same ring
    // count is rejected before any node state is touched.
    let mut mesh = RingChainTestbed::graph(&sc, kind, &RingGraph::mesh(12, 42));
    let err = mesh
        .bus_mut()
        .restore_checkpoint(&snapshot)
        .expect_err("tree snapshot must not restore onto a mesh");
    assert!(
        err.to_string().contains("topology"),
        "want a topology-signature error, got: {err}"
    );
    let mut fddi = RingChainTestbed::graph(&sc, kind, &RingGraph::fddi(12));
    assert!(fddi.bus_mut().restore_checkpoint(&snapshot).is_err());
}
