//! The experiment suite at test fidelity: every figure/table regenerator
//! runs end to end and its robust claims hold.
//!
//! Claims that need the paper's full durations (tails, rare events) are
//! listed in `LONG_RUN_ONLY` and verified by `repro all` instead.

use ctms_core::{run_all_experiments, ExpCfg};

/// Claims that only stabilize at full run lengths (checked by the bench
/// harness, not at test fidelity).
const LONG_RUN_ONLY: &[&str] = &[
    "irq_to_handler.max_us", // 440 µs worst case needs many samples
    "h7a.tail_max",          // the 2 % tail needs minutes of samples
    "h7b.frac_heavy",        // ditto
    "outlier_ms",            // needs an insertion to occur
    "worst_regular_ms",      // tail statistic
    "h6.frac_peak1",         // band fractions tighten with sample count
    "h6.frac_delayed",
    "h7b.frac_core",
    "h7b.frac_mid",
];

#[test]
fn quick_suite_all_robust_claims_hold() {
    let cfg = ExpCfg::quick(42);
    let reports = run_all_experiments(cfg);
    assert_eq!(reports.len(), 15, "E1–E11 plus the E12–E15 extensions");
    let mut checked = 0;
    let mut failures = Vec::new();
    for report in &reports {
        for claim in &report.claims {
            if LONG_RUN_ONLY.contains(&claim.id.as_str()) {
                continue;
            }
            checked += 1;
            if !claim.holds() {
                failures.push(format!(
                    "{} / {}: paper {} vs measured {}",
                    report.title, claim.id, claim.paper, claim.measured
                ));
            }
        }
    }
    assert!(checked > 35, "enough claims checked: {checked}");
    assert!(
        failures.is_empty(),
        "failing claims:\n{}",
        failures.join("\n")
    );
}

#[test]
fn reports_render_both_formats() {
    let cfg = ExpCfg {
        seed: 7,
        short_secs: 10,
        long_secs: 20,
    };
    let r = ctms_core::experiments::e6_fig5_3(cfg);
    let text = r.render();
    assert!(text.contains("Figure 5-3"));
    assert!(text.contains("h7a.min"));
    let md = r.render_markdown();
    assert!(md.contains("| claim |"));
    assert!(md.contains("```text"), "histogram embedded");
}

#[test]
fn seeds_change_measurements_not_verdicts() {
    for seed in [1, 2] {
        let cfg = ExpCfg {
            seed,
            short_secs: 15,
            long_secs: 30,
        };
        let r = ctms_core::experiments::e6_fig5_3(cfg);
        for claim in &r.claims {
            if claim.id == "h7a.tail_max" {
                continue;
            }
            assert!(claim.holds(), "seed {seed}: {}", r.render());
        }
    }
}
