//! Fixed-bin-width histograms.
//!
//! Every figure in the paper (5-2, 5-3, 5-4) is a histogram of inter-event
//! times; this type accumulates samples, locates peaks (Figure 5-2 is
//! explicitly called out for its "bi-model curve"), and renders an ASCII
//! plot so the bench harness can regenerate the figures in a terminal.

use crate::summary::{fraction_in_range, fraction_within, Summary};

/// A histogram with uniform bin width starting at a fixed origin.
///
/// Samples are also retained raw so exact statistics (means, fractions
/// within a band) do not suffer binning error — the paper quotes both kinds
/// of number.
#[derive(Clone, Debug)]
pub struct Histogram {
    origin: f64,
    bin_width: f64,
    counts: Vec<u64>,
    samples: Vec<f64>,
    below: u64,
}

impl Histogram {
    /// Creates an empty histogram with bins `[origin + k·w, origin + (k+1)·w)`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive and finite.
    pub fn new(origin: f64, bin_width: f64) -> Self {
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "Histogram: bad bin width {bin_width}"
        );
        Histogram {
            origin,
            bin_width,
            counts: Vec::new(),
            samples: Vec::new(),
            below: 0,
        }
    }

    /// Adds one sample. Samples below the origin are counted in an
    /// underflow bucket and excluded from bins but retained in raw samples.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "Histogram::add: non-finite sample");
        self.samples.push(x);
        if x < self.origin {
            self.below += 1;
            return;
        }
        let idx = ((x - self.origin) / self.bin_width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Adds many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Builds a histogram from samples with the given binning.
    pub fn of(xs: &[f64], origin: f64, bin_width: f64) -> Self {
        let mut h = Histogram::new(origin, bin_width);
        h.extend(xs.iter().copied());
        h
    }

    /// Total number of samples (including underflow).
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Number of samples below the origin.
    pub fn underflow(&self) -> u64 {
        self.below
    }

    /// The bin width.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// The raw samples, in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Per-bin counts; bin `k` covers `[origin + k·w, origin + (k+1)·w)`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The left edge of bin `k`.
    pub fn bin_left(&self, k: usize) -> f64 {
        self.origin + k as f64 * self.bin_width
    }

    /// The center of bin `k`.
    pub fn bin_center(&self, k: usize) -> f64 {
        self.bin_left(k) + self.bin_width / 2.0
    }

    /// Exact summary statistics of the raw samples.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.samples)
    }

    /// Fraction of raw samples within ±`halfwidth` of `center`.
    pub fn fraction_within(&self, center: f64, halfwidth: f64) -> f64 {
        fraction_within(&self.samples, center, halfwidth)
    }

    /// Fraction of raw samples in `[lo, hi]`.
    pub fn fraction_in_range(&self, lo: f64, hi: f64) -> f64 {
        fraction_in_range(&self.samples, lo, hi)
    }

    /// Locates peaks: bin centers that are local maxima with count at least
    /// `min_frac` of the total sample count, separated by at least one bin
    /// with a strictly lower count. Returns `(center, count)` sorted by
    /// position. Used to assert the bimodality of Figure 5-2.
    pub fn peaks(&self, min_frac: f64) -> Vec<(f64, u64)> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return Vec::new();
        }
        let floor = (total as f64 * min_frac).max(1.0) as u64;
        let mut peaks = Vec::new();
        let n = self.counts.len();
        let mut k = 0;
        while k < n {
            let c = self.counts[k];
            if c >= floor {
                // A peak must strictly exceed its neighbours outside any
                // plateau of equal bins.
                let mut j = k;
                while j + 1 < n && self.counts[j + 1] == c {
                    j += 1;
                }
                let left_ok = k == 0 || self.counts[k - 1] < c;
                let right_ok = j + 1 >= n || self.counts[j + 1] < c;
                if left_ok && right_ok {
                    let mid = (k + j) / 2;
                    peaks.push((self.bin_center(mid), c));
                }
                k = j + 1;
            } else {
                k += 1;
            }
        }
        peaks
    }

    /// Renders the histogram as ASCII art, matching the figure style of the
    /// bench harness: one row per bin (empty leading/trailing bins are
    /// trimmed; interior runs of empty bins are elided).
    pub fn render_ascii(&self, title: &str, unit: &str, width: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let total = self.count();
        let _ = writeln!(out, "  n={total} underflow={}", self.below);
        let max = self.counts.iter().copied().max().unwrap_or(0);
        if max == 0 {
            let _ = writeln!(out, "  (no binned samples)");
            return out;
        }
        let first = self.counts.iter().position(|&c| c > 0).unwrap_or(0);
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .unwrap_or(self.counts.len() - 1);
        let mut eliding = false;
        for k in first..=last {
            let c = self.counts[k];
            if c == 0 {
                if !eliding {
                    let _ = writeln!(out, "  ...");
                    eliding = true;
                }
                continue;
            }
            eliding = false;
            let bar_len = ((c as f64 / max as f64) * width as f64).ceil() as usize;
            let _ = writeln!(
                out,
                "  {:>10.0}{} |{} {}",
                self.bin_left(k),
                unit,
                "#".repeat(bar_len),
                c
            );
        }
        out
    }

    /// CSV dump (`bin_left,count` per line) for external plotting.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("bin_left,count\n");
        for (k, &c) in self.counts.iter().enumerate() {
            let _ = writeln!(out, "{},{}", self.bin_left(k), c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_half_open() {
        let mut h = Histogram::new(0.0, 10.0);
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(25.0);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bin_left(1), 10.0);
        assert_eq!(h.bin_center(1), 15.0);
    }

    #[test]
    fn underflow_counted_separately() {
        let mut h = Histogram::new(100.0, 10.0);
        h.add(50.0);
        h.add(100.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.counts(), &[1]);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn exact_stats_use_raw_samples() {
        let h = Histogram::of(&[1.0, 2.0, 3.0], 0.0, 100.0);
        let s = h.summary();
        assert_eq!(s.mean, 2.0);
        assert_eq!(h.fraction_within(2.0, 1.0), 1.0);
        assert_eq!(h.fraction_in_range(2.5, 3.5), 1.0 / 3.0);
    }

    #[test]
    fn detects_bimodal_peaks() {
        // Two clear peaks at ~2600 and ~9400 (Figure 5-2 shape).
        let mut h = Histogram::new(0.0, 200.0);
        for _ in 0..68 {
            h.add(2600.0);
        }
        for _ in 0..15 {
            h.add(9400.0);
        }
        for x in [4000.0, 5000.0, 6000.0] {
            h.add(x);
        }
        let peaks = h.peaks(0.05);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].0 - 2700.0).abs() <= 100.0);
        assert!((peaks[1].0 - 9500.0).abs() <= 100.0);
        assert_eq!(peaks[0].1, 68);
        assert_eq!(peaks[1].1, 15);
    }

    #[test]
    fn unimodal_has_one_peak() {
        let mut h = Histogram::new(0.0, 100.0);
        for x in [500.0, 500.0, 500.0, 600.0, 400.0] {
            h.add(x);
        }
        assert_eq!(h.peaks(0.1).len(), 1);
    }

    #[test]
    fn peaks_on_empty() {
        let h = Histogram::new(0.0, 1.0);
        assert!(h.peaks(0.1).is_empty());
    }

    #[test]
    fn peak_plateau_resolves_to_middle() {
        let mut h = Histogram::new(0.0, 1.0);
        // Bins: 1,3,3,3,1 — plateau of three equal bins.
        h.extend([0.5]);
        for x in [1.5, 1.5, 1.5, 2.5, 2.5, 2.5, 3.5, 3.5, 3.5] {
            h.add(x);
        }
        h.add(4.5);
        let peaks = h.peaks(0.0);
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0].0, 2.5);
    }

    #[test]
    fn ascii_render_contains_bars_and_elision() {
        let mut h = Histogram::new(0.0, 10.0);
        h.add(5.0);
        h.add(5.0);
        h.add(95.0);
        let art = h.render_ascii("Figure X", "us", 40);
        assert!(art.contains("Figure X"));
        assert!(art.contains("n=3"));
        assert!(art.contains("..."), "interior empty bins elided");
        assert!(art.contains('#'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let h = Histogram::of(&[0.0, 10.0], 0.0, 10.0);
        let csv = h.to_csv();
        assert_eq!(csv, "bin_left,count\n0,1\n10,1\n");
    }

    #[test]
    #[should_panic(expected = "bad bin width")]
    fn zero_bin_width_panics() {
        let _ = Histogram::new(0.0, 0.0);
    }
}
