//! Paper-vs-measured reporting.
//!
//! Each experiment produces a set of [`Claim`]s: a quantity the paper
//! reports, the value our simulation measured, and a tolerance band. The
//! bench harness prints these as a table, and EXPERIMENTS.md is generated
//! from the same rows, so the document can never drift from the code.

use std::fmt::Write as _;

/// How a claim's agreement is judged.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Band {
    /// Measured must be within `frac`·|paper| of the paper value.
    RelativeFrac(f64),
    /// Measured must be within an absolute distance of the paper value.
    Absolute(f64),
    /// Shape-only claim: reported for the record, never failed.
    Informational,
}

impl Band {
    /// Compact deterministic label for machine-readable reports:
    /// `rel(0.1)`, `abs(0.05)`, or `info`. Floats render via `{:?}`
    /// (shortest round-trip), so the label is stable across runs.
    pub fn label(&self) -> String {
        match self {
            Band::RelativeFrac(f) => format!("rel({f:?})"),
            Band::Absolute(a) => format!("abs({a:?})"),
            Band::Informational => "info".to_string(),
        }
    }
}

/// One paper-reported quantity compared against the reproduction.
#[derive(Clone, Debug)]
pub struct Claim {
    /// Short identifier, e.g. `fig5_2.peak1_mean`.
    pub id: String,
    /// Human description quoting the paper.
    pub description: String,
    /// The paper's number.
    pub paper: f64,
    /// Our measured number.
    pub measured: f64,
    /// Unit label for display.
    pub unit: String,
    /// Agreement band.
    pub band: Band,
}

impl Claim {
    /// Creates a claim.
    pub fn new(
        id: impl Into<String>,
        description: impl Into<String>,
        paper: f64,
        measured: f64,
        unit: impl Into<String>,
        band: Band,
    ) -> Self {
        Claim {
            id: id.into(),
            description: description.into(),
            paper,
            measured,
            unit: unit.into(),
            band,
        }
    }

    /// True if the measured value agrees with the paper within the band.
    pub fn holds(&self) -> bool {
        match self.band {
            Band::RelativeFrac(f) => {
                let tol = self.paper.abs() * f;
                (self.measured - self.paper).abs() <= tol
            }
            Band::Absolute(a) => (self.measured - self.paper).abs() <= a,
            Band::Informational => true,
        }
    }
}

/// A named collection of claims for one experiment.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Experiment identifier (e.g. `E6 / Figure 5-3`).
    pub title: String,
    /// The claims, in presentation order.
    pub claims: Vec<Claim>,
    /// Free-form extra sections (e.g. rendered ASCII histograms).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            claims: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a claim.
    pub fn claim(&mut self, c: Claim) -> &mut Self {
        self.claims.push(c);
        self
    }

    /// Adds a free-form note (printed after the table).
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// True if every claim holds.
    pub fn all_hold(&self) -> bool {
        self.claims.iter().all(Claim::holds)
    }

    /// Renders a fixed-width table with a PASS/FAIL/info column.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(
            out,
            "{:<28} {:>14} {:>14} {:>6}  description",
            "claim", "paper", "measured", ""
        );
        for c in &self.claims {
            let verdict = match c.band {
                Band::Informational => "info",
                _ if c.holds() => "PASS",
                _ => "FAIL",
            };
            let _ = writeln!(
                out,
                "{:<28} {:>11.4} {:>2} {:>11.4} {:>2} {:>6}  {}",
                c.id, c.paper, c.unit, c.measured, c.unit, verdict, c.description
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "{n}");
        }
        out
    }

    /// Renders a GitHub-flavoured markdown table (used to generate
    /// EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| claim | paper | measured | verdict | description |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for c in &self.claims {
            let verdict = match c.band {
                Band::Informational => "info",
                _ if c.holds() => "PASS",
                _ => "FAIL",
            };
            let _ = writeln!(
                out,
                "| `{}` | {:.4} {} | {:.4} {} | {} | {} |",
                c.id, c.paper, c.unit, c.measured, c.unit, verdict, c.description
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n```text\n{n}\n```");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_band() {
        let c = Claim::new("x", "d", 100.0, 108.0, "us", Band::RelativeFrac(0.10));
        assert!(c.holds());
        let c = Claim::new("x", "d", 100.0, 115.0, "us", Band::RelativeFrac(0.10));
        assert!(!c.holds());
    }

    #[test]
    fn absolute_band() {
        let c = Claim::new("x", "d", 0.68, 0.64, "", Band::Absolute(0.05));
        assert!(c.holds());
        let c = Claim::new("x", "d", 0.68, 0.60, "", Band::Absolute(0.05));
        assert!(!c.holds());
    }

    #[test]
    fn informational_never_fails() {
        let c = Claim::new("x", "d", 1.0, 99.0, "", Band::Informational);
        assert!(c.holds());
    }

    #[test]
    fn band_labels_are_stable() {
        assert_eq!(Band::RelativeFrac(0.1).label(), "rel(0.1)");
        assert_eq!(Band::Absolute(0.05).label(), "abs(0.05)");
        assert_eq!(Band::Informational.label(), "info");
    }

    #[test]
    fn report_renders_and_judges() {
        let mut r = Report::new("E6 / Figure 5-3");
        r.claim(Claim::new(
            "min",
            "minimum latency",
            10_740.0,
            10_750.0,
            "us",
            Band::RelativeFrac(0.05),
        ));
        r.note("histogram here");
        assert!(r.all_hold());
        let txt = r.render();
        assert!(txt.contains("E6 / Figure 5-3"));
        assert!(txt.contains("PASS"));
        assert!(txt.contains("histogram here"));
        let md = r.render_markdown();
        assert!(md.contains("| `min` |"));
    }

    #[test]
    fn report_detects_failure() {
        let mut r = Report::new("t");
        r.claim(Claim::new(
            "a",
            "d",
            10.0,
            20.0,
            "us",
            Band::RelativeFrac(0.1),
        ));
        assert!(!r.all_hold());
        assert!(r.render().contains("FAIL"));
    }
}
