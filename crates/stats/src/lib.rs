//! # ctms-stats — histogram and summary statistics
//!
//! The paper's evaluation (§5.3) is presented entirely as histograms of
//! inter-event and like-event-difference times, annotated with means,
//! minima and "N % within X of Y" statements. This crate computes and
//! renders those artifacts:
//!
//! * [`histogram::Histogram`] — fixed-width binning, peak detection (for
//!   Figure 5-2's bimodality), ASCII rendering, CSV export,
//! * [`summary`] — exact sample statistics and band fractions,
//! * [`report`] — paper-vs-measured claim tables used by the bench harness
//!   and EXPERIMENTS.md.

pub mod compare;
pub mod histogram;
pub mod report;
pub mod summary;

pub use compare::{ks_critical_005, ks_statistic};
pub use histogram::Histogram;
pub use report::{Band, Claim, Report};
pub use summary::{fraction_in_range, fraction_within, quantile, Summary};
