//! Summary statistics over duration samples.
//!
//! The paper reports means, standard deviations, minima and "N % of data
//! points fall within X of Y" statements for each histogram; this module
//! computes exactly those quantities so EXPERIMENTS.md can print
//! paper-vs-measured rows.

/// Summary statistics of a sample of values (we use microseconds
/// throughout, matching the paper's units).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum, or 0 if empty.
    pub min: f64,
    /// Maximum, or 0 if empty.
    pub max: f64,
    /// Arithmetic mean, or 0 if empty.
    pub mean: f64,
    /// Population standard deviation, or 0 if empty.
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics of `xs`.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let count = xs.len();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
            sum += x;
        }
        let mean = sum / count as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }
}

/// Fraction of samples lying within `halfwidth` of `center` (inclusive),
/// i.e. the paper's "68% of the data points \[are\] within 500 microseconds
/// of 2600 microseconds".
pub fn fraction_within(xs: &[f64], center: f64, halfwidth: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs
        .iter()
        .filter(|&&x| (x - center).abs() <= halfwidth)
        .count();
    n as f64 / xs.len() as f64
}

/// Fraction of samples in the closed range `[lo, hi]`.
pub fn fraction_in_range(xs: &[f64], lo: f64, hi: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.iter().filter(|&&x| x >= lo && x <= hi).count();
    n as f64 / xs.len() as f64
}

/// The `q`-quantile (0 ≤ q ≤ 1) by linear interpolation on the sorted
/// sample. Returns 0 for an empty sample.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (s.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < s.len() {
        s[i] * (1.0 - frac) + s[i + 1] * frac
    } else {
        s[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - 1.118_033_988_749_895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_single() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn fraction_within_matches_paper_style_claim() {
        let xs = vec![2100.0, 2600.0, 3100.0, 9400.0];
        // Three of four within ±500 of 2600 (inclusive bounds).
        assert_eq!(fraction_within(&xs, 2600.0, 500.0), 0.75);
        assert_eq!(fraction_within(&[], 0.0, 1.0), 0.0);
    }

    #[test]
    fn fraction_in_range_closed() {
        let xs = vec![1.0, 2.0, 3.0];
        assert_eq!(fraction_in_range(&xs, 2.0, 3.0), 2.0 / 3.0);
        assert_eq!(fraction_in_range(&[], 0.0, 1.0), 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert_eq!(quantile(&xs, 0.5), 25.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        // Clamped out-of-range q.
        assert_eq!(quantile(&xs, 2.0), 40.0);
    }
}
