//! Distribution comparison.
//!
//! Used by regression tests to pin the shape of the reproduced histograms
//! across code changes: the two-sample Kolmogorov–Smirnov statistic is a
//! scale-free measure of how far two empirical distributions diverge.

/// The two-sample Kolmogorov–Smirnov statistic: the maximum absolute
/// difference between the empirical CDFs of `a` and `b`. Returns a value
/// in `[0, 1]`; 0 for identical samples. Returns 1.0 if either sample is
/// empty (maximally divergent by convention).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 1.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    sb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// The critical KS value at significance `alpha ≈ 0.05` for two samples
/// of the given sizes (asymptotic formula). A statistic below this is
/// consistent with both samples coming from one distribution.
pub fn ks_critical_005(n_a: usize, n_b: usize) -> f64 {
    let (na, nb) = (n_a as f64, n_b as f64);
    1.358 * ((na + nb) / (na * nb)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_distance() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&xs, &xs), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 20.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    #[test]
    fn empty_is_maximally_divergent() {
        assert_eq!(ks_statistic(&[], &[1.0]), 1.0);
        assert_eq!(ks_statistic(&[1.0], &[]), 1.0);
    }

    #[test]
    fn shifted_distribution_detected() {
        let a: Vec<f64> = (0..1000).map(|k| k as f64).collect();
        let b: Vec<f64> = (0..1000).map(|k| k as f64 + 500.0).collect();
        let d = ks_statistic(&a, &b);
        assert!((d - 0.5).abs() < 0.01, "{d}");
    }

    #[test]
    fn same_distribution_below_critical() {
        let mut rng = ctms_sim_shim::Lcg(12345);
        let a: Vec<f64> = (0..2000).map(|_| rng.next_f64()).collect();
        let b: Vec<f64> = (0..2000).map(|_| rng.next_f64()).collect();
        let d = ks_statistic(&a, &b);
        assert!(d < ks_critical_005(a.len(), b.len()), "{d}");
    }

    #[test]
    fn critical_value_shrinks_with_samples() {
        assert!(ks_critical_005(10_000, 10_000) < ks_critical_005(100, 100));
    }

    /// Minimal local RNG so this crate keeps zero runtime deps.
    mod ctms_sim_shim {
        pub struct Lcg(pub u64);
        impl Lcg {
            pub fn next_f64(&mut self) -> f64 {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (self.0 >> 11) as f64 / (1u64 << 53) as f64
            }
        }
    }
}
