//! # ctms-rtpc — IBM RT/PC machine model
//!
//! The paper's host hardware (§2, §4): a single CPU with BSD-style spl
//! interrupt masking, DMA-capable adapters, and the two-bus architecture
//! whose IO Channel Memory option motivates the paper's third modification.
//!
//! * [`cpu`] — priority-preemptive processor with IRQ lines and spl levels,
//! * [`machine`] — CPU + DMA engines + memory-bus contention coupling,
//! * [`memory`] — memory regions and CPU copy-cost calibration.

pub mod cpu;
pub mod machine;
pub mod memory;

pub use cpu::{Cpu, CpuCmd, CpuConfig, CpuOut, CpuStats, ExecLevel, Job, IRQ_LINES};
pub use machine::{BusStats, MachCmd, MachOut, Machine, MachineConfig};
pub use memory::{CopyCost, MemRegion};
