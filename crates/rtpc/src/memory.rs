//! Memory regions and copy costs of the RT/PC's two-bus architecture.
//!
//! §4: the RT/PC has a CPU↔system-memory bus and a separate I/O Channel bus
//! interconnecting adapters, arbitrated by the I/O Channel Controller
//! (IOCC). *IO Channel Memory* is an adapter that is solely memory: DMA
//! between another adapter and IO Channel Memory stays on the I/O Channel
//! bus and does not contend with CPU accesses to system memory. §5.3
//! calibrates the CPU copy rate from system memory (mbufs) to IO Channel
//! Memory (fixed DMA buffers) at "on the order of 1 microsecond per byte".

use ctms_sim::Dur;

/// Where a buffer physically lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemRegion {
    /// Main system memory on the CPU bus.
    System,
    /// IO Channel Memory on the I/O Channel bus.
    IoChannel,
    /// On-adapter memory reachable only by programmed I/O (e.g. the VCA's
    /// byte-wide 2K×16 window, §5.1).
    Device,
}

/// Per-byte CPU copy costs between regions.
///
/// All CPU copies load the processor for their full duration; DMA transfers
/// are modelled separately (they only *slow* the CPU when they touch system
/// memory).
#[derive(Clone, Copy, Debug)]
pub struct CopyCost {
    /// CPU copy within system memory (kernel↔kernel, kernel↔user).
    pub sys_to_sys: Dur,
    /// CPU copy from system memory to IO Channel Memory across the IOCC
    /// (§5.3: ~1 µs/byte).
    pub sys_to_io: Dur,
    /// CPU copy from IO Channel Memory into system memory.
    pub io_to_sys: Dur,
    /// Programmed-I/O transfer to/from byte-wide adapter memory.
    pub dev_pio: Dur,
}

impl Default for CopyCost {
    fn default() -> Self {
        CopyCost {
            // The RT/PC's CPU-driven memcpy moved roughly a byte per
            // microsecond; the paper's measured system→IO-Channel rate
            // (§5.3) and the byte-wide adapter interface (§2 footnote)
            // anchor the other rates.
            sys_to_sys: Dur::from_ns(1_000),
            sys_to_io: Dur::from_ns(1_000),
            io_to_sys: Dur::from_ns(1_000),
            dev_pio: Dur::from_ns(2_000),
        }
    }
}

impl ctms_sim::Persist for MemRegion {
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.u8(match self {
            MemRegion::System => 0,
            MemRegion::IoChannel => 1,
            MemRegion::Device => 2,
        });
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        *self = match dec.u8()? {
            0 => MemRegion::System,
            1 => MemRegion::IoChannel,
            2 => MemRegion::Device,
            tag => {
                return Err(ctms_sim::PersistError::BadTag {
                    what: "memory region",
                    tag,
                })
            }
        };
        Ok(())
    }
}

impl ctms_sim::Persist for CopyCost {
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.dur(self.sys_to_sys);
        enc.dur(self.sys_to_io);
        enc.dur(self.io_to_sys);
        enc.dur(self.dev_pio);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.sys_to_sys = dec.dur()?;
        self.sys_to_io = dec.dur()?;
        self.io_to_sys = dec.dur()?;
        self.dev_pio = dec.dur()?;
        Ok(())
    }
}

impl CopyCost {
    /// Per-byte CPU cost of copying from `src` to `dst`.
    pub fn per_byte(&self, src: MemRegion, dst: MemRegion) -> Dur {
        use MemRegion::*;
        match (src, dst) {
            (System, System) => self.sys_to_sys,
            (System, IoChannel) => self.sys_to_io,
            (IoChannel, System) | (IoChannel, IoChannel) => self.io_to_sys,
            (Device, _) | (_, Device) => self.dev_pio,
        }
    }

    /// Total CPU cost of copying `bytes` bytes from `src` to `dst`.
    pub fn copy(&self, bytes: u32, src: MemRegion, dst: MemRegion) -> Dur {
        self.per_byte(src, dst) * u64::from(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_sys_to_io() {
        // §5.3: 2000 bytes at ~1 µs/byte ⇒ 2000 µs of copy latency.
        let c = CopyCost::default();
        assert_eq!(
            c.copy(2000, MemRegion::System, MemRegion::IoChannel),
            Dur::from_us(2000)
        );
    }

    #[test]
    fn all_pairs_have_costs() {
        let c = CopyCost::default();
        use MemRegion::*;
        for src in [System, IoChannel, Device] {
            for dst in [System, IoChannel, Device] {
                assert!(c.per_byte(src, dst) > Dur::ZERO);
            }
        }
    }

    #[test]
    fn device_pio_dominates_region() {
        let c = CopyCost::default();
        assert_eq!(
            c.per_byte(MemRegion::Device, MemRegion::IoChannel),
            c.dev_pio
        );
        assert_eq!(c.per_byte(MemRegion::System, MemRegion::Device), c.dev_pio);
    }
}
