//! The machine layer: CPU plus DMA engines plus the IOCC bus-contention
//! coupling.
//!
//! §4: "If the adapter is capable of DMA and the DMA is done into system
//! memory, this DMA can interfere with the CPU's access to system memory."
//! The machine slows the CPU by a configurable factor while any DMA
//! touching system memory is active; DMA to/from IO Channel Memory runs
//! entirely on the I/O Channel bus and leaves the CPU at full speed — the
//! paper's motivation for its third modification.

use crate::cpu::{Cpu, CpuCmd, CpuConfig, CpuOut, CpuStats, Job};
use crate::memory::MemRegion;
use ctms_sim::{Component, Dur, SimTime};

/// Machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// CPU configuration.
    pub cpu: CpuConfig,
    /// CPU speed multiplier while ≥1 system-memory DMA is active
    /// (arbitration loss on the memory bus).
    pub sysdma_cpu_factor: f64,
    /// Additional multiplicative slowdown per extra concurrent
    /// system-memory DMA beyond the first.
    pub sysdma_extra_factor: f64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            cpu: CpuConfig::default(),
            sysdma_cpu_factor: 0.85,
            sysdma_extra_factor: 0.95,
        }
    }
}

/// Commands into the machine.
#[derive(Clone, Copy, Debug)]
pub enum MachCmd<T> {
    /// Raise an interrupt line.
    RaiseIrq {
        /// Line number.
        line: u8,
    },
    /// Enqueue CPU work.
    Push(Job<T>),
    /// Start a DMA transfer of `bytes` at `per_byte`, touching `region`.
    /// Completion emits [`MachOut::DmaDone`] with `tag`.
    StartDma {
        /// Transfer size.
        bytes: u32,
        /// Transfer rate as time per byte.
        per_byte: Dur,
        /// The memory region on the host side of the transfer.
        region: MemRegion,
        /// Continuation tag.
        tag: T,
    },
}

/// Events out of the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachOut<T> {
    /// Interrupt handler entry (dispatch complete) for `line`.
    IrqEntered {
        /// The line.
        line: u8,
    },
    /// A pushed CPU job completed.
    JobDone {
        /// Its tag.
        tag: T,
    },
    /// A DMA transfer completed.
    DmaDone {
        /// Its tag.
        tag: T,
    },
    /// An IRQ was raised while already pending.
    IrqOverrun {
        /// The line.
        line: u8,
    },
}

#[derive(Clone, Copy, Debug)]
struct ActiveDma<T> {
    done_at: SimTime,
    region: MemRegion,
    tag: T,
}

/// Bus-contention accounting (§4's "this DMA can interfere with the
/// CPU's access to system memory", made measurable).
#[derive(Clone, Copy, Debug, Default)]
pub struct BusStats {
    /// Nanoseconds of CPU capacity lost to system-memory DMA arbitration
    /// (elapsed × (1 − speed), integrated over the run).
    pub cpu_stall_ns: u64,
    /// Nanoseconds during which ≥1 system-memory DMA was active.
    pub sysdma_active_ns: u64,
    /// DMA transfers completed, by region: (system, io-channel/device).
    pub dmas_system: u64,
    /// DMA transfers that stayed off the CPU bus.
    pub dmas_io_channel: u64,
}

impl ctms_sim::Instrument for BusStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("cpu_stall_ns", self.cpu_stall_ns);
        scope.counter("sysdma_active_ns", self.sysdma_active_ns);
        scope.counter("dmas_system", self.dmas_system);
        scope.counter("dmas_io_channel", self.dmas_io_channel);
    }
}

/// CPU + DMA engines + bus coupling. See module docs.
#[derive(Debug)]
pub struct Machine<T> {
    cfg: MachineConfig,
    cpu: Cpu<T>,
    dmas: Vec<ActiveDma<T>>,
    bus: BusStats,
    speed_since: SimTime,
    cur_speed: f64,
}

impl<T: Copy + core::fmt::Debug> Machine<T> {
    /// Creates an idle machine.
    pub fn new(cfg: MachineConfig) -> Self {
        Machine {
            cpu: Cpu::new(cfg.cpu),
            cfg,
            dmas: Vec::new(),
            bus: BusStats::default(),
            speed_since: SimTime::ZERO,
            cur_speed: 1.0,
        }
    }

    /// Bus-contention counters.
    pub fn bus_stats(&self) -> BusStats {
        self.bus
    }

    /// Integrates stall accounting up to `now` at the current speed.
    fn settle_bus(&mut self, now: SimTime) {
        let elapsed = now.since(self.speed_since).as_ns();
        if self.cur_speed < 1.0 {
            self.bus.cpu_stall_ns += (elapsed as f64 * (1.0 - self.cur_speed)) as u64;
            self.bus.sysdma_active_ns += elapsed;
        }
        self.speed_since = now;
    }

    /// CPU counters.
    pub fn cpu_stats(&self) -> CpuStats {
        self.cpu.stats()
    }

    /// True if the CPU and all DMA engines are idle.
    pub fn is_idle(&self) -> bool {
        self.cpu.is_idle() && self.dmas.is_empty()
    }

    /// Number of DMA transfers currently in flight.
    pub fn active_dmas(&self) -> usize {
        self.dmas.len()
    }

    /// Current CPU execution level.
    pub fn current_level(&self) -> u8 {
        self.cpu.current_level()
    }

    /// Pushes every in-flight DMA completion `extra` later, as if the
    /// bus arbiter had stalled the engines. A checkpoint-restore
    /// mutation hook: callers apply it at a restore point to explore how
    /// a transient DMA stall perturbs the continued run. CPU slowdown
    /// accounting is unchanged (the transfer occupies the bus longer at
    /// the same arbitration factor).
    pub fn delay_active_dmas(&mut self, extra: ctms_sim::Dur) {
        for d in &mut self.dmas {
            d.done_at += extra;
        }
    }

    fn cpu_speed(&self) -> f64 {
        let sys = self
            .dmas
            .iter()
            .filter(|d| d.region == MemRegion::System)
            .count();
        if sys == 0 {
            1.0
        } else {
            self.cfg.sysdma_cpu_factor * self.cfg.sysdma_extra_factor.powi(sys as i32 - 1)
        }
    }

    fn apply_speed(&mut self, now: SimTime, sink: &mut Vec<MachOut<T>>) {
        self.settle_bus(now);
        let s = self.cpu_speed();
        self.cur_speed = s;
        let mut tmp = Vec::new();
        self.cpu.handle(now, CpuCmd::SetSpeed(s), &mut tmp);
        Self::map_cpu_outs(tmp, sink);
    }

    fn map_cpu_outs(from: Vec<CpuOut<T>>, to: &mut Vec<MachOut<T>>) {
        for o in from {
            to.push(match o {
                CpuOut::IrqEntered { line } => MachOut::IrqEntered { line },
                CpuOut::JobDone { tag } => MachOut::JobDone { tag },
                CpuOut::IrqOverrun { line } => MachOut::IrqOverrun { line },
            });
        }
    }
}

impl<T: Copy + ctms_sim::Persist + Default> ctms_sim::Persist for Machine<T> {
    /// Dynamic machine state: the CPU, the in-flight DMA set, bus
    /// counters and the speed integrator. `cfg` is structural.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        self.cpu.persist(enc);
        enc.seq_len(self.dmas.len());
        for d in &self.dmas {
            enc.time(d.done_at);
            d.region.persist(enc);
            d.tag.persist(enc);
        }
        enc.u64(self.bus.cpu_stall_ns);
        enc.u64(self.bus.sysdma_active_ns);
        enc.u64(self.bus.dmas_system);
        enc.u64(self.bus.dmas_io_channel);
        enc.time(self.speed_since);
        enc.f64(self.cur_speed);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.cpu.restore(dec)?;
        self.dmas = dec.seq(|d| {
            let done_at = d.time()?;
            let mut region = MemRegion::System;
            region.restore(d)?;
            let tag = ctms_sim::decode_new(d)?;
            Ok(ActiveDma {
                done_at,
                region,
                tag,
            })
        })?;
        self.bus = BusStats {
            cpu_stall_ns: dec.u64()?,
            sysdma_active_ns: dec.u64()?,
            dmas_system: dec.u64()?,
            dmas_io_channel: dec.u64()?,
        };
        self.speed_since = dec.time()?;
        self.cur_speed = dec.f64()?;
        Ok(())
    }
}

impl<T: Copy + core::fmt::Debug> Component for Machine<T> {
    type Cmd = MachCmd<T>;
    type Out = MachOut<T>;

    fn next_deadline(&self) -> Option<SimTime> {
        // Hand-rolled min over the 0–2 live DMAs plus the CPU: this is
        // on the per-event reschedule path, where the iterator-chain
        // form showed up in profiles.
        let mut best = self.cpu.next_deadline();
        for d in &self.dmas {
            match best {
                Some(b) if b <= d.done_at => {}
                _ => best = Some(d.done_at),
            }
        }
        best
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<MachOut<T>>) {
        // Complete due DMAs first: their bus release may speed the CPU up
        // for the remainder of this instant.
        let mut completed = Vec::new();
        self.dmas.retain(|d| {
            if d.done_at <= now {
                completed.push(*d);
                false
            } else {
                true
            }
        });
        if !completed.is_empty() {
            self.apply_speed(now, sink);
            for d in completed {
                sink.push(MachOut::DmaDone { tag: d.tag });
            }
        }
        let mut tmp = Vec::new();
        self.cpu.advance(now, &mut tmp);
        Self::map_cpu_outs(tmp, sink);
    }

    fn handle(&mut self, now: SimTime, cmd: MachCmd<T>, sink: &mut Vec<MachOut<T>>) {
        match cmd {
            MachCmd::RaiseIrq { line } => {
                let mut tmp = Vec::new();
                self.cpu.handle(now, CpuCmd::RaiseIrq { line }, &mut tmp);
                Self::map_cpu_outs(tmp, sink);
            }
            MachCmd::Push(job) => {
                let mut tmp = Vec::new();
                self.cpu.handle(now, CpuCmd::Push(job), &mut tmp);
                Self::map_cpu_outs(tmp, sink);
            }
            MachCmd::StartDma {
                bytes,
                per_byte,
                region,
                tag,
            } => {
                let done_at = now + per_byte * u64::from(bytes);
                if region == MemRegion::System {
                    self.bus.dmas_system += 1;
                } else {
                    self.bus.dmas_io_channel += 1;
                }
                self.dmas.push(ActiveDma {
                    done_at,
                    region,
                    tag,
                });
                self.apply_speed(now, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::ExecLevel;
    use ctms_sim::drain_component;

    type M = Machine<u64>;

    fn machine() -> M {
        Machine::new(MachineConfig::default())
    }

    #[test]
    fn dma_completes_at_rate() {
        let mut m = machine();
        let mut sink = Vec::new();
        m.handle(
            SimTime::ZERO,
            MachCmd::StartDma {
                bytes: 2000,
                per_byte: Dur::from_ns(500),
                region: MemRegion::IoChannel,
                tag: 7,
            },
            &mut sink,
        );
        let evs = drain_component(&mut m, SimTime::from_ms(10));
        assert_eq!(
            evs,
            vec![(SimTime::from_us(1000), MachOut::DmaDone { tag: 7 })]
        );
        assert!(m.is_idle());
    }

    #[test]
    fn system_dma_slows_cpu_io_channel_does_not() {
        // The paper's §4 argument, as a differential experiment.
        let run = |region: MemRegion| -> SimTime {
            let mut m = machine();
            let mut sink = Vec::new();
            m.handle(
                SimTime::ZERO,
                MachCmd::Push(Job {
                    tag: 1,
                    cost: Dur::from_us(1000),
                    level: ExecLevel::User,
                }),
                &mut sink,
            );
            m.handle(
                SimTime::ZERO,
                MachCmd::StartDma {
                    bytes: 4000,
                    per_byte: Dur::from_ns(500),
                    region,
                    tag: 2,
                },
                &mut sink,
            );
            let evs = drain_component(&mut m, SimTime::from_ms(100));
            evs.iter()
                .find_map(|(t, e)| matches!(e, MachOut::JobDone { tag: 1 }).then_some(*t))
                .expect("job done")
        };
        let with_io = run(MemRegion::IoChannel);
        let with_sys = run(MemRegion::System);
        assert_eq!(with_io, SimTime::from_us(1000), "no interference");
        assert!(
            with_sys > SimTime::from_us(1100),
            "system-memory DMA must slow the CPU, got {with_sys}"
        );
    }

    #[test]
    fn cpu_recovers_full_speed_after_dma() {
        let mut m = machine();
        let mut sink = Vec::new();
        // 100 µs DMA on system memory; 1000 µs CPU job.
        m.handle(
            SimTime::ZERO,
            MachCmd::Push(Job {
                tag: 1,
                cost: Dur::from_us(1000),
                level: ExecLevel::User,
            }),
            &mut sink,
        );
        m.handle(
            SimTime::ZERO,
            MachCmd::StartDma {
                bytes: 100,
                per_byte: Dur::from_us(1),
                region: MemRegion::System,
                tag: 2,
            },
            &mut sink,
        );
        let evs = drain_component(&mut m, SimTime::from_ms(100));
        let done = evs
            .iter()
            .find_map(|(t, e)| matches!(e, MachOut::JobDone { tag: 1 }).then_some(*t))
            .expect("done");
        // During 100 µs at factor 0.85, 85 µs of work retired; the
        // remaining 915 µs at full speed: 1015 µs total (±1 ns rounding).
        let expected = SimTime::from_ns(1_015_000_000 / 1000);
        let delta = done.as_ns().abs_diff(expected.as_ns());
        assert!(delta <= 10, "done={done} expected≈{expected}");
    }

    #[test]
    fn concurrent_system_dmas_compound() {
        let mut m = machine();
        let mut sink = Vec::new();
        for tag in [10, 11] {
            m.handle(
                SimTime::ZERO,
                MachCmd::StartDma {
                    bytes: 1000,
                    per_byte: Dur::from_us(1),
                    region: MemRegion::System,
                    tag,
                },
                &mut sink,
            );
        }
        m.handle(
            SimTime::ZERO,
            MachCmd::Push(Job {
                tag: 1,
                cost: Dur::from_us(100),
                level: ExecLevel::User,
            }),
            &mut sink,
        );
        assert_eq!(m.active_dmas(), 2);
        let evs = drain_component(&mut m, SimTime::from_ms(100));
        let done = evs
            .iter()
            .find_map(|(t, e)| matches!(e, MachOut::JobDone { tag: 1 }).then_some(*t))
            .expect("done");
        // Speed = 0.85 * 0.95 = 0.8075 ⇒ ~123.8 µs.
        assert!(
            done > SimTime::from_us(123) && done < SimTime::from_us(125),
            "got {done}"
        );
    }

    #[test]
    fn bus_stats_account_for_contention() {
        let mut m = machine();
        let mut sink = Vec::new();
        // 1 ms of system-memory DMA at factor 0.85: 150 µs of stall.
        m.handle(
            SimTime::ZERO,
            MachCmd::StartDma {
                bytes: 1000,
                per_byte: Dur::from_us(1),
                region: MemRegion::System,
                tag: 1,
            },
            &mut sink,
        );
        let _ = drain_component(&mut m, SimTime::from_ms(10));
        let bus = m.bus_stats();
        assert_eq!(bus.dmas_system, 1);
        assert_eq!(bus.sysdma_active_ns, 1_000_000);
        let expected = (1_000_000.0f64 * 0.15) as u64;
        assert!(bus.cpu_stall_ns.abs_diff(expected) < 1_000, "{bus:?}");
        // IO-channel DMA adds no stall.
        m.handle(
            SimTime::from_ms(10),
            MachCmd::StartDma {
                bytes: 1000,
                per_byte: Dur::from_us(1),
                region: MemRegion::IoChannel,
                tag: 2,
            },
            &mut sink,
        );
        let _ = drain_component(&mut m, SimTime::from_ms(20));
        let bus2 = m.bus_stats();
        assert_eq!(bus2.dmas_io_channel, 1);
        assert_eq!(bus2.cpu_stall_ns, bus.cpu_stall_ns, "no extra stall");
    }

    #[test]
    fn irq_flows_through_machine() {
        let mut m = machine();
        let mut sink = Vec::new();
        m.handle(SimTime::ZERO, MachCmd::RaiseIrq { line: 2 }, &mut sink);
        let evs = drain_component(&mut m, SimTime::from_ms(1));
        assert_eq!(
            evs,
            vec![(SimTime::from_us(25), MachOut::IrqEntered { line: 2 })]
        );
    }
}
