//! The RT/PC processor: a priority-preemptive single server with BSD-style
//! spl interrupt masking.
//!
//! §4 of the paper identifies the CPU-loading mechanisms the model must
//! capture: interrupt dispatch overhead, long protected (spl) code
//! sections delaying interrupt entry (the source of the 440 µs worst-case
//! IRQ→handler variation of §5.2.2), and DMA into system memory slowing
//! the processor.
//!
//! Execution levels, low to high:
//!
//! * level 0 — user code and unprotected kernel code,
//! * levels 1–7 — kernel code holding `splN`, and interrupt handlers whose
//!   line is configured at level N.
//!
//! A pending interrupt dispatches only when the current execution level is
//! strictly below its line's level; arriving work preempts strictly
//! lower-level work and queues FIFO behind equal-level work. This is the
//! mechanism behind §5's observation that "critical sections of code"
//! cause out-of-order packets and latency spread.

use ctms_sim::{Component, Dec, Dur, Enc, Persist, PersistError, SimTime};
use std::collections::VecDeque;

/// Number of interrupt request lines on the machine.
pub const IRQ_LINES: usize = 8;

/// Execution level of a piece of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecLevel {
    /// User code or unprotected kernel code (preempted by everything).
    User,
    /// Kernel code holding the given spl (1–7); blocks interrupts at or
    /// below that level.
    KernelSpl(u8),
    /// An interrupt handler on the given line (runs at the line's level).
    Irq(u8),
}

/// One schedulable piece of work. `T` is the owner's continuation tag,
/// returned verbatim in [`CpuOut::JobDone`].
#[derive(Clone, Copy, Debug)]
pub struct Job<T> {
    /// Continuation tag for the owner.
    pub tag: T,
    /// CPU time the job consumes at full speed.
    pub cost: Dur,
    /// Execution level.
    pub level: ExecLevel,
}

/// Commands into the CPU.
#[derive(Clone, Copy, Debug)]
pub enum CpuCmd<T> {
    /// A device raised its interrupt line.
    RaiseIrq {
        /// Line number, `0..IRQ_LINES`.
        line: u8,
    },
    /// Enqueue work.
    Push(Job<T>),
    /// Scale execution speed (1.0 = nominal); used by the machine layer to
    /// model DMA contention on the system-memory bus.
    SetSpeed(f64),
}

/// Events out of the CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuOut<T> {
    /// Interrupt dispatch for `line` completed: the handler body may now be
    /// pushed. This instant is the paper's "entry into the interrupt
    /// handler" measurement point.
    IrqEntered {
        /// The dispatched line.
        line: u8,
    },
    /// A pushed job ran to completion.
    JobDone {
        /// The tag it was pushed with.
        tag: T,
    },
    /// An interrupt was raised while already pending (a real latch would
    /// have lost it). Counted, surfaced for diagnostics.
    IrqOverrun {
        /// The overrun line.
        line: u8,
    },
}

/// CPU configuration.
#[derive(Clone, Copy, Debug)]
pub struct CpuConfig {
    /// Interrupt level of each line (1–7).
    pub line_levels: [u8; IRQ_LINES],
    /// Fixed cost from IRQ acceptance to handler entry (vector fetch,
    /// register save, dispatch).
    pub irq_dispatch_cost: Dur,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            // Line assignments for the testbed: 0 unused, 1 disk, 2 VCA,
            // 3 token ring, 4 clock, rest spare. Levels follow BSD custom:
            // network/disk mid, clock highest.
            line_levels: [1, 4, 6, 5, 7, 3, 2, 1],
            irq_dispatch_cost: Dur::from_us(25),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Body<T> {
    /// Dispatch stub for an IRQ line; completion emits `IrqEntered`.
    IrqDispatch(u8),
    /// Ordinary job; completion emits `JobDone`.
    Work(T),
}

#[derive(Clone, Copy, Debug)]
struct Running<T> {
    body: Body<T>,
    level: u8,
    /// Work remaining at nominal speed.
    remaining: Dur,
    /// Instant `remaining` was last settled.
    as_of: SimTime,
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuStats {
    /// Total nanoseconds of executed work (nominal-speed equivalent).
    pub busy_work_ns: u64,
    /// Completed jobs.
    pub jobs_done: u64,
    /// Interrupts dispatched.
    pub irqs_dispatched: u64,
    /// Raise-while-pending events.
    pub irq_overruns: u64,
}

impl ctms_sim::Instrument for CpuStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("busy_work_ns", self.busy_work_ns);
        scope.counter("jobs_done", self.jobs_done);
        scope.counter("irqs_dispatched", self.irqs_dispatched);
        scope.counter("irq_overruns", self.irq_overruns);
    }
}

/// The processor model. See module docs.
#[derive(Debug)]
pub struct Cpu<T> {
    cfg: CpuConfig,
    ready: [VecDeque<(Body<T>, Dur)>; 8],
    stack: Vec<Running<T>>,
    running: Option<Running<T>>,
    irq_pending: [bool; IRQ_LINES],
    speed: f64,
    stats: CpuStats,
    /// Memo of the last [`Cpu::finish_time`] result, keyed by the exact
    /// inputs `(as_of, remaining, speed bits)`. The harness queries
    /// `next_deadline` far more often than the running job changes, and
    /// the float divide in `finish_time` is the single hottest piece of
    /// that query; the memo returns the identical value (same inputs,
    /// same computation) without re-dividing. Not persisted — a stale
    /// entry after restore can only hit on matching inputs, which yield
    /// the same result anyway.
    finish_memo: std::cell::Cell<Option<FinishMemo>>,
}

/// One memoized [`Cpu::finish_time`] entry: the `(as_of, remaining,
/// speed bits)` key plus the finish instant it produced.
type FinishMemo = ((u64, u64, u64), SimTime);

impl<T: Copy> Cpu<T> {
    /// Creates an idle CPU.
    pub fn new(cfg: CpuConfig) -> Self {
        Cpu {
            cfg,
            ready: Default::default(),
            stack: Vec::new(),
            running: None,
            irq_pending: [false; IRQ_LINES],
            speed: 1.0,
            stats: CpuStats::default(),
            finish_memo: std::cell::Cell::new(None),
        }
    }

    /// The configured level of an IRQ line.
    pub fn line_level(&self, line: u8) -> u8 {
        self.cfg.line_levels[line as usize]
    }

    /// Counters so far.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Current execution level (0 when idle or running user work).
    pub fn current_level(&self) -> u8 {
        self.running.map(|r| r.level).unwrap_or(0)
    }

    /// True if nothing is running, queued or pending.
    pub fn is_idle(&self) -> bool {
        self.running.is_none()
            && self.stack.is_empty()
            && self.ready.iter().all(VecDeque::is_empty)
            && self.irq_pending.iter().all(|p| !p)
    }

    fn level_num(&self, l: ExecLevel) -> u8 {
        match l {
            ExecLevel::User => 0,
            ExecLevel::KernelSpl(k) => {
                assert!(k <= 7, "spl out of range");
                k
            }
            ExecLevel::Irq(line) => self.line_level(line),
        }
    }

    /// Wall-clock instant the running job will finish, given current
    /// speed. Memoized on the exact inputs (see `finish_memo`).
    fn finish_time(&self, r: &Running<T>) -> SimTime {
        let key = (r.as_of.as_ns(), r.remaining.as_ns(), self.speed.to_bits());
        if let Some((k, at)) = self.finish_memo.get() {
            if k == key {
                return at;
            }
        }
        let ns = (r.remaining.as_ns() as f64 / self.speed).ceil() as u64;
        let at = r.as_of + Dur::from_ns(ns);
        self.finish_memo.set(Some((key, at)));
        at
    }

    /// Settles the running job's progress up to `now`.
    fn settle(&mut self, now: SimTime) {
        if let Some(r) = &mut self.running {
            let elapsed = now.since(r.as_of);
            let done = Dur::from_ns((elapsed.as_ns() as f64 * self.speed).floor() as u64);
            let done = if done > r.remaining {
                r.remaining
            } else {
                done
            };
            r.remaining -= done;
            r.as_of = now;
            self.stats.busy_work_ns += done.as_ns();
        }
    }

    /// Highest-level pending IRQ strictly above `level`, if any.
    fn dispatchable_irq(&self, level: u8) -> Option<u8> {
        (0..IRQ_LINES as u8)
            .filter(|&l| self.irq_pending[l as usize])
            .max_by_key(|&l| (self.line_level(l), core::cmp::Reverse(l)))
            .filter(|&l| self.line_level(l) > level)
    }

    /// Highest non-empty ready level, if any.
    fn top_ready_level(&self) -> Option<u8> {
        (0..8u8).rev().find(|&l| !self.ready[l as usize].is_empty())
    }

    /// Starts whatever should run next, assuming nothing is running.
    fn pick_next(&mut self, now: SimTime) {
        debug_assert!(self.running.is_none());
        let stack_level = self.stack.last().map(|r| r.level);
        let ready_level = self.top_ready_level();
        let irq = self.dispatchable_irq(stack_level.unwrap_or(0));
        // Choose the highest of: dispatchable IRQ, ready job, stack top.
        let irq_level = irq.map(|l| self.line_level(l));
        let best = [
            irq_level.map(|l| (l, 0u8)),
            ready_level.map(|l| (l, 1u8)),
            stack_level.map(|l| (l, 2u8)),
        ]
        .into_iter()
        .flatten()
        // Prefer IRQ over ready over stack at equal level? No: a
        // pending IRQ at a level equal to the preempted context must
        // wait (spl semantics: strictly-greater dispatches). The
        // filter above already enforces that for the stack; among
        // ready vs stack at the same level the stack resumes first.
        .max_by_key(|&(l, pref)| (l, core::cmp::Reverse(pref)));
        let Some((_, which)) = best else {
            return;
        };
        match which {
            0 => {
                let line = irq.expect("irq candidate");
                self.irq_pending[line as usize] = false;
                self.stats.irqs_dispatched += 1;
                self.running = Some(Running {
                    body: Body::IrqDispatch(line),
                    level: self.line_level(line),
                    remaining: self.cfg.irq_dispatch_cost,
                    as_of: now,
                });
            }
            1 => {
                let l = ready_level.expect("ready candidate");
                let (body, cost) = self.ready[l as usize].pop_front().expect("non-empty");
                self.running = Some(Running {
                    body,
                    level: l,
                    remaining: cost,
                    as_of: now,
                });
            }
            _ => {
                let mut r = self.stack.pop().expect("stack candidate");
                r.as_of = now;
                self.running = Some(r);
            }
        }
    }

    /// Preempts the running job (if any) and starts `r`.
    fn preempt_with(&mut self, now: SimTime, body: Body<T>, level: u8, cost: Dur) {
        self.settle(now);
        if let Some(cur) = self.running.take() {
            debug_assert!(cur.level < level, "preempt requires strictly higher level");
            self.stack.push(cur);
        }
        self.running = Some(Running {
            body,
            level,
            remaining: cost,
            as_of: now,
        });
    }
}

fn persist_body<T: Persist>(enc: &mut Enc, body: &Body<T>) {
    match body {
        Body::IrqDispatch(line) => {
            enc.u8(0);
            enc.u8(*line);
        }
        Body::Work(tag) => {
            enc.u8(1);
            tag.persist(enc);
        }
    }
}

fn restore_body<T: Persist + Default>(dec: &mut Dec<'_>) -> Result<Body<T>, PersistError> {
    match dec.u8()? {
        0 => Ok(Body::IrqDispatch(dec.u8()?)),
        1 => Ok(Body::Work(ctms_sim::decode_new(dec)?)),
        tag => Err(PersistError::BadTag {
            what: "cpu job body",
            tag,
        }),
    }
}

fn persist_running<T: Persist>(enc: &mut Enc, r: &Running<T>) {
    persist_body(enc, &r.body);
    enc.u8(r.level);
    enc.dur(r.remaining);
    enc.time(r.as_of);
}

fn restore_running<T: Persist + Default>(dec: &mut Dec<'_>) -> Result<Running<T>, PersistError> {
    Ok(Running {
        body: restore_body(dec)?,
        level: dec.u8()?,
        remaining: dec.dur()?,
        as_of: dec.time()?,
    })
}

impl<T: Copy + Persist + Default> Persist for Cpu<T> {
    /// Dynamic processor state: the eight ready queues, the preemption
    /// stack, the running job, pending IRQ latches, the current speed
    /// multiplier and counters. `cfg` (line levels, dispatch cost) is
    /// structural.
    fn persist(&self, enc: &mut Enc) {
        for q in &self.ready {
            enc.seq_len(q.len());
            for (body, cost) in q {
                persist_body(enc, body);
                enc.dur(*cost);
            }
        }
        enc.seq_len(self.stack.len());
        for r in &self.stack {
            persist_running(enc, r);
        }
        enc.opt(self.running.as_ref(), |e, r| persist_running(e, r));
        for p in &self.irq_pending {
            enc.bool(*p);
        }
        enc.f64(self.speed);
        let s = &self.stats;
        enc.u64(s.busy_work_ns);
        enc.u64(s.jobs_done);
        enc.u64(s.irqs_dispatched);
        enc.u64(s.irq_overruns);
    }

    fn restore(&mut self, dec: &mut Dec<'_>) -> Result<(), PersistError> {
        for q in &mut self.ready {
            *q = dec
                .seq(|d| Ok((restore_body(d)?, d.dur()?)))?
                .into_iter()
                .collect();
        }
        self.stack = dec.seq(restore_running)?;
        self.running = dec.opt(restore_running)?;
        for p in &mut self.irq_pending {
            *p = dec.bool()?;
        }
        self.speed = dec.f64()?;
        self.stats = CpuStats {
            busy_work_ns: dec.u64()?,
            jobs_done: dec.u64()?,
            irqs_dispatched: dec.u64()?,
            irq_overruns: dec.u64()?,
        };
        Ok(())
    }
}

impl<T: Copy + core::fmt::Debug> Component for Cpu<T> {
    type Cmd = CpuCmd<T>;
    type Out = CpuOut<T>;

    fn next_deadline(&self) -> Option<SimTime> {
        self.running.as_ref().map(|r| self.finish_time(r))
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<CpuOut<T>>) {
        loop {
            let Some(r) = &self.running else { return };
            if self.finish_time(r) > now {
                return;
            }
            let r = *r;
            self.settle(now);
            self.running = None;
            match r.body {
                Body::IrqDispatch(line) => sink.push(CpuOut::IrqEntered { line }),
                Body::Work(tag) => {
                    self.stats.jobs_done += 1;
                    sink.push(CpuOut::JobDone { tag });
                }
            }
            self.pick_next(now);
        }
    }

    fn handle(&mut self, now: SimTime, cmd: CpuCmd<T>, sink: &mut Vec<CpuOut<T>>) {
        // Bring progress up to date before changing anything.
        self.settle(now);
        match cmd {
            CpuCmd::RaiseIrq { line } => {
                let idx = line as usize;
                assert!(idx < IRQ_LINES, "bad IRQ line {line}");
                if self.irq_pending[idx] {
                    self.stats.irq_overruns += 1;
                    sink.push(CpuOut::IrqOverrun { line });
                    return;
                }
                self.irq_pending[idx] = true;
                let lvl = self.line_level(line);
                if self.current_level() < lvl {
                    // Dispatch immediately, preempting current work.
                    self.irq_pending[idx] = false;
                    self.stats.irqs_dispatched += 1;
                    self.preempt_with(
                        now,
                        Body::IrqDispatch(line),
                        lvl,
                        self.cfg.irq_dispatch_cost,
                    );
                }
            }
            CpuCmd::Push(job) => {
                let lvl = self.level_num(job.level);
                if job.cost.is_zero() {
                    // Zero-cost jobs complete immediately (used for pure
                    // sequencing); they still respect nothing — they are a
                    // modelling convenience.
                    self.stats.jobs_done += 1;
                    sink.push(CpuOut::JobDone { tag: job.tag });
                    return;
                }
                if self.current_level() < lvl && self.running.is_some() {
                    self.preempt_with(now, Body::Work(job.tag), lvl, job.cost);
                } else if self.running.is_none() {
                    self.ready[lvl as usize].push_back((Body::Work(job.tag), job.cost));
                    self.pick_next(now);
                } else {
                    self.ready[lvl as usize].push_back((Body::Work(job.tag), job.cost));
                }
            }
            CpuCmd::SetSpeed(s) => {
                assert!(s.is_finite() && s > 0.0, "bad CPU speed {s}");
                self.speed = s;
                if let Some(r) = &mut self.running {
                    r.as_of = now;
                }
            }
        }
        let _ = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::drain_component;

    type C = Cpu<u64>;

    fn cpu() -> C {
        Cpu::new(CpuConfig::default())
    }

    fn push(c: &mut C, now: SimTime, tag: u64, cost: Dur, level: ExecLevel) -> Vec<CpuOut<u64>> {
        let mut sink = Vec::new();
        c.handle(now, CpuCmd::Push(Job { tag, cost, level }), &mut sink);
        sink
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut c = cpu();
        push(&mut c, SimTime::ZERO, 1, Dur::from_us(100), ExecLevel::User);
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        assert_eq!(
            evs,
            vec![(SimTime::from_us(100), CpuOut::JobDone { tag: 1 })]
        );
        assert!(c.is_idle());
        assert_eq!(c.stats().jobs_done, 1);
    }

    #[test]
    fn fifo_within_level() {
        let mut c = cpu();
        push(&mut c, SimTime::ZERO, 1, Dur::from_us(10), ExecLevel::User);
        push(&mut c, SimTime::ZERO, 2, Dur::from_us(10), ExecLevel::User);
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        let tags: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                CpuOut::JobDone { tag } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![1, 2]);
        assert_eq!(evs[1].0, SimTime::from_us(20));
    }

    #[test]
    fn higher_level_preempts_and_lower_resumes() {
        let mut c = cpu();
        push(&mut c, SimTime::ZERO, 1, Dur::from_us(100), ExecLevel::User);
        // At t=30 a kernel spl5 job arrives and preempts.
        push(
            &mut c,
            SimTime::from_us(30),
            2,
            Dur::from_us(50),
            ExecLevel::KernelSpl(5),
        );
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        assert_eq!(
            evs,
            vec![
                (SimTime::from_us(80), CpuOut::JobDone { tag: 2 }),
                (SimTime::from_us(150), CpuOut::JobDone { tag: 1 }),
            ]
        );
    }

    #[test]
    fn irq_dispatch_emits_entry_after_dispatch_cost() {
        let mut c = cpu();
        let mut sink = Vec::new();
        c.handle(SimTime::ZERO, CpuCmd::RaiseIrq { line: 2 }, &mut sink);
        assert!(sink.is_empty());
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        assert_eq!(
            evs,
            vec![(SimTime::from_us(25), CpuOut::IrqEntered { line: 2 })]
        );
        assert_eq!(c.stats().irqs_dispatched, 1);
    }

    #[test]
    fn spl_blocks_lower_irq_until_section_ends() {
        let mut c = cpu();
        // VCA is line 2 at level 6. Hold spl6 for 400 µs.
        push(
            &mut c,
            SimTime::ZERO,
            9,
            Dur::from_us(400),
            ExecLevel::KernelSpl(6),
        );
        let mut sink = Vec::new();
        c.handle(
            SimTime::from_us(10),
            CpuCmd::RaiseIrq { line: 2 },
            &mut sink,
        );
        let evs = drain_component(&mut c, SimTime::from_ms(2));
        // Handler entry = 400 (section end) + 25 dispatch = 425 µs.
        assert!(evs.contains(&(SimTime::from_us(400), CpuOut::JobDone { tag: 9 })));
        assert!(evs.contains(&(SimTime::from_us(425), CpuOut::IrqEntered { line: 2 })));
    }

    #[test]
    fn irq_preempts_user_immediately() {
        let mut c = cpu();
        push(
            &mut c,
            SimTime::ZERO,
            1,
            Dur::from_us(1000),
            ExecLevel::User,
        );
        let mut sink = Vec::new();
        c.handle(
            SimTime::from_us(100),
            CpuCmd::RaiseIrq { line: 3 },
            &mut sink,
        );
        let evs = drain_component(&mut c, SimTime::from_ms(2));
        assert!(evs.contains(&(SimTime::from_us(125), CpuOut::IrqEntered { line: 3 })));
        // User job finishes 25 µs late (the dispatch cost; handler body not
        // pushed in this test).
        assert!(evs.contains(&(SimTime::from_us(1025), CpuOut::JobDone { tag: 1 })));
    }

    #[test]
    fn nested_interrupts_by_level() {
        let mut c = cpu();
        let mut sink = Vec::new();
        // Line 3 (level 5) dispatches; mid-handler the clock line 4
        // (level 7) preempts it.
        c.handle(SimTime::ZERO, CpuCmd::RaiseIrq { line: 3 }, &mut sink);
        let evs = drain_component(&mut c, SimTime::from_us(25));
        assert_eq!(evs.len(), 1);
        // Push the line-3 handler body.
        push(
            &mut c,
            SimTime::from_us(25),
            33,
            Dur::from_us(200),
            ExecLevel::Irq(3),
        );
        c.handle(
            SimTime::from_us(50),
            CpuCmd::RaiseIrq { line: 4 },
            &mut sink,
        );
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        assert!(evs.contains(&(SimTime::from_us(75), CpuOut::IrqEntered { line: 4 })));
        // Body completes 25 µs late due to the nested dispatch.
        assert!(evs.contains(&(SimTime::from_us(250), CpuOut::JobDone { tag: 33 })));
    }

    #[test]
    fn equal_level_irq_does_not_nest() {
        let mut c = cpu();
        let mut sink = Vec::new();
        c.handle(SimTime::ZERO, CpuCmd::RaiseIrq { line: 3 }, &mut sink);
        let _ = drain_component(&mut c, SimTime::from_us(25));
        push(
            &mut c,
            SimTime::from_us(25),
            33,
            Dur::from_us(100),
            ExecLevel::Irq(3),
        );
        // Same line raises again while its handler body runs.
        c.handle(
            SimTime::from_us(30),
            CpuCmd::RaiseIrq { line: 3 },
            &mut sink,
        );
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        // Body finishes first, then the second dispatch happens.
        assert_eq!(
            evs,
            vec![
                (SimTime::from_us(125), CpuOut::JobDone { tag: 33 }),
                (SimTime::from_us(150), CpuOut::IrqEntered { line: 3 }),
            ]
        );
    }

    #[test]
    fn overrun_counted_when_raised_while_pending() {
        let mut c = cpu();
        // Block everything with spl7.
        push(
            &mut c,
            SimTime::ZERO,
            1,
            Dur::from_ms(1),
            ExecLevel::KernelSpl(7),
        );
        let mut sink = Vec::new();
        c.handle(SimTime::from_us(1), CpuCmd::RaiseIrq { line: 2 }, &mut sink);
        c.handle(SimTime::from_us(2), CpuCmd::RaiseIrq { line: 2 }, &mut sink);
        assert!(sink.contains(&CpuOut::IrqOverrun { line: 2 }));
        assert_eq!(c.stats().irq_overruns, 1);
    }

    #[test]
    fn speed_changes_stretch_execution() {
        let mut c = cpu();
        push(&mut c, SimTime::ZERO, 1, Dur::from_us(100), ExecLevel::User);
        let mut sink = Vec::new();
        // Halve speed at t=50: 50 µs of work remain, now taking 100 µs.
        c.handle(SimTime::from_us(50), CpuCmd::SetSpeed(0.5), &mut sink);
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        assert_eq!(
            evs,
            vec![(SimTime::from_us(150), CpuOut::JobDone { tag: 1 })]
        );
        // Restore speed; later jobs run at full rate again.
        c.handle(SimTime::from_us(150), CpuCmd::SetSpeed(1.0), &mut sink);
        push(
            &mut c,
            SimTime::from_us(150),
            2,
            Dur::from_us(10),
            ExecLevel::User,
        );
        let evs = drain_component(&mut c, SimTime::from_ms(1));
        assert_eq!(
            evs,
            vec![(SimTime::from_us(160), CpuOut::JobDone { tag: 2 })]
        );
    }

    #[test]
    fn zero_cost_job_completes_inline() {
        let mut c = cpu();
        let evs = push(&mut c, SimTime::ZERO, 5, Dur::ZERO, ExecLevel::User);
        assert_eq!(evs, vec![CpuOut::JobDone { tag: 5 }]);
        assert!(c.is_idle());
    }

    #[test]
    fn deep_preemption_stack_unwinds_in_order() {
        let mut c = cpu();
        push(
            &mut c,
            SimTime::ZERO,
            0,
            Dur::from_us(1000),
            ExecLevel::User,
        );
        push(
            &mut c,
            SimTime::from_us(10),
            1,
            Dur::from_us(1000),
            ExecLevel::KernelSpl(2),
        );
        push(
            &mut c,
            SimTime::from_us(20),
            2,
            Dur::from_us(1000),
            ExecLevel::KernelSpl(5),
        );
        push(
            &mut c,
            SimTime::from_us(30),
            3,
            Dur::from_us(1000),
            ExecLevel::KernelSpl(7),
        );
        let evs = drain_component(&mut c, SimTime::from_secs(1));
        let tags: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                CpuOut::JobDone { tag } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, vec![3, 2, 1, 0]);
    }
}
