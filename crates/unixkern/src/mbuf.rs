//! The mbuf pool.
//!
//! §2: "The UNIX model uses *mbufs* as a pool of buffers to transfer data
//! between the various layers of protocols. … the allocation of a mbuf can
//! be delayed an arbitrarily long time if the pool is exhausted at the time
//! of the request."
//!
//! The model tracks pool occupancy in mbuf units (128-byte mbufs with a
//! 112-byte data area, as in 4.3BSD). Interrupt-level allocations fail
//! immediately when the pool is exhausted (`M_DONTWAIT`); process-level
//! allocations queue and are satisfied FIFO as buffers are freed.

/// Bytes of payload per mbuf (4.3BSD small mbuf).
pub const MBUF_DATA: u32 = 112;

/// A handle to an allocated chain of mbufs carrying `len` bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MbufChain {
    /// Payload length carried.
    pub len: u32,
    /// Number of mbufs in the chain.
    pub count: u32,
}

impl MbufChain {
    /// Number of mbufs needed for `len` bytes of payload.
    ///
    /// Zero-length policy: a chain always occupies at least one mbuf.
    /// Even a payload-free message (a bare ACK, a control ioctl) carries
    /// protocol headers in the mbuf data area in 4.3BSD, so `MGET` is
    /// issued regardless of payload size — an "empty" allocation still
    /// draws one buffer from the pool and can be dropped or queued like
    /// any other.
    pub fn mbufs_for(len: u32) -> u32 {
        if len == 0 {
            return 1;
        }
        len.div_ceil(MBUF_DATA)
    }
}

/// Result of a process-level allocation request.
#[derive(Debug, PartialEq, Eq)]
pub enum AllocResult {
    /// The chain was allocated.
    Ok(MbufChain),
    /// The pool is exhausted; the request is queued under the given
    /// ticket and will be satisfied by [`MbufPool::free`].
    Wait(u64),
}

/// Pool statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MbufStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Interrupt-level allocation failures.
    pub drops: u64,
    /// Requests that had to wait.
    pub waits: u64,
    /// High-water mark of mbufs in use.
    pub peak_in_use: u32,
}

impl ctms_sim::Instrument for MbufStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("allocs", self.allocs);
        scope.counter("drops", self.drops);
        scope.counter("waits", self.waits);
        scope.gauge("peak_in_use", i64::from(self.peak_in_use));
    }
}

/// The pool. See module docs.
#[derive(Debug)]
pub struct MbufPool {
    capacity: u32,
    in_use: u32,
    waiters: std::collections::VecDeque<(u64, u32)>,
    next_ticket: u64,
    stats: MbufStats,
}

impl MbufPool {
    /// Creates a pool of `capacity` mbufs.
    pub fn new(capacity: u32) -> Self {
        MbufPool {
            capacity,
            in_use: 0,
            waiters: std::collections::VecDeque::new(),
            next_ticket: 1,
            stats: MbufStats::default(),
        }
    }

    /// mbufs currently allocated.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// mbufs currently free (not reserved for waiters).
    pub fn free_count(&self) -> u32 {
        self.capacity - self.in_use
    }

    /// Statistics so far.
    pub fn stats(&self) -> MbufStats {
        self.stats
    }

    fn take(&mut self, n: u32) -> bool {
        if self.in_use + n <= self.capacity {
            self.in_use += n;
            self.stats.peak_in_use = self.stats.peak_in_use.max(self.in_use);
            true
        } else {
            false
        }
    }

    /// Interrupt-level allocation (`M_DONTWAIT`): succeeds now or fails
    /// now. Fair-queue exception: pending waiters do *not* block interrupt
    /// allocations (as in BSD, interrupt allocations race ahead).
    pub fn alloc_nowait(&mut self, len: u32) -> Option<MbufChain> {
        let n = MbufChain::mbufs_for(len);
        if self.take(n) {
            self.stats.allocs += 1;
            Some(MbufChain { len, count: n })
        } else {
            self.stats.drops += 1;
            None
        }
    }

    /// Process-level allocation (`M_WAIT`): succeeds now or returns a
    /// ticket satisfied later by [`free`](Self::free). Requests queue
    /// behind earlier waiters.
    pub fn alloc_wait(&mut self, len: u32) -> AllocResult {
        let n = MbufChain::mbufs_for(len);
        if self.waiters.is_empty() && self.take(n) {
            self.stats.allocs += 1;
            return AllocResult::Ok(MbufChain { len, count: n });
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.waiters.push_back((ticket, n));
        self.stats.waits += 1;
        AllocResult::Wait(ticket)
    }

    /// Frees a chain and returns any waiter tickets now satisfied (FIFO).
    ///
    /// Convenience wrapper over [`free_into`](Self::free_into) that
    /// allocates a fresh result `Vec`; hot paths (the kernel frees a
    /// chain per delivered packet) should pass their own scratch buffer
    /// to `free_into` instead.
    pub fn free(&mut self, chain: MbufChain) -> Vec<(u64, MbufChain)> {
        let mut ready = Vec::new();
        self.free_into(chain, &mut ready);
        ready
    }

    /// Frees a chain, appending any waiter tickets now satisfied (FIFO)
    /// to `ready`. Allocation-free: the common no-waiter case returns
    /// immediately after the occupancy bookkeeping, and a caller-owned
    /// `ready` buffer means even the waiter case costs nothing once the
    /// buffer has grown to its peak.
    pub fn free_into(&mut self, chain: MbufChain, ready: &mut Vec<(u64, MbufChain)>) {
        assert!(
            chain.count <= self.in_use,
            "mbuf double free: freeing {} with {} in use",
            chain.count,
            self.in_use
        );
        self.in_use -= chain.count;
        if self.waiters.is_empty() {
            return;
        }
        while let Some(&(ticket, n)) = self.waiters.front() {
            if self.take(n) {
                self.waiters.pop_front();
                self.stats.allocs += 1;
                ready.push((
                    ticket,
                    MbufChain {
                        len: n * MBUF_DATA,
                        count: n,
                    },
                ));
            } else {
                break;
            }
        }
    }
}

impl ctms_sim::Persist for MbufPool {
    /// Dynamic pool state: occupancy, the waiter queue, the ticket
    /// allocator and counters. `capacity` is structural but cheap to
    /// verify, so the restore checks it.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.u32(self.capacity);
        enc.u32(self.in_use);
        enc.seq_len(self.waiters.len());
        for (ticket, n) in &self.waiters {
            enc.u64(*ticket);
            enc.u32(*n);
        }
        enc.u64(self.next_ticket);
        enc.u64(self.stats.allocs);
        enc.u64(self.stats.drops);
        enc.u64(self.stats.waits);
        enc.u32(self.stats.peak_in_use);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        let cap = dec.u32()?;
        if cap != self.capacity {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "mbuf pool checkpoint capacity {cap}, rebuilt pool has {}",
                self.capacity
            )));
        }
        self.in_use = dec.u32()?;
        self.waiters = dec.seq(|d| Ok((d.u64()?, d.u32()?)))?.into_iter().collect();
        self.next_ticket = dec.u64()?;
        self.stats = MbufStats {
            allocs: dec.u64()?,
            drops: dec.u64()?,
            waits: dec.u64()?,
            peak_in_use: dec.u32()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_chain_still_occupies_one_mbuf() {
        // Explicit policy, not an arithmetic accident: header-only
        // messages draw a buffer from the pool like any other.
        assert_eq!(MbufChain::mbufs_for(0), 1);
        let mut p = MbufPool::new(1);
        let c = p.alloc_nowait(0).expect("one mbuf free");
        assert_eq!(c.count, 1);
        assert_eq!(p.in_use(), 1);
        // Pool of one is now exhausted — a second empty chain drops.
        assert!(p.alloc_nowait(0).is_none());
        assert_eq!(p.stats().drops, 1);
        drop(p.free(c));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn chain_sizing() {
        assert_eq!(MbufChain::mbufs_for(0), 1);
        assert_eq!(MbufChain::mbufs_for(1), 1);
        assert_eq!(MbufChain::mbufs_for(112), 1);
        assert_eq!(MbufChain::mbufs_for(113), 2);
        // A 2000-byte CTMSP packet takes 18 mbufs.
        assert_eq!(MbufChain::mbufs_for(2000), 18);
    }

    #[test]
    fn nowait_drops_on_exhaustion() {
        let mut p = MbufPool::new(20);
        let c = p.alloc_nowait(2000).expect("fits");
        assert_eq!(c.count, 18);
        assert!(p.alloc_nowait(2000).is_none());
        assert_eq!(p.stats().drops, 1);
        assert_eq!(p.free_count(), 2);
    }

    #[test]
    fn wait_queues_and_frees_satisfy_fifo() {
        let mut p = MbufPool::new(20);
        let c = p.alloc_nowait(2000).expect("fits");
        let w1 = p.alloc_wait(1000);
        let w2 = p.alloc_wait(100);
        let (AllocResult::Wait(t1), AllocResult::Wait(t2)) = (w1, w2) else {
            panic!("both should wait");
        };
        let ready = p.free(c);
        let tickets: Vec<u64> = ready.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, vec![t1, t2]);
        // 1000 bytes -> 9 mbufs, 100 bytes -> 1 mbuf.
        assert_eq!(ready[0].1.count, 9);
        assert_eq!(ready[1].1.count, 1);
        assert_eq!(p.in_use(), 10);
        assert_eq!(p.stats().waits, 2);
    }

    #[test]
    fn waiters_block_later_process_allocs_but_not_interrupt() {
        let mut p = MbufPool::new(20);
        let big = p.alloc_nowait(2000).expect("fits");
        let AllocResult::Wait(_) = p.alloc_wait(500) else {
            panic!("should wait");
        };
        // A later process alloc queues even though 2 mbufs are free.
        assert!(matches!(p.alloc_wait(100), AllocResult::Wait(_)));
        // But an interrupt-level alloc of 1 mbuf still succeeds.
        assert!(p.alloc_nowait(100).is_some());
        drop(p.free(big));
    }

    #[test]
    fn partial_satisfaction_stops_at_first_blocked() {
        let mut p = MbufPool::new(10);
        let a = p.alloc_nowait(500).expect("5 mbufs");
        let b = p.alloc_nowait(500).expect("5 mbufs");
        let AllocResult::Wait(_) = p.alloc_wait(800) else {
            panic!("wait"); // needs 8
        };
        let AllocResult::Wait(_) = p.alloc_wait(100) else {
            panic!("wait"); // needs 1, but behind the 8
        };
        let ready = p.free(a);
        assert!(ready.is_empty(), "head waiter needs 8, only 5 free");
        let ready = p.free(b);
        assert_eq!(ready.len(), 2, "both satisfied once 10 free");
    }

    #[test]
    fn free_into_covers_no_waiter_and_waiter_paths() {
        let mut p = MbufPool::new(20);
        let mut scratch: Vec<(u64, MbufChain)> = Vec::with_capacity(4);

        // No waiters: free_into returns early and appends nothing.
        let a = p.alloc_nowait(500).expect("5 mbufs");
        p.free_into(a, &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(p.in_use(), 0);

        // Waiters: satisfied FIFO into the same (reused) scratch buffer,
        // which must not lose earlier contents.
        let big = p.alloc_nowait(2000).expect("18 mbufs");
        let AllocResult::Wait(t1) = p.alloc_wait(1000) else {
            panic!("should wait");
        };
        let AllocResult::Wait(t2) = p.alloc_wait(100) else {
            panic!("should wait");
        };
        scratch.push((999, MbufChain { len: 0, count: 1 })); // pre-existing entry
        p.free_into(big, &mut scratch);
        let tickets: Vec<u64> = scratch.iter().map(|(t, _)| *t).collect();
        assert_eq!(tickets, vec![999, t1, t2], "appends, never clears");
        assert_eq!(scratch[1].1.count, 9);
        assert_eq!(scratch[2].1.count, 1);
        assert_eq!(p.in_use(), 10);
    }

    #[test]
    fn peak_tracking() {
        let mut p = MbufPool::new(100);
        let a = p.alloc_nowait(2000).expect("18");
        let b = p.alloc_nowait(2000).expect("18");
        drop(p.free(a));
        assert_eq!(p.stats().peak_in_use, 36);
        drop(p.free(b));
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let mut p = MbufPool::new(10);
        let _ = p.free(MbufChain {
            len: 2000,
            count: 18,
        });
    }
}
