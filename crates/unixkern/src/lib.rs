//! # ctms-unixkern — the AOS 4.3 (BSD) kernel data-path model
//!
//! The paper's §2 diagnoses the stock UNIX device-to-device transfer model
//! (user process + 4–6 data copies, mbuf pool delays, per-packet protocol
//! cost) as unable to sustain 150 KByte/s; its prototype moves the data
//! path into the kernel with direct driver-to-driver transfers. This crate
//! models both worlds:
//!
//! * [`mbuf`] — the buffer pool with interrupt-level drops and
//!   process-level waits,
//! * [`driver`] — the driver framework, including the inter-driver call
//!   handles of the paper's modification,
//! * [`proc`] — user processes as deterministic programs (the stock path),
//! * [`socket`] — UDP-lite/TCP-lite baseline transports,
//! * [`kernel`] — the kernel proper: dispatch, scheduling, protocol input,
//!   clock,
//! * [`host`] — one machine + kernel pair, the unit the testbed composes.

pub mod driver;
pub mod host;
pub mod ids;
pub mod kernel;
pub mod mbuf;
pub mod proc;
pub mod socket;

pub use driver::{Ctx, Driver, DriverCall, KernOut, OpResult, Pkt, WakeKind};
pub use host::{Host, HostCmd, HostOut};
pub use ids::{DriverId, DropSite, KTag, MeasurePoint, Pid, Port};
pub use kernel::{
    KernCalib, KernCmd, KernConfig, KernStats, Kernel, KERNEL_ID, LINE_CLOCK, LINE_DISK, LINE_TR,
    LINE_VCA,
};
pub use mbuf::{AllocResult, MbufChain, MbufPool, MbufStats, MBUF_DATA};
pub use proc::{Program, Step};
pub use socket::{MetaKind, Sock, SockMeta, SockProto, SockStats, TcpState};
