//! User processes as deterministic programs.
//!
//! §2: "the only method of transfer between two devices is to create a
//! user level process that reads the data from one device and writes the
//! data to a second device". The stock-UNIX baseline (experiment E1) runs
//! exactly such processes; background load in "multiprocessing mode" is
//! other compute/sleep programs sharing the CPU.
//!
//! A program is a list of [`Step`]s executed by the kernel: each step
//! expands into CPU jobs (syscall entry, copyin/copyout, protocol
//! processing) and blocking points. Compute bursts are chunked at the
//! scheduling quantum so processes timeshare.

use crate::ids::{DriverId, Pid, Port};
use ctms_sim::Dur;

/// One step of a user program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Burn user-mode CPU for the given duration.
    Compute(Dur),
    /// `read(dev, bytes)` — blocks until the driver has data, then pays a
    /// kernel→user copy.
    ReadDev {
        /// Device to read.
        dev: DriverId,
        /// Bytes per call.
        bytes: u32,
    },
    /// `write(dev, bytes)` — pays a user→kernel copy, blocks if the
    /// device's buffer is full.
    WriteDev {
        /// Device to write.
        dev: DriverId,
        /// Bytes per call.
        bytes: u32,
    },
    /// `send(sock, bytes)` — copyin, mbuf allocation (may wait), protocol
    /// processing, interface output.
    SockSend {
        /// Local socket port.
        port: Port,
        /// Payload bytes.
        bytes: u32,
    },
    /// `recv(sock)` — blocks until a datagram arrives, then copies out.
    SockRecv {
        /// Local socket port.
        port: Port,
    },
    /// Sleep for a fixed duration.
    Sleep(Dur),
    /// `ioctl(dev, req)`.
    Ioctl {
        /// Device.
        dev: DriverId,
        /// Request code (driver-defined).
        req: u32,
    },
}

/// A user program: a step list, optionally looping forever.
#[derive(Clone, Debug)]
pub struct Program {
    /// The steps.
    pub steps: Vec<Step>,
    /// Restart from step 0 after the last step.
    pub looping: bool,
}

impl Program {
    /// A one-shot program.
    pub fn once(steps: Vec<Step>) -> Self {
        Program {
            steps,
            looping: false,
        }
    }

    /// A forever-looping program.
    ///
    /// # Panics
    ///
    /// Panics if no step can block or take time: a zero-cost infinite
    /// loop would livelock the simulation.
    pub fn forever(steps: Vec<Step>) -> Self {
        let takes_time = steps.iter().any(|s| match s {
            Step::Compute(d) | Step::Sleep(d) => !d.is_zero(),
            Step::ReadDev { .. }
            | Step::WriteDev { .. }
            | Step::SockSend { .. }
            | Step::SockRecv { .. } => true,
            Step::Ioctl { .. } => false,
        });
        assert!(takes_time, "looping program must block or consume time");
        Program {
            steps,
            looping: true,
        }
    }
}

/// Where a blocked process is waiting (scheduler bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    DevRead(DriverId),
    DevWrite(DriverId),
    Mbuf(u64),
    SockData(Port),
    SockSpace(Port),
    Sleeping,
}

/// Continuation stage of the job currently on the CPU for a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Stage {
    Compute { remaining: Dur },
    SyscallEntry,
    Copyout,
    CopyinDev,
    CopyinSock,
    Proto,
    AfterWake(crate::driver::WakeKind),
}

/// Process run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PState {
    Ready,
    OnCpu(Stage),
    Blocked(Wait),
    Exited,
}

/// A process.
#[derive(Debug)]
pub(crate) struct Proc {
    #[allow(dead_code)] // kept for diagnostics/debug dumps
    pub pid: Pid,
    pub program: Program,
    pub pc: usize,
    pub state: PState,
    /// Guards stale job completions after a state change.
    pub seq: u64,
    /// Payload length granted by a satisfied mbuf wait, pending protocol
    /// processing.
    pub pending_chain: Option<crate::mbuf::MbufChain>,
}

impl Proc {
    pub fn step(&self) -> Step {
        self.program.steps[self.pc]
    }
}

fn persist_wake_kind(enc: &mut ctms_sim::Enc, k: crate::driver::WakeKind) {
    use crate::driver::WakeKind as W;
    match k {
        W::DevRead { bytes } => {
            enc.u8(0);
            enc.u32(bytes);
        }
        W::DevWrite => enc.u8(1),
        W::SockData => enc.u8(2),
        W::SockSpace => enc.u8(3),
        W::Mbuf => enc.u8(4),
        W::Timer => enc.u8(5),
    }
}

fn restore_wake_kind(
    dec: &mut ctms_sim::Dec<'_>,
) -> Result<crate::driver::WakeKind, ctms_sim::PersistError> {
    use crate::driver::WakeKind as W;
    Ok(match dec.u8()? {
        0 => W::DevRead { bytes: dec.u32()? },
        1 => W::DevWrite,
        2 => W::SockData,
        3 => W::SockSpace,
        4 => W::Mbuf,
        5 => W::Timer,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "wake kind",
                tag,
            })
        }
    })
}

fn persist_stage(enc: &mut ctms_sim::Enc, s: Stage) {
    match s {
        Stage::Compute { remaining } => {
            enc.u8(0);
            enc.dur(remaining);
        }
        Stage::SyscallEntry => enc.u8(1),
        Stage::Copyout => enc.u8(2),
        Stage::CopyinDev => enc.u8(3),
        Stage::CopyinSock => enc.u8(4),
        Stage::Proto => enc.u8(5),
        Stage::AfterWake(k) => {
            enc.u8(6);
            persist_wake_kind(enc, k);
        }
    }
}

fn restore_stage(dec: &mut ctms_sim::Dec<'_>) -> Result<Stage, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => Stage::Compute {
            remaining: dec.dur()?,
        },
        1 => Stage::SyscallEntry,
        2 => Stage::Copyout,
        3 => Stage::CopyinDev,
        4 => Stage::CopyinSock,
        5 => Stage::Proto,
        6 => Stage::AfterWake(restore_wake_kind(dec)?),
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "proc stage",
                tag,
            })
        }
    })
}

fn persist_wait(enc: &mut ctms_sim::Enc, w: Wait) {
    match w {
        Wait::DevRead(d) => {
            enc.u8(0);
            enc.u8(d.0);
        }
        Wait::DevWrite(d) => {
            enc.u8(1);
            enc.u8(d.0);
        }
        Wait::Mbuf(ticket) => {
            enc.u8(2);
            enc.u64(ticket);
        }
        Wait::SockData(p) => {
            enc.u8(3);
            enc.u16(p.0);
        }
        Wait::SockSpace(p) => {
            enc.u8(4);
            enc.u16(p.0);
        }
        Wait::Sleeping => enc.u8(5),
    }
}

fn restore_wait(dec: &mut ctms_sim::Dec<'_>) -> Result<Wait, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => Wait::DevRead(DriverId(dec.u8()?)),
        1 => Wait::DevWrite(DriverId(dec.u8()?)),
        2 => Wait::Mbuf(dec.u64()?),
        3 => Wait::SockData(Port(dec.u16()?)),
        4 => Wait::SockSpace(Port(dec.u16()?)),
        5 => Wait::Sleeping,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "proc wait",
                tag,
            })
        }
    })
}

/// Appends one process's dynamic state (the program is structural).
pub(crate) fn persist_proc(enc: &mut ctms_sim::Enc, p: &Proc) {
    enc.u32(p.pid.0);
    enc.u32(p.pc as u32);
    match p.state {
        PState::Ready => enc.u8(0),
        PState::OnCpu(s) => {
            enc.u8(1);
            persist_stage(enc, s);
        }
        PState::Blocked(w) => {
            enc.u8(2);
            persist_wait(enc, w);
        }
        PState::Exited => enc.u8(3),
    }
    enc.u64(p.seq);
    enc.opt(p.pending_chain.as_ref(), |e, c| {
        e.u32(c.len);
        e.u32(c.count);
    });
}

/// Restores one process's dynamic state onto its rebuilt slot.
pub(crate) fn restore_proc(
    dec: &mut ctms_sim::Dec<'_>,
    p: &mut Proc,
) -> Result<(), ctms_sim::PersistError> {
    let pid = dec.u32()?;
    if pid != p.pid.0 {
        return Err(ctms_sim::PersistError::mismatch(format!(
            "process checkpoint pid {pid}, rebuilt slot has {}",
            p.pid.0
        )));
    }
    let pc = dec.u32()? as usize;
    // An exited one-shot process parks at pc == steps.len().
    if pc > p.program.steps.len() {
        return Err(ctms_sim::PersistError::mismatch(format!(
            "process {pid} pc {pc} out of range for a {}-step program",
            p.program.steps.len()
        )));
    }
    p.pc = pc;
    p.state = match dec.u8()? {
        0 => PState::Ready,
        1 => PState::OnCpu(restore_stage(dec)?),
        2 => PState::Blocked(restore_wait(dec)?),
        3 => PState::Exited,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "proc state",
                tag,
            })
        }
    };
    p.seq = dec.u64()?;
    p.pending_chain = dec.opt(|d| {
        Ok(crate::mbuf::MbufChain {
            len: d.u32()?,
            count: d.u32()?,
        })
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forever_requires_time() {
        let p = Program::forever(vec![Step::Sleep(Dur::from_ms(1))]);
        assert!(p.looping);
    }

    #[test]
    #[should_panic(expected = "must block or consume time")]
    fn zero_cost_loop_rejected() {
        let _ = Program::forever(vec![Step::Ioctl {
            dev: DriverId(0),
            req: 1,
        }]);
    }

    #[test]
    fn once_program() {
        let p = Program::once(vec![Step::Compute(Dur::from_ms(5))]);
        assert!(!p.looping);
        assert_eq!(p.steps.len(), 1);
    }
}
