//! User processes as deterministic programs.
//!
//! §2: "the only method of transfer between two devices is to create a
//! user level process that reads the data from one device and writes the
//! data to a second device". The stock-UNIX baseline (experiment E1) runs
//! exactly such processes; background load in "multiprocessing mode" is
//! other compute/sleep programs sharing the CPU.
//!
//! A program is a list of [`Step`]s executed by the kernel: each step
//! expands into CPU jobs (syscall entry, copyin/copyout, protocol
//! processing) and blocking points. Compute bursts are chunked at the
//! scheduling quantum so processes timeshare.

use crate::ids::{DriverId, Pid, Port};
use ctms_sim::Dur;

/// One step of a user program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Burn user-mode CPU for the given duration.
    Compute(Dur),
    /// `read(dev, bytes)` — blocks until the driver has data, then pays a
    /// kernel→user copy.
    ReadDev {
        /// Device to read.
        dev: DriverId,
        /// Bytes per call.
        bytes: u32,
    },
    /// `write(dev, bytes)` — pays a user→kernel copy, blocks if the
    /// device's buffer is full.
    WriteDev {
        /// Device to write.
        dev: DriverId,
        /// Bytes per call.
        bytes: u32,
    },
    /// `send(sock, bytes)` — copyin, mbuf allocation (may wait), protocol
    /// processing, interface output.
    SockSend {
        /// Local socket port.
        port: Port,
        /// Payload bytes.
        bytes: u32,
    },
    /// `recv(sock)` — blocks until a datagram arrives, then copies out.
    SockRecv {
        /// Local socket port.
        port: Port,
    },
    /// Sleep for a fixed duration.
    Sleep(Dur),
    /// `ioctl(dev, req)`.
    Ioctl {
        /// Device.
        dev: DriverId,
        /// Request code (driver-defined).
        req: u32,
    },
}

/// A user program: a step list, optionally looping forever.
#[derive(Clone, Debug)]
pub struct Program {
    /// The steps.
    pub steps: Vec<Step>,
    /// Restart from step 0 after the last step.
    pub looping: bool,
}

impl Program {
    /// A one-shot program.
    pub fn once(steps: Vec<Step>) -> Self {
        Program {
            steps,
            looping: false,
        }
    }

    /// A forever-looping program.
    ///
    /// # Panics
    ///
    /// Panics if no step can block or take time: a zero-cost infinite
    /// loop would livelock the simulation.
    pub fn forever(steps: Vec<Step>) -> Self {
        let takes_time = steps.iter().any(|s| match s {
            Step::Compute(d) | Step::Sleep(d) => !d.is_zero(),
            Step::ReadDev { .. }
            | Step::WriteDev { .. }
            | Step::SockSend { .. }
            | Step::SockRecv { .. } => true,
            Step::Ioctl { .. } => false,
        });
        assert!(takes_time, "looping program must block or consume time");
        Program {
            steps,
            looping: true,
        }
    }
}

/// Where a blocked process is waiting (scheduler bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wait {
    DevRead(DriverId),
    DevWrite(DriverId),
    Mbuf(u64),
    SockData(Port),
    SockSpace(Port),
    Sleeping,
}

/// Continuation stage of the job currently on the CPU for a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Stage {
    Compute { remaining: Dur },
    SyscallEntry,
    Copyout,
    CopyinDev,
    CopyinSock,
    Proto,
    AfterWake(crate::driver::WakeKind),
}

/// Process run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PState {
    Ready,
    OnCpu(Stage),
    Blocked(Wait),
    Exited,
}

/// A process.
#[derive(Debug)]
pub(crate) struct Proc {
    #[allow(dead_code)] // kept for diagnostics/debug dumps
    pub pid: Pid,
    pub program: Program,
    pub pc: usize,
    pub state: PState,
    /// Guards stale job completions after a state change.
    pub seq: u64,
    /// Payload length granted by a satisfied mbuf wait, pending protocol
    /// processing.
    pub pending_chain: Option<crate::mbuf::MbufChain>,
}

impl Proc {
    pub fn step(&self) -> Step {
        self.program.steps[self.pc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forever_requires_time() {
        let p = Program::forever(vec![Step::Sleep(Dur::from_ms(1))]);
        assert!(p.looping);
    }

    #[test]
    #[should_panic(expected = "must block or consume time")]
    fn zero_cost_loop_rejected() {
        let _ = Program::forever(vec![Step::Ioctl {
            dev: DriverId(0),
            req: 1,
        }]);
    }

    #[test]
    fn once_program() {
        let p = Program::once(vec![Step::Compute(Dur::from_ms(5))]);
        assert!(!p.looping);
        assert_eq!(p.steps.len(), 1);
    }
}
