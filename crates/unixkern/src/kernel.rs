//! The kernel: driver host, process scheduler, socket/protocol engine,
//! clock, and timers.
//!
//! The kernel is a passive [`Component`]. Its commands are the machine's
//! outputs (interrupt entries, job/DMA completions) and ring events; its
//! outputs drive the machine (CPU jobs, DMA starts, IRQ raises) and the
//! ring (frame submissions), and report measurement-point crossings,
//! drops, and deliveries to the testbed.

use crate::driver::{Ctx, Driver, DriverCall, KernOut, OpResult, Pkt, WakeKind};
use crate::ids::{DriverId, DropSite, KTag, Pid, Port};
use crate::mbuf::{AllocResult, MbufChain, MbufPool, MbufStats};
use crate::proc::{PState, Proc, Program, Stage, Step, Wait};
use crate::socket::{MetaKind, Sock, SockMeta, SockProto, ACK_LEN, TCP_OVERHEAD, UDP_OVERHEAD};
use ctms_rtpc::{CopyCost, ExecLevel, MachCmd, MemRegion};
use ctms_sim::{Component, Dur, Pcg32, SimTime};
use ctms_tokenring::{Frame, Proto, StationId};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// IRQ line assignments for the testbed hosts.
pub const LINE_DISK: u8 = 1;
/// The VCA adapter's line (level 6 with the default CPU config).
pub const LINE_VCA: u8 = 2;
/// The Token Ring adapter's line (level 5).
pub const LINE_TR: u8 = 3;
/// The system clock's line (level 7).
pub const LINE_CLOCK: u8 = 4;

/// Sentinel driver id for kernel-originated inter-driver calls.
pub const KERNEL_ID: DriverId = DriverId(255);

/// Calibrated kernel path costs. Each default cites its origin.
#[derive(Clone, Copy, Debug)]
pub struct KernCalib {
    /// CPU copy costs (§5.3's 1 µs/byte to IO Channel Memory).
    pub copy: CopyCost,
    /// Trap + syscall dispatch.
    pub syscall_entry: Dur,
    /// Process context switch / wakeup path.
    pub context_switch: Dur,
    /// Scheduling quantum for compute bursts.
    pub quantum: Dur,
    /// Per-packet transmit protocol cost (udp_output + ip_output +
    /// per-packet Token Ring header recomputation the paper's §3 calls
    /// out: "IP requests the Token Ring header be recomputed for each
    /// packet transmitted").
    pub proto_tx_pkt: Dur,
    /// Per-packet receive protocol cost (softnet dispatch + ip_input +
    /// udp_input).
    pub proto_rx_pkt: Dur,
    /// Checksum cost per payload byte (paid on both sides).
    pub checksum_per_byte: Dur,
    /// TCP-lite ack generation/processing cost.
    pub tcp_ack_cost: Dur,
    /// hardclock() period (100 Hz).
    pub hardclock_period: Dur,
    /// hardclock() handler body cost at clock level.
    pub hardclock_cost: Dur,
    /// Run softclock() every N ticks.
    pub softclock_every: u64,
    /// softclock() callout-processing cost at spl1.
    pub softclock_cost: Dur,
    /// TCP-lite retransmission timeout.
    pub retx_timeout: Dur,
}

impl Default for KernCalib {
    fn default() -> Self {
        KernCalib {
            copy: CopyCost::default(),
            syscall_entry: Dur::from_us(100),
            context_switch: Dur::from_us(400),
            quantum: Dur::from_ms(10),
            proto_tx_pkt: Dur::from_us(250),
            proto_rx_pkt: Dur::from_us(200),
            checksum_per_byte: Dur::from_ns(250),
            tcp_ack_cost: Dur::from_us(80),
            hardclock_period: Dur::from_ms(10),
            hardclock_cost: Dur::from_us(120),
            softclock_every: 4,
            softclock_cost: Dur::from_us(300),
            retx_timeout: Dur::from_secs(1),
        }
    }
}

/// Kernel configuration.
#[derive(Clone, Copy, Debug)]
pub struct KernConfig {
    /// Path cost calibration.
    pub calib: KernCalib,
    /// mbuf pool size (4.3BSD-era pools were small; exhaustion is a real
    /// failure mode of E1).
    pub mbuf_capacity: u32,
    /// Run the 100 Hz clock (off only for instrument-calibration tests).
    pub clock_enabled: bool,
}

impl Default for KernConfig {
    fn default() -> Self {
        KernConfig {
            calib: KernCalib::default(),
            mbuf_capacity: 2048,
            clock_enabled: true,
        }
    }
}

/// Commands into the kernel (machine outputs + ring events).
#[derive(Clone, Debug)]
pub enum KernCmd {
    /// Interrupt dispatch completed on `line`.
    IrqEntered {
        /// The line.
        line: u8,
    },
    /// A CPU job completed.
    JobDone {
        /// Its tag.
        tag: KTag,
    },
    /// A DMA completed.
    DmaDone {
        /// Its tag.
        tag: KTag,
    },
    /// A frame addressed to this host arrived.
    RingDelivered {
        /// The frame.
        frame: Frame,
    },
    /// The adapter finished transmitting a frame.
    RingStripped {
        /// Frame tag.
        tag: u64,
        /// Copied-bit ground truth.
        delivered: bool,
    },
    /// Inject an inter-driver call (tests, workload glue).
    Call {
        /// Target driver.
        driver: DriverId,
        /// The call.
        call: DriverCall,
    },
}

#[derive(Debug)]
enum TimerTarget {
    Driver(DriverId, u64),
    Hardclock,
    ProcSleep(Pid),
    TcpRetx(Port),
}

/// One armed timer. The kernel only ever arms timers and pops the
/// earliest (nothing cancels by handle), so they live in a binary
/// min-heap: `next_deadline` — called by the harness scheduler on every
/// reschedule of the host — is then a single array read instead of a
/// tree descent, and the per-tick hardclock re-arm is a cheap sift.
/// `(at, seq)` is unique (`seq` increments per arm), so pop order is
/// exactly the old `BTreeMap`'s iteration order.
#[derive(Debug)]
struct Timer {
    at: SimTime,
    seq: u64,
    target: TimerTarget,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    /// Reversed on `(at, seq)`, so `BinaryHeap` (a max-heap) pops the
    /// earliest timer first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Debug)]
enum KernJob {
    SoftnetRx(Pkt),
    HardclockBody,
    SoftclockBody,
}

#[derive(Debug)]
enum Work {
    Call {
        from: DriverId,
        to: DriverId,
        call: DriverCall,
    },
    Wake {
        pid: Pid,
        kind: WakeKind,
    },
    IpIn(Pkt),
    MbufReady {
        ticket: u64,
        chain: MbufChain,
    },
}

/// Kernel counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernStats {
    /// Packets through the softnet input path.
    pub softnet_pkts: u64,
    /// Received packets matching no socket (background traffic).
    pub unmatched_pkts: u64,
    /// TCP-lite out-of-order segments dropped (go-back-N).
    pub tcp_ooo_drops: u64,
    /// Clock ticks handled.
    pub ticks: u64,
    /// Acks transmitted.
    pub acks_tx: u64,
    /// Retransmissions sent.
    pub retx: u64,
}

impl ctms_sim::Instrument for KernStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("softnet_pkts", self.softnet_pkts);
        scope.counter("unmatched_pkts", self.unmatched_pkts);
        scope.counter("tcp_ooo_drops", self.tcp_ooo_drops);
        scope.counter("ticks", self.ticks);
        scope.counter("acks_tx", self.acks_tx);
        scope.counter("retx", self.retx);
    }
}

/// The kernel. See module docs.
pub struct Kernel {
    cfg: KernConfig,
    drivers: Vec<Option<Box<dyn Driver>>>,
    line_map: [Option<DriverId>; ctms_rtpc::IRQ_LINES],
    net_if: Option<DriverId>,
    mbufs: MbufPool,
    rng: Pcg32,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
    procs: Vec<Proc>,
    socks: HashMap<u16, Sock>,
    /// In-flight kernel jobs keyed by token, sorted ascending. Tokens
    /// are handed out monotonically and few jobs are live at once, so a
    /// sorted vec beats a hash map on this per-job path.
    kern_jobs: Vec<(u64, KernJob)>,
    kern_job_seq: u64,
    mbuf_waiters: HashMap<u64, Pid>,
    work: VecDeque<Work>,
    stats: KernStats,
    booted: bool,
    /// Reusable dispatch buffers (see [`Kernel::with_driver`]): drained
    /// after every dispatch, capacity retained, so servicing a driver in
    /// steady state allocates nothing.
    scratch: DispatchScratch,
}

/// The side-effect buffers one driver dispatch fills (via `Ctx`) and the
/// kernel merges into its work queue afterwards. Held by the kernel and
/// reused across dispatches.
#[derive(Default)]
struct DispatchScratch {
    calls: Vec<(DriverId, DriverCall)>,
    wakes: Vec<(Pid, WakeKind)>,
    timers: Vec<(SimTime, DriverId, u64)>,
    ip_in: Vec<Pkt>,
    mbuf_ready: Vec<(u64, MbufChain)>,
}

impl Kernel {
    /// Creates a kernel.
    pub fn new(cfg: KernConfig, rng: Pcg32) -> Self {
        Kernel {
            mbufs: MbufPool::new(cfg.mbuf_capacity),
            cfg,
            drivers: Vec::new(),
            line_map: [None; ctms_rtpc::IRQ_LINES],
            net_if: None,
            rng,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            procs: Vec::new(),
            socks: HashMap::new(),
            kern_jobs: Vec::new(),
            kern_job_seq: 0,
            mbuf_waiters: HashMap::new(),
            work: VecDeque::new(),
            stats: KernStats::default(),
            booted: false,
            scratch: DispatchScratch::default(),
        }
    }

    /// Registers a driver, optionally attaching it to an interrupt line.
    pub fn add_driver(&mut self, driver: Box<dyn Driver>, line: Option<u8>) -> DriverId {
        let id = DriverId(self.drivers.len() as u8);
        self.drivers.push(Some(driver));
        if let Some(l) = line {
            assert!(
                self.line_map[l as usize].is_none(),
                "line {l} already attached"
            );
            self.line_map[l as usize] = Some(id);
        }
        id
    }

    /// Declares which driver is the network interface (receives ring
    /// events and `NetOutput` calls).
    pub fn set_net_if(&mut self, id: DriverId) {
        self.net_if = Some(id);
    }

    /// Creates a socket endpoint.
    pub fn add_sock(&mut self, sock: Sock) {
        let port = sock.port.0;
        assert!(
            self.socks.insert(port, sock).is_none(),
            "port {port} already bound"
        );
    }

    /// Creates a process; it starts running at boot.
    pub fn add_proc(&mut self, program: Program) -> Pid {
        let pid = Pid(self.procs.len() as u32);
        assert!(!program.steps.is_empty(), "empty program");
        self.procs.push(Proc {
            pid,
            program,
            pc: 0,
            state: PState::Ready,
            seq: 0,
            pending_chain: None,
        });
        pid
    }

    /// Immutable driver downcast (post-run statistics extraction).
    pub fn driver_ref<T: 'static>(&self, id: DriverId) -> Option<&T> {
        self.drivers[id.0 as usize]
            .as_deref()
            .and_then(|d| d.as_any().downcast_ref::<T>())
    }

    /// Mutable driver downcast.
    pub fn driver_mut<T: 'static>(&mut self, id: DriverId) -> Option<&mut T> {
        self.drivers[id.0 as usize]
            .as_deref_mut()
            .and_then(|d| d.as_any_mut().downcast_mut::<T>())
    }

    /// Socket state (stats, buffer level).
    pub fn sock(&self, port: Port) -> Option<&Sock> {
        self.socks.get(&port.0)
    }

    /// Kernel counters.
    pub fn stats(&self) -> KernStats {
        self.stats
    }

    /// mbuf pool counters.
    pub fn mbuf_stats(&self) -> MbufStats {
        self.mbufs.stats()
    }

    /// Publishes the kernel's whole metric tree into `scope`: its own
    /// counters at the root, the mbuf pool under `mbuf`, sockets under
    /// `sock{port}` (ascending port order), and drivers under
    /// `drv{id}.{name}` (registration order). Ordering is fixed so the
    /// registry walk is deterministic.
    pub fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
        {
            let mut mbuf = scope.scope("mbuf");
            self.mbufs.stats().publish(&mut mbuf);
            mbuf.gauge("in_use", i64::from(self.mbufs.in_use()));
        }
        let mut ports: Vec<u16> = self.socks.keys().copied().collect();
        ports.sort_unstable();
        for port in ports {
            let sock = &self.socks[&port];
            let mut s = scope.scope(&format!("sock{port}"));
            sock.stats.publish(&mut s);
            s.gauge("rcv_bytes", i64::from(sock.rcv_bytes));
        }
        for (k, slot) in self.drivers.iter().enumerate() {
            if let Some(d) = slot.as_deref() {
                let mut s = scope.scope(&format!("drv{k}.{}", d.name()));
                d.publish_telemetry(&mut s);
            }
        }
    }

    /// Whether a process has exited.
    pub fn proc_exited(&self, pid: Pid) -> bool {
        self.procs[pid.0 as usize].state == PState::Exited
    }

    fn calib(&self) -> KernCalib {
        self.cfg.calib
    }

    fn arm(&mut self, at: SimTime, target: TimerTarget) {
        self.timer_seq += 1;
        self.timers.push(Timer {
            at,
            seq: self.timer_seq,
            target,
        });
    }

    fn alloc_kern_job(&mut self, job: KernJob) -> u64 {
        self.kern_job_seq += 1;
        // Monotonic token, so pushing keeps the vec sorted.
        self.kern_jobs.push((self.kern_job_seq, job));
        self.kern_job_seq
    }

    /// Runs `f` against driver `id` with a service context; merges queued
    /// side effects into the kernel work queue.
    ///
    /// The side-effect buffers live in `self.scratch` and are drained
    /// (not dropped) after the merge: a steady-state dispatch performs
    /// no heap allocation. Dispatches never nest — `f` has no path back
    /// into the kernel — so one set of buffers suffices.
    fn with_driver<R>(
        &mut self,
        id: DriverId,
        now: SimTime,
        out: &mut Vec<KernOut>,
        f: impl FnOnce(&mut dyn Driver, &mut Ctx) -> R,
    ) -> R {
        let mut driver = self.drivers[id.0 as usize]
            .take()
            .unwrap_or_else(|| panic!("driver {id:?} reentered or missing"));
        debug_assert!(
            self.scratch.calls.is_empty()
                && self.scratch.wakes.is_empty()
                && self.scratch.timers.is_empty()
                && self.scratch.ip_in.is_empty()
                && self.scratch.mbuf_ready.is_empty(),
            "dispatch scratch not drained"
        );
        let r = {
            let mut ctx = Ctx {
                now,
                mbufs: &mut self.mbufs,
                rng: &mut self.rng,
                copy: self.cfg.calib.copy,
                self_id: id,
                out,
                calls: &mut self.scratch.calls,
                wakes: &mut self.scratch.wakes,
                timers: &mut self.scratch.timers,
                ip_in: &mut self.scratch.ip_in,
                mbuf_ready: &mut self.scratch.mbuf_ready,
            };
            f(&mut *driver, &mut ctx)
        };
        self.drivers[id.0 as usize] = Some(driver);
        // `arm` needs `&mut self`; lend the timer buffer out for the loop.
        let mut timers = std::mem::take(&mut self.scratch.timers);
        for (at, did, token) in timers.drain(..) {
            self.arm(at, TimerTarget::Driver(did, token));
        }
        self.scratch.timers = timers;
        self.work
            .extend(self.scratch.calls.drain(..).map(|(to, call)| Work::Call {
                from: id,
                to,
                call,
            }));
        self.work.extend(
            self.scratch
                .wakes
                .drain(..)
                .map(|(pid, kind)| Work::Wake { pid, kind }),
        );
        self.work
            .extend(self.scratch.ip_in.drain(..).map(Work::IpIn));
        self.work.extend(
            self.scratch
                .mbuf_ready
                .drain(..)
                .map(|(ticket, chain)| Work::MbufReady { ticket, chain }),
        );
        r
    }

    /// Frees a chain from kernel context.
    fn free_chain(&mut self, chain: MbufChain) {
        self.mbufs.free_into(chain, &mut self.scratch.mbuf_ready);
        self.work.extend(
            self.scratch
                .mbuf_ready
                .drain(..)
                .map(|(ticket, chain)| Work::MbufReady { ticket, chain }),
        );
    }

    fn drain_work(&mut self, now: SimTime, out: &mut Vec<KernOut>) {
        let mut steps = 0u32;
        while let Some(w) = self.work.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "kernel work cascade at {now}");
            match w {
                Work::Call { from, to, call } => {
                    self.with_driver(to, now, out, |d, ctx| d.on_call(ctx, from, call));
                }
                Work::Wake { pid, kind } => self.proc_wake(pid, kind, now, out),
                Work::IpIn(pkt) => {
                    self.stats.softnet_pkts += 1;
                    let cost = self.calib().proto_rx_pkt
                        + self.calib().checksum_per_byte * u64::from(pkt.len);
                    let token = self.alloc_kern_job(KernJob::SoftnetRx(pkt));
                    out.push(KernOut::Mach(MachCmd::Push(ctms_rtpc::Job {
                        tag: KTag::Kern { token },
                        cost,
                        level: ExecLevel::KernelSpl(1),
                    })));
                }
                Work::MbufReady { ticket, chain } => {
                    let Some(pid) = self.mbuf_waiters.remove(&ticket) else {
                        // Waiter vanished (exited process): return buffers.
                        self.free_chain(chain);
                        continue;
                    };
                    let p = &mut self.procs[pid.0 as usize];
                    if p.state == PState::Blocked(Wait::Mbuf(ticket)) {
                        p.pending_chain = Some(chain);
                        self.work.push_back(Work::Wake {
                            pid,
                            kind: WakeKind::Mbuf,
                        });
                    } else {
                        self.free_chain(chain);
                    }
                }
            }
        }
    }

    // ----- process machinery -------------------------------------------

    fn push_proc_job(
        &mut self,
        out: &mut Vec<KernOut>,
        pid: Pid,
        stage: Stage,
        cost: Dur,
        level: ExecLevel,
    ) {
        let p = &mut self.procs[pid.0 as usize];
        p.seq += 1;
        p.state = PState::OnCpu(stage);
        out.push(KernOut::Mach(MachCmd::Push(ctms_rtpc::Job {
            tag: KTag::Proc { pid, token: p.seq },
            cost,
            level,
        })));
    }

    fn start_step(&mut self, pid: Pid, now: SimTime, out: &mut Vec<KernOut>) {
        let p = &self.procs[pid.0 as usize];
        if p.state == PState::Exited {
            return;
        }
        let step = p.step();
        let calib = self.calib();
        match step {
            Step::Compute(d) => {
                let chunk = if d > calib.quantum { calib.quantum } else { d };
                self.push_proc_job(
                    out,
                    pid,
                    Stage::Compute {
                        remaining: d - chunk,
                    },
                    chunk,
                    ExecLevel::User,
                );
            }
            Step::Sleep(d) => {
                let p = &mut self.procs[pid.0 as usize];
                p.state = PState::Blocked(Wait::Sleeping);
                self.arm(now + d, TimerTarget::ProcSleep(pid));
            }
            _ => {
                self.push_proc_job(
                    out,
                    pid,
                    Stage::SyscallEntry,
                    calib.syscall_entry,
                    ExecLevel::User,
                );
            }
        }
    }

    fn step_complete(&mut self, pid: Pid, now: SimTime, out: &mut Vec<KernOut>) {
        let p = &mut self.procs[pid.0 as usize];
        p.pc += 1;
        if p.pc >= p.program.steps.len() {
            if p.program.looping {
                p.pc = 0;
            } else {
                p.state = PState::Exited;
                out.push(KernOut::ProcExited { pid });
                return;
            }
        }
        p.state = PState::Ready;
        self.start_step(pid, now, out);
    }

    fn proc_job_done(&mut self, pid: Pid, token: u64, now: SimTime, out: &mut Vec<KernOut>) {
        let p = &self.procs[pid.0 as usize];
        if p.seq != token {
            return; // stale completion after a state change
        }
        let PState::OnCpu(stage) = p.state else {
            return;
        };
        let step = p.step();
        let calib = self.calib();
        match stage {
            Stage::Compute { remaining } => {
                if remaining.is_zero() {
                    self.step_complete(pid, now, out);
                } else {
                    let chunk = if remaining > calib.quantum {
                        calib.quantum
                    } else {
                        remaining
                    };
                    self.push_proc_job(
                        out,
                        pid,
                        Stage::Compute {
                            remaining: remaining - chunk,
                        },
                        chunk,
                        ExecLevel::User,
                    );
                }
            }
            Stage::SyscallEntry => self.syscall_dispatch(pid, step, now, out),
            Stage::Copyout => self.step_complete(pid, now, out),
            Stage::CopyinDev => {
                let Step::WriteDev { dev, bytes } = step else {
                    unreachable!("CopyinDev outside WriteDev");
                };
                let r = self.with_driver(dev, now, out, |d, ctx| d.write(ctx, pid, bytes));
                match r {
                    OpResult::Done => self.step_complete(pid, now, out),
                    OpResult::Blocked => {
                        self.procs[pid.0 as usize].state = PState::Blocked(Wait::DevWrite(dev));
                    }
                }
            }
            Stage::CopyinSock => self.sock_send_continue(pid, now, out),
            Stage::Proto => self.sock_send_finish(pid, now, out),
            Stage::AfterWake(kind) => self.after_wake(pid, kind, now, out),
        }
    }

    fn syscall_dispatch(&mut self, pid: Pid, step: Step, now: SimTime, out: &mut Vec<KernOut>) {
        let calib = self.calib();
        match step {
            Step::ReadDev { dev, bytes } => {
                let r = self.with_driver(dev, now, out, |d, ctx| d.read(ctx, pid, bytes));
                match r {
                    OpResult::Done => {
                        let cost = calib.copy.copy(bytes, MemRegion::System, MemRegion::System);
                        self.push_proc_job(out, pid, Stage::Copyout, cost, ExecLevel::User);
                    }
                    OpResult::Blocked => {
                        self.procs[pid.0 as usize].state = PState::Blocked(Wait::DevRead(dev));
                    }
                }
            }
            Step::WriteDev { bytes, .. } => {
                let cost = calib.copy.copy(bytes, MemRegion::System, MemRegion::System);
                self.push_proc_job(out, pid, Stage::CopyinDev, cost, ExecLevel::User);
            }
            Step::SockSend { bytes, .. } => {
                let cost = calib.copy.copy(bytes, MemRegion::System, MemRegion::System);
                self.push_proc_job(out, pid, Stage::CopyinSock, cost, ExecLevel::User);
            }
            Step::SockRecv { port } => self.try_sock_recv(pid, port, now, out),
            Step::Ioctl { dev, req } => {
                self.with_driver(dev, now, out, |d, ctx| d.ioctl(ctx, pid, req));
                self.step_complete(pid, now, out);
            }
            Step::Compute(_) | Step::Sleep(_) => unreachable!("not syscalls"),
        }
    }

    fn try_sock_recv(&mut self, pid: Pid, port: Port, _now: SimTime, out: &mut Vec<KernOut>) {
        let calib = self.calib();
        let sock = self
            .socks
            .get_mut(&port.0)
            .unwrap_or_else(|| panic!("recv on unbound port {port:?}"));
        if let Some((bytes, _seq)) = sock.pop_rcv() {
            out.push(KernOut::SockDelivered { port, bytes });
            let cost = calib.copy.copy(bytes, MemRegion::System, MemRegion::System);
            // Free the buffers the packet occupied.
            let chain = MbufChain {
                len: bytes,
                count: MbufChain::mbufs_for(bytes),
            };
            self.free_chain(chain);
            self.push_proc_job(out, pid, Stage::Copyout, cost, ExecLevel::User);
        } else {
            sock.reader = Some(pid);
            self.procs[pid.0 as usize].state = PState::Blocked(Wait::SockData(port));
        }
    }

    fn sock_send_continue(&mut self, pid: Pid, now: SimTime, out: &mut Vec<KernOut>) {
        let Step::SockSend { port, bytes } = self.procs[pid.0 as usize].step() else {
            unreachable!("sock send continue outside SockSend");
        };
        let calib = self.calib();
        let sock = self
            .socks
            .get_mut(&port.0)
            .unwrap_or_else(|| panic!("send on unbound port {port:?}"));
        if sock.tcp_send_blocked(bytes) {
            sock.sender = Some((pid, bytes));
            self.procs[pid.0 as usize].state = PState::Blocked(Wait::SockSpace(port));
            return;
        }
        let overhead = match sock.proto {
            SockProto::UdpLite => UDP_OVERHEAD,
            SockProto::TcpLite => TCP_OVERHEAD,
        };
        match self.mbufs.alloc_wait(bytes + overhead) {
            AllocResult::Ok(chain) => {
                self.procs[pid.0 as usize].pending_chain = Some(chain);
                let cost = calib.proto_tx_pkt + calib.checksum_per_byte * u64::from(bytes);
                self.push_proc_job(out, pid, Stage::Proto, cost, ExecLevel::User);
            }
            AllocResult::Wait(ticket) => {
                self.mbuf_waiters.insert(ticket, pid);
                self.procs[pid.0 as usize].state = PState::Blocked(Wait::Mbuf(ticket));
            }
        }
        let _ = now;
    }

    fn sock_send_finish(&mut self, pid: Pid, now: SimTime, out: &mut Vec<KernOut>) {
        let Step::SockSend { port, bytes } = self.procs[pid.0 as usize].step() else {
            unreachable!("sock send finish outside SockSend");
        };
        let chain = self.procs[pid.0 as usize]
            .pending_chain
            .take()
            .expect("proto stage without chain");
        let calib = self.calib();
        let Some(net_if) = self.net_if else {
            // No interface: data vanishes (loopback-less host).
            self.free_chain(chain);
            self.step_complete(pid, now, out);
            return;
        };
        let sock = self.socks.get_mut(&port.0).expect("bound");
        let seq = sock.note_sent(bytes);
        let (kind, overhead) = match sock.proto {
            SockProto::UdpLite => (MetaKind::UdpData, UDP_OVERHEAD),
            SockProto::TcpLite => (MetaKind::TcpData, TCP_OVERHEAD),
        };
        let meta = SockMeta { port, kind, seq };
        let pkt = Pkt {
            proto: Proto::Ip,
            dst: sock.peer,
            len: bytes + overhead,
            tag: meta.encode(),
            priority: 0,
            chain: Some(chain),
        };
        if sock.proto == SockProto::TcpLite {
            if sock.retx_from_ns.is_none() {
                sock.retx_from_ns = Some(now.as_ns());
            }
            if !sock.tcp.retx_armed {
                sock.tcp.retx_armed = true;
                self.arm(now + calib.retx_timeout, TimerTarget::TcpRetx(port));
            }
        }
        self.work.push_back(Work::Call {
            from: KERNEL_ID,
            to: net_if,
            call: DriverCall::NetOutput(pkt),
        });
        self.step_complete(pid, now, out);
    }

    fn after_wake(&mut self, pid: Pid, kind: WakeKind, now: SimTime, out: &mut Vec<KernOut>) {
        let calib = self.calib();
        let step = self.procs[pid.0 as usize].step();
        match (kind, step) {
            (WakeKind::DevRead { bytes }, Step::ReadDev { .. }) => {
                let cost = calib.copy.copy(bytes, MemRegion::System, MemRegion::System);
                self.push_proc_job(out, pid, Stage::Copyout, cost, ExecLevel::User);
            }
            (WakeKind::DevWrite, Step::WriteDev { dev, bytes }) => {
                let r = self.with_driver(dev, now, out, |d, ctx| d.write(ctx, pid, bytes));
                match r {
                    OpResult::Done => self.step_complete(pid, now, out),
                    OpResult::Blocked => {
                        self.procs[pid.0 as usize].state = PState::Blocked(Wait::DevWrite(dev));
                    }
                }
            }
            (WakeKind::SockData, Step::SockRecv { port }) => {
                self.try_sock_recv(pid, port, now, out);
            }
            (WakeKind::SockSpace, Step::SockSend { .. }) => {
                self.sock_send_continue(pid, now, out);
            }
            (WakeKind::Mbuf, Step::SockSend { bytes, .. }) => {
                let cost = calib.proto_tx_pkt + calib.checksum_per_byte * u64::from(bytes);
                self.push_proc_job(out, pid, Stage::Proto, cost, ExecLevel::User);
            }
            (WakeKind::Timer, Step::Sleep(_)) => self.step_complete(pid, now, out),
            (k, s) => panic!("wake {k:?} does not match step {s:?} for {pid:?}"),
        }
    }

    fn proc_wake(&mut self, pid: Pid, kind: WakeKind, now: SimTime, out: &mut Vec<KernOut>) {
        let p = &self.procs[pid.0 as usize];
        let matches = matches!(
            (&p.state, kind),
            (PState::Blocked(Wait::DevRead(_)), WakeKind::DevRead { .. })
                | (PState::Blocked(Wait::DevWrite(_)), WakeKind::DevWrite)
                | (PState::Blocked(Wait::SockData(_)), WakeKind::SockData)
                | (PState::Blocked(Wait::SockSpace(_)), WakeKind::SockSpace)
                | (PState::Blocked(Wait::Mbuf(_)), WakeKind::Mbuf)
                | (PState::Blocked(Wait::Sleeping), WakeKind::Timer)
        );
        if !matches {
            return; // spurious wakeup
        }
        let cs = self.calib().context_switch;
        self.push_proc_job(out, pid, Stage::AfterWake(kind), cs, ExecLevel::User);
        let _ = now;
    }

    // ----- kernel jobs ---------------------------------------------------

    fn kern_job_done(&mut self, token: u64, now: SimTime, out: &mut Vec<KernOut>) {
        let Ok(slot) = self.kern_jobs.binary_search_by_key(&token, |e| e.0) else {
            panic!("unknown kernel job token {token}");
        };
        let (_, job) = self.kern_jobs.remove(slot);
        match job {
            KernJob::SoftnetRx(pkt) => self.softnet_rx(pkt, now, out),
            KernJob::HardclockBody => {
                self.stats.ticks += 1;
                if self.cfg.calib.softclock_every > 0
                    && self
                        .stats
                        .ticks
                        .is_multiple_of(self.cfg.calib.softclock_every)
                {
                    let token = self.alloc_kern_job(KernJob::SoftclockBody);
                    out.push(KernOut::Mach(MachCmd::Push(ctms_rtpc::Job {
                        tag: KTag::Kern { token },
                        cost: self.cfg.calib.softclock_cost,
                        level: ExecLevel::KernelSpl(1),
                    })));
                }
            }
            KernJob::SoftclockBody => {}
        }
    }

    /// Queues `payload` bytes on `port`'s receive buffer, waking a blocked
    /// reader. Returns false (with a drop record) on buffer or pool
    /// exhaustion. Buffer occupancy is held as a live pool allocation and
    /// released when the reader pops the datagram.
    fn sock_append(
        &mut self,
        port: Port,
        payload: u32,
        seq: u32,
        tag: u64,
        out: &mut Vec<KernOut>,
    ) -> bool {
        let sock = self.socks.get_mut(&port.0).expect("bound");
        if sock.rcv_bytes + payload > sock.rcv_cap {
            sock.stats.rx_drops += 1;
            out.push(KernOut::Drop {
                site: DropSite::SockbufFull,
                tag,
                bytes: payload,
            });
            return false;
        }
        if self.mbufs.alloc_nowait(payload).is_none() {
            sock.stats.rx_drops += 1;
            out.push(KernOut::Drop {
                site: DropSite::MbufExhausted,
                tag,
                bytes: payload,
            });
            return false;
        }
        let ok = sock.append_rcv(payload, seq);
        debug_assert!(ok, "capacity checked above");
        if let Some(pid) = sock.reader.take() {
            self.work.push_back(Work::Wake {
                pid,
                kind: WakeKind::SockData,
            });
        }
        true
    }

    fn softnet_rx(&mut self, pkt: Pkt, now: SimTime, out: &mut Vec<KernOut>) {
        if let Some(chain) = pkt.chain {
            // The driver's receive buffers are recycled once the protocol
            // layer has taken the packet; queued socket data is accounted
            // separately in `sock_append`.
            self.free_chain(chain);
        }
        let meta = SockMeta::decode(pkt.tag);
        let sock_exists = meta
            .map(|m| self.socks.contains_key(&m.port.0))
            .unwrap_or(false);
        let Some(meta) = meta.filter(|_| sock_exists) else {
            self.stats.unmatched_pkts += 1;
            return;
        };
        let port = meta.port;
        match meta.kind {
            MetaKind::UdpData => {
                let payload = pkt.len.saturating_sub(UDP_OVERHEAD);
                let _ = self.sock_append(port, payload, meta.seq, pkt.tag, out);
            }
            MetaKind::TcpData => {
                let payload = pkt.len.saturating_sub(TCP_OVERHEAD);
                let sock = self.socks.get_mut(&port.0).expect("bound");
                let peer = sock.peer;
                if meta.seq == sock.tcp.rcv_next {
                    if self.sock_append(port, payload, meta.seq, pkt.tag, out) {
                        let sock = self.socks.get_mut(&port.0).expect("bound");
                        sock.tcp.rcv_next = sock.tcp.rcv_next.wrapping_add(payload);
                    }
                } else {
                    self.stats.tcp_ooo_drops += 1;
                }
                // Cumulative ack either way (dup-ack on gaps).
                let ack_seq = self.socks.get(&port.0).expect("bound").tcp.rcv_next;
                self.send_ack(port, peer, ack_seq, now, out);
            }
            MetaKind::TcpAck => {
                let sock = self.socks.get_mut(&port.0).expect("bound");
                let freed = sock.apply_ack(meta.seq);
                if freed > 0 {
                    if let Some((pid, pending)) = sock.sender {
                        if !sock.tcp_send_blocked(pending) {
                            sock.sender = None;
                            self.work.push_back(Work::Wake {
                                pid,
                                kind: WakeKind::SockSpace,
                            });
                        }
                    }
                }
            }
        }
    }

    fn send_ack(
        &mut self,
        port: Port,
        peer: StationId,
        ack_seq: u32,
        _now: SimTime,
        out: &mut Vec<KernOut>,
    ) {
        let Some(net_if) = self.net_if else { return };
        let Some(chain) = self.mbufs.alloc_nowait(ACK_LEN) else {
            out.push(KernOut::Drop {
                site: DropSite::MbufExhausted,
                tag: 0,
                bytes: ACK_LEN,
            });
            return;
        };
        self.stats.acks_tx += 1;
        if let Some(sock) = self.socks.get_mut(&port.0) {
            sock.stats.acks_tx += 1;
        }
        let meta = SockMeta {
            port,
            kind: MetaKind::TcpAck,
            seq: ack_seq,
        };
        // Ack processing cost rides on a small spl1 job.
        let token = self.alloc_kern_job(KernJob::SoftclockBody);
        out.push(KernOut::Mach(MachCmd::Push(ctms_rtpc::Job {
            tag: KTag::Kern { token },
            cost: self.cfg.calib.tcp_ack_cost,
            level: ExecLevel::KernelSpl(1),
        })));
        self.work.push_back(Work::Call {
            from: KERNEL_ID,
            to: net_if,
            call: DriverCall::NetOutput(Pkt {
                proto: Proto::Ip,
                dst: peer,
                len: ACK_LEN,
                tag: meta.encode(),
                priority: 0,
                chain: Some(chain),
            }),
        });
    }

    fn tcp_retx(&mut self, port: Port, now: SimTime, _out: &mut Vec<KernOut>) {
        let calib = self.calib();
        let Some(sock) = self.socks.get_mut(&port.0) else {
            return;
        };
        let Some(&(seq, bytes)) = sock.unacked.front() else {
            sock.tcp.retx_armed = false;
            return;
        };
        // Only retransmit when the oldest unacked segment has actually
        // aged past the timeout; otherwise just re-arm for the residual.
        let aged = sock
            .retx_from_ns
            .map(|t0| now.as_ns().saturating_sub(t0) >= calib.retx_timeout.as_ns())
            .unwrap_or(false);
        if !aged {
            self.arm(now + calib.retx_timeout, TimerTarget::TcpRetx(port));
            return;
        }
        sock.retx_from_ns = Some(now.as_ns());
        let peer = sock.peer;
        sock.stats.retx += 1;
        self.stats.retx += 1;
        let Some(chain) = self.mbufs.alloc_nowait(bytes + TCP_OVERHEAD) else {
            self.arm(now + calib.retx_timeout, TimerTarget::TcpRetx(port));
            return;
        };
        let meta = SockMeta {
            port,
            kind: MetaKind::TcpData,
            seq,
        };
        if let Some(net_if) = self.net_if {
            self.work.push_back(Work::Call {
                from: KERNEL_ID,
                to: net_if,
                call: DriverCall::NetOutput(Pkt {
                    proto: Proto::Ip,
                    dst: peer,
                    len: bytes + TCP_OVERHEAD,
                    tag: meta.encode(),
                    priority: 0,
                    chain: Some(chain),
                }),
            });
        }
        self.arm(now + calib.retx_timeout, TimerTarget::TcpRetx(port));
    }

    fn boot(&mut self, now: SimTime, out: &mut Vec<KernOut>) {
        self.booted = true;
        if self.cfg.clock_enabled {
            self.arm(
                now + self.cfg.calib.hardclock_period,
                TimerTarget::Hardclock,
            );
        }
        for id in 0..self.drivers.len() as u8 {
            self.with_driver(DriverId(id), now, out, |d, ctx| d.on_boot(ctx));
        }
        for pid in 0..self.procs.len() as u32 {
            if self.procs[pid as usize].state == PState::Ready {
                self.start_step(Pid(pid), now, out);
            }
        }
    }
}

fn persist_timer_target(enc: &mut ctms_sim::Enc, t: &TimerTarget) {
    match t {
        TimerTarget::Driver(id, token) => {
            enc.u8(0);
            enc.u8(id.0);
            enc.u64(*token);
        }
        TimerTarget::Hardclock => enc.u8(1),
        TimerTarget::ProcSleep(pid) => {
            enc.u8(2);
            enc.u32(pid.0);
        }
        TimerTarget::TcpRetx(port) => {
            enc.u8(3);
            enc.u16(port.0);
        }
    }
}

fn restore_timer_target(
    dec: &mut ctms_sim::Dec<'_>,
) -> Result<TimerTarget, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => TimerTarget::Driver(DriverId(dec.u8()?), dec.u64()?),
        1 => TimerTarget::Hardclock,
        2 => TimerTarget::ProcSleep(Pid(dec.u32()?)),
        3 => TimerTarget::TcpRetx(Port(dec.u16()?)),
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "timer target",
                tag,
            })
        }
    })
}

fn persist_kern_job(enc: &mut ctms_sim::Enc, j: &KernJob) {
    match j {
        KernJob::SoftnetRx(pkt) => {
            enc.u8(0);
            pkt.persist(enc);
        }
        KernJob::HardclockBody => enc.u8(1),
        KernJob::SoftclockBody => enc.u8(2),
    }
}

fn restore_kern_job(dec: &mut ctms_sim::Dec<'_>) -> Result<KernJob, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => KernJob::SoftnetRx(Pkt::decode(dec)?),
        1 => KernJob::HardclockBody,
        2 => KernJob::SoftclockBody,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "kernel job",
                tag,
            })
        }
    })
}

impl ctms_sim::Persist for Kernel {
    /// Dynamic kernel state: the mbuf pool, the rng, the timer wheel,
    /// process/socket/kernel-job tables, waiter maps, counters, the boot
    /// latch, and each driver's own state (framed by driver name so a
    /// topology mismatch is caught by name, not by silent misparse).
    /// `cfg`, programs, bindings and the driver set are structural. The
    /// `work` queue and dispatch scratch are always drained between
    /// events, so a sync-instant checkpoint never contains them.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        debug_assert!(
            self.work.is_empty(),
            "checkpoint with undrained kernel work"
        );
        self.mbufs.persist(enc);
        self.rng.persist(enc);
        // The heap iterates in arbitrary order; encode sorted by
        // `(at, seq)` so the byte stream matches the old `BTreeMap`
        // encoding exactly (persist is cold, the sort is fine here).
        let mut timers: Vec<&Timer> = self.timers.iter().collect();
        timers.sort_unstable_by_key(|t| (t.at, t.seq));
        enc.seq_len(timers.len());
        for t in timers {
            enc.time(t.at);
            enc.u64(t.seq);
            persist_timer_target(enc, &t.target);
        }
        enc.u64(self.timer_seq);
        enc.seq_len(self.procs.len());
        for p in &self.procs {
            crate::proc::persist_proc(enc, p);
        }
        let mut ports: Vec<u16> = self.socks.keys().copied().collect();
        ports.sort_unstable();
        enc.seq_len(ports.len());
        for port in ports {
            self.socks[&port].persist(enc);
        }
        // Already sorted by token — encodes byte-identically to the
        // sorted-HashMap layout this replaced.
        enc.seq_len(self.kern_jobs.len());
        for (token, job) in &self.kern_jobs {
            enc.u64(*token);
            persist_kern_job(enc, job);
        }
        enc.u64(self.kern_job_seq);
        let mut waiters: Vec<u64> = self.mbuf_waiters.keys().copied().collect();
        waiters.sort_unstable();
        enc.seq_len(waiters.len());
        for ticket in waiters {
            enc.u64(ticket);
            enc.u32(self.mbuf_waiters[&ticket].0);
        }
        enc.u64(self.stats.softnet_pkts);
        enc.u64(self.stats.unmatched_pkts);
        enc.u64(self.stats.tcp_ooo_drops);
        enc.u64(self.stats.ticks);
        enc.u64(self.stats.acks_tx);
        enc.u64(self.stats.retx);
        enc.bool(self.booted);
        enc.seq_len(self.drivers.len());
        for slot in &self.drivers {
            let d = slot.as_deref().expect("checkpoint during driver dispatch");
            enc.str(d.name());
            let mut sub = ctms_sim::Enc::new();
            d.persist_state(&mut sub);
            enc.bytes(&sub.into_bytes());
        }
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.mbufs.restore(dec)?;
        self.rng.restore(dec)?;
        self.timers = dec
            .seq(|d| {
                let at = d.time()?;
                let seq = d.u64()?;
                let target = restore_timer_target(d)?;
                Ok(Timer { at, seq, target })
            })?
            .into_iter()
            .collect();
        self.timer_seq = dec.u64()?;
        let n = dec.seq_len()?;
        if n != self.procs.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "kernel checkpoint has {n} processes, rebuilt kernel has {}",
                self.procs.len()
            )));
        }
        for p in &mut self.procs {
            crate::proc::restore_proc(dec, p)?;
        }
        let n = dec.seq_len()?;
        if n != self.socks.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "kernel checkpoint has {n} sockets, rebuilt kernel has {}",
                self.socks.len()
            )));
        }
        let mut ports: Vec<u16> = self.socks.keys().copied().collect();
        ports.sort_unstable();
        for port in ports {
            self.socks.get_mut(&port).expect("present").restore(dec)?;
        }
        self.kern_jobs = dec.seq(|d| Ok((d.u64()?, restore_kern_job(d)?)))?;
        self.kern_jobs.sort_unstable_by_key(|e| e.0);
        self.kern_job_seq = dec.u64()?;
        self.mbuf_waiters = dec
            .seq(|d| Ok((d.u64()?, Pid(d.u32()?))))?
            .into_iter()
            .collect();
        self.stats = KernStats {
            softnet_pkts: dec.u64()?,
            unmatched_pkts: dec.u64()?,
            tcp_ooo_drops: dec.u64()?,
            ticks: dec.u64()?,
            acks_tx: dec.u64()?,
            retx: dec.u64()?,
        };
        self.booted = dec.bool()?;
        let n = dec.seq_len()?;
        if n != self.drivers.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "kernel checkpoint has {n} drivers, rebuilt kernel has {}",
                self.drivers.len()
            )));
        }
        for (k, slot) in self.drivers.iter_mut().enumerate() {
            let d = slot.as_deref_mut().expect("driver present");
            let name = dec.str()?;
            if name != d.name() {
                return Err(ctms_sim::PersistError::mismatch(format!(
                    "driver {k} checkpoint is for '{name}', rebuilt kernel has '{}'",
                    d.name()
                )));
            }
            let bytes = dec.bytes()?;
            let mut sub = ctms_sim::Dec::new(&bytes);
            d.restore_state(&mut sub)?;
            sub.finish()?;
        }
        self.work.clear();
        Ok(())
    }
}

impl Component for Kernel {
    type Cmd = KernCmd;
    type Out = KernOut;

    fn next_deadline(&self) -> Option<SimTime> {
        if !self.booted {
            return Some(SimTime::ZERO);
        }
        self.timers.peek().map(|t| t.at)
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<KernOut>) {
        if !self.booted {
            self.boot(now, sink);
        }
        while let Some(head) = self.timers.peek() {
            if head.at > now {
                break;
            }
            let Timer { target, .. } = self.timers.pop().expect("peeked entry");
            match target {
                TimerTarget::Driver(id, token) => {
                    self.with_driver(id, now, sink, |d, ctx| d.on_timer(ctx, token));
                }
                TimerTarget::Hardclock => {
                    sink.push(KernOut::Mach(MachCmd::RaiseIrq { line: LINE_CLOCK }));
                    self.arm(
                        now + self.cfg.calib.hardclock_period,
                        TimerTarget::Hardclock,
                    );
                }
                TimerTarget::ProcSleep(pid) => {
                    self.work.push_back(Work::Wake {
                        pid,
                        kind: WakeKind::Timer,
                    });
                }
                TimerTarget::TcpRetx(port) => self.tcp_retx(port, now, sink),
            }
        }
        self.drain_work(now, sink);
    }

    fn handle(&mut self, now: SimTime, cmd: KernCmd, sink: &mut Vec<KernOut>) {
        match cmd {
            KernCmd::IrqEntered { line } => {
                if line == LINE_CLOCK {
                    let token = self.alloc_kern_job(KernJob::HardclockBody);
                    sink.push(KernOut::Mach(MachCmd::Push(ctms_rtpc::Job {
                        tag: KTag::Kern { token },
                        cost: self.cfg.calib.hardclock_cost,
                        level: ExecLevel::Irq(LINE_CLOCK),
                    })));
                } else if let Some(id) = self.line_map[line as usize] {
                    self.with_driver(id, now, sink, |d, ctx| d.on_interrupt(ctx));
                }
            }
            KernCmd::JobDone { tag } => match tag {
                KTag::Driver { id, token } => {
                    self.with_driver(id, now, sink, |d, ctx| d.on_job(ctx, token));
                }
                KTag::Proc { pid, token } => self.proc_job_done(pid, token, now, sink),
                KTag::Kern { token } => self.kern_job_done(token, now, sink),
            },
            KernCmd::DmaDone { tag } => match tag {
                KTag::Driver { id, token } => {
                    self.with_driver(id, now, sink, |d, ctx| d.on_dma(ctx, token));
                }
                other => panic!("DMA completion with non-driver tag {other:?}"),
            },
            KernCmd::RingDelivered { frame } => {
                let id = self.net_if.expect("ring delivery without net_if");
                self.with_driver(id, now, sink, |d, ctx| d.on_ring_delivered(ctx, frame));
            }
            KernCmd::RingStripped { tag, delivered } => {
                let id = self.net_if.expect("ring strip without net_if");
                self.with_driver(id, now, sink, |d, ctx| {
                    d.on_ring_stripped(ctx, tag, delivered)
                });
            }
            KernCmd::Call { driver, call } => {
                self.with_driver(driver, now, sink, |d, ctx| d.on_call(ctx, KERNEL_ID, call));
            }
        }
        self.drain_work(now, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Host, HostCmd, HostOut};
    use ctms_rtpc::{Machine, MachineConfig};
    use ctms_sim::drain_component;

    fn quiet_host(cfg: KernConfig) -> Host {
        Host::new(
            Machine::new(MachineConfig::default()),
            Kernel::new(cfg, Pcg32::new(3, 9)),
        )
    }

    #[test]
    fn hardclock_ticks_at_100hz() {
        let mut host = quiet_host(KernConfig::default());
        let _ = drain_component(&mut host, SimTime::from_secs(1));
        let ticks = host.kernel.stats().ticks;
        assert!((98..=100).contains(&ticks), "{ticks}");
    }

    #[test]
    fn clock_disabled_means_no_ticks() {
        let cfg = KernConfig {
            clock_enabled: false,
            ..Default::default()
        };
        let mut host = quiet_host(cfg);
        let evs = drain_component(&mut host, SimTime::from_secs(1));
        assert!(evs.is_empty());
        assert_eq!(host.kernel.stats().ticks, 0);
    }

    #[test]
    fn exhausted_pool_blocks_sender_until_free() {
        // Two processes each sending a 2000-byte datagram through a pool
        // that can hold only one packet's worth of mbufs: the second
        // waits on the pool and resumes when the first send's buffers
        // free (no net_if: the kernel frees the chain at send-finish).
        let cfg = KernConfig {
            clock_enabled: false,
            mbuf_capacity: 20, // 2028 bytes -> 19 mbufs
            ..Default::default()
        };
        let mut kernel = Kernel::new(cfg, Pcg32::new(5, 2));
        let port = Port(4);
        kernel.add_sock(Sock::new(port, SockProto::UdpLite, StationId(1), 16 * 1024));
        let a = kernel.add_proc(Program::once(vec![Step::SockSend { port, bytes: 2000 }]));
        let b = kernel.add_proc(Program::once(vec![Step::SockSend { port, bytes: 2000 }]));
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let evs = drain_component(&mut host, SimTime::from_secs(5));
        let exits = evs
            .iter()
            .filter(|(_, e)| matches!(e, HostOut::ProcExited { .. }))
            .count();
        assert_eq!(exits, 2, "both senders completed: {evs:?}");
        assert!(host.kernel.proc_exited(a) && host.kernel.proc_exited(b));
        let stats = host.kernel.mbuf_stats();
        assert!(stats.waits >= 1, "second sender waited: {stats:?}");
        assert_eq!(host.kernel.mbuf_stats().peak_in_use, 19);
    }

    #[test]
    fn unmatched_ip_packets_cost_softnet_only() {
        let cfg = KernConfig {
            clock_enabled: false,
            ..Default::default()
        };
        let mut kernel = Kernel::new(cfg, Pcg32::new(7, 7));
        // A net_if-less kernel still runs protocol input when a driver
        // feeds it; emulate via a driver that calls ip_input.
        struct FeedOnce;
        impl crate::driver::Driver for FeedOnce {
            fn name(&self) -> &'static str {
                "feed"
            }
            fn on_call(
                &mut self,
                ctx: &mut crate::driver::Ctx,
                _from: DriverId,
                _call: DriverCall,
            ) {
                let chain = ctx.mbufs.alloc_nowait(300).expect("space");
                ctx.ip_input(Pkt {
                    proto: Proto::Ip,
                    dst: StationId(0),
                    len: 300,
                    tag: 0xFFFF_FF00_0000_0000, // invalid socket meta
                    priority: 0,
                    chain: Some(chain),
                });
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let feed = kernel.add_driver(Box::new(FeedOnce), None);
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let mut sink = Vec::new();
        host.handle(
            SimTime::ZERO,
            HostCmd::Kern(KernCmd::Call {
                driver: feed,
                call: DriverCall::Custom { code: 0, arg: 0 },
            }),
            &mut sink,
        );
        let _ = drain_component(&mut host, SimTime::from_ms(10));
        assert_eq!(host.kernel.stats().softnet_pkts, 1);
        assert_eq!(host.kernel.stats().unmatched_pkts, 1);
        // The arriving chain was freed.
        assert_eq!(host.kernel.mbuf_stats().allocs, 1);
        assert_eq!(
            host.kernel.mbuf_stats().peak_in_use,
            crate::mbuf::MbufChain::mbufs_for(300)
        );
    }

    #[test]
    fn sleep_timers_fire_in_order() {
        let cfg = KernConfig {
            clock_enabled: false,
            ..Default::default()
        };
        let mut kernel = Kernel::new(cfg, Pcg32::new(9, 1));
        let p1 = kernel.add_proc(Program::once(vec![Step::Sleep(Dur::from_ms(30))]));
        let p2 = kernel.add_proc(Program::once(vec![Step::Sleep(Dur::from_ms(10))]));
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let evs = drain_component(&mut host, SimTime::from_secs(1));
        let exits: Vec<Pid> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                HostOut::ProcExited { pid } => Some(*pid),
                _ => None,
            })
            .collect();
        assert_eq!(exits, vec![p2, p1], "shorter sleep exits first");
    }
}
