//! Sockets and the baseline transport protocols.
//!
//! §3 argues TCP/IP is insufficient for CTMS: it guarantees only sequence
//! preservation, and pays for it "by creating more network traffic in the
//! form of acknowledgments and requests for retransmission". To measure
//! that argument the model implements two baseline transports over the
//! ring:
//!
//! * **UDP-lite** — datagrams, no reliability, per-packet protocol cost;
//! * **TCP-lite** — cumulative acks, a byte window that blocks the sender,
//!   and a retransmission timer: enough state to reproduce TCP's *costs*
//!   (extra frames, extra processing, sender stalls) without its full
//!   state machine. The simplification is recorded in DESIGN.md.

use crate::ids::{Pid, Port};
use ctms_tokenring::StationId;
use std::collections::VecDeque;

/// Transport protocol of a socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SockProto {
    /// Unreliable datagrams.
    UdpLite,
    /// Windowed, acknowledged stream (go-back-N-ish).
    TcpLite,
}

/// Packet metadata carried in a frame's tag field: `[port:16][kind:8][seq:32]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SockMeta {
    /// Destination port.
    pub port: Port,
    /// Data or ack.
    pub kind: MetaKind,
    /// Sequence number (bytes for TCP-lite, datagram count for UDP-lite).
    pub seq: u32,
}

/// Socket frame kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetaKind {
    /// UDP-lite datagram.
    UdpData,
    /// TCP-lite data segment.
    TcpData,
    /// TCP-lite cumulative acknowledgement.
    TcpAck,
}

impl SockMeta {
    /// Encodes into a frame tag.
    pub fn encode(self) -> u64 {
        let kind = match self.kind {
            MetaKind::UdpData => 0u64,
            MetaKind::TcpData => 1,
            MetaKind::TcpAck => 2,
        };
        (u64::from(self.port.0) << 48) | (kind << 40) | u64::from(self.seq)
    }

    /// Decodes from a frame tag, if the kind field is valid.
    pub fn decode(tag: u64) -> Option<SockMeta> {
        let kind = match (tag >> 40) & 0xFF {
            0 => MetaKind::UdpData,
            1 => MetaKind::TcpData,
            2 => MetaKind::TcpAck,
            _ => return None,
        };
        Some(SockMeta {
            port: Port((tag >> 48) as u16),
            kind,
            seq: (tag & 0xFFFF_FFFF) as u32,
        })
    }
}

/// Per-packet header overhead added to socket payloads on the wire
/// (IP + UDP headers).
pub const UDP_OVERHEAD: u32 = 28;
/// Per-packet header overhead for TCP-lite segments (IP + TCP headers).
pub const TCP_OVERHEAD: u32 = 40;
/// On-wire size of a TCP-lite acknowledgement.
pub const ACK_LEN: u32 = 40;

/// TCP-lite sender/receiver state.
#[derive(Clone, Copy, Debug)]
pub struct TcpState {
    /// Next sequence number to assign (bytes sent so far).
    pub next_seq: u32,
    /// Bytes sent but not yet acknowledged.
    pub inflight: u32,
    /// Maximum unacknowledged bytes before the sender blocks.
    pub window: u32,
    /// Highest in-order byte received (receiver side) — the cumulative
    /// ack value to send.
    pub rcv_next: u32,
    /// Retransmission timer armed.
    pub retx_armed: bool,
}

impl Default for TcpState {
    fn default() -> Self {
        TcpState {
            next_seq: 0,
            inflight: 0,
            window: 8192,
            rcv_next: 0,
            retx_armed: false,
        }
    }
}

/// Socket statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SockStats {
    /// Datagrams/segments sent.
    pub tx_pkts: u64,
    /// Datagrams/segments delivered to the receive buffer.
    pub rx_pkts: u64,
    /// Acks sent.
    pub acks_tx: u64,
    /// Acks received.
    pub acks_rx: u64,
    /// Receive-buffer overflow drops.
    pub rx_drops: u64,
    /// Retransmissions.
    pub retx: u64,
}

impl ctms_sim::Instrument for SockStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("tx_pkts", self.tx_pkts);
        scope.counter("rx_pkts", self.rx_pkts);
        scope.counter("acks_tx", self.acks_tx);
        scope.counter("acks_rx", self.acks_rx);
        scope.counter("rx_drops", self.rx_drops);
        scope.counter("retx", self.retx);
    }
}

/// One socket endpoint.
#[derive(Debug)]
pub struct Sock {
    /// Local port (also the peer's port — rendezvous key).
    pub port: Port,
    /// Transport.
    pub proto: SockProto,
    /// Peer station on the ring.
    pub peer: StationId,
    /// Received, not-yet-read datagrams: (payload bytes, seq).
    pub rcv_q: VecDeque<(u32, u32)>,
    /// Bytes in the receive queue.
    pub rcv_bytes: u32,
    /// Receive buffer capacity in bytes.
    pub rcv_cap: u32,
    /// Process blocked in `recv`, if any.
    pub reader: Option<Pid>,
    /// Process blocked in `send` (TCP window), if any, with pending bytes.
    pub sender: Option<(Pid, u32)>,
    /// TCP-lite state.
    pub tcp: TcpState,
    /// Unacked segments for retransmission: (seq, payload bytes).
    pub unacked: VecDeque<(u32, u32)>,
    /// When the oldest unacked segment was (re)sent, in ns of simulation
    /// time; None when everything is acked. Drives the retransmit timer.
    pub retx_from_ns: Option<u64>,
    /// Counters.
    pub stats: SockStats,
}

impl Sock {
    /// Creates a socket bound to `port`, talking to `peer`.
    pub fn new(port: Port, proto: SockProto, peer: StationId, rcv_cap: u32) -> Self {
        Sock {
            port,
            proto,
            peer,
            rcv_q: VecDeque::new(),
            rcv_bytes: 0,
            rcv_cap,
            reader: None,
            sender: None,
            tcp: TcpState::default(),
            unacked: VecDeque::new(),
            retx_from_ns: None,
            stats: SockStats::default(),
        }
    }

    /// Appends an arriving payload; returns false (and counts a drop) if
    /// the receive buffer is full.
    pub fn append_rcv(&mut self, bytes: u32, seq: u32) -> bool {
        if self.rcv_bytes + bytes > self.rcv_cap {
            self.stats.rx_drops += 1;
            return false;
        }
        self.rcv_q.push_back((bytes, seq));
        self.rcv_bytes += bytes;
        self.stats.rx_pkts += 1;
        true
    }

    /// Pops the next datagram for a reader.
    pub fn pop_rcv(&mut self) -> Option<(u32, u32)> {
        let (bytes, seq) = self.rcv_q.pop_front()?;
        self.rcv_bytes -= bytes;
        Some((bytes, seq))
    }

    /// True if a TCP-lite send of `bytes` must block on the window.
    pub fn tcp_send_blocked(&self, bytes: u32) -> bool {
        self.proto == SockProto::TcpLite && self.tcp.inflight + bytes > self.tcp.window
    }

    /// Registers a sent segment (TCP-lite bookkeeping).
    pub fn note_sent(&mut self, bytes: u32) -> u32 {
        self.stats.tx_pkts += 1;
        match self.proto {
            SockProto::UdpLite => {
                let seq = self.tcp.next_seq;
                self.tcp.next_seq = self.tcp.next_seq.wrapping_add(1);
                seq
            }
            SockProto::TcpLite => {
                let seq = self.tcp.next_seq;
                self.tcp.next_seq = self.tcp.next_seq.wrapping_add(bytes);
                self.tcp.inflight += bytes;
                self.unacked.push_back((seq, bytes));
                seq
            }
        }
    }

    /// Applies a cumulative ack; returns bytes newly acknowledged.
    pub fn apply_ack(&mut self, ack_seq: u32) -> u32 {
        self.stats.acks_rx += 1;
        let mut freed = 0;
        while let Some(&(seq, bytes)) = self.unacked.front() {
            if seq.wrapping_add(bytes) <= ack_seq {
                self.unacked.pop_front();
                freed += bytes;
            } else {
                break;
            }
        }
        self.tcp.inflight = self.tcp.inflight.saturating_sub(freed);
        if self.unacked.is_empty() {
            self.retx_from_ns = None;
        }
        freed
    }
}

impl ctms_sim::Persist for Sock {
    /// Dynamic socket state: the receive queue, blocked reader/sender,
    /// TCP-lite window machinery and counters. The binding (port, proto,
    /// peer, capacity) is structural; port is verified on restore as the
    /// cheap invariant.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.u16(self.port.0);
        enc.seq_len(self.rcv_q.len());
        for (bytes, seq) in &self.rcv_q {
            enc.u32(*bytes);
            enc.u32(*seq);
        }
        enc.u32(self.rcv_bytes);
        enc.opt(self.reader.as_ref(), |e, p| e.u32(p.0));
        enc.opt(self.sender.as_ref(), |e, (p, b)| {
            e.u32(p.0);
            e.u32(*b);
        });
        enc.u32(self.tcp.next_seq);
        enc.u32(self.tcp.inflight);
        enc.u32(self.tcp.window);
        enc.u32(self.tcp.rcv_next);
        enc.bool(self.tcp.retx_armed);
        enc.seq_len(self.unacked.len());
        for (seq, bytes) in &self.unacked {
            enc.u32(*seq);
            enc.u32(*bytes);
        }
        enc.opt(self.retx_from_ns.as_ref(), |e, t| e.u64(*t));
        enc.u64(self.stats.tx_pkts);
        enc.u64(self.stats.rx_pkts);
        enc.u64(self.stats.acks_tx);
        enc.u64(self.stats.acks_rx);
        enc.u64(self.stats.rx_drops);
        enc.u64(self.stats.retx);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        let port = dec.u16()?;
        if port != self.port.0 {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "socket checkpoint port {port}, rebuilt socket is bound to {}",
                self.port.0
            )));
        }
        self.rcv_q = dec.seq(|d| Ok((d.u32()?, d.u32()?)))?.into_iter().collect();
        self.rcv_bytes = dec.u32()?;
        self.reader = dec.opt(|d| Ok(Pid(d.u32()?)))?;
        self.sender = dec.opt(|d| Ok((Pid(d.u32()?), d.u32()?)))?;
        self.tcp = TcpState {
            next_seq: dec.u32()?,
            inflight: dec.u32()?,
            window: dec.u32()?,
            rcv_next: dec.u32()?,
            retx_armed: dec.bool()?,
        };
        self.unacked = dec.seq(|d| Ok((d.u32()?, d.u32()?)))?.into_iter().collect();
        self.retx_from_ns = dec.opt(|d| d.u64())?;
        self.stats = SockStats {
            tx_pkts: dec.u64()?,
            rx_pkts: dec.u64()?,
            acks_tx: dec.u64()?,
            acks_rx: dec.u64()?,
            rx_drops: dec.u64()?,
            retx: dec.u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips() {
        for kind in [MetaKind::UdpData, MetaKind::TcpData, MetaKind::TcpAck] {
            let m = SockMeta {
                port: Port(514),
                kind,
                seq: 0xDEAD_BEEF,
            };
            assert_eq!(SockMeta::decode(m.encode()), Some(m));
        }
        // CTMSP tags (small integers) do not decode as socket meta beyond
        // kind 0 with port 0 — the kernel only decodes tags on Ip frames,
        // so no ambiguity arises; but invalid kinds are rejected.
        assert_eq!(SockMeta::decode(9 << 40), None);
    }

    #[test]
    fn rcv_buffer_limits() {
        let mut s = Sock::new(Port(1), SockProto::UdpLite, StationId(2), 4000);
        assert!(s.append_rcv(2000, 0));
        assert!(s.append_rcv(2000, 1));
        assert!(!s.append_rcv(1, 2));
        assert_eq!(s.stats.rx_drops, 1);
        assert_eq!(s.pop_rcv(), Some((2000, 0)));
        assert!(s.append_rcv(1, 3));
    }

    #[test]
    fn tcp_window_blocks_and_acks_free() {
        let mut s = Sock::new(Port(1), SockProto::TcpLite, StationId(2), 16384);
        assert!(!s.tcp_send_blocked(2000));
        let s0 = s.note_sent(2000);
        let _ = s.note_sent(2000);
        let _ = s.note_sent(2000);
        let _ = s.note_sent(2000);
        assert_eq!(s.tcp.inflight, 8000);
        assert!(s.tcp_send_blocked(2000), "window 8192 nearly full");
        assert_eq!(s0, 0);
        // Ack the first two segments.
        let freed = s.apply_ack(4000);
        assert_eq!(freed, 4000);
        assert_eq!(s.tcp.inflight, 4000);
        assert!(!s.tcp_send_blocked(2000));
        assert_eq!(s.unacked.len(), 2);
    }

    #[test]
    fn udp_sequences_datagrams() {
        let mut s = Sock::new(Port(1), SockProto::UdpLite, StationId(2), 16384);
        assert_eq!(s.note_sent(100), 0);
        assert_eq!(s.note_sent(100), 1);
        assert_eq!(s.tcp.inflight, 0, "no window accounting for UDP");
        assert!(s.unacked.is_empty());
    }

    #[test]
    fn partial_ack_keeps_tail() {
        let mut s = Sock::new(Port(1), SockProto::TcpLite, StationId(2), 16384);
        let _ = s.note_sent(1000);
        let _ = s.note_sent(1000);
        assert_eq!(s.apply_ack(1000), 1000);
        assert_eq!(s.unacked.front(), Some(&(1000, 1000)));
        // A stale (duplicate) ack frees nothing.
        assert_eq!(s.apply_ack(1000), 0);
    }
}
