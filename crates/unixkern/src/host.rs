//! A host: one RT/PC machine running one kernel.
//!
//! Couples [`Machine`] and [`Kernel`] and routes between them (CPU/DMA
//! completions into the kernel; job pushes, DMA starts and IRQ raises into
//! the machine), exposing only ring traffic and observable events to the
//! outside. The testbed connects several hosts to one token ring.

use crate::driver::KernOut;
use crate::ids::{DropSite, KTag, MeasurePoint, Pid, Port};
use crate::kernel::{KernCmd, Kernel};
use ctms_rtpc::{MachOut, Machine};
use ctms_sim::{CascadeGuard, Component, SimTime};
use ctms_tokenring::Frame;

/// Commands into a host (ring events, plus direct kernel injection for
/// tests and workload glue).
#[derive(Clone, Debug)]
pub enum HostCmd {
    /// A frame addressed to this host's station arrived.
    RingDelivered(Frame),
    /// This host's adapter finished transmitting.
    RingStripped {
        /// Frame tag.
        tag: u64,
        /// Copied-bit ground truth.
        delivered: bool,
    },
    /// Inject a kernel command directly.
    Kern(KernCmd),
}

/// Observable events out of a host.
#[derive(Debug)]
pub enum HostOut {
    /// Submit a frame to the ring.
    RingSubmit(Frame),
    /// A measurement point was crossed.
    Trace {
        /// Which point.
        point: MeasurePoint,
        /// Packet tag.
        tag: u64,
    },
    /// Data lost.
    Drop {
        /// Where.
        site: DropSite,
        /// Packet tag.
        tag: u64,
        /// Bytes.
        bytes: u32,
    },
    /// CTMS payload presented at the sink device.
    Presented {
        /// Packet tag.
        tag: u64,
        /// Bytes.
        bytes: u32,
    },
    /// A socket delivered payload to a local reader.
    SockDelivered {
        /// Port.
        port: Port,
        /// Bytes.
        bytes: u32,
    },
    /// A process finished its program.
    ProcExited {
        /// Which.
        pid: Pid,
    },
}

/// One machine + kernel pair. See module docs.
///
/// The kernel↔machine ping-pong runs on two persistent buffers (`kouts`,
/// `mouts`) that are drained each exchange and retain their capacity, so
/// a steady-state advance or command delivery allocates nothing.
pub struct Host {
    /// The hardware.
    pub machine: Machine<KTag>,
    /// The software.
    pub kernel: Kernel,
    guard: CascadeGuard,
    kouts: Vec<KernOut>,
    mouts: Vec<MachOut<KTag>>,
}

impl Host {
    /// Creates a host from its parts.
    pub fn new(machine: Machine<KTag>, kernel: Kernel) -> Self {
        Host {
            machine,
            kernel,
            guard: CascadeGuard::default(),
            kouts: Vec::new(),
            mouts: Vec::new(),
        }
    }

    /// Routes the pending kernel outputs (`self.kouts`): machine commands
    /// inward (producing into `self.mouts`), the rest translated to
    /// [`HostOut`].
    fn route_kern_outs(&mut self, now: SimTime, sink: &mut Vec<HostOut>) {
        // Lend the buffer out so `self.machine` stays borrowable.
        let mut kouts = std::mem::take(&mut self.kouts);
        for o in kouts.drain(..) {
            match o {
                KernOut::Mach(cmd) => self.machine.handle(now, cmd, &mut self.mouts),
                KernOut::RingSubmit(frame) => sink.push(HostOut::RingSubmit(frame)),
                KernOut::Trace { point, tag } => sink.push(HostOut::Trace { point, tag }),
                KernOut::Drop { site, tag, bytes } => sink.push(HostOut::Drop { site, tag, bytes }),
                KernOut::Presented { tag, bytes } => sink.push(HostOut::Presented { tag, bytes }),
                KernOut::SockDelivered { port, bytes } => {
                    sink.push(HostOut::SockDelivered { port, bytes })
                }
                KernOut::ProcExited { pid } => sink.push(HostOut::ProcExited { pid }),
            }
        }
        self.kouts = kouts;
    }

    /// Feeds the pending machine outputs (`self.mouts`) into the kernel,
    /// producing into `self.kouts`.
    fn route_mach_outs(&mut self, now: SimTime) {
        let mut mouts = std::mem::take(&mut self.mouts);
        for o in mouts.drain(..) {
            match o {
                MachOut::IrqEntered { line } => {
                    self.kernel
                        .handle(now, KernCmd::IrqEntered { line }, &mut self.kouts)
                }
                MachOut::JobDone { tag } => {
                    self.kernel
                        .handle(now, KernCmd::JobDone { tag }, &mut self.kouts)
                }
                MachOut::DmaDone { tag } => {
                    self.kernel
                        .handle(now, KernCmd::DmaDone { tag }, &mut self.kouts)
                }
                MachOut::IrqOverrun { .. } => {
                    // Lost edge: real hardware would have collapsed the two
                    // raises; nothing to deliver.
                }
            }
        }
        self.mouts = mouts;
    }

    /// Ping-pongs between kernel and machine until the instant is
    /// settled, starting from whatever is pending in `self.kouts`. Both
    /// buffers are empty on return.
    fn settle(&mut self, now: SimTime, sink: &mut Vec<HostOut>) {
        loop {
            if self.kouts.is_empty() {
                break;
            }
            self.guard.step(now);
            self.route_kern_outs(now, sink);
            if self.mouts.is_empty() {
                break;
            }
            self.guard.step(now);
            self.route_mach_outs(now);
        }
    }
}

impl ctms_sim::Persist for Host {
    /// Machine state then kernel state. The exchange buffers and cascade
    /// guard are empty/reset at every settled instant, so they carry no
    /// bytes; restore re-arms a fresh guard.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        debug_assert!(self.kouts.is_empty() && self.mouts.is_empty());
        self.machine.persist(enc);
        self.kernel.persist(enc);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.machine.restore(dec)?;
        self.kernel.restore(dec)?;
        self.guard = CascadeGuard::default();
        self.kouts.clear();
        self.mouts.clear();
        Ok(())
    }
}

impl Component for Host {
    type Cmd = HostCmd;
    type Out = HostOut;

    fn next_deadline(&self) -> Option<SimTime> {
        ctms_sim::earliest([self.machine.next_deadline(), self.kernel.next_deadline()])
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<HostOut>) {
        debug_assert!(self.kouts.is_empty() && self.mouts.is_empty());
        self.machine.advance(now, &mut self.mouts);
        self.route_mach_outs(now);
        // Kernel deadline work lands after the machine's fallout, exactly
        // as in the pre-buffer implementation.
        self.kernel.advance(now, &mut self.kouts);
        self.settle(now, sink);
    }

    fn handle(&mut self, now: SimTime, cmd: HostCmd, sink: &mut Vec<HostOut>) {
        debug_assert!(self.kouts.is_empty() && self.mouts.is_empty());
        match cmd {
            HostCmd::RingDelivered(frame) => {
                self.kernel
                    .handle(now, KernCmd::RingDelivered { frame }, &mut self.kouts)
            }
            HostCmd::RingStripped { tag, delivered } => self.kernel.handle(
                now,
                KernCmd::RingStripped { tag, delivered },
                &mut self.kouts,
            ),
            HostCmd::Kern(cmd) => self.kernel.handle(now, cmd, &mut self.kouts),
        }
        self.settle(now, sink);
    }

    /// Kernel tree at the root of the host's scope; hardware under
    /// `bus`/`cpu`.
    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.kernel.publish_telemetry(scope);
        self.machine.bus_stats().publish(&mut scope.scope("bus"));
        self.machine.cpu_stats().publish(&mut scope.scope("cpu"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{Ctx, Driver, OpResult, WakeKind};
    use crate::ids::DriverId;
    use crate::kernel::{KernConfig, LINE_VCA};
    use crate::proc::{Program, Step};
    use ctms_rtpc::{ExecLevel, MachineConfig};
    use ctms_sim::{drain_component, Dur, Pcg32};

    /// A toy periodic device: an ioctl arms a 12 ms timer chain; each
    /// firing raises the IRQ, the handler body produces a 2000-byte chunk
    /// and wakes a blocked reader.
    struct ToyDev {
        period: Dur,
        chunk: u32,
        available: u32,
        waiting: Option<crate::ids::Pid>,
        interrupts: u32,
    }

    impl Driver for ToyDev {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn ioctl(&mut self, ctx: &mut Ctx, _pid: crate::ids::Pid, _req: u32) {
            ctx.set_timer(0, ctx.now + self.period);
        }
        fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
            ctx.raise_irq(LINE_VCA);
            ctx.set_timer(0, ctx.now + self.period);
        }
        fn on_interrupt(&mut self, ctx: &mut Ctx) {
            self.interrupts += 1;
            // Handler body: 100 us of device service at interrupt level.
            ctx.push_job(1, Dur::from_us(100), ExecLevel::Irq(LINE_VCA));
        }
        fn on_job(&mut self, ctx: &mut Ctx, token: u64) {
            assert_eq!(token, 1);
            self.available += self.chunk;
            if let Some(pid) = self.waiting.take() {
                let bytes = self.available.min(self.chunk);
                self.available -= bytes;
                ctx.wake(pid, WakeKind::DevRead { bytes });
            }
        }
        fn read(&mut self, _ctx: &mut Ctx, pid: crate::ids::Pid, bytes: u32) -> OpResult {
            if self.available >= bytes {
                self.available -= bytes;
                OpResult::Done
            } else {
                self.waiting = Some(pid);
                OpResult::Blocked
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    fn build_host(clock: bool) -> (Host, DriverId) {
        let cfg = KernConfig {
            clock_enabled: clock,
            ..Default::default()
        };
        let mut kernel = Kernel::new(cfg, Pcg32::new(5, 5));
        let dev = kernel.add_driver(
            Box::new(ToyDev {
                period: Dur::from_ms(12),
                chunk: 2000,
                available: 0,
                waiting: None,
                interrupts: 0,
            }),
            Some(LINE_VCA),
        );
        let machine = Machine::new(MachineConfig::default());
        (Host::new(machine, kernel), dev)
    }

    #[test]
    fn reader_process_consumes_periodic_data() {
        let (mut host, dev) = build_host(true);
        // Arm the device, then read five 2000-byte chunks and exit.
        let prog = Program::once(vec![
            Step::Ioctl { dev, req: 1 },
            Step::ReadDev { dev, bytes: 2000 },
            Step::ReadDev { dev, bytes: 2000 },
            Step::ReadDev { dev, bytes: 2000 },
            Step::ReadDev { dev, bytes: 2000 },
            Step::ReadDev { dev, bytes: 2000 },
        ]);
        let pid = host.kernel.add_proc(prog);
        let evs = drain_component(&mut host, SimTime::from_ms(200));
        assert!(
            evs.iter()
                .any(|(_, e)| matches!(e, HostOut::ProcExited { pid: p } if *p == pid)),
            "reader finished 5 reads: {evs:?}"
        );
        assert!(host.kernel.proc_exited(pid));
        // The device free-runs after the reader exits; it must have fired
        // at least the five interrupts the reads consumed.
        let toy = host.kernel.driver_ref::<ToyDev>(dev).expect("toy");
        assert!(toy.interrupts >= 5, "got {}", toy.interrupts);
        // The reader's exit lands just after the fifth chunk (5 × 12 ms).
        let exit = evs
            .iter()
            .find_map(|(t, e)| {
                matches!(e, HostOut::ProcExited { pid: p } if *p == pid).then_some(*t)
            })
            .expect("exit time");
        assert!(
            exit >= SimTime::from_ms(60) && exit < SimTime::from_ms(64),
            "exit at {exit}"
        );
    }

    #[test]
    fn compute_processes_timeshare_fifo() {
        let (mut host, _dev) = build_host(false);
        let a = host
            .kernel
            .add_proc(Program::once(vec![Step::Compute(Dur::from_ms(25))]));
        let b = host
            .kernel
            .add_proc(Program::once(vec![Step::Compute(Dur::from_ms(5))]));
        let evs = drain_component(&mut host, SimTime::from_secs(1));
        let exits: Vec<(SimTime, Pid)> = evs
            .iter()
            .filter_map(|(t, e)| match e {
                HostOut::ProcExited { pid } => Some((*t, *pid)),
                _ => None,
            })
            .collect();
        assert_eq!(exits.len(), 2);
        // A runs 10 ms (quantum), B runs 5 and exits at 15 ms, A finishes
        // its remaining 15 ms at 30 ms.
        assert_eq!(exits[0], (SimTime::from_ms(15), b));
        assert_eq!(exits[1], (SimTime::from_ms(30), a));
    }

    #[test]
    fn sleep_wakes_after_duration() {
        let (mut host, _dev) = build_host(false);
        let p = host.kernel.add_proc(Program::once(vec![
            Step::Sleep(Dur::from_ms(7)),
            Step::Compute(Dur::from_us(100)),
        ]));
        let evs = drain_component(&mut host, SimTime::from_secs(1));
        let exit = evs
            .iter()
            .find_map(|(t, e)| matches!(e, HostOut::ProcExited { pid } if *pid == p).then_some(*t))
            .expect("exited");
        // 7 ms sleep + 400 µs wakeup/context switch + 100 µs compute.
        assert_eq!(exit, SimTime::from_us(7_500));
    }
}
