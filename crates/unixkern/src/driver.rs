//! The device-driver framework.
//!
//! Drivers are kernel-resident state machines invoked by the kernel on
//! interrupt entry, job/DMA completion, timers, ring events, user I/O and
//! inter-driver calls. The inter-driver call mechanism is the paper's §2
//! modification: "direct driver to driver data transfers … requires that
//! the source device be given a function which when executed will effect
//! the transfer of data between the two devices", with handles exchanged
//! via new `ioctl` calls.

use crate::ids::{DriverId, DropSite, MeasurePoint, Pid};
use crate::mbuf::MbufChain;
use ctms_rtpc::{ExecLevel, MemRegion};
use ctms_sim::{Dur, Pcg32, SimTime};
use ctms_tokenring::{Proto, StationId};
use std::any::Any;

/// A network packet travelling through the kernel (an mbuf chain plus the
/// metadata a real packet would carry in its headers).
#[derive(Clone, Debug)]
pub struct Pkt {
    /// Link protocol.
    pub proto: Proto,
    /// Destination station.
    pub dst: StationId,
    /// Information-field length in bytes (headers + payload).
    pub len: u32,
    /// Metadata tag (CTMSP packet number, or encoded socket meta).
    pub tag: u64,
    /// Ring access priority requested.
    pub priority: u8,
    /// The buffers (None when the data never left a fixed DMA buffer —
    /// the paper's no-copy receive variant).
    pub chain: Option<MbufChain>,
}

impl Pkt {
    /// Appends this packet's canonical checkpoint bytes.
    pub fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.u8(match self.proto {
            Proto::Arp => 0,
            Proto::Ip => 1,
            Proto::Ctmsp => 2,
            Proto::Other => 3,
        });
        enc.u32(self.dst.0);
        enc.u32(self.len);
        enc.u64(self.tag);
        enc.u8(self.priority);
        enc.opt(self.chain.as_ref(), |e, c| {
            e.u32(c.len);
            e.u32(c.count);
        });
    }

    /// Decodes a packet persisted by [`Pkt::persist`].
    pub fn decode(dec: &mut ctms_sim::Dec<'_>) -> Result<Pkt, ctms_sim::PersistError> {
        let proto = match dec.u8()? {
            0 => Proto::Arp,
            1 => Proto::Ip,
            2 => Proto::Ctmsp,
            3 => Proto::Other,
            tag => {
                return Err(ctms_sim::PersistError::BadTag {
                    what: "packet proto",
                    tag,
                })
            }
        };
        Ok(Pkt {
            proto,
            dst: StationId(dec.u32()?),
            len: dec.u32()?,
            tag: dec.u64()?,
            priority: dec.u8()?,
            chain: dec.opt(|d| {
                Ok(MbufChain {
                    len: d.u32()?,
                    count: d.u32()?,
                })
            })?,
        })
    }
}

/// Result of a user `read`/`write` entering a driver.
#[derive(Debug, PartialEq, Eq)]
pub enum OpResult {
    /// Completed: proceed (copy costs are the kernel's to pay).
    Done,
    /// The process must block; the driver will wake it later.
    Blocked,
}

/// Inter-driver calls (including the paper's direct-transfer handles).
#[derive(Clone, Debug)]
pub enum DriverCall {
    /// Stock path: enqueue a packet on the interface output queue.
    NetOutput(Pkt),
    /// §2 send handle: a CTMS source device hands a finished packet
    /// directly to the Token Ring driver at interrupt level.
    CtmspSend(Pkt),
    /// §2 receive handle: the Token Ring driver hands a received CTMSP
    /// packet directly to the destination presentation device.
    CtmspDeliver(Pkt),
    /// Free-form call for extensions.
    Custom {
        /// Call code.
        code: u32,
        /// Argument.
        arg: u64,
    },
}

/// How a process wakeup should resume its pending operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakeKind {
    /// Device read data is ready (`bytes` available).
    DevRead {
        /// Bytes now available.
        bytes: u32,
    },
    /// Device write space is available.
    DevWrite,
    /// Socket data arrived.
    SockData,
    /// Socket send space (TCP window / buffer) opened.
    SockSpace,
    /// A waited-on mbuf allocation was satisfied.
    Mbuf,
    /// Sleep expired.
    Timer,
}

/// Events the kernel emits for the testbed router.
#[derive(Debug)]
pub enum KernOut {
    /// Drive the machine (CPU/DMA).
    Mach(ctms_rtpc::MachCmd<crate::ids::KTag>),
    /// Submit a frame to the ring.
    RingSubmit(ctms_tokenring::Frame),
    /// A measurement point was crossed (ground truth for the edge logs).
    Trace {
        /// Which point.
        point: MeasurePoint,
        /// Packet number or 0.
        tag: u64,
    },
    /// Data was lost.
    Drop {
        /// Where.
        site: DropSite,
        /// Packet tag or 0.
        tag: u64,
        /// Bytes lost.
        bytes: u32,
    },
    /// CTMS payload reached the presentation device (sink-side ground
    /// truth for throughput/buffer accounting).
    Presented {
        /// Packet number.
        tag: u64,
        /// Payload bytes.
        bytes: u32,
    },
    /// A socket delivered payload to a local reader.
    SockDelivered {
        /// Socket port.
        port: crate::ids::Port,
        /// Payload bytes.
        bytes: u32,
    },
    /// A process exited (program complete).
    ProcExited {
        /// Which process.
        pid: Pid,
    },
}

/// Services a driver may use during a kernel dispatch.
pub struct Ctx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The mbuf pool.
    pub mbufs: &'a mut crate::mbuf::MbufPool,
    /// Deterministic randomness (stream-split per host).
    pub rng: &'a mut Pcg32,
    /// CPU copy-cost calibration.
    pub copy: ctms_rtpc::CopyCost,
    pub(crate) self_id: DriverId,
    pub(crate) out: &'a mut Vec<KernOut>,
    pub(crate) calls: &'a mut Vec<(DriverId, DriverCall)>,
    pub(crate) wakes: &'a mut Vec<(Pid, WakeKind)>,
    pub(crate) timers: &'a mut Vec<(SimTime, DriverId, u64)>,
    pub(crate) ip_in: &'a mut Vec<Pkt>,
    pub(crate) mbuf_ready: &'a mut Vec<(u64, MbufChain)>,
}

impl Ctx<'_> {
    /// This driver's id.
    pub fn self_id(&self) -> DriverId {
        self.self_id
    }

    /// Pushes a CPU job owned by this driver; completion calls
    /// [`Driver::on_job`] with `token`.
    pub fn push_job(&mut self, token: u64, cost: Dur, level: ExecLevel) {
        self.out
            .push(KernOut::Mach(ctms_rtpc::MachCmd::Push(ctms_rtpc::Job {
                tag: crate::ids::KTag::Driver {
                    id: self.self_id,
                    token,
                },
                cost,
                level,
            })));
    }

    /// Starts a DMA transfer owned by this driver; completion calls
    /// [`Driver::on_dma`] with `token`.
    pub fn start_dma(&mut self, token: u64, bytes: u32, per_byte: Dur, region: MemRegion) {
        self.out.push(KernOut::Mach(ctms_rtpc::MachCmd::StartDma {
            bytes,
            per_byte,
            region,
            tag: crate::ids::KTag::Driver {
                id: self.self_id,
                token,
            },
        }));
    }

    /// Raises a machine interrupt line (device hardware behaviour).
    pub fn raise_irq(&mut self, line: u8) {
        self.out
            .push(KernOut::Mach(ctms_rtpc::MachCmd::RaiseIrq { line }));
    }

    /// Arms a timer; at `at` the kernel calls [`Driver::on_timer`].
    pub fn set_timer(&mut self, token: u64, at: SimTime) {
        self.timers.push((at, self.self_id, token));
    }

    /// Records a measurement-point crossing.
    pub fn trace(&mut self, point: MeasurePoint, tag: u64) {
        self.out.push(KernOut::Trace { point, tag });
    }

    /// Submits a frame to the ring (the adapter's transmit command has
    /// completed its DMA).
    pub fn ring_submit(&mut self, frame: ctms_tokenring::Frame) {
        self.out.push(KernOut::RingSubmit(frame));
    }

    /// Queues an inter-driver call, dispatched after the current driver
    /// returns.
    pub fn call(&mut self, dst: DriverId, call: DriverCall) {
        self.calls.push((dst, call));
    }

    /// Wakes a blocked process.
    pub fn wake(&mut self, pid: Pid, kind: WakeKind) {
        self.wakes.push((pid, kind));
    }

    /// Hands a received IP packet to the protocol input path (softnet).
    pub fn ip_input(&mut self, pkt: Pkt) {
        self.ip_in.push(pkt);
    }

    /// Records a data/packet loss.
    pub fn drop_data(&mut self, site: DropSite, tag: u64, bytes: u32) {
        self.out.push(KernOut::Drop { site, tag, bytes });
    }

    /// Reports CTMS payload presented at the sink device.
    pub fn presented(&mut self, tag: u64, bytes: u32) {
        self.out.push(KernOut::Presented { tag, bytes });
    }

    /// Emits a raw kernel output (escape hatch for extensions).
    pub fn emit(&mut self, out: KernOut) {
        self.out.push(out);
    }

    /// Frees an mbuf chain; any process-level allocations the free
    /// satisfies are resumed by the kernel after this dispatch returns.
    pub fn free_chain(&mut self, chain: MbufChain) {
        self.mbufs.free_into(chain, self.mbuf_ready);
    }
}

/// A kernel-resident device driver.
///
/// All methods have do-nothing defaults so drivers implement only what
/// their hardware uses. Drivers are `Send` so a kernel (and the nodes
/// built from it) can migrate between worker threads of the sharded
/// scheduler; driver state is plain data, never thread-affine.
pub trait Driver: Any + Send {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Called once when the kernel boots; the place to arm initial timers
    /// (hardware that free-runs from power-on).
    fn on_boot(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }

    /// Hardware interrupt handler entry (dispatch completed on this
    /// driver's line). This is the instant of the paper's measurement
    /// point 2 for the VCA.
    fn on_interrupt(&mut self, ctx: &mut Ctx) {
        let _ = ctx;
    }

    /// A CPU job pushed via [`Ctx::push_job`] completed.
    fn on_job(&mut self, ctx: &mut Ctx, token: u64) {
        let _ = (ctx, token);
    }

    /// A DMA started via [`Ctx::start_dma`] completed.
    fn on_dma(&mut self, ctx: &mut Ctx, token: u64) {
        let _ = (ctx, token);
    }

    /// A timer armed via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let _ = (ctx, token);
    }

    /// A frame addressed to this host arrived from the ring (only routed
    /// to the network-interface driver).
    fn on_ring_delivered(&mut self, ctx: &mut Ctx, frame: ctms_tokenring::Frame) {
        let _ = (ctx, frame);
    }

    /// The adapter finished transmitting (strip seen). `delivered` is
    /// ground truth the real adapter reports via the frame-status bits.
    fn on_ring_stripped(&mut self, ctx: &mut Ctx, tag: u64, delivered: bool) {
        let _ = (ctx, tag, delivered);
    }

    /// An inter-driver call arrived.
    fn on_call(&mut self, ctx: &mut Ctx, from: DriverId, call: DriverCall) {
        let _ = (ctx, from, call);
    }

    /// A user process issued `read(dev, bytes)`. Return [`OpResult::Done`]
    /// if data is available now (the kernel pays the copyout), or
    /// [`OpResult::Blocked`] and wake the process later.
    fn read(&mut self, ctx: &mut Ctx, pid: Pid, bytes: u32) -> OpResult {
        let _ = (ctx, pid, bytes);
        OpResult::Done
    }

    /// A user process issued `write(dev, bytes)` (copyin already paid).
    fn write(&mut self, ctx: &mut Ctx, pid: Pid, bytes: u32) -> OpResult {
        let _ = (ctx, pid, bytes);
        OpResult::Done
    }

    /// A user process issued an `ioctl`.
    fn ioctl(&mut self, ctx: &mut Ctx, pid: Pid, req: u32) {
        let _ = (ctx, pid, req);
    }

    /// Publishes the driver's counters into the host's telemetry scope.
    /// The kernel mounts each driver under `drv{id}.{name}`; drivers that
    /// keep no statistics inherit this no-op.
    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        let _ = scope;
    }

    /// Appends this driver's dynamic state for a checkpoint. The kernel
    /// frames each driver's bytes with its [`name`](Driver::name) and a
    /// length prefix, so stateless drivers inherit this write-nothing
    /// default and pay only the frame.
    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        let _ = enc;
    }

    /// Restores state written by [`persist_state`](Driver::persist_state).
    /// The kernel hands each driver exactly its own byte span and verifies
    /// full consumption, so the default accepts only an empty span.
    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        let _ = dec;
        Ok(())
    }

    /// Downcast support for post-run statistics extraction.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null;
    impl Driver for Null {
        fn name(&self) -> &'static str {
            "null"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn defaults_are_noops() {
        let mut d = Null;
        assert_eq!(d.name(), "null");
        // Default read/write complete immediately.
        let mut mbufs = crate::mbuf::MbufPool::new(10);
        let mut rng = Pcg32::new(1, 1);
        let mut out = Vec::new();
        let mut calls = Vec::new();
        let mut wakes = Vec::new();
        let mut timers = Vec::new();
        let mut ip_in = Vec::new();
        let mut mbuf_ready = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::ZERO,
            mbufs: &mut mbufs,
            rng: &mut rng,
            copy: ctms_rtpc::CopyCost::default(),
            self_id: DriverId(0),
            out: &mut out,
            calls: &mut calls,
            wakes: &mut wakes,
            timers: &mut timers,
            ip_in: &mut ip_in,
            mbuf_ready: &mut mbuf_ready,
        };
        assert_eq!(d.read(&mut ctx, Pid(1), 100), OpResult::Done);
        assert_eq!(d.write(&mut ctx, Pid(1), 100), OpResult::Done);
        d.on_interrupt(&mut ctx);
        assert!(out.is_empty());
    }

    #[test]
    fn ctx_queues_outputs() {
        let mut mbufs = crate::mbuf::MbufPool::new(10);
        let mut rng = Pcg32::new(1, 1);
        let mut out = Vec::new();
        let mut calls = Vec::new();
        let mut wakes = Vec::new();
        let mut timers = Vec::new();
        let mut ip_in = Vec::new();
        let mut mbuf_ready = Vec::new();
        let mut ctx = Ctx {
            now: SimTime::from_ms(5),
            mbufs: &mut mbufs,
            rng: &mut rng,
            copy: ctms_rtpc::CopyCost::default(),
            self_id: DriverId(3),
            out: &mut out,
            calls: &mut calls,
            wakes: &mut wakes,
            timers: &mut timers,
            ip_in: &mut ip_in,
            mbuf_ready: &mut mbuf_ready,
        };
        ctx.push_job(9, Dur::from_us(10), ExecLevel::KernelSpl(5));
        ctx.raise_irq(2);
        ctx.trace(MeasurePoint::PreTransmit, 42);
        ctx.set_timer(7, SimTime::from_ms(17));
        ctx.wake(Pid(1), WakeKind::SockData);
        assert_eq!(out.len(), 3);
        assert_eq!(timers, vec![(SimTime::from_ms(17), DriverId(3), 7)]);
        assert_eq!(wakes, vec![(Pid(1), WakeKind::SockData)]);
        assert!(matches!(
            out[2],
            KernOut::Trace {
                point: MeasurePoint::PreTransmit,
                tag: 42
            }
        ));
    }
}
