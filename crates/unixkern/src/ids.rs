//! Identifier and tag types shared across the kernel model.

/// Index of a registered device driver within one host's kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DriverId(pub u8);

/// Process identifier within one host.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// A socket "port": the rendezvous key connecting a socket on one host to
/// its peer on another.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

/// Continuation tag carried through the machine layer (CPU jobs, DMA).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KTag {
    /// Work owned by a driver; `token` is driver-private.
    Driver {
        /// Owning driver.
        id: DriverId,
        /// Driver-private continuation value.
        token: u64,
    },
    /// Work owned by a process step.
    Proc {
        /// Owning process.
        pid: Pid,
        /// Kernel-private step continuation value.
        token: u64,
    },
    /// Work owned by the kernel itself (clock, softnet, …).
    Kern {
        /// Kernel-private continuation value.
        token: u64,
    },
}

/// The placeholder [`decode_new`](ctms_sim::decode_new) starting value;
/// real tags are always fully overwritten by [`ctms_sim::Persist::restore`].
impl Default for KTag {
    fn default() -> Self {
        KTag::Kern { token: 0 }
    }
}

impl ctms_sim::Persist for KTag {
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        match self {
            KTag::Driver { id, token } => {
                enc.u8(0);
                enc.u8(id.0);
                enc.u64(*token);
            }
            KTag::Proc { pid, token } => {
                enc.u8(1);
                enc.u32(pid.0);
                enc.u64(*token);
            }
            KTag::Kern { token } => {
                enc.u8(2);
                enc.u64(*token);
            }
        }
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        *self = match dec.u8()? {
            0 => KTag::Driver {
                id: DriverId(dec.u8()?),
                token: dec.u64()?,
            },
            1 => KTag::Proc {
                pid: Pid(dec.u32()?),
                token: dec.u64()?,
            },
            2 => KTag::Kern { token: dec.u64()? },
            tag => {
                return Err(ctms_sim::PersistError::BadTag {
                    what: "kernel tag",
                    tag,
                })
            }
        };
        Ok(())
    }
}

/// The paper's measurement points (§5.2) plus extension points.
///
/// The testbed records each crossing into a ground-truth
/// [`ctms_sim::EdgeLog`]; measurement-tool models then view those logs
/// through their own error models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MeasurePoint {
    /// Point 1: the VCA adapter's Interrupt Request Line pulse.
    VcaIrq,
    /// Point 2: entry into the VCA's interrupt handler.
    VcaHandlerEntry,
    /// Point 3: immediately after the packet is copied into the fixed DMA
    /// buffer and immediately before the Token Ring `transmit` command.
    PreTransmit,
    /// Point 4: immediately after the received packet is determined to be
    /// a CTMSP packet.
    CtmspIdentified,
    /// Extension: CTMS payload handed to the presentation device.
    Presented,
    /// Extension point for ad-hoc instrumentation.
    Custom(u8),
}

/// Places the data path can lose CTMS data or packets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropSite {
    /// The VCA's on-card buffer overran before the host consumed it.
    VcaOverrun,
    /// An mbuf allocation failed at interrupt level.
    MbufExhausted,
    /// The network interface output queue was full.
    IfqFull,
    /// A socket receive buffer was full.
    SockbufFull,
    /// The ring's station transmit queue overflowed.
    RingQueue,
    /// The frame was destroyed by a Ring Purge.
    Purge,
    /// The receiver identified a duplicate (recovery retransmission).
    Duplicate,
    /// The presentation device's jitter buffer underran (a glitch).
    Underrun,
    /// All adapter receive buffers were busy (adapter overrun).
    AdapterOverrun,
    /// A frame for a protocol the driver does not understand.
    UnknownProto,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_compare() {
        let a = KTag::Driver {
            id: DriverId(1),
            token: 5,
        };
        let b = KTag::Driver {
            id: DriverId(1),
            token: 5,
        };
        assert_eq!(a, b);
        assert_ne!(
            a,
            KTag::Proc {
                pid: Pid(1),
                token: 5
            }
        );
    }

    #[test]
    fn measure_points_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(MeasurePoint::VcaIrq);
        s.insert(MeasurePoint::Custom(3));
        assert!(s.contains(&MeasurePoint::VcaIrq));
        assert!(!s.contains(&MeasurePoint::Custom(4)));
    }
}
