//! The Token Ring device driver, stock and modified.
//!
//! One driver type covers the whole §5.3 variant space through
//! [`TrDriverCfg`]; the paper's modified driver is the default
//! configuration, the stock driver is `TrDriverCfg::stock()`:
//!
//! * **CTMSP split point** (§3): received frames are tested with "the
//!   shortest possible test" for CTMSP and handed directly to the
//!   destination device driver (measurement point 4);
//! * **driver-level packet priority** (§3): CTMSP packets jump the
//!   interface output queue ahead of ARP and IP;
//! * **precomputed Token Ring header** (§3): computed once per connection
//!   instead of per packet;
//! * **copy variants** (§5.3): header+data vs. header-only into the fixed
//!   DMA buffers (transmit), DMA-buffer→mbufs vs. in-place examination
//!   (receive);
//! * **fixed DMA buffer placement** (§4): system memory vs. IO Channel
//!   Memory;
//! * **hypothetical purge-interrupt retransmission** (§5): the last packet
//!   is kept in the fixed buffer and retransmitted when a Ring Purge is
//!   signalled — the mode the real adapter could not support.

use ctms_devices::TrAdapterCfg;
use ctms_rtpc::{CopyCost, ExecLevel, MemRegion};
use ctms_sim::Dur;
use ctms_tokenring::{Frame, FrameId, FrameKind, Proto, StationId};
use ctms_unixkern::{Ctx, Driver, DriverCall, DriverId, DropSite, MeasurePoint, Pkt, LINE_TR};
use std::any::Any;
use std::collections::VecDeque;

/// `DriverCall::Custom` code injected by the testbed when a Ring Purge is
/// observed (only meaningful in `purge_interrupt` mode).
pub const CALL_PURGE_SEEN: u32 = 0x5045;

// Job/timer tokens.
const TXCOPY: u64 = 1;
const TXCMD: u64 = 2;
const TXDMA: u64 = 3;
const RXCHECK: u64 = 4;
const RXCOPY: u64 = 5;
const RXDMA_BASE: u64 = 1_000;

/// Driver configuration (the §5.3 variant space).
#[derive(Clone, Copy, Debug)]
pub struct TrDriverCfg {
    /// This host's station.
    pub station: StationId,
    /// Adapter hardware parameters.
    pub adapter: TrAdapterCfg,
    /// Handle CTMSP frames (the §3 split point). Off = stock driver:
    /// CTMSP frames are an unknown protocol and are dropped.
    pub ctmsp_enabled: bool,
    /// CTMSP packets jump the output queue (§3 driver priority).
    pub driver_priority: bool,
    /// Token Ring header precomputed once per connection (§3).
    pub precomputed_header: bool,
    /// Transmit copies header+data into the fixed DMA buffer; false =
    /// header-only, data DMA'd straight from the mbufs in system memory.
    pub tx_copy_full: bool,
    /// Receive copies the frame from the fixed DMA buffer into mbufs
    /// before delivery; false = the destination device examines the
    /// packet in place.
    pub rx_copy_to_mbufs: bool,
    /// The presentation device receiving CTMSP deliveries.
    pub ctmsp_sink: Option<DriverId>,
    /// Interface output queue capacity.
    pub ifq_cap: usize,
    /// Per-packet Token Ring header computation (stock path).
    pub header_cost: Dur,
    /// Per-packet cost when the header is precomputed.
    pub precomp_header_cost: Dur,
    /// Receive-side cost from handler entry to the CTMSP determination —
    /// "the shortest possible test" plus the measurement port write
    /// (§5.2.3).
    pub ctmsp_check_cost: Dur,
    /// spl level of the driver's copy sections.
    pub copy_spl: u8,
    /// Reproduce the §5 driver bug: critical sections around the output
    /// queue are not "carefully protected", so an enqueue racing a
    /// transmit-complete occasionally reorders packets. TAP and the
    /// watchdog exist to catch exactly this.
    pub racy_critical_sections: bool,
}

impl Default for TrDriverCfg {
    fn default() -> Self {
        TrDriverCfg {
            station: StationId(0),
            adapter: TrAdapterCfg::default(),
            ctmsp_enabled: true,
            driver_priority: true,
            precomputed_header: true,
            tx_copy_full: true,
            rx_copy_to_mbufs: true,
            ctmsp_sink: None,
            ifq_cap: 50,
            header_cost: Dur::from_us(150),
            precomp_header_cost: Dur::from_us(15),
            ctmsp_check_cost: Dur::from_us(150),
            copy_spl: 5,
            racy_critical_sections: false,
        }
    }
}

impl TrDriverCfg {
    /// The unmodified driver: no CTMSP, no priorities, headers recomputed
    /// per packet, full copies, fixed DMA buffers in system memory.
    pub fn stock(station: StationId) -> Self {
        let adapter = TrAdapterCfg {
            buffer_region: MemRegion::System,
            ..TrAdapterCfg::default()
        };
        TrDriverCfg {
            station,
            adapter,
            ctmsp_enabled: false,
            driver_priority: false,
            precomputed_header: false,
            tx_copy_full: true,
            rx_copy_to_mbufs: true,
            ctmsp_sink: None,
            ..TrDriverCfg::default()
        }
    }
}

/// Driver counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrDriverStats {
    /// Frames transmitted (all protocols).
    pub tx_frames: u64,
    /// CTMSP frames transmitted.
    pub ctmsp_tx: u64,
    /// Frames received and processed.
    pub rx_frames: u64,
    /// CTMSP frames identified on receive.
    pub ctmsp_rx: u64,
    /// Output-queue drops.
    pub ifq_drops: u64,
    /// Receive drops: all adapter buffers busy.
    pub rx_overruns: u64,
    /// Receive drops: no mbufs for the copy.
    pub rx_mbuf_drops: u64,
    /// CTMSP frames dropped by the stock driver (unknown protocol).
    pub unknown_proto_drops: u64,
    /// Purge-interrupt retransmissions.
    pub retransmits: u64,
    /// High-water mark of queued + in-flight CTMSP packets (per-packet
    /// buffer requirement, conclusion §6).
    pub ctmsp_q_highwater: u32,
}

impl ctms_sim::Instrument for TrDriverStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("tx_frames", self.tx_frames);
        scope.counter("ctmsp_tx", self.ctmsp_tx);
        scope.counter("rx_frames", self.rx_frames);
        scope.counter("ctmsp_rx", self.ctmsp_rx);
        scope.counter("ifq_drops", self.ifq_drops);
        scope.counter("rx_overruns", self.rx_overruns);
        scope.counter("rx_mbuf_drops", self.rx_mbuf_drops);
        scope.counter("unknown_proto_drops", self.unknown_proto_drops);
        scope.counter("retransmits", self.retransmits);
        scope.gauge("ctmsp_q_highwater", i64::from(self.ctmsp_q_highwater));
    }
}

#[derive(Debug)]
enum TxEntry {
    Fresh(Pkt),
    /// Retransmission of the packet still in the fixed DMA buffer.
    Resend {
        dst: StationId,
        len: u32,
        tag: u64,
        priority: u8,
        proto: Proto,
    },
}

impl TxEntry {
    fn is_ctmsp(&self) -> bool {
        matches!(
            self,
            TxEntry::Fresh(Pkt {
                proto: Proto::Ctmsp,
                ..
            }) | TxEntry::Resend {
                proto: Proto::Ctmsp,
                ..
            }
        )
    }
}

#[derive(Clone, Copy, Debug)]
struct LastTx {
    dst: StationId,
    len: u32,
    tag: u64,
    priority: u8,
    proto: Proto,
}

#[derive(Debug)]
struct TxBusy {
    dst: StationId,
    len: u32,
    tag: u64,
    priority: u8,
    proto: Proto,
    chain: Option<ctms_unixkern::MbufChain>,
}

#[derive(Debug)]
enum RxDispose {
    Ctmsp,
    IpInput,
}

/// The Token Ring driver. See module docs.
#[derive(Debug)]
pub struct TrDriver {
    cfg: TrDriverCfg,
    copy: Option<CopyCost>,
    tx_queue: VecDeque<TxEntry>,
    tx_busy: Option<TxBusy>,
    tx_done_pending: u32,
    last_tx: Option<LastTx>,
    retransmitted_tag: Option<u64>,
    /// In-flight receive DMAs keyed by timer token, sorted ascending.
    /// Tokens are handed out monotonically and at most `rx_buffers`
    /// entries are live at once, so a sorted vec beats a hash map on
    /// this path (several lookups per received frame, population 0–2).
    rx_dma: Vec<(u64, Frame)>,
    rx_dma_seq: u64,
    rx_buffers_in_use: u32,
    rx_pending: VecDeque<Frame>,
    rx_checking: Option<Frame>,
    rx_copying: Option<(Frame, RxDispose)>,
    /// Receive postings are FIFO: a later frame's interrupt never
    /// overtakes an earlier one's.
    last_rx_post: ctms_sim::SimTime,
    next_local_frame: u64,
    stats: TrDriverStats,
}

impl TrDriver {
    /// Creates the driver.
    pub fn new(cfg: TrDriverCfg) -> Self {
        TrDriver {
            cfg,
            copy: None,
            tx_queue: VecDeque::new(),
            tx_busy: None,
            tx_done_pending: 0,
            last_tx: None,
            retransmitted_tag: None,
            rx_dma: Vec::new(),
            rx_dma_seq: 0,
            rx_buffers_in_use: 0,
            rx_pending: VecDeque::new(),
            rx_checking: None,
            rx_copying: None,
            last_rx_post: ctms_sim::SimTime::ZERO,
            next_local_frame: 0,
            stats: TrDriverStats::default(),
        }
    }

    fn rx_dma_insert(&mut self, token: u64, frame: Frame) {
        match self.rx_dma.binary_search_by_key(&token, |e| e.0) {
            Ok(_) => panic!("tokenring: duplicate rx dma token {token}"),
            Err(i) => self.rx_dma.insert(i, (token, frame)),
        }
    }

    fn rx_dma_remove(&mut self, token: u64) -> Option<Frame> {
        match self.rx_dma.binary_search_by_key(&token, |e| e.0) {
            Ok(i) => Some(self.rx_dma.remove(i).1),
            Err(_) => None,
        }
    }

    /// Counters.
    pub fn stats(&self) -> TrDriverStats {
        self.stats
    }

    /// Current output-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.tx_queue.len()
    }

    fn alloc_frame_id(&mut self) -> FrameId {
        self.next_local_frame += 1;
        FrameId((u64::from(self.cfg.station.0) + 1) << 32 | self.next_local_frame)
    }

    fn ctmsp_queued(&self) -> u32 {
        let q = self.tx_queue.iter().filter(|e| e.is_ctmsp()).count() as u32;
        let busy = self
            .tx_busy
            .as_ref()
            .map(|b| u32::from(b.proto == Proto::Ctmsp))
            .unwrap_or(0);
        q + busy
    }

    fn enqueue(&mut self, ctx: &mut Ctx, entry: TxEntry, front: bool) {
        if self.tx_queue.len() >= self.cfg.ifq_cap {
            // Priority packets displace queued background traffic rather
            // than being refused at a full queue (§3's driver priority,
            // applied to admission as well as ordering).
            let evicted = if self.cfg.driver_priority && entry.is_ctmsp() {
                self.tx_queue
                    .iter()
                    .rposition(|e| !e.is_ctmsp())
                    .map(|pos| self.tx_queue.remove(pos).expect("indexed"))
            } else {
                None
            };
            match evicted {
                Some(TxEntry::Fresh(victim)) => {
                    self.stats.ifq_drops += 1;
                    ctx.drop_data(DropSite::IfqFull, victim.tag, victim.len);
                    if let Some(chain) = victim.chain {
                        ctx.free_chain(chain);
                    }
                }
                Some(TxEntry::Resend { .. }) | None => {
                    self.stats.ifq_drops += 1;
                    if let TxEntry::Fresh(pkt) = entry {
                        ctx.drop_data(DropSite::IfqFull, pkt.tag, pkt.len);
                        if let Some(chain) = pkt.chain {
                            ctx.free_chain(chain);
                        }
                    }
                    return;
                }
            }
        }
        if self.cfg.racy_critical_sections && !front && entry.is_ctmsp() {
            // The unprotected window: the new packet's queue insertion
            // interleaves with a concurrent dequeue and lands ahead of an
            // earlier CTMSP packet (§5: "out of order packets were a
            // direct result of the Token Ring device driver
            // implementation").
            if let Some(pos) = self.tx_queue.iter().rposition(TxEntry::is_ctmsp) {
                if ctx.rng.chance(0.25) {
                    self.tx_queue.insert(pos, entry);
                    self.stats.ctmsp_q_highwater =
                        self.stats.ctmsp_q_highwater.max(self.ctmsp_queued());
                    if self.tx_busy.is_none() {
                        self.start_next_tx(ctx);
                    }
                    return;
                }
            }
        }
        if front {
            self.tx_queue.push_front(entry);
        } else if self.cfg.driver_priority && entry.is_ctmsp() {
            // Insert after the last queued CTMSP packet, ahead of all
            // ARP/IP (§3: "packet priority within the Token Ring device
            // driver ... above both ARP and IP packets").
            let pos = self
                .tx_queue
                .iter()
                .rposition(TxEntry::is_ctmsp)
                .map(|p| p + 1)
                .unwrap_or(0);
            self.tx_queue.insert(pos, entry);
        } else {
            self.tx_queue.push_back(entry);
        }
        self.stats.ctmsp_q_highwater = self.stats.ctmsp_q_highwater.max(self.ctmsp_queued());
        if self.tx_busy.is_none() {
            self.start_next_tx(ctx);
        }
    }

    fn start_next_tx(&mut self, ctx: &mut Ctx) {
        debug_assert!(self.tx_busy.is_none());
        let Some(entry) = self.tx_queue.pop_front() else {
            return;
        };
        match entry {
            TxEntry::Fresh(pkt) => {
                let copy = self.copy.expect("copy costs set on first call");
                let is_ctmsp = pkt.proto == Proto::Ctmsp;
                let header = if is_ctmsp && self.cfg.precomputed_header {
                    self.cfg.precomp_header_cost
                } else {
                    self.cfg.header_cost
                };
                let copy_bytes = if is_ctmsp && !self.cfg.tx_copy_full {
                    crate::protocol::TR_HEADER_LEN + crate::protocol::CTMSP_HEADER_LEN
                } else {
                    pkt.len
                };
                let cost = header
                    + copy.copy(
                        copy_bytes,
                        MemRegion::System,
                        self.cfg.adapter.buffer_region,
                    );
                self.tx_busy = Some(TxBusy {
                    dst: pkt.dst,
                    len: pkt.len,
                    tag: pkt.tag,
                    priority: pkt.priority,
                    proto: pkt.proto,
                    chain: pkt.chain,
                });
                ctx.push_job(TXCOPY, cost, ExecLevel::KernelSpl(self.cfg.copy_spl));
            }
            TxEntry::Resend {
                dst,
                len,
                tag,
                priority,
                proto,
            } => {
                // Data still in the fixed DMA buffer: straight to the
                // transmit command.
                self.stats.retransmits += 1;
                self.tx_busy = Some(TxBusy {
                    dst,
                    len,
                    tag,
                    priority,
                    proto,
                    chain: None,
                });
                self.issue_tx_cmd(ctx);
            }
        }
    }

    fn issue_tx_cmd(&mut self, ctx: &mut Ctx) {
        let (lo, hi) = self.cfg.adapter.cmd_latency;
        let lat = ctx.rng.uniform_dur(lo, hi);
        ctx.set_timer(TXCMD, ctx.now + lat);
    }

    fn dma_region_for_tx(&self, proto: Proto) -> MemRegion {
        if proto == Proto::Ctmsp && !self.cfg.tx_copy_full {
            // Header-only variant: the payload is DMA'd from the mbufs in
            // system memory.
            MemRegion::System
        } else {
            self.cfg.adapter.buffer_region
        }
    }

    fn process_rx_queue(&mut self, ctx: &mut Ctx) {
        if self.rx_checking.is_some() || self.rx_copying.is_some() {
            return;
        }
        if let Some(frame) = self.rx_pending.pop_front() {
            self.rx_checking = Some(frame);
            ctx.push_job(RXCHECK, self.cfg.ctmsp_check_cost, ExecLevel::Irq(LINE_TR));
        }
    }

    fn finish_rx(&mut self, ctx: &mut Ctx, frame: Frame, dispose: RxDispose) {
        self.rx_buffers_in_use = self.rx_buffers_in_use.saturating_sub(1);
        match dispose {
            RxDispose::Ctmsp => {
                let chain = if self.cfg.rx_copy_to_mbufs {
                    match ctx.mbufs.alloc_nowait(frame.info_len) {
                        Some(c) => Some(c),
                        None => {
                            self.stats.rx_mbuf_drops += 1;
                            ctx.drop_data(DropSite::MbufExhausted, frame.tag, frame.info_len);
                            self.process_rx_queue(ctx);
                            return;
                        }
                    }
                } else {
                    None
                };
                if let Some(sink) = self.cfg.ctmsp_sink {
                    ctx.call(
                        sink,
                        DriverCall::CtmspDeliver(Pkt {
                            proto: Proto::Ctmsp,
                            dst: self.cfg.station,
                            len: frame.info_len,
                            tag: frame.tag,
                            priority: frame.priority,
                            chain,
                        }),
                    );
                } else if let Some(chain) = chain {
                    ctx.free_chain(chain);
                }
            }
            RxDispose::IpInput => {
                let Some(chain) = ctx.mbufs.alloc_nowait(frame.info_len) else {
                    self.stats.rx_mbuf_drops += 1;
                    ctx.drop_data(DropSite::MbufExhausted, frame.tag, frame.info_len);
                    self.process_rx_queue(ctx);
                    return;
                };
                let proto = match frame.kind {
                    FrameKind::Llc(p) => p,
                    FrameKind::Mac(_) => unreachable!("MAC frames never reach the host"),
                };
                ctx.ip_input(Pkt {
                    proto,
                    dst: self.cfg.station,
                    len: frame.info_len,
                    tag: frame.tag,
                    priority: frame.priority,
                    chain: Some(chain),
                });
            }
        }
        self.process_rx_queue(ctx);
    }
}

fn persist_proto(enc: &mut ctms_sim::Enc, p: Proto) {
    enc.u8(match p {
        Proto::Arp => 0,
        Proto::Ip => 1,
        Proto::Ctmsp => 2,
        Proto::Other => 3,
    });
}

fn restore_proto(dec: &mut ctms_sim::Dec<'_>) -> Result<Proto, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => Proto::Arp,
        1 => Proto::Ip,
        2 => Proto::Ctmsp,
        3 => Proto::Other,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "frame proto",
                tag,
            })
        }
    })
}

fn persist_tx_entry(enc: &mut ctms_sim::Enc, e: &TxEntry) {
    match e {
        TxEntry::Fresh(pkt) => {
            enc.u8(0);
            pkt.persist(enc);
        }
        TxEntry::Resend {
            dst,
            len,
            tag,
            priority,
            proto,
        } => {
            enc.u8(1);
            enc.u32(dst.0);
            enc.u32(*len);
            enc.u64(*tag);
            enc.u8(*priority);
            persist_proto(enc, *proto);
        }
    }
}

fn restore_tx_entry(dec: &mut ctms_sim::Dec<'_>) -> Result<TxEntry, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => TxEntry::Fresh(Pkt::decode(dec)?),
        1 => TxEntry::Resend {
            dst: StationId(dec.u32()?),
            len: dec.u32()?,
            tag: dec.u64()?,
            priority: dec.u8()?,
            proto: restore_proto(dec)?,
        },
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "tx queue entry",
                tag,
            })
        }
    })
}

fn persist_dispose(enc: &mut ctms_sim::Enc, d: &RxDispose) {
    enc.u8(match d {
        RxDispose::Ctmsp => 0,
        RxDispose::IpInput => 1,
    });
}

fn restore_dispose(dec: &mut ctms_sim::Dec<'_>) -> Result<RxDispose, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => RxDispose::Ctmsp,
        1 => RxDispose::IpInput,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "rx dispose",
                tag,
            })
        }
    })
}

impl Driver for TrDriver {
    fn name(&self) -> &'static str {
        "tokenring"
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        use ctms_sim::Persist as _;
        enc.opt(self.copy.as_ref(), |e, c| c.persist(e));
        enc.seq_len(self.tx_queue.len());
        for entry in &self.tx_queue {
            persist_tx_entry(enc, entry);
        }
        enc.opt(self.tx_busy.as_ref(), |e, b| {
            e.u32(b.dst.0);
            e.u32(b.len);
            e.u64(b.tag);
            e.u8(b.priority);
            persist_proto(e, b.proto);
            e.opt(b.chain.as_ref(), |e2, c| {
                e2.u32(c.len);
                e2.u32(c.count);
            });
        });
        enc.u32(self.tx_done_pending);
        enc.opt(self.last_tx.as_ref(), |e, l| {
            e.u32(l.dst.0);
            e.u32(l.len);
            e.u64(l.tag);
            e.u8(l.priority);
            persist_proto(e, l.proto);
        });
        enc.opt(self.retransmitted_tag.as_ref(), |e, t| e.u64(*t));
        // Already sorted by token — encodes byte-identically to the
        // sorted-HashMap layout this replaced.
        enc.seq_len(self.rx_dma.len());
        for (t, f) in &self.rx_dma {
            enc.u64(*t);
            f.persist(enc);
        }
        enc.u64(self.rx_dma_seq);
        enc.u32(self.rx_buffers_in_use);
        enc.seq_len(self.rx_pending.len());
        for f in &self.rx_pending {
            f.persist(enc);
        }
        enc.opt(self.rx_checking.as_ref(), |e, f| f.persist(e));
        enc.opt(self.rx_copying.as_ref(), |e, (f, d)| {
            f.persist(e);
            persist_dispose(e, d);
        });
        enc.time(self.last_rx_post);
        enc.u64(self.next_local_frame);
        enc.u64(self.stats.tx_frames);
        enc.u64(self.stats.ctmsp_tx);
        enc.u64(self.stats.rx_frames);
        enc.u64(self.stats.ctmsp_rx);
        enc.u64(self.stats.ifq_drops);
        enc.u64(self.stats.rx_overruns);
        enc.u64(self.stats.rx_mbuf_drops);
        enc.u64(self.stats.unknown_proto_drops);
        enc.u64(self.stats.retransmits);
        enc.u32(self.stats.ctmsp_q_highwater);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        use ctms_tokenring::decode_frame;
        self.copy = dec.opt(|d| {
            let mut c = CopyCost::default();
            ctms_sim::Persist::restore(&mut c, d)?;
            Ok(c)
        })?;
        self.tx_queue = dec.seq(restore_tx_entry)?.into();
        self.tx_busy = dec.opt(|d| {
            Ok(TxBusy {
                dst: StationId(d.u32()?),
                len: d.u32()?,
                tag: d.u64()?,
                priority: d.u8()?,
                proto: restore_proto(d)?,
                chain: d.opt(|d2| {
                    Ok(ctms_unixkern::MbufChain {
                        len: d2.u32()?,
                        count: d2.u32()?,
                    })
                })?,
            })
        })?;
        self.tx_done_pending = dec.u32()?;
        self.last_tx = dec.opt(|d| {
            Ok(LastTx {
                dst: StationId(d.u32()?),
                len: d.u32()?,
                tag: d.u64()?,
                priority: d.u8()?,
                proto: restore_proto(d)?,
            })
        })?;
        self.retransmitted_tag = dec.opt(|d| d.u64())?;
        self.rx_dma = dec.seq(|d| Ok((d.u64()?, decode_frame(d)?)))?;
        self.rx_dma.sort_unstable_by_key(|e| e.0);
        self.rx_dma_seq = dec.u64()?;
        self.rx_buffers_in_use = dec.u32()?;
        self.rx_pending = dec.seq(decode_frame)?.into();
        self.rx_checking = dec.opt(decode_frame)?;
        self.rx_copying = dec.opt(|d| Ok((decode_frame(d)?, restore_dispose(d)?)))?;
        self.last_rx_post = dec.time()?;
        self.next_local_frame = dec.u64()?;
        self.stats = TrDriverStats {
            tx_frames: dec.u64()?,
            ctmsp_tx: dec.u64()?,
            rx_frames: dec.u64()?,
            ctmsp_rx: dec.u64()?,
            ifq_drops: dec.u64()?,
            rx_overruns: dec.u64()?,
            rx_mbuf_drops: dec.u64()?,
            unknown_proto_drops: dec.u64()?,
            retransmits: dec.u64()?,
            ctmsp_q_highwater: dec.u32()?,
        };
        Ok(())
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn on_call(&mut self, ctx: &mut Ctx, _from: DriverId, call: DriverCall) {
        if self.copy.is_none() {
            self.copy = Some(ctx.copy);
        }
        match call {
            DriverCall::NetOutput(pkt) => {
                self.enqueue(ctx, TxEntry::Fresh(pkt), false);
            }
            DriverCall::CtmspSend(pkt) => {
                debug_assert_eq!(pkt.proto, Proto::Ctmsp);
                if !self.cfg.ctmsp_enabled {
                    // Stock driver has no send handle; the packet is lost.
                    self.stats.unknown_proto_drops += 1;
                    ctx.drop_data(DropSite::UnknownProto, pkt.tag, pkt.len);
                    if let Some(chain) = pkt.chain {
                        ctx.free_chain(chain);
                    }
                    return;
                }
                self.enqueue(ctx, TxEntry::Fresh(pkt), false);
            }
            DriverCall::Custom {
                code: CALL_PURGE_SEEN,
                ..
            } => {
                if !self.cfg.adapter.purge_interrupt {
                    return;
                }
                let Some(last) = self.last_tx else { return };
                if self.retransmitted_tag == Some(last.tag) {
                    return; // already retransmitted for this purge burst
                }
                self.retransmitted_tag = Some(last.tag);
                let entry = TxEntry::Resend {
                    dst: last.dst,
                    len: last.len,
                    tag: last.tag,
                    priority: last.priority,
                    proto: last.proto,
                };
                if self.tx_busy.is_none() {
                    self.tx_queue.push_front(entry);
                    self.start_next_tx(ctx);
                } else {
                    self.enqueue(ctx, entry, true);
                }
            }
            _ => {}
        }
    }

    fn on_job(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            TXCOPY => {
                let busy = self.tx_busy.as_mut().expect("copy without tx");
                if let Some(chain) = busy.chain.take() {
                    // In the full-copy path the mbufs are free once the
                    // packet sits in the fixed DMA buffer. (Header-only
                    // keeps them until the DMA completes; freeing here is
                    // a simplification of one chain-lifetime, noted in
                    // DESIGN.md.)
                    ctx.free_chain(chain);
                }
                if busy.proto == Proto::Ctmsp && self.cfg.ctmsp_enabled {
                    // Measurement point 3: after the copy into the fixed
                    // DMA buffer, before the transmit command.
                    ctx.trace(MeasurePoint::PreTransmit, busy.tag);
                }
                self.issue_tx_cmd(ctx);
            }
            RXCHECK => {
                let frame = self.rx_checking.take().expect("check without frame");
                self.stats.rx_frames += 1;
                match frame.kind {
                    FrameKind::Llc(Proto::Ctmsp) => {
                        if !self.cfg.ctmsp_enabled {
                            self.stats.unknown_proto_drops += 1;
                            self.rx_buffers_in_use = self.rx_buffers_in_use.saturating_sub(1);
                            ctx.drop_data(DropSite::UnknownProto, frame.tag, frame.info_len);
                            self.process_rx_queue(ctx);
                            return;
                        }
                        self.stats.ctmsp_rx += 1;
                        // Measurement point 4: "immediately after the
                        // received packet is determined to be a CTMSP
                        // packet".
                        ctx.trace(MeasurePoint::CtmspIdentified, frame.tag);
                        if self.cfg.rx_copy_to_mbufs {
                            let copy = self.copy.unwrap_or_default();
                            let cost = copy.copy(
                                frame.info_len,
                                self.cfg.adapter.buffer_region,
                                MemRegion::System,
                            );
                            self.rx_copying = Some((frame, RxDispose::Ctmsp));
                            ctx.push_job(RXCOPY, cost, ExecLevel::KernelSpl(self.cfg.copy_spl));
                        } else {
                            self.finish_rx(ctx, frame, RxDispose::Ctmsp);
                        }
                    }
                    FrameKind::Llc(_) => {
                        let copy = self.copy.unwrap_or_default();
                        let cost = copy.copy(
                            frame.info_len,
                            self.cfg.adapter.buffer_region,
                            MemRegion::System,
                        );
                        self.rx_copying = Some((frame, RxDispose::IpInput));
                        ctx.push_job(RXCOPY, cost, ExecLevel::KernelSpl(self.cfg.copy_spl));
                    }
                    FrameKind::Mac(_) => {
                        // The adapter never passes MAC frames up (§4).
                        self.rx_buffers_in_use = self.rx_buffers_in_use.saturating_sub(1);
                        self.process_rx_queue(ctx);
                    }
                }
            }
            RXCOPY => {
                let (frame, dispose) = self.rx_copying.take().expect("copy without frame");
                self.finish_rx(ctx, frame, dispose);
            }
            other => panic!("tokenring: unknown job token {other}"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            TXCMD => {
                let busy = self.tx_busy.as_ref().expect("cmd without tx");
                let wire = busy.len + ctms_tokenring::FRAME_OVERHEAD_BYTES;
                let region = self.dma_region_for_tx(busy.proto);
                ctx.start_dma(TXDMA, wire, self.cfg.adapter.tx_dma_per_byte, region);
            }
            t if t >= RXDMA_BASE => {
                // Receive posting latency elapsed: interrupt the host.
                let frame = self.rx_dma_remove(t).expect("rx post without frame");
                self.rx_pending.push_back(frame);
                ctx.raise_irq(LINE_TR);
            }
            other => panic!("tokenring: unknown timer token {other}"),
        }
    }

    fn on_dma(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            TXDMA => {
                let busy = self.tx_busy.as_ref().expect("dma without tx");
                self.stats.tx_frames += 1;
                if busy.proto == Proto::Ctmsp {
                    self.stats.ctmsp_tx += 1;
                }
                let id = self.alloc_frame_id();
                let busy = self.tx_busy.as_ref().expect("dma without tx");
                ctx.ring_submit(Frame {
                    id,
                    src: self.cfg.station,
                    dst: Some(busy.dst),
                    kind: FrameKind::Llc(busy.proto),
                    info_len: busy.len,
                    priority: busy.priority,
                    tag: busy.tag,
                });
                self.last_tx = Some(LastTx {
                    dst: busy.dst,
                    len: busy.len,
                    tag: busy.tag,
                    priority: busy.priority,
                    proto: busy.proto,
                });
            }
            t if t >= RXDMA_BASE => {
                // DMA into the fixed receive buffer done; model the
                // adapter's interrupt-posting latency.
                let frame = self.rx_dma_remove(t).expect("rx dma without frame");
                let (lo, hi) = self.cfg.adapter.rx_post_latency;
                let lat = ctx.rng.uniform_dur(lo, hi);
                let at = (ctx.now + lat).max(self.last_rx_post);
                self.last_rx_post = at;
                let token = t;
                self.rx_dma_insert(token, frame);
                ctx.set_timer(token, at);
            }
            other => panic!("tokenring: unknown dma token {other}"),
        }
    }

    fn on_ring_delivered(&mut self, ctx: &mut Ctx, frame: Frame) {
        if self.copy.is_none() {
            self.copy = Some(ctx.copy);
        }
        if self.rx_buffers_in_use >= self.cfg.adapter.rx_buffers {
            self.stats.rx_overruns += 1;
            ctx.drop_data(DropSite::AdapterOverrun, frame.tag, frame.info_len);
            return;
        }
        self.rx_buffers_in_use += 1;
        self.rx_dma_seq += 1;
        let token = RXDMA_BASE + self.rx_dma_seq;
        let wire = frame.wire_bytes();
        self.rx_dma_insert(token, frame);
        ctx.start_dma(
            token,
            wire,
            self.cfg.adapter.rx_dma_per_byte,
            self.cfg.adapter.buffer_region,
        );
    }

    fn on_ring_stripped(&mut self, ctx: &mut Ctx, _tag: u64, _delivered: bool) {
        // Transmit complete: the adapter interrupts; the handler advances
        // the queue. (The copied-bit is available to the hardware — §3 —
        // but without a purge interrupt the driver cannot act on losses.)
        self.tx_done_pending += 1;
        ctx.raise_irq(LINE_TR);
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx) {
        // Demultiplex transmit completions and receive postings.
        while self.tx_done_pending > 0 {
            self.tx_done_pending -= 1;
            self.tx_busy = None;
            self.retransmitted_tag = None;
            self.start_next_tx(ctx);
        }
        self.process_rx_queue(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_devices::{CtmsSinkCfg, CtmsVcaSink};
    use ctms_rtpc::{Machine, MachineConfig};
    use ctms_sim::{drain_component, Component, Pcg32, SimTime};
    use ctms_unixkern::{Host, HostCmd, HostOut, KernCmd, KernConfig, Kernel, MbufChain};

    fn build(cfg: TrDriverCfg, clock: bool) -> (Host, DriverId, DriverId) {
        let kcfg = KernConfig {
            clock_enabled: clock,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(9, 9));
        let sink = kernel.add_driver(Box::new(CtmsVcaSink::new(CtmsSinkCfg::default())), None);
        let mut cfg = cfg;
        cfg.ctmsp_sink = Some(sink);
        let tr = kernel.add_driver(Box::new(TrDriver::new(cfg)), Some(LINE_TR));
        kernel.set_net_if(tr);
        (
            Host::new(Machine::new(MachineConfig::default()), kernel),
            tr,
            sink,
        )
    }

    fn ctmsp_pkt(host: &mut Host, tag: u64) -> Pkt {
        let chain = host
            .kernel
            .driver_mut::<TrDriver>(DriverId(1))
            .map(|_| MbufChain {
                len: 2000,
                count: MbufChain::mbufs_for(2000),
            })
            .expect("driver");
        // Account the chain in the pool so the free balances.
        Pkt {
            proto: Proto::Ctmsp,
            dst: StationId(1),
            len: chain.len,
            tag,
            priority: 4,
            chain: None, // keep pool accounting simple in unit tests
        }
    }

    fn send(host: &mut Host, tr: DriverId, pkt: Pkt, at: SimTime, sink: &mut Vec<HostOut>) {
        host.handle(
            at,
            HostCmd::Kern(KernCmd::Call {
                driver: tr,
                call: DriverCall::CtmspSend(pkt),
            }),
            sink,
        );
    }

    #[test]
    fn ctmsp_send_reaches_ring_with_expected_latency() {
        let (mut host, tr, _sink) = build(TrDriverCfg::default(), false);
        let mut out = Vec::new();
        let pkt = ctmsp_pkt(&mut host, 1);
        send(&mut host, tr, pkt, SimTime::ZERO, &mut out);
        let evs = drain_component(&mut host, SimTime::from_ms(50));
        let pre_tx = evs
            .iter()
            .find_map(|(t, e)| {
                matches!(
                    e,
                    HostOut::Trace {
                        point: MeasurePoint::CtmspIdentified | MeasurePoint::PreTransmit,
                        tag: 1
                    }
                )
                .then_some(*t)
            })
            .expect("pre-transmit trace");
        // Copy: 15 µs precomputed header + 2000 bytes × 1 µs = 2015 µs.
        assert_eq!(pre_tx, SimTime::from_us(2015));
        let submit = evs
            .iter()
            .find_map(|(t, e)| match e {
                HostOut::RingSubmit(f) => Some((*t, f.clone())),
                _ => None,
            })
            .expect("ring submit");
        assert_eq!(submit.1.kind, FrameKind::Llc(Proto::Ctmsp));
        assert_eq!(submit.1.tag, 1);
        assert_eq!(submit.1.priority, 4);
        assert_eq!(submit.1.info_len, 2000);
        // After copy: cmd latency + transmit DMA.
        let dma = Dur::from_ns(2021 * 1570);
        let min = SimTime::from_us(2015 + 20) + dma;
        let max = SimTime::from_us(2015 + 200) + dma;
        assert!(submit.0 >= min && submit.0 <= max, "submit at {}", submit.0);
    }

    #[test]
    fn driver_priority_jumps_queue() {
        let (mut host, tr, _sink) = build(TrDriverCfg::default(), false);
        let mut out = Vec::new();
        // First packet occupies the transmitter.
        let first = Pkt {
            proto: Proto::Ip,
            dst: StationId(1),
            len: 1522,
            tag: 100,
            priority: 0,
            chain: None,
        };
        host.handle(
            SimTime::ZERO,
            HostCmd::Kern(KernCmd::Call {
                driver: tr,
                call: DriverCall::NetOutput(first),
            }),
            &mut out,
        );
        // Two more IP packets queue, then a CTMSP packet.
        for tag in [101, 102] {
            host.handle(
                SimTime::from_us(10),
                HostCmd::Kern(KernCmd::Call {
                    driver: tr,
                    call: DriverCall::NetOutput(Pkt {
                        proto: Proto::Ip,
                        dst: StationId(1),
                        len: 1522,
                        tag,
                        priority: 0,
                        chain: None,
                    }),
                }),
                &mut out,
            );
        }
        let pkt = ctmsp_pkt(&mut host, 1);
        send(&mut host, tr, pkt, SimTime::from_us(20), &mut out);
        // Drive: each submit must be follow by a strip to free the
        // transmitter.
        let mut order = Vec::new();
        let mut now = SimTime::from_us(20);
        for _ in 0..4 {
            let evs = drain_component(&mut host, now + Dur::from_ms(40));
            let (t, f) = evs
                .iter()
                .find_map(|(t, e)| match e {
                    HostOut::RingSubmit(f) => Some((*t, f.clone())),
                    _ => None,
                })
                .expect("submit");
            order.push(f.tag);
            now = t + Dur::from_ms(5);
            host.handle(
                now,
                HostCmd::RingStripped {
                    tag: f.tag,
                    delivered: true,
                },
                &mut out,
            );
        }
        assert_eq!(order, vec![100, 1, 101, 102], "CTMSP jumps the queue");
    }

    #[test]
    fn stock_driver_rejects_ctmsp_send() {
        let (mut host, tr, _sink) = build(TrDriverCfg::stock(StationId(0)), false);
        let mut out = Vec::new();
        let pkt = ctmsp_pkt(&mut host, 1);
        send(&mut host, tr, pkt, SimTime::ZERO, &mut out);
        assert!(out.iter().any(|e| matches!(
            e,
            HostOut::Drop {
                site: DropSite::UnknownProto,
                ..
            }
        )));
        let evs = drain_component(&mut host, SimTime::from_ms(50));
        assert!(!evs.iter().any(|(_, e)| matches!(e, HostOut::RingSubmit(_))));
    }

    #[test]
    fn rx_ctmsp_identified_and_delivered() {
        let (mut host, _tr, sink_id) = build(TrDriverCfg::default(), false);
        let mut out = Vec::new();
        let frame = Frame {
            id: FrameId(77),
            src: StationId(3),
            dst: Some(StationId(0)),
            kind: FrameKind::Llc(Proto::Ctmsp),
            info_len: 2000,
            priority: 4,
            tag: 1,
        };
        host.handle(SimTime::ZERO, HostCmd::RingDelivered(frame), &mut out);
        let evs = drain_component(&mut host, SimTime::from_ms(50));
        let ident = evs
            .iter()
            .find_map(|(t, e)| {
                matches!(
                    e,
                    HostOut::Trace {
                        point: MeasurePoint::CtmspIdentified,
                        tag: 1
                    }
                )
                .then_some(*t)
            })
            .expect("identified");
        // Receive DMA + post 10–90 µs + dispatch 25 µs + check 150 µs.
        let dma = Dur::from_ns(2021 * 1570);
        let lo = SimTime::ZERO + dma + Dur::from_us(10 + 25 + 150);
        let hi = SimTime::ZERO + dma + Dur::from_us(90 + 25 + 150);
        assert!(ident >= lo && ident <= hi, "identified at {ident}");
        assert!(evs
            .iter()
            .any(|(_, e)| matches!(e, HostOut::Presented { tag: 1, .. })));
        let s = host
            .kernel
            .driver_ref::<CtmsVcaSink>(sink_id)
            .expect("sink")
            .stats();
        assert_eq!(s.received, 1);
    }

    #[test]
    fn rx_overrun_when_buffers_exhausted() {
        let mut cfg = TrDriverCfg::default();
        cfg.adapter.rx_buffers = 2;
        let (mut host, _tr, _sink) = build(cfg, false);
        let mut out = Vec::new();
        for k in 0..3u64 {
            let frame = Frame {
                id: FrameId(100 + k),
                src: StationId(3),
                dst: Some(StationId(0)),
                kind: FrameKind::Llc(Proto::Ctmsp),
                info_len: 2000,
                priority: 4,
                tag: k + 1,
            };
            host.handle(SimTime::from_us(k), HostCmd::RingDelivered(frame), &mut out);
        }
        // Two rx buffers: the third back-to-back frame is dropped.
        assert!(out.iter().any(|e| matches!(
            e,
            HostOut::Drop {
                site: DropSite::AdapterOverrun,
                tag: 3,
                ..
            }
        )));
        let evs = drain_component(&mut host, SimTime::from_ms(50));
        let presented = evs
            .iter()
            .filter(|(_, e)| matches!(e, HostOut::Presented { .. }))
            .count();
        assert_eq!(presented, 2);
    }

    #[test]
    fn rx_ip_feeds_protocol_input() {
        let (mut host, _tr, _sink) = build(TrDriverCfg::default(), true);
        let mut out = Vec::new();
        let frame = Frame {
            id: FrameId(50),
            src: StationId(3),
            dst: Some(StationId(0)),
            kind: FrameKind::Llc(Proto::Ip),
            info_len: 300,
            priority: 0,
            tag: 0xFFFF_FFFF_FFFF, // not valid socket meta
        };
        host.handle(SimTime::ZERO, HostCmd::RingDelivered(frame), &mut out);
        let _ = drain_component(&mut host, SimTime::from_ms(50));
        assert_eq!(host.kernel.stats().softnet_pkts, 1);
        assert_eq!(host.kernel.stats().unmatched_pkts, 1);
    }

    #[test]
    fn purge_interrupt_mode_retransmits_last_packet() {
        let mut cfg = TrDriverCfg::default();
        cfg.adapter.purge_interrupt = true;
        let (mut host, tr, _sink) = build(cfg, false);
        let mut out = Vec::new();
        let pkt = ctmsp_pkt(&mut host, 7);
        send(&mut host, tr, pkt, SimTime::ZERO, &mut out);
        let evs = drain_component(&mut host, SimTime::from_ms(20));
        let (t_submit, _) = evs
            .iter()
            .find_map(|(t, e)| match e {
                HostOut::RingSubmit(f) => Some((*t, f.clone())),
                _ => None,
            })
            .expect("first submit");
        // Strip reported (purge destroyed it, silently "complete"), then
        // the testbed signals the hypothetical purge interrupt.
        host.handle(
            t_submit + Dur::from_ms(1),
            HostCmd::RingStripped {
                tag: 7,
                delivered: false,
            },
            &mut out,
        );
        host.handle(
            t_submit + Dur::from_ms(2),
            HostCmd::Kern(KernCmd::Call {
                driver: tr,
                call: DriverCall::Custom {
                    code: CALL_PURGE_SEEN,
                    arg: 0,
                },
            }),
            &mut out,
        );
        let evs = drain_component(&mut host, t_submit + Dur::from_ms(30));
        let resubmit = evs
            .iter()
            .find_map(|(t, e)| match e {
                HostOut::RingSubmit(f) if f.tag == 7 => Some(*t),
                _ => None,
            })
            .expect("retransmission");
        assert!(resubmit > t_submit);
        let stats = host
            .kernel
            .driver_ref::<TrDriver>(tr)
            .expect("driver")
            .stats();
        assert_eq!(stats.retransmits, 1);
    }

    #[test]
    fn without_purge_interrupt_no_retransmission() {
        let (mut host, tr, _sink) = build(TrDriverCfg::default(), false);
        let mut out = Vec::new();
        let pkt = ctmsp_pkt(&mut host, 7);
        send(&mut host, tr, pkt, SimTime::ZERO, &mut out);
        let _ = drain_component(&mut host, SimTime::from_ms(20));
        host.handle(
            SimTime::from_ms(21),
            HostCmd::RingStripped {
                tag: 7,
                delivered: false,
            },
            &mut out,
        );
        host.handle(
            SimTime::from_ms(22),
            HostCmd::Kern(KernCmd::Call {
                driver: tr,
                call: DriverCall::Custom {
                    code: CALL_PURGE_SEEN,
                    arg: 0,
                },
            }),
            &mut out,
        );
        let evs = drain_component(&mut host, SimTime::from_ms(60));
        assert!(
            !evs.iter().any(|(_, e)| matches!(e, HostOut::RingSubmit(_))),
            "real adapter cannot see purges (§4)"
        );
    }

    #[test]
    fn stock_header_cost_exceeds_precomputed() {
        // §3: precomputing the header once per connection removes a
        // per-packet cost.
        let stock = TrDriverCfg::stock(StationId(0));
        let modified = TrDriverCfg::default();
        assert!(stock.header_cost > modified.precomp_header_cost * 5);
        assert!(!stock.precomputed_header);
        assert!(modified.precomputed_header);
    }
}
