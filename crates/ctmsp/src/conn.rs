//! CTMSP connection setup.
//!
//! §2: "Handles to these two function calls can be transferred by a user
//! process between the two devices by using newly created *ioctl* calls."
//! §5.1: "We added several ioctl calls to set up the device in this
//! special mode, to request the Token Ring header and keep this header as
//! part of the state of the device, and to request handles to functions
//! needed by the modified Token Ring device driver."
//!
//! This module defines those ioctl codes and builds the user program that
//! performs the setup sequence. After setup the data path is entirely
//! in-kernel: the user process's only remaining role is teardown.

use ctms_unixkern::{DriverId, Program, Step};

pub use ctms_devices::vca::{
    SetupState, IOCTL_SET_HANDLES, IOCTL_SET_HEADER, IOCTL_SET_MODE, IOCTL_START_STREAM,
    IOCTL_STOP_STREAM,
};

/// The user program that establishes a CTMSP connection on the source
/// host and then exits, leaving the data path to the kernel (§2's whole
/// point: the user process is control plane only).
pub fn setup_program(vca: DriverId) -> Program {
    Program::once(vec![
        Step::Ioctl {
            dev: vca,
            req: IOCTL_SET_MODE,
        },
        Step::Ioctl {
            dev: vca,
            req: IOCTL_SET_HEADER,
        },
        Step::Ioctl {
            dev: vca,
            req: IOCTL_SET_HANDLES,
        },
        Step::Ioctl {
            dev: vca,
            req: IOCTL_START_STREAM,
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sequence_completes() {
        let mut s = SetupState::default();
        for req in [
            IOCTL_SET_MODE,
            IOCTL_SET_HEADER,
            IOCTL_SET_HANDLES,
            IOCTL_START_STREAM,
        ] {
            assert!(s.apply(req), "req {req:#x}");
        }
        assert!(s.complete());
        assert!(s.running);
        assert!(s.apply(IOCTL_STOP_STREAM));
        assert!(!s.running);
    }

    #[test]
    fn start_requires_complete_setup() {
        let mut s = SetupState::default();
        assert!(!s.apply(IOCTL_START_STREAM), "nothing set yet");
        assert!(s.apply(IOCTL_SET_MODE));
        assert!(!s.apply(IOCTL_START_STREAM), "header + handles missing");
        assert!(s.apply(IOCTL_SET_HEADER));
        assert!(s.apply(IOCTL_SET_HANDLES));
        assert!(s.apply(IOCTL_START_STREAM));
    }

    #[test]
    fn header_and_handles_require_mode() {
        let mut s = SetupState::default();
        assert!(!s.apply(IOCTL_SET_HEADER));
        assert!(!s.apply(IOCTL_SET_HANDLES));
        assert!(!s.apply(0xFFFF), "unknown ioctl rejected");
    }

    #[test]
    fn setup_program_shape() {
        let p = setup_program(DriverId(1));
        assert_eq!(p.steps.len(), 4);
        assert!(!p.looping, "control plane runs once and exits");
    }
}
