//! The CTMS Protocol (CTMSP) definition.
//!
//! §3: "We propose that a new protocol be created, CTMS Protocol (CTMSP),
//! and added to the same layer as ARP and IP. This protocol is
//! specifically designed for and limited to the assist of data transfers
//! between the network and other devices. The protocol assumes a static
//! point-to-point connection between two machines."
//!
//! A CTMSP packet (§5.1) is: the precomputed Token Ring header, a
//! destination device number, a packet number, and data — 2000 bytes total
//! in the paper's stream (≈150 KB/s at one packet per 12 ms).

use ctms_tokenring::StationId;

/// On-the-wire CTMSP header: destination device number (1 byte) + packet
/// number (4 bytes) + connection id (2 bytes) + reserved (1 byte).
pub const CTMSP_HEADER_LEN: u32 = 8;

/// Bytes of the precomputed Token Ring header the send path copies per
/// packet (destination/source addresses + routing, computed once per
/// connection).
pub const TR_HEADER_LEN: u32 = 14;

/// A static point-to-point CTMSP connection description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CtmspConnection {
    /// Connection identifier.
    pub conn_id: u16,
    /// Source station.
    pub src: StationId,
    /// Destination station (same physical ring — §1 note: no routers).
    pub dst: StationId,
    /// Destination device number on the receiving host.
    pub dst_device: u8,
    /// Packet payload size (including CTMSP header).
    pub pkt_len: u32,
    /// Ring access priority (§3: above any other traffic).
    pub ring_priority: u8,
}

impl CtmspConnection {
    /// Payload bytes per packet after the CTMSP header.
    pub fn data_len(&self) -> u32 {
        self.pkt_len.saturating_sub(CTMSP_HEADER_LEN)
    }

    /// Sustained data rate in bytes/second at one packet per `period_us`.
    pub fn data_rate(&self, period_us: u64) -> f64 {
        assert!(period_us > 0);
        f64::from(self.pkt_len) * 1_000_000.0 / period_us as f64
    }
}

/// Encodes the CTMSP header fields into a frame tag's upper bits alongside
/// the packet number. The simulation carries metadata out-of-band, but the
/// codec documents (and tests) the on-wire layout.
pub fn encode_header(dst_device: u8, conn_id: u16, pkt_num: u32) -> u64 {
    (u64::from(dst_device) << 48) | (u64::from(conn_id) << 32) | u64::from(pkt_num)
}

/// Decodes `(dst_device, conn_id, pkt_num)`.
pub fn decode_header(h: u64) -> (u8, u16, u32) {
    (
        ((h >> 48) & 0xFF) as u8,
        ((h >> 32) & 0xFFFF) as u16,
        (h & 0xFFFF_FFFF) as u32,
    )
}

/// The transport guarantees of §3, as a checkable description. The tests
/// and benches assert which path provides which guarantee.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Guarantees {
    /// Bandwidth across the network (reserved by ring priority).
    pub bandwidth: bool,
    /// Delivery within preset time bounds.
    pub bounded_delay: bool,
    /// Preservation of packet sequence.
    pub sequencing: bool,
}

/// What CTMSP provides (§3): all three.
pub const CTMSP_GUARANTEES: Guarantees = Guarantees {
    bandwidth: true,
    bounded_delay: true,
    sequencing: true,
};

/// What TCP/IP provides (§3): "Of the three guarantees, TCP/IP only
/// provides for one: the preservation of packet sequence."
pub const TCPIP_GUARANTEES: Guarantees = Guarantees {
    bandwidth: false,
    bounded_delay: false,
    sequencing: true,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = encode_header(3, 0xBEEF, 0xDEAD_0001);
        assert_eq!(decode_header(h), (3, 0xBEEF, 0xDEAD_0001));
    }

    #[test]
    fn paper_stream_rate() {
        let c = CtmspConnection {
            conn_id: 1,
            src: StationId(0),
            dst: StationId(1),
            dst_device: 1,
            pkt_len: 2000,
            ring_priority: 4,
        };
        // §5.1: "approximately 150KBytes/sec".
        let rate = c.data_rate(12_000);
        assert!((rate - 166_666.7).abs() < 1.0);
        assert_eq!(c.data_len(), 1992);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the table *is* constant; pinning it is the point
    fn guarantee_table_matches_paper() {
        assert!(CTMSP_GUARANTEES.bandwidth);
        assert!(CTMSP_GUARANTEES.bounded_delay);
        assert!(CTMSP_GUARANTEES.sequencing);
        assert!(!TCPIP_GUARANTEES.bandwidth);
        assert!(!TCPIP_GUARANTEES.bounded_delay);
        assert!(TCPIP_GUARANTEES.sequencing);
    }
}
