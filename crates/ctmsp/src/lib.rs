//! # ctms-ctmsp — the CTMS Protocol and the modified Token Ring driver
//!
//! The paper's primary contribution (§2–§4) as an implementable artifact:
//!
//! * [`protocol`] — CTMSP packet layout, connection description, and the
//!   §3 guarantee table (CTMSP vs. TCP/IP),
//! * [`trdriver`] — the Token Ring device driver covering the full §5.3
//!   variant space: CTMSP split point, driver and ring priority,
//!   precomputed headers, copy variants, fixed-DMA-buffer placement, and
//!   the hypothetical purge-interrupt retransmission mode.

pub mod conn;
pub mod protocol;
pub mod trdriver;

pub use conn::{
    setup_program, SetupState, IOCTL_SET_HANDLES, IOCTL_SET_HEADER, IOCTL_SET_MODE,
    IOCTL_START_STREAM, IOCTL_STOP_STREAM,
};
pub use protocol::{
    decode_header, encode_header, CtmspConnection, Guarantees, CTMSP_GUARANTEES, CTMSP_HEADER_LEN,
    TCPIP_GUARANTEES, TR_HEADER_LEN,
};
pub use trdriver::{TrDriver, TrDriverCfg, TrDriverStats, CALL_PURGE_SEEN};
