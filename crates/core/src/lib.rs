//! # ctms-core — the Continuous Time Media System
//!
//! The top of the reproduction stack: scenario definitions for the §5.3
//! variant space, the calibrated cost model, the testbed that wires hosts
//! to the ring, and the experiment suite that regenerates every figure and
//! quantitative claim of the paper.
//!
//! ## Quick start
//!
//! ```
//! use ctms_core::{Scenario, Testbed};
//! use ctms_sim::SimTime;
//!
//! let scenario = Scenario::test_case_a(42);
//! let mut bed = Testbed::ctms(&scenario);
//! bed.run_until(SimTime::from_secs(2));
//! let set = bed.measurement_set();
//! let h7 = set.samples_us(ctms_measure::HistId::H7);
//! assert!(!h7.is_empty());
//! ```

pub mod calib;
pub mod chain;
pub mod checkpoint;
pub mod experiments;
pub mod graph;
pub mod parallel;
pub mod scenario;
pub mod testbed;
pub mod topology;

pub use calib::Calibration;
pub use chain::{DualRingTestbed, RingChainTestbed, ShardedChain};
pub use checkpoint::{
    apply_mutations, fork, ForkSpec, Mutation, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use experiments::{ablation_row, all as run_all_experiments, copy_census, AblationRow, ExpCfg};
pub use graph::{graph_topology, partition_rings, GraphEdge, RingGraph};
pub use parallel::{ParallelBus, ShardedBus};
pub use scenario::{HostLoad, Network, Scenario};
pub use testbed::{DropRec, Roles, Testbed};
pub use topology::{Bus, CtmsRouter, Measurements, Topology};
