//! Scenarios: the §5.3 variant space and the two presented test cases.
//!
//! §5.3 lists the differences that "will alter the results"; each is a
//! field here so the ablation benches can sweep them:
//!
//! > * Transmitter uses IO Channel Memory vs. System Memory for fixed DMA
//! >   buffers
//! > * Transmitter copies only header into fixed DMA buffer vs. copying
//! >   both header and data
//! > * Transmitter copies data from the VCA device buffer to mbufs vs.
//! >   direct copy …
//! > * Receiver copies header and data from a fixed DMA buffer into mbufs
//! >   … vs. VCA examining the packet while still in a fixed DMA buffer
//! > * Receiver copies data out of mbufs into the VCA device buffer vs.
//! >   no copy of the data (dropping the packet)
//! > * Use of priority within the Token Ring device driver vs. …
//! > * Use of priority on the Token Ring vs. …
//! > * Private vs. Public Network
//! > * Level of background load on network
//! > * Transmitter/Receiver in stand alone vs. multiprocessing modes

use crate::calib::Calibration;
use ctms_sim::Dur;

/// Private (dedicated) or public (campus) ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Network {
    /// A dedicated ring: the two hosts plus idle stations, only MAC
    /// background traffic.
    Private,
    /// The 70-station campus ring with AFS/ARP/file-transfer traffic and
    /// station churn.
    Public,
}

/// Host operating mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HostLoad {
    /// Standalone: nothing but the CTMS stream.
    Standalone,
    /// Multiprocessing "but not heavily loaded": control-connection
    /// chatter, AFS liveness, occasional page-ins, disk interrupts, one
    /// background process.
    Multiprocessing,
}

/// One run configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Simulation seed (same seed ⇒ identical run).
    pub seed: u64,
    /// §5.3: IO Channel Memory (true) vs. system memory for fixed DMA
    /// buffers.
    pub io_channel_memory: bool,
    /// §5.3: transmitter copies header+data (true) vs. header only.
    pub tx_copy_full: bool,
    /// §5.3: transmitter copies data from the VCA device buffer to mbufs.
    pub tx_copy_vca_to_mbufs: bool,
    /// §5.3: receiver copies the frame into mbufs before delivery.
    pub rx_copy_to_mbufs: bool,
    /// §5.3: receiver copies data from mbufs into the VCA device buffer.
    pub rx_copy_to_device: bool,
    /// §3: CTMSP priority within the Token Ring device driver.
    pub driver_priority: bool,
    /// §3: CTMSP priority on the Token Ring itself.
    pub ring_priority: bool,
    /// §3: Token Ring header precomputed per connection.
    pub precomputed_header: bool,
    /// §5 hypothetical: adapter interrupts on Ring Purge and the driver
    /// retransmits the buffered packet.
    pub purge_interrupt: bool,
    /// Network environment.
    pub network: Network,
    /// Host load mode.
    pub host_load: HostLoad,
    /// CTMSP packet length (paper: 2000 bytes).
    pub pkt_len: u32,
    /// VCA interrupt period (paper: 12 ms).
    pub period: Dur,
    /// Cost calibration.
    pub calib: Calibration,
    /// Establish the connection through the §5.1 ioctl sequence run by a
    /// user process (control plane), instead of device autostart.
    pub explicit_setup: bool,
    /// Reproduce the §5 driver bug (unprotected critical sections that
    /// reorder packets) for the spl-audit experiment.
    pub racy_driver: bool,
    /// Upper bound on same-instant routing cascades before the harness
    /// reports a [`ctms_sim::CascadeError`] (a livelock diagnostic, not a
    /// physical parameter — identical in every scenario).
    pub cascade_limit: u32,
}

impl Scenario {
    /// §5.3 Test Case A: IO Channel Memory; transmitter copies header and
    /// data; no VCA→mbuf copy; receiver copies into mbufs but not into
    /// the device; both priorities on; private unloaded network;
    /// standalone hosts.
    pub fn test_case_a(seed: u64) -> Self {
        Scenario {
            seed,
            io_channel_memory: true,
            tx_copy_full: true,
            tx_copy_vca_to_mbufs: false,
            rx_copy_to_mbufs: true,
            rx_copy_to_device: false,
            driver_priority: true,
            ring_priority: true,
            precomputed_header: true,
            purge_interrupt: false,
            network: Network::Private,
            host_load: HostLoad::Standalone,
            pkt_len: 2000,
            period: Dur::from_ms(12),
            calib: Calibration::default(),
            explicit_setup: false,
            racy_driver: false,
            cascade_limit: ctms_sim::DEFAULT_CASCADE_LIMIT,
        }
    }

    /// §5.3 Test Case B: IO Channel Memory; full copying on both sides;
    /// both priorities on; public loaded network; multiprocessing hosts.
    pub fn test_case_b(seed: u64) -> Self {
        Scenario {
            tx_copy_vca_to_mbufs: true,
            rx_copy_to_device: true,
            network: Network::Public,
            host_load: HostLoad::Multiprocessing,
            ..Scenario::test_case_a(seed)
        }
    }

    /// The chain-scaling scenario: Test Case A's stream pushed through a
    /// long chain of private rings (the footnote-5 topology generalized
    /// to campus scale — chain length itself is a testbed parameter, see
    /// [`crate::RingChainTestbed::chain`] and
    /// [`crate::RingChainTestbed::chain_sharded`]). Host configuration is
    /// case A's: at a 12 ms period a cut-through chain of hundreds of
    /// rings carries the stream losslessly, each ring adding only its
    /// transit latency, so the scenario scales to `N ≥ 128` rings —
    /// the regime the sharded scheduler is built for.
    pub fn scaled_chain(seed: u64) -> Self {
        Scenario::test_case_a(seed)
    }

    /// Number of ring stations for this scenario's network.
    pub fn station_count(&self) -> u32 {
        match self.network {
            Network::Private => 4,
            Network::Public => 70,
        }
    }

    /// The stream's nominal data rate in bytes/second.
    pub fn data_rate(&self) -> f64 {
        f64::from(self.pkt_len) * 1e9 / self.period.as_ns() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_a_matches_paper_description() {
        let a = Scenario::test_case_a(1);
        assert!(a.io_channel_memory);
        assert!(a.tx_copy_full);
        assert!(!a.tx_copy_vca_to_mbufs);
        assert!(a.rx_copy_to_mbufs);
        assert!(!a.rx_copy_to_device);
        assert!(a.driver_priority && a.ring_priority);
        assert_eq!(a.network, Network::Private);
        assert_eq!(a.host_load, HostLoad::Standalone);
        assert_eq!(a.station_count(), 4);
    }

    #[test]
    fn case_b_differs_only_where_the_paper_says() {
        let b = Scenario::test_case_b(1);
        assert!(b.tx_copy_vca_to_mbufs, "full copying on transmitter");
        assert!(b.rx_copy_to_device, "full copying on receiver");
        assert_eq!(b.network, Network::Public);
        assert_eq!(b.host_load, HostLoad::Multiprocessing);
        assert_eq!(b.station_count(), 70);
        // Everything else identical to A.
        assert!(b.io_channel_memory && b.tx_copy_full && b.rx_copy_to_mbufs);
        assert!(b.driver_priority && b.ring_priority);
    }

    #[test]
    fn stream_rate_is_approximately_150kb() {
        let a = Scenario::test_case_a(1);
        // §5.1: "approximately 150KBytes/sec".
        let r = a.data_rate();
        assert!((160_000.0..170_000.0).contains(&r), "{r}");
    }
}
