//! Topologies as data: rings, hosts, bridges, and background traffic
//! registered as nodes on the generic `ctms-sim` scheduler/event-bus.
//!
//! Every testbed in this crate used to hand-roll the same
//! advance-and-route loop (§5.2.1's "centralized control point"). Now a
//! testbed is only a *description*: a [`Topology`] lists which
//! components sit where, [`Topology::build`] registers them with a
//! [`ctms_sim::Harness`], and [`CtmsRouter`] — the one implementation of
//! [`ctms_sim::Router`] — carries the complete inter-component wiring:
//!
//! * ring deliveries and strips go to the host or bridge attached at
//!   the destination station,
//! * host submissions go to the host's ring; bridge forwards go to the
//!   bridge's other ring; phantom traffic goes to its ring,
//! * measurement traffic (TAP observations, trace points, drops,
//!   presentations) is absorbed into [`Measurements`], the ground truth
//!   the experiment suite reads.
//!
//! Node registration order is fixed — rings, then bridges, then hosts,
//! then phantom — which is also the deadline-tie service order, so runs
//! are bit-identical to the old fixed advance orders.

use crate::parallel::{ParallelBus, ShardedBus};
use crate::testbed::DropRec;
use ctms_measure::{Tap, TapCfg};
use ctms_router::{Bridge, BridgeCmd, BridgeOut};
use ctms_sim::{
    CascadeError, CmdSink, Component, Dur, EdgeLog, Harness, NodeId, Router, SchedMode,
    ShardedHarness, SimTime,
};
use ctms_tokenring::{RingCmd, RingOut, StationId, TokenRing};
use ctms_unixkern::{
    DriverCall, DriverId, DropSite, Host, HostCmd, HostOut, KernCmd, MeasurePoint, Port,
};
use ctms_workloads::{PhantomOut, PhantomTraffic};
use std::collections::HashMap;
use std::sync::Arc;

/// A registered component: the one node type the CTMS bus schedules.
///
/// Variants differ a lot in size (a `Host` carries a whole kernel), but
/// nodes are constructed once and live in the harness registry for the
/// whole run — boxing the large variants would only add an indirection
/// on the per-event advance path.
///
/// Each variant carries a retained scratch `Vec` of its substrate's own
/// output type: `advance`/`handle` drain the substrate into the scratch
/// and map into [`Event`] from there, so the translation allocates
/// nothing once the scratch has reached its peak burst size.
#[allow(clippy::large_enum_variant)]
pub enum Node {
    /// A Token Ring medium.
    Ring(TokenRing, Vec<RingOut>),
    /// A full host (machine + kernel).
    Host(Host, Vec<HostOut>),
    /// A two-port ring-to-ring forwarder.
    Bridge(Bridge, Vec<BridgeOut>),
    /// Background campus traffic bound to one ring.
    Phantom(PhantomTraffic, Vec<PhantomOut>),
}

/// Events emitted by any [`Node`].
pub enum Event {
    /// From a ring.
    Ring(RingOut),
    /// From a host.
    Host(HostOut),
    /// From a bridge.
    Bridge(BridgeOut),
    /// From phantom traffic.
    Phantom(PhantomOut),
}

/// Commands routable to any [`Node`].
#[derive(Clone)]
pub enum Cmd {
    /// To a ring.
    Ring(RingCmd),
    /// To a host.
    Host(HostCmd),
    /// To a bridge.
    Bridge(BridgeCmd),
}

impl Component for Node {
    type Cmd = Cmd;
    type Out = Event;

    fn next_deadline(&self) -> Option<SimTime> {
        match self {
            Node::Ring(r, _) => r.next_deadline(),
            Node::Host(h, _) => h.next_deadline(),
            Node::Bridge(b, _) => b.next_deadline(),
            Node::Phantom(p, _) => p.next_deadline(),
        }
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<Event>) {
        match self {
            Node::Ring(r, buf) => {
                r.advance(now, buf);
                sink.extend(buf.drain(..).map(Event::Ring));
            }
            Node::Host(h, buf) => {
                h.advance(now, buf);
                sink.extend(buf.drain(..).map(Event::Host));
            }
            Node::Bridge(b, buf) => {
                b.advance(now, buf);
                sink.extend(buf.drain(..).map(Event::Bridge));
            }
            Node::Phantom(p, buf) => {
                p.advance(now, buf);
                sink.extend(buf.drain(..).map(Event::Phantom));
            }
        }
    }

    fn handle(&mut self, now: SimTime, cmd: Cmd, sink: &mut Vec<Event>) {
        match (self, cmd) {
            (Node::Ring(r, buf), Cmd::Ring(c)) => {
                r.handle(now, c, buf);
                sink.extend(buf.drain(..).map(Event::Ring));
            }
            (Node::Host(h, buf), Cmd::Host(c)) => {
                h.handle(now, c, buf);
                sink.extend(buf.drain(..).map(Event::Host));
            }
            (Node::Bridge(b, buf), Cmd::Bridge(c)) => {
                b.handle(now, c, buf);
                sink.extend(buf.drain(..).map(Event::Bridge));
            }
            _ => panic!("misrouted command: node/command kinds disagree"),
        }
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        match self {
            Node::Ring(r, _) => r.publish_telemetry(scope),
            Node::Host(h, _) => h.publish_telemetry(scope),
            Node::Bridge(b, _) => b.publish_telemetry(scope),
            Node::Phantom(p, _) => p.publish_telemetry(scope),
        }
    }
}

/// What sits at a ring station, from the router's point of view.
#[derive(Clone, Copy, Debug)]
enum Endpoint {
    /// A host.
    Host { node: NodeId },
    /// One port of a bridge.
    Bridge { node: NodeId, port: u8 },
}

/// Per-node routing metadata, indexed by [`NodeId`]. The complete table
/// is built once and shared read-only (behind one `Arc`) by every shard
/// router — routing is immutable metadata; only taps and measurements
/// are per-shard. At 10^4 rings the table is tens of megabytes, so
/// cloning it per shard would dominate build memory.
enum Slot {
    Ring {
        /// Attached endpoint per station, indexed densely by
        /// [`StationId`] (`None` stations are idle or phantom; their
        /// traffic is not delivered anywhere). Dense so the hot
        /// per-frame delivery lookup is one bounds check and a load,
        /// not a hash.
        endpoints: Vec<Option<Endpoint>>,
    },
    Host {
        index: usize,
        ring: NodeId,
    },
    Bridge {
        /// Ring node per bridge port, in port order.
        rings: Vec<NodeId>,
    },
    Phantom {
        ring: NodeId,
    },
}

/// Ground truth recorded while routing: every measurement stream the
/// experiment suite consumes, absorbed by the router so measurement
/// infrastructure needs no scheduling of its own.
#[derive(Default)]
pub struct Measurements {
    /// Per-host trace points (the paper's measurement points 1–4).
    truth: Vec<HashMap<MeasurePoint, EdgeLog>>,
    /// Every recorded loss, across hosts and ring queues.
    drops: Vec<DropRec>,
    /// CTMS payload presentations at sinks: `(time, tag, bytes)`.
    presented: Vec<(SimTime, u64, u32)>,
    /// Socket deliveries (stock path): `(time, port, bytes)`.
    sock_delivered: Vec<(SimTime, Port, u32)>,
    /// Purge-sequence start instants.
    purge_starts: Vec<SimTime>,
    /// Frames destroyed by purges: `(time, tag)`.
    lost_to_purge: Vec<(SimTime, u64)>,
    /// Frames dropped inside bridges (queue overflow).
    bridge_drops: u64,
}

impl Measurements {
    /// Per-host trace log for one measurement point, if recorded.
    pub fn truth_log(&self, host: usize, point: MeasurePoint) -> Option<&EdgeLog> {
        self.truth.get(host).and_then(|m| m.get(&point))
    }

    /// Per-host trace log for one measurement point, cloned, or an empty
    /// log named after the pair.
    pub fn truth_log_or_empty(&self, host: usize, point: MeasurePoint) -> EdgeLog {
        self.truth_log(host, point)
            .cloned()
            .unwrap_or_else(|| EdgeLog::new(format!("h{host}-{point:?}")))
    }

    /// All recorded drops.
    pub fn drops(&self) -> &[DropRec] {
        &self.drops
    }

    /// CTMS payload presentations at sinks.
    pub fn presented(&self) -> &[(SimTime, u64, u32)] {
        &self.presented
    }

    /// Socket deliveries (stock path).
    pub fn sock_delivered(&self) -> &[(SimTime, Port, u32)] {
        &self.sock_delivered
    }

    /// Purge-sequence start instants.
    pub fn purge_starts(&self) -> &[SimTime] {
        &self.purge_starts
    }

    /// Frames destroyed by purges.
    pub fn lost_to_purge(&self) -> &[(SimTime, u64)] {
        &self.lost_to_purge
    }

    /// Count of frames dropped inside bridges.
    pub fn bridge_drops(&self) -> u64 {
        self.bridge_drops
    }
}

/// The one [`Router`] of the CTMS world: owns the wiring tables, the
/// per-ring TAP monitors, and the [`Measurements`] ground truth.
pub struct CtmsRouter {
    /// The wiring table, shared (not cloned) across shard routers.
    slots: Arc<[Slot]>,
    /// TAP monitor per ring node (same index space as `slots`).
    taps: Vec<Option<Tap>>,
    /// Hosts notified (as a driver call) when a ring purge starts.
    purge_subscribers: Vec<(NodeId, DriverId)>,
    m: Measurements,
}

impl CtmsRouter {
    /// The recorded ground truth.
    pub fn measurements(&self) -> &Measurements {
        &self.m
    }

    /// The TAP attached to a ring node.
    fn tap(&self, ring: NodeId) -> &Tap {
        self.taps[ring.0]
            .as_ref()
            .expect("node is a ring with a tap")
    }
}

impl Router<Node> for CtmsRouter {
    fn route(&mut self, now: SimTime, src: NodeId, event: Event, sink: &mut CmdSink<Cmd>) {
        match event {
            Event::Ring(out) => self.route_ring(now, src, out, sink),
            Event::Host(out) => self.route_host(now, src, out, sink),
            Event::Bridge(out) => self.route_bridge(src, out, sink),
            Event::Phantom(out) => self.route_phantom(src, out, sink),
        }
    }

    /// Mounts the measurement ground truth under `measure.*`: aggregate
    /// counters, the per-ring TAP monitors (`measure.tap.ring{k}`), the
    /// per-host truth logs (`measure.truth.h{i}.*`, points in `Debug`
    /// name order), and the inter-presentation histogram the paper's
    /// glitch analysis reads (1 ms bins up to 64 ms).
    fn publish_telemetry(&self, reg: &mut ctms_sim::Registry) {
        use ctms_sim::Instrument as _;
        let mut m = reg.scope("measure");
        m.counter("drops", self.m.drops.len() as u64);
        m.counter("presented", self.m.presented.len() as u64);
        m.counter("sock_delivered", self.m.sock_delivered.len() as u64);
        m.counter("purge_starts", self.m.purge_starts.len() as u64);
        m.counter("lost_to_purge", self.m.lost_to_purge.len() as u64);
        m.counter("bridge_drops", self.m.bridge_drops);
        if self.m.presented.len() >= 2 {
            let mut gaps = ctms_sim::telemetry::Hist::new(1, 64);
            for w in self.m.presented.windows(2) {
                gaps.record(w[1].0.since(w[0].0).as_ns() / 1_000_000);
            }
            m.hist("presented_gap_ms", gaps);
        }
        for (k, tap) in self.taps.iter().flatten().enumerate() {
            tap.publish(&mut m.scope(&format!("tap.ring{k}")));
        }
        for (i, points) in self.m.truth.iter().enumerate() {
            let mut logs: Vec<(String, &EdgeLog)> =
                points.iter().map(|(p, l)| (format!("{p:?}"), l)).collect();
            logs.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, log) in logs {
                log.publish(&mut m.scope(&format!("truth.h{i}.{name}")));
            }
        }
    }
}

/// Merges the per-shard routers of a sharded run back into the exact
/// `measure.*` tree [`CtmsRouter::publish_telemetry`] produces for a
/// single-threaded run — byte-identical, which the shard-parity tests
/// pin. Aggregate counters are sums; presentations are re-merged by
/// time (each sink's stream is already chronological, and tie order
/// cannot change the gap histogram); each TAP and each truth log is
/// owned by exactly one shard (the ring's or host's owner), so merging
/// is selection, not summation.
impl ctms_sim::MergeTelemetry for CtmsRouter {
    fn publish_merged(parts: &[&Self], reg: &mut ctms_sim::Registry) {
        use ctms_sim::Instrument as _;
        let mut m = reg.scope("measure");
        m.counter("drops", parts.iter().map(|p| p.m.drops.len() as u64).sum());
        m.counter(
            "presented",
            parts.iter().map(|p| p.m.presented.len() as u64).sum(),
        );
        m.counter(
            "sock_delivered",
            parts.iter().map(|p| p.m.sock_delivered.len() as u64).sum(),
        );
        m.counter(
            "purge_starts",
            parts.iter().map(|p| p.m.purge_starts.len() as u64).sum(),
        );
        m.counter(
            "lost_to_purge",
            parts.iter().map(|p| p.m.lost_to_purge.len() as u64).sum(),
        );
        m.counter("bridge_drops", parts.iter().map(|p| p.m.bridge_drops).sum());
        let mut presented: Vec<SimTime> = parts
            .iter()
            .flat_map(|p| p.m.presented.iter().map(|e| e.0))
            .collect();
        presented.sort();
        if presented.len() >= 2 {
            let mut gaps = ctms_sim::telemetry::Hist::new(1, 64);
            for w in presented.windows(2) {
                gaps.record(w[1].since(w[0]).as_ns() / 1_000_000);
            }
            m.hist("presented_gap_ms", gaps);
        }
        // Every ring slot has its TAP in exactly one part; numbering
        // follows slot order, matching the single-threaded enumerate().
        let n_slots = parts.first().map_or(0, |p| p.slots.len());
        let mut k = 0;
        for i in 0..n_slots {
            if let Some(tap) = parts.iter().find_map(|p| p.taps[i].as_ref()) {
                tap.publish(&mut m.scope(&format!("tap.ring{k}")));
                k += 1;
            }
        }
        let n_hosts = parts.first().map_or(0, |p| p.m.truth.len());
        for i in 0..n_hosts {
            let mut logs: Vec<(String, &EdgeLog)> = parts
                .iter()
                .flat_map(|p| p.m.truth[i].iter().map(|(pt, l)| (format!("{pt:?}"), l)))
                .collect();
            logs.sort_by(|a, b| a.0.cmp(&b.0));
            for (name, log) in logs {
                log.publish(&mut m.scope(&format!("truth.h{i}.{name}")));
            }
        }
    }
}

impl CtmsRouter {
    fn ring_endpoint(&self, ring: NodeId, station: StationId) -> Option<Endpoint> {
        match &self.slots[ring.0] {
            Slot::Ring { endpoints } => endpoints.get(station.0 as usize).copied().flatten(),
            _ => unreachable!("ring events come from ring nodes"),
        }
    }

    fn route_ring(&mut self, now: SimTime, src: NodeId, out: RingOut, sink: &mut CmdSink<Cmd>) {
        match out {
            RingOut::Delivered { to, frame } => match self.ring_endpoint(src, to) {
                Some(Endpoint::Host { node }) => {
                    sink.push(node, Cmd::Host(HostCmd::RingDelivered(frame)));
                }
                Some(Endpoint::Bridge { node, port }) => {
                    sink.push(node, Cmd::Bridge(BridgeCmd::Delivered { port, frame }));
                }
                None => {}
            },
            RingOut::Stripped {
                from,
                tag,
                delivered,
                ..
            } => {
                // Bridge submissions complete silently; host submissions
                // go back to the host's driver.
                if let Some(Endpoint::Host { node }) = self.ring_endpoint(src, from) {
                    sink.push(node, Cmd::Host(HostCmd::RingStripped { tag, delivered }));
                }
            }
            RingOut::Observed(view) => {
                if let Some(tap) = self.taps[src.0].as_mut() {
                    tap.observe(now, &view);
                }
            }
            RingOut::LostToPurge { tag, .. } => {
                self.m.lost_to_purge.push((now, tag));
            }
            RingOut::PurgeStarted { .. } => {
                self.m.purge_starts.push(now);
                for &(host, driver) in &self.purge_subscribers {
                    sink.push(
                        host,
                        Cmd::Host(HostCmd::Kern(KernCmd::Call {
                            driver,
                            call: DriverCall::Custom {
                                code: ctms_ctmsp::CALL_PURGE_SEEN,
                                arg: 0,
                            },
                        })),
                    );
                }
            }
            RingOut::PurgeEnded => {}
            RingOut::QueueDrop { station, .. } => {
                self.m.drops.push(DropRec {
                    at: now,
                    host: station.0 as usize,
                    site: DropSite::RingQueue,
                    tag: 0,
                    bytes: 0,
                });
            }
        }
    }

    fn route_host(&mut self, now: SimTime, src: NodeId, out: HostOut, sink: &mut CmdSink<Cmd>) {
        let (index, ring) = match self.slots[src.0] {
            Slot::Host { index, ring } => (index, ring),
            _ => unreachable!("host events come from host nodes"),
        };
        match out {
            HostOut::RingSubmit(frame) => sink.push(ring, Cmd::Ring(RingCmd::Submit(frame))),
            HostOut::Trace { point, tag } => {
                self.m.truth[index]
                    .entry(point)
                    .or_insert_with(|| EdgeLog::new(format!("h{index}-{point:?}")))
                    .record(now, tag);
            }
            HostOut::Drop { site, tag, bytes } => {
                self.m.drops.push(DropRec {
                    at: now,
                    host: index,
                    site,
                    tag,
                    bytes,
                });
            }
            HostOut::Presented { tag, bytes } => {
                self.m.presented.push((now, tag, bytes));
            }
            HostOut::SockDelivered { port, bytes } => {
                self.m.sock_delivered.push((now, port, bytes));
            }
            HostOut::ProcExited { .. } => {}
        }
    }

    fn route_bridge(&mut self, src: NodeId, out: BridgeOut, sink: &mut CmdSink<Cmd>) {
        match out {
            BridgeOut::Submit { port, frame } => {
                let ring = match &self.slots[src.0] {
                    Slot::Bridge { rings } => rings[port as usize],
                    _ => unreachable!("bridge events come from bridge nodes"),
                };
                sink.push(ring, Cmd::Ring(RingCmd::Submit(frame)));
            }
            BridgeOut::Dropped { .. } => {
                self.m.bridge_drops += 1;
            }
        }
    }

    fn route_phantom(&mut self, src: NodeId, out: PhantomOut, sink: &mut CmdSink<Cmd>) {
        let ring = match self.slots[src.0] {
            Slot::Phantom { ring } => ring,
            _ => unreachable!("phantom events come from the phantom node"),
        };
        match out {
            PhantomOut::Submit(frame) => sink.push(ring, Cmd::Ring(RingCmd::Submit(frame))),
            PhantomOut::Disturb(d) => sink.push(ring, Cmd::Ring(RingCmd::Disturb(d))),
        }
    }
}

/// One bridge attachment record: the rings of its ports (in port
/// order) and which port's ring owns the bridge under sharding.
struct BridgeSpec {
    rings: Vec<usize>,
    owner: usize,
    bridge: Bridge,
}

/// A topology under construction: components plus where they attach.
/// Build order within each kind is preserved; kinds are registered
/// rings → bridges → hosts → phantom, fixing NodeId (and therefore
/// deadline-tie) order.
#[derive(Default)]
pub struct Topology {
    rings: Vec<TokenRing>,
    bridges: Vec<BridgeSpec>,
    hosts: Vec<(usize, StationId, Host)>,
    phantom: Option<(usize, PhantomTraffic)>,
    purge_subscribers: Vec<(usize, DriverId)>,
    cascade_limit: u32,
    sched_mode: SchedMode,
}

impl Topology {
    /// Starts an empty topology with the given same-instant cascade
    /// step limit.
    pub fn new(cascade_limit: u32) -> Self {
        Topology {
            cascade_limit,
            ..Topology::default()
        }
    }

    /// Selects the harness scheduler implementation. Defaults to
    /// [`SchedMode::Indexed`]; only the `ctms-bench` perf harness should
    /// ever select the lazy baseline.
    pub fn sched_mode(&mut self, mode: SchedMode) {
        self.sched_mode = mode;
    }

    /// Adds a ring; returns its ring index.
    pub fn ring(&mut self, ring: TokenRing) -> usize {
        self.rings.push(ring);
        self.rings.len() - 1
    }

    /// Attaches a host at `station` of ring `ring`; returns its dense
    /// host index (the index used by `Measurements` and accessors).
    pub fn host(&mut self, ring: usize, station: StationId, host: Host) -> usize {
        assert!(ring < self.rings.len(), "host on unknown ring {ring}");
        self.hosts.push((ring, station, host));
        self.hosts.len() - 1
    }

    /// Attaches a two-port bridge between `ring_a` and `ring_b` (port
    /// stations come from the bridge's own config); returns its bridge
    /// index. The bridge is owned by `ring_a`'s shard when sharded.
    pub fn bridge(&mut self, ring_a: usize, ring_b: usize, bridge: Bridge) -> usize {
        self.bridge_multi(vec![ring_a, ring_b], 0, bridge)
    }

    /// Attaches a multi-port bridge: `rings[p]` is the ring of port `p`
    /// (must match the bridge's port count). `owner` picks which of
    /// those rings the bridge co-shards with — it must be the ring that
    /// *delivers* CTMSP traffic into the bridge, because ring→bridge
    /// delivery is an ordinary same-shard command, not a sync-mailbox
    /// hop. Returns the bridge index.
    pub fn bridge_multi(&mut self, rings: Vec<usize>, owner: usize, bridge: Bridge) -> usize {
        assert!(
            rings.iter().all(|&r| r < self.rings.len()),
            "bridge on unknown ring"
        );
        assert_eq!(rings.len(), bridge.port_count(), "one ring per bridge port");
        assert!(owner < rings.len(), "owner is a port index");
        self.bridges.push(BridgeSpec {
            rings,
            owner,
            bridge,
        });
        self.bridges.len() - 1
    }

    /// Attaches background campus traffic to ring `ring`.
    pub fn phantom(&mut self, ring: usize, phantom: PhantomTraffic) {
        assert!(ring < self.rings.len(), "phantom on unknown ring {ring}");
        assert!(self.phantom.is_none(), "one phantom generator per topology");
        self.phantom = Some((ring, phantom));
    }

    /// Subscribes a host driver to purge-start notifications (the §5
    /// hypothetical purge-interrupt adapter).
    pub fn subscribe_purge(&mut self, host: usize, driver: DriverId) {
        assert!(host < self.hosts.len(), "unknown host {host}");
        self.purge_subscribers.push((host, driver));
    }

    /// The complete routing-metadata table, in NodeId order (rings,
    /// bridges, hosts, phantom) — shared between the single-threaded
    /// and sharded builds.
    fn make_slots(&self) -> Vec<Slot> {
        let n_rings = self.rings.len();
        let n_bridges = self.bridges.len();
        // NodeIds are assigned in push order: rings, bridges, hosts, phantom.
        let ring_node = |k: usize| NodeId(k);
        let bridge_node = |k: usize| NodeId(n_rings + k);
        let host_node = |k: usize| NodeId(n_rings + n_bridges + k);

        let mut slots: Vec<Slot> = Vec::new();
        let mut endpoints: Vec<Vec<Option<Endpoint>>> = (0..n_rings).map(|_| Vec::new()).collect();
        let mut attach = |ring: usize, station: StationId, ep: Endpoint| {
            let table: &mut Vec<Option<Endpoint>> = &mut endpoints[ring];
            let i = station.0 as usize;
            if table.len() <= i {
                table.resize(i + 1, None);
            }
            assert!(table[i].is_none(), "two endpoints at station {station:?}");
            table[i] = Some(ep);
        };
        for (k, spec) in self.bridges.iter().enumerate() {
            let node = bridge_node(k);
            for (p, &ring) in spec.rings.iter().enumerate() {
                attach(
                    ring,
                    spec.bridge.port_station(p),
                    Endpoint::Bridge {
                        node,
                        port: p as u8,
                    },
                );
            }
        }
        for (k, (ring, station, _)) in self.hosts.iter().enumerate() {
            attach(*ring, *station, Endpoint::Host { node: host_node(k) });
        }

        for ep in endpoints.drain(..) {
            slots.push(Slot::Ring { endpoints: ep });
        }
        for spec in &self.bridges {
            slots.push(Slot::Bridge {
                rings: spec.rings.iter().map(|&r| ring_node(r)).collect(),
            });
        }
        for (k, (ring, _, _)) in self.hosts.iter().enumerate() {
            slots.push(Slot::Host {
                index: k,
                ring: ring_node(*ring),
            });
        }
        if let Some((ring, _)) = &self.phantom {
            slots.push(Slot::Phantom {
                ring: ring_node(*ring),
            });
        }
        slots
    }

    /// Registers everything with a fresh harness and returns the live bus.
    pub fn build(self) -> Bus {
        let n_rings = self.rings.len();
        let n_bridges = self.bridges.len();
        let n_hosts = self.hosts.len();
        let host_node = |k: usize| NodeId(n_rings + n_bridges + k);

        let slots: Arc<[Slot]> = self.make_slots().into();
        let taps: Vec<Option<Tap>> = slots
            .iter()
            .map(|s| matches!(s, Slot::Ring { .. }).then(|| Tap::new(TapCfg::default())))
            .collect();

        let router = CtmsRouter {
            slots,
            taps,
            purge_subscribers: self
                .purge_subscribers
                .iter()
                .map(|&(host, driver)| (host_node(host), driver))
                .collect(),
            m: Measurements {
                truth: (0..n_hosts).map(|_| HashMap::new()).collect(),
                ..Measurements::default()
            },
        };

        let mut h = Harness::with_mode(router, self.cascade_limit, self.sched_mode);
        let mut ring_nodes = Vec::new();
        for (k, ring) in self.rings.into_iter().enumerate() {
            ring_nodes.push(
                h.add_node_labeled(Node::Ring(ring, Vec::new()), format!("tokenring.ring{k}")),
            );
        }
        let mut bridge_nodes = Vec::new();
        for (k, spec) in self.bridges.into_iter().enumerate() {
            bridge_nodes.push(h.add_node_labeled(
                Node::Bridge(spec.bridge, Vec::new()),
                format!("router.bridge{k}"),
            ));
        }
        let mut host_nodes = Vec::new();
        for (k, (_, _, host)) in self.hosts.into_iter().enumerate() {
            host_nodes
                .push(h.add_node_labeled(Node::Host(host, Vec::new()), format!("unixkern.h{k}")));
        }
        let phantom_node = self
            .phantom
            .map(|(_, p)| h.add_node_labeled(Node::Phantom(p, Vec::new()), "workloads.phantom"));

        Bus {
            h,
            ring_nodes,
            bridge_nodes,
            host_nodes,
            phantom_node,
        }
    }

    /// Registers everything with a conservative-parallel
    /// [`ShardedHarness`](ctms_sim::ShardedHarness), partitioned by ring,
    /// and returns a [`ShardedBus`]. Results are bit-identical to
    /// [`Topology::build`] — parallelism may never change the answer,
    /// only the wall clock.
    ///
    /// Partition rule: the ring graph (rings as nodes, bridges as
    /// edges — a multi-port bridge couples every pair of its rings) is
    /// cut into `min(shards, n_rings)` balanced parts by the greedy
    /// edge-cut-minimizing [`crate::graph::partition_rings`]; every
    /// bridge and host lives with its owner ring. Bridges whose port
    /// rings span shards are sync-class: they are the only legal
    /// cross-shard emitters, and their forwarding latencies
    /// ([`ctms_router::BridgeKind::lookahead`]) bound the conservative
    /// window — **per shard**: each shard's window is capped by the
    /// minimum lookahead over only the cut bridges *incident to it*, so
    /// well-separated partitions run wider windows than the global
    /// minimum would allow.
    ///
    /// Falls back to the single-threaded harness (same results, one
    /// thread) whenever sharding cannot help or cannot be proven sound:
    ///
    /// * fewer than two shards would result (`shards <= 1` or one ring),
    /// * a non-default scheduler mode was selected (the sharded engine
    ///   only implements the indexed scheduler),
    /// * purge subscriptions exist (purge fan-out may cross shards from
    ///   a non-sync ring node),
    /// * a phantom generator is attached (its broadcast LLC frames are
    ///   delivered to every station, including remote bridge ports).
    pub fn build_sharded(self, shards: usize) -> ShardedBus {
        let n_rings = self.rings.len();
        let s = shards.min(n_rings);
        if s <= 1
            || !matches!(self.sched_mode, SchedMode::Indexed)
            || !self.purge_subscribers.is_empty()
            || self.phantom.is_some()
        {
            return ShardedBus::Single(self.build());
        }

        let n_hosts = self.hosts.len();
        // Graph partition: bridges are the edges (a multi-port bridge
        // couples every pair of its rings).
        let edges: Vec<(usize, usize)> = self
            .bridges
            .iter()
            .flat_map(|spec| {
                let r = &spec.rings;
                (0..r.len()).flat_map(move |i| (i + 1..r.len()).map(move |j| (r[i], r[j])))
            })
            .collect();
        let part = crate::graph::partition_rings(n_rings, &edges, s);
        let ring_shard = |i: usize| part[i];
        let bridge_shard: Vec<usize> = self
            .bridges
            .iter()
            .map(|spec| part[spec.rings[spec.owner]])
            .collect();
        let bridge_sync: Vec<bool> = self
            .bridges
            .iter()
            .map(|spec| spec.rings.iter().any(|&r| part[r] != part[spec.rings[0]]))
            .collect();
        // Global floor (seal-time sanity bound) plus the per-shard
        // refinement: shard j is capped by the cut bridges it touches.
        let lookahead = self
            .bridges
            .iter()
            .zip(&bridge_sync)
            .filter(|(_, sync)| **sync)
            .map(|(spec, _)| spec.bridge.kind().lookahead())
            .min()
            .unwrap_or(Dur::ZERO);
        let mut shard_lookahead: Vec<Option<Dur>> = vec![None; s];
        for (spec, sync) in self.bridges.iter().zip(&bridge_sync) {
            if !*sync {
                continue;
            }
            let la = spec.bridge.kind().lookahead();
            // A zero lookahead on a cut edge would collapse the
            // conservative window to nothing and stall the run — catch
            // it at build time, not as a runtime hang.
            debug_assert!(
                la > Dur::ZERO,
                "cut bridge {:?} has zero lookahead: its kind cannot sit on a shard boundary",
                spec.bridge.kind()
            );
            for &r in &spec.rings {
                let sh = part[r];
                shard_lookahead[sh] = Some(shard_lookahead[sh].map_or(la, |cur| cur.min(la)));
            }
        }
        // Directed per-edge influence for the adaptive window protocol.
        // Cross-shard mail flows only out of sync bridges (the owner
        // ring — the one that delivers traffic *into* the bridge — is
        // co-sharded with it, so delivery into the bridge is always
        // local), and only toward the shards of the bridge's port
        // rings, delayed by at least that bridge's forwarding latency.
        let mut influence: Vec<Vec<Option<Dur>>> = vec![vec![None; s]; s];
        for ((spec, sync), &o) in self.bridges.iter().zip(&bridge_sync).zip(&bridge_shard) {
            if !*sync {
                continue;
            }
            let la = spec.bridge.kind().lookahead();
            for &r in &spec.rings {
                let k = part[r];
                if k != o {
                    influence[o][k] = Some(influence[o][k].map_or(la, |cur| cur.min(la)));
                }
            }
        }

        let slots: Arc<[Slot]> = self.make_slots().into();
        let routers: Vec<CtmsRouter> = (0..s)
            .map(|shard| CtmsRouter {
                // One shared wiring table for all shards: the Arc clone
                // is a refcount bump, not a copy of the slot data.
                slots: Arc::clone(&slots),
                // Each ring's TAP lives with the ring's owner shard; the
                // merged telemetry re-numbers them globally.
                taps: slots
                    .iter()
                    .enumerate()
                    .map(|(i, sl)| {
                        (matches!(sl, Slot::Ring { .. }) && ring_shard(i) == shard)
                            .then(|| Tap::new(TapCfg::default()))
                    })
                    .collect(),
                purge_subscribers: Vec::new(),
                m: Measurements {
                    truth: (0..n_hosts).map(|_| HashMap::new()).collect(),
                    ..Measurements::default()
                },
            })
            .collect();

        let mut h = ShardedHarness::new(routers, self.cascade_limit, lookahead);
        h.set_shard_lookaheads(shard_lookahead);
        h.set_influence_lookaheads(influence);
        let mut ring_nodes = Vec::new();
        for (k, ring) in self.rings.into_iter().enumerate() {
            ring_nodes.push(h.add_node_labeled(
                Node::Ring(ring, Vec::new()),
                format!("tokenring.ring{k}"),
                ring_shard(k),
                false,
            ));
        }
        let mut bridge_nodes = Vec::new();
        for (k, spec) in self.bridges.into_iter().enumerate() {
            bridge_nodes.push(h.add_node_labeled(
                Node::Bridge(spec.bridge, Vec::new()),
                format!("router.bridge{k}"),
                bridge_shard[k],
                bridge_sync[k],
            ));
        }
        let mut host_nodes = Vec::new();
        for (k, (ring, _, host)) in self.hosts.into_iter().enumerate() {
            host_nodes.push(h.add_node_labeled(
                Node::Host(host, Vec::new()),
                format!("unixkern.h{k}"),
                ring_shard(ring),
                false,
            ));
        }

        ShardedBus::Parallel(ParallelBus {
            h,
            ring_nodes,
            bridge_nodes,
            host_nodes,
        })
    }
}

/// A built topology: the harness plus typed access to its nodes. The
/// concrete testbeds ([`crate::Testbed`], [`crate::RingChainTestbed`])
/// wrap this with scenario-specific construction and accessors.
pub struct Bus {
    h: Harness<Node, CtmsRouter>,
    ring_nodes: Vec<NodeId>,
    bridge_nodes: Vec<NodeId>,
    host_nodes: Vec<NodeId>,
    phantom_node: Option<NodeId>,
}

impl Bus {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.h.now()
    }

    /// Runs until `horizon`; panics on cascade overflow.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.h.run_until(horizon);
    }

    /// Runs until `horizon`, reporting cascade overflow as an error.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError> {
        self.h.try_run_until(horizon)
    }

    /// Number of rings.
    pub fn ring_count(&self) -> usize {
        self.ring_nodes.len()
    }

    /// Component activations serviced so far (scheduler throughput
    /// numerator for the perf harness; not part of telemetry).
    pub fn events(&self) -> u64 {
        self.h.events()
    }

    /// Ring `k`.
    pub fn ring(&self, k: usize) -> &TokenRing {
        match self.h.node(self.ring_nodes[k]) {
            Node::Ring(r, _) => r,
            _ => unreachable!("ring node"),
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.host_nodes.len()
    }

    /// Host `k` (dense index from [`Topology::host`]).
    pub fn host(&self, k: usize) -> &Host {
        match self.h.node(self.host_nodes[k]) {
            Node::Host(host, _) => host,
            _ => unreachable!("host node"),
        }
    }

    /// Mutable host `k`; its deadline is rescheduled before the next step.
    pub fn host_mut(&mut self, k: usize) -> &mut Host {
        match self.h.node_mut(self.host_nodes[k]) {
            Node::Host(host, _) => host,
            _ => unreachable!("host node"),
        }
    }

    /// Number of bridges.
    pub fn bridge_count(&self) -> usize {
        self.bridge_nodes.len()
    }

    /// Bridge `k`.
    pub fn bridge(&self, k: usize) -> &Bridge {
        match self.h.node(self.bridge_nodes[k]) {
            Node::Bridge(b, _) => b,
            _ => unreachable!("bridge node"),
        }
    }

    /// The phantom traffic generator, if attached.
    pub fn phantom(&self) -> Option<&PhantomTraffic> {
        self.phantom_node.map(|id| match self.h.node(id) {
            Node::Phantom(p, _) => p,
            _ => unreachable!("phantom node"),
        })
    }

    /// The TAP monitor on ring `k`.
    pub fn tap(&self, k: usize) -> &Tap {
        self.h.router().tap(self.ring_nodes[k])
    }

    /// The recorded ground truth.
    pub fn measurements(&self) -> &Measurements {
        self.h.router().measurements()
    }

    /// The cascade failure that poisoned this bus, if any.
    pub fn failure(&self) -> Option<CascadeError> {
        self.h.failure()
    }

    /// Delivers a ring command (e.g. a disturbance) to ring `k` at the
    /// current instant, routing its fallout like any other event.
    pub fn inject_ring(&mut self, k: usize, cmd: RingCmd) -> Result<(), CascadeError> {
        self.h.inject(self.ring_nodes[k], Cmd::Ring(cmd))
    }

    /// The telemetry registry as last collected (see
    /// [`collect_telemetry`](Self::collect_telemetry)).
    pub fn telemetry(&self) -> &ctms_sim::Registry {
        self.h.telemetry()
    }

    /// Re-collects every node's and the router's metrics into the
    /// registry and returns it.
    pub fn collect_telemetry(&mut self) -> &mut ctms_sim::Registry {
        self.h.collect_telemetry()
    }

    /// Collects and freezes the current metric tree as a named phase.
    pub fn snapshot_phase(&mut self, name: impl Into<String>) {
        self.h.snapshot_phase(name);
    }

    /// Collects and serializes the registry as canonical JSON
    /// (byte-identical across runs of the same seed).
    pub fn telemetry_json(&mut self) -> String {
        self.h.telemetry_json()
    }

    /// Appends every piece of dynamic state — harness (clock, nodes,
    /// telemetry history) then the router's canonical measurement state
    /// — to `enc`. Must be called at a quiescent instant (after
    /// `try_run_until` returned). The byte stream is identical to what
    /// [`crate::ParallelBus`] produces for the same simulation state, so
    /// snapshots restore across execution modes.
    pub(crate) fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        self.h.persist_state(enc);
        persist_router_parts(&[self.h.router()], enc);
    }

    /// The canonical graph-shape signature checkpoints embed (format
    /// v2) — see [`CtmsRouter::topology_signature`].
    pub(crate) fn topology_signature(&self) -> Vec<u8> {
        self.h.router().topology_signature()
    }

    /// Applies state persisted by [`Bus::persist_state`] (or the
    /// sharded equivalent) onto this freshly rebuilt bus.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut ctms_sim::Dec<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        self.h.restore_state(dec)?;
        let ckpt = decode_router_state(dec)?;
        self.apply_router_ckpt(ckpt)
    }

    /// Streaming counterpart of [`Bus::persist_state`]: the chunk
    /// payloads concatenate to exactly the monolithic byte stream, but
    /// at no point is more than one chunk buffered.
    pub(crate) fn persist_state_chunked(
        &self,
        w: &mut ctms_sim::ChunkedWriter<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        self.h.persist_state_chunked(w)?;
        persist_router_parts(&[self.h.router()], w.enc());
        w.flush_chunk()
    }

    /// Streaming counterpart of [`Bus::restore_state`]. `prefix` is the
    /// tail of the first chunk (positioned right after the node-count
    /// field); the remaining chunks are pulled from `r` through `buf`.
    pub(crate) fn restore_state_chunked(
        &mut self,
        prefix: &mut ctms_sim::Dec<'_>,
        r: &mut ctms_sim::ChunkedReader<'_>,
        buf: &mut Vec<u8>,
    ) -> Result<(), ctms_sim::PersistError> {
        self.h.restore_state_chunked(prefix, r, buf)?;
        if !r.next_chunk_into(buf)? {
            // Stream ended before the router chunk.
            return Err(ctms_sim::PersistError::UnexpectedEof);
        }
        let mut dec = ctms_sim::Dec::new(buf);
        let ckpt = decode_router_state(&mut dec)?;
        dec.finish()?;
        self.apply_router_ckpt(ckpt)
    }

    /// Applies a decoded router snapshot onto this bus's single router
    /// part — shared by the monolithic and streamed restore paths.
    fn apply_router_ckpt(&mut self, ckpt: RouterCkpt) -> Result<(), ctms_sim::PersistError> {
        let r = self.h.router_mut();
        r.clear_measurements();
        let ring_slots = r.ring_slot_indices();
        if ring_slots.len() != ckpt.taps.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "checkpoint has {} taps, topology has {} rings",
                ckpt.taps.len(),
                ring_slots.len()
            )));
        }
        for (slot, tap) in ring_slots.into_iter().zip(ckpt.taps) {
            r.set_tap(slot, tap);
        }
        if r.truth_hosts() != ckpt.truth.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "checkpoint has {} truth maps, topology has {} hosts",
                ckpt.truth.len(),
                r.truth_hosts()
            )));
        }
        for (host, entries) in ckpt.truth.into_iter().enumerate() {
            for (point, log) in entries {
                r.insert_truth(host, point, log);
            }
        }
        r.apply_flat(
            ckpt.drops,
            ckpt.presented,
            ckpt.sock_delivered,
            ckpt.purge_starts,
            ckpt.lost_to_purge,
            ckpt.bridge_drops,
        );
        Ok(())
    }
}

// --- Checkpoint plumbing -------------------------------------------------
//
// A checkpoint must be *shard-agnostic*: bytes written by a 4-shard run
// restore into a single-threaded bus or a 2-shard one. The harness side
// already walks nodes in global registration order on both engines; the
// router side is handled here by merging the per-shard parts into one
// canonical stream at persist time and re-distributing at restore time
// (taps to the ring's owner, truth logs to the host's owner, flat lists
// to shard 0 — merged telemetry is order-insensitive by construction).

impl ctms_sim::Persist for Node {
    /// One kind tag (checked against the rebuilt topology on restore)
    /// then the component's own state. The scratch buffer is drained at
    /// every quiescent instant, so it carries no state.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        match self {
            Node::Ring(r, buf) => {
                debug_assert!(buf.is_empty(), "checkpoint off a quiescent instant");
                enc.u8(0);
                r.persist(enc);
            }
            Node::Host(h, buf) => {
                debug_assert!(buf.is_empty(), "checkpoint off a quiescent instant");
                enc.u8(1);
                h.persist(enc);
            }
            Node::Bridge(b, buf) => {
                debug_assert!(buf.is_empty(), "checkpoint off a quiescent instant");
                enc.u8(2);
                b.persist(enc);
            }
            Node::Phantom(p, buf) => {
                debug_assert!(buf.is_empty(), "checkpoint off a quiescent instant");
                enc.u8(3);
                p.persist(enc);
            }
        }
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        let tag = dec.u8()?;
        match (self, tag) {
            (Node::Ring(r, buf), 0) => {
                buf.clear();
                r.restore(dec)
            }
            (Node::Host(h, buf), 1) => {
                buf.clear();
                h.restore(dec)
            }
            (Node::Bridge(b, buf), 2) => {
                buf.clear();
                b.restore(dec)
            }
            (Node::Phantom(p, buf), 3) => {
                buf.clear();
                p.restore(dec)
            }
            _ => Err(ctms_sim::PersistError::mismatch(format!(
                "checkpoint node kind {tag} does not match the rebuilt topology"
            ))),
        }
    }
}

/// Stable sort key for canonical [`MeasurePoint`] ordering in checkpoints.
fn measure_point_key(p: MeasurePoint) -> (u8, u8) {
    match p {
        MeasurePoint::VcaIrq => (0, 0),
        MeasurePoint::VcaHandlerEntry => (1, 0),
        MeasurePoint::PreTransmit => (2, 0),
        MeasurePoint::CtmspIdentified => (3, 0),
        MeasurePoint::Presented => (4, 0),
        MeasurePoint::Custom(x) => (5, x),
    }
}

fn persist_measure_point(enc: &mut ctms_sim::Enc, p: MeasurePoint) {
    let (tag, custom) = measure_point_key(p);
    enc.u8(tag);
    if tag == 5 {
        enc.u8(custom);
    }
}

fn restore_measure_point(
    dec: &mut ctms_sim::Dec<'_>,
) -> Result<MeasurePoint, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => MeasurePoint::VcaIrq,
        1 => MeasurePoint::VcaHandlerEntry,
        2 => MeasurePoint::PreTransmit,
        3 => MeasurePoint::CtmspIdentified,
        4 => MeasurePoint::Presented,
        5 => MeasurePoint::Custom(dec.u8()?),
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "measure point",
                tag,
            })
        }
    })
}

fn persist_drop_site(enc: &mut ctms_sim::Enc, site: DropSite) {
    enc.u8(match site {
        DropSite::VcaOverrun => 0,
        DropSite::MbufExhausted => 1,
        DropSite::IfqFull => 2,
        DropSite::SockbufFull => 3,
        DropSite::RingQueue => 4,
        DropSite::Purge => 5,
        DropSite::Duplicate => 6,
        DropSite::Underrun => 7,
        DropSite::AdapterOverrun => 8,
        DropSite::UnknownProto => 9,
    });
}

fn restore_drop_site(dec: &mut ctms_sim::Dec<'_>) -> Result<DropSite, ctms_sim::PersistError> {
    Ok(match dec.u8()? {
        0 => DropSite::VcaOverrun,
        1 => DropSite::MbufExhausted,
        2 => DropSite::IfqFull,
        3 => DropSite::SockbufFull,
        4 => DropSite::RingQueue,
        5 => DropSite::Purge,
        6 => DropSite::Duplicate,
        7 => DropSite::Underrun,
        8 => DropSite::AdapterOverrun,
        9 => DropSite::UnknownProto,
        tag => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "drop site",
                tag,
            })
        }
    })
}

/// Decoded router-side checkpoint state, ready to distribute onto one
/// router (single-threaded) or across shard routers (the caller knows
/// the ownership map; this struct is execution-mode-agnostic).
pub(crate) struct RouterCkpt {
    /// One TAP per ring slot, in slot order.
    pub(crate) taps: Vec<Tap>,
    /// Per-host truth logs, points in canonical tag order.
    pub(crate) truth: Vec<Vec<(MeasurePoint, EdgeLog)>>,
    pub(crate) drops: Vec<DropRec>,
    pub(crate) presented: Vec<(SimTime, u64, u32)>,
    pub(crate) sock_delivered: Vec<(SimTime, Port, u32)>,
    pub(crate) purge_starts: Vec<SimTime>,
    pub(crate) lost_to_purge: Vec<(SimTime, u64)>,
    pub(crate) bridge_drops: u64,
}

/// Appends the canonical merged router state of `parts` (one part per
/// shard; a single part for a single-threaded run) to `enc`. Each TAP
/// and each host's truth logs live in exactly one part; flat event
/// lists are chronological within each part and are merged by a stable
/// sort on time, so the bytes do not depend on the shard count beyond
/// same-instant tie order — which nothing downstream observes (merged
/// telemetry uses only counts and the sorted time multiset).
pub(crate) fn persist_router_parts(parts: &[&CtmsRouter], enc: &mut ctms_sim::Enc) {
    use ctms_sim::Persist as _;
    let first = parts.first().expect("at least one router part");

    let ring_slots: Vec<usize> = first.ring_slot_indices();
    enc.seq_len(ring_slots.len());
    for slot in ring_slots {
        let tap = parts
            .iter()
            .find_map(|p| p.taps[slot].as_ref())
            .expect("every ring slot has its tap in exactly one part");
        tap.persist(enc);
    }

    let n_hosts = first.m.truth.len();
    enc.seq_len(n_hosts);
    for host in 0..n_hosts {
        let mut entries: Vec<(MeasurePoint, &EdgeLog)> = parts
            .iter()
            .flat_map(|p| p.m.truth[host].iter().map(|(pt, l)| (*pt, l)))
            .collect();
        entries.sort_by_key(|(pt, _)| measure_point_key(*pt));
        enc.seq_len(entries.len());
        for (point, log) in entries {
            persist_measure_point(enc, point);
            log.persist(enc);
        }
    }

    let mut drops: Vec<&DropRec> = parts.iter().flat_map(|p| p.m.drops.iter()).collect();
    drops.sort_by_key(|d| d.at);
    enc.seq_len(drops.len());
    for d in drops {
        enc.time(d.at);
        enc.u32(d.host as u32);
        persist_drop_site(enc, d.site);
        enc.u64(d.tag);
        enc.u32(d.bytes);
    }

    let mut presented: Vec<(SimTime, u64, u32)> = parts
        .iter()
        .flat_map(|p| p.m.presented.iter().copied())
        .collect();
    presented.sort_by_key(|e| e.0);
    enc.seq_len(presented.len());
    for (at, tag, bytes) in presented {
        enc.time(at);
        enc.u64(tag);
        enc.u32(bytes);
    }

    let mut sock: Vec<(SimTime, Port, u32)> = parts
        .iter()
        .flat_map(|p| p.m.sock_delivered.iter().copied())
        .collect();
    sock.sort_by_key(|e| e.0);
    enc.seq_len(sock.len());
    for (at, port, bytes) in sock {
        enc.time(at);
        enc.u16(port.0);
        enc.u32(bytes);
    }

    let mut purges: Vec<SimTime> = parts
        .iter()
        .flat_map(|p| p.m.purge_starts.iter().copied())
        .collect();
    purges.sort();
    enc.seq_len(purges.len());
    for at in purges {
        enc.time(at);
    }

    let mut lost: Vec<(SimTime, u64)> = parts
        .iter()
        .flat_map(|p| p.m.lost_to_purge.iter().copied())
        .collect();
    lost.sort_by_key(|e| e.0);
    enc.seq_len(lost.len());
    for (at, tag) in lost {
        enc.time(at);
        enc.u64(tag);
    }

    enc.u64(parts.iter().map(|p| p.m.bridge_drops).sum());
}

/// Rollback images for the optimistic scheduler. Everything the router
/// mutates while routing is append-only — TAP capture buffers, truth
/// edge logs, the flat measurement lists — so the image stores
/// **truncation marks** (current lengths plus the few scalar counters)
/// instead of copying data: a snapshot costs O(rings + hosts), not
/// O(history), and rolling back discards exactly the speculated suffix.
/// The wiring (`slots`, `purge_subscribers`) is never touched by
/// `route`, so it is not part of the image.
impl ctms_sim::Rollback for CtmsRouter {
    fn save(&self, enc: &mut ctms_sim::Enc) {
        // Bare u64 lengths throughout, not `seq_len`: marks carry no
        // elements, so the decoder's remaining-bytes check would
        // misfire on large histories.
        for tap in self.taps.iter().flatten() {
            tap.save_mark(enc);
        }
        for points in &self.m.truth {
            let mut entries: Vec<(MeasurePoint, usize)> =
                points.iter().map(|(p, l)| (*p, l.len())).collect();
            entries.sort_by_key(|(p, _)| measure_point_key(*p));
            enc.u64(entries.len() as u64);
            for (point, len) in entries {
                persist_measure_point(enc, point);
                enc.u64(len as u64);
            }
        }
        enc.u64(self.m.drops.len() as u64);
        enc.u64(self.m.presented.len() as u64);
        enc.u64(self.m.sock_delivered.len() as u64);
        enc.u64(self.m.purge_starts.len() as u64);
        enc.u64(self.m.lost_to_purge.len() as u64);
        enc.u64(self.m.bridge_drops);
    }

    fn rollback(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        fn cut<T>(v: &mut Vec<T>, len: u64, what: &str) -> Result<(), ctms_sim::PersistError> {
            let len = len as usize;
            if len > v.len() {
                return Err(ctms_sim::PersistError::mismatch(format!(
                    "router rollback: {what} mark {len} beyond {}",
                    v.len()
                )));
            }
            v.truncate(len);
            Ok(())
        }
        for tap in self.taps.iter_mut().flatten() {
            tap.rollback_mark(dec)?;
        }
        for points in &mut self.m.truth {
            let n = dec.u64()? as usize;
            let mut saved: Vec<MeasurePoint> = Vec::with_capacity(n);
            for _ in 0..n {
                let point = restore_measure_point(dec)?;
                let len = dec.u64()?;
                let log = points.get_mut(&point).ok_or_else(|| {
                    ctms_sim::PersistError::mismatch(format!(
                        "router rollback: truth log {point:?} missing"
                    ))
                })?;
                if len as usize > log.len() {
                    return Err(ctms_sim::PersistError::mismatch(format!(
                        "router rollback: truth {point:?} mark {len} beyond {}",
                        log.len()
                    )));
                }
                log.truncate(len as usize);
                saved.push(point);
            }
            // Logs first recorded during the rolled-back speculation
            // did not exist at the mark: drop them entirely.
            points.retain(|p, _| saved.contains(p));
        }
        let drops = dec.u64()?;
        cut(&mut self.m.drops, drops, "drops")?;
        let presented = dec.u64()?;
        cut(&mut self.m.presented, presented, "presented")?;
        let sock = dec.u64()?;
        cut(&mut self.m.sock_delivered, sock, "sock_delivered")?;
        let purges = dec.u64()?;
        cut(&mut self.m.purge_starts, purges, "purge_starts")?;
        let lost = dec.u64()?;
        cut(&mut self.m.lost_to_purge, lost, "lost_to_purge")?;
        self.m.bridge_drops = dec.u64()?;
        Ok(())
    }
}

/// Decodes router state written by [`persist_router_parts`].
pub(crate) fn decode_router_state(
    dec: &mut ctms_sim::Dec<'_>,
) -> Result<RouterCkpt, ctms_sim::PersistError> {
    use ctms_sim::Persist as _;
    let taps = dec.seq(|d| {
        let mut tap = Tap::new(TapCfg::default());
        tap.restore(d)?;
        Ok(tap)
    })?;
    let truth = dec.seq(|d| {
        d.seq(|d| {
            let point = restore_measure_point(d)?;
            let mut log = EdgeLog::new("");
            log.restore(d)?;
            Ok((point, log))
        })
    })?;
    let drops = dec.seq(|d| {
        Ok(DropRec {
            at: d.time()?,
            host: d.u32()? as usize,
            site: restore_drop_site(d)?,
            tag: d.u64()?,
            bytes: d.u32()?,
        })
    })?;
    let presented = dec.seq(|d| Ok((d.time()?, d.u64()?, d.u32()?)))?;
    let sock_delivered = dec.seq(|d| Ok((d.time()?, Port(d.u16()?), d.u32()?)))?;
    let purge_starts = dec.seq(|d| d.time())?;
    let lost_to_purge = dec.seq(|d| Ok((d.time()?, d.u64()?)))?;
    let bridge_drops = dec.u64()?;
    Ok(RouterCkpt {
        taps,
        truth,
        drops,
        presented,
        sock_delivered,
        purge_starts,
        lost_to_purge,
        bridge_drops,
    })
}

impl CtmsRouter {
    /// Indices of the ring slots, in slot (= NodeId) order.
    pub(crate) fn ring_slot_indices(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Ring { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// True when this part owns the TAP for `slot` (always true on the
    /// single-threaded router; the owner shard only, when sharded).
    pub(crate) fn owns_tap(&self, slot: usize) -> bool {
        self.taps[slot].is_some()
    }

    /// Replaces the TAP at `slot` with a restored one (the slot must
    /// already be owned here — ownership is structural, state is not).
    pub(crate) fn set_tap(&mut self, slot: usize, tap: Tap) {
        debug_assert!(self.taps[slot].is_some(), "restoring a tap this part owns");
        self.taps[slot] = Some(tap);
    }

    /// Number of per-host truth maps.
    pub(crate) fn truth_hosts(&self) -> usize {
        self.m.truth.len()
    }

    /// Installs one restored truth log.
    pub(crate) fn insert_truth(&mut self, host: usize, point: MeasurePoint, log: EdgeLog) {
        self.m.truth[host].insert(point, log);
    }

    /// Clears all recorded measurements ahead of a checkpoint apply.
    /// TAPs are not touched: owned slots are overwritten by the apply.
    pub(crate) fn clear_measurements(&mut self) {
        for map in &mut self.m.truth {
            map.clear();
        }
        self.m.drops.clear();
        self.m.presented.clear();
        self.m.sock_delivered.clear();
        self.m.purge_starts.clear();
        self.m.lost_to_purge.clear();
        self.m.bridge_drops = 0;
    }

    /// Installs the restored flat event lists (on the single router, or
    /// on shard 0 of a sharded run — merged telemetry only reads counts
    /// and sorted times, so placement is unobservable).
    pub(crate) fn apply_flat(
        &mut self,
        drops: Vec<DropRec>,
        presented: Vec<(SimTime, u64, u32)>,
        sock_delivered: Vec<(SimTime, Port, u32)>,
        purge_starts: Vec<SimTime>,
        lost_to_purge: Vec<(SimTime, u64)>,
        bridge_drops: u64,
    ) {
        self.m.drops = drops;
        self.m.presented = presented;
        self.m.sock_delivered = sock_delivered;
        self.m.purge_starts = purge_starts;
        self.m.lost_to_purge = lost_to_purge;
        self.m.bridge_drops = bridge_drops;
    }

    /// A canonical byte description of the wiring graph — slot kinds,
    /// endpoint stations, bridge port rings — independent of shard
    /// count (every shard router holds the complete slot table);
    /// endpoints are encoded in station order. Embedded in
    /// checkpoints since format v2 so a snapshot refuses to restore
    /// onto a differently-shaped topology instead of corrupting state.
    pub(crate) fn topology_signature(&self) -> Vec<u8> {
        let mut enc = ctms_sim::Enc::new();
        enc.seq_len(self.slots.len());
        for slot in self.slots.iter() {
            match slot {
                Slot::Ring { endpoints } => {
                    enc.u8(0);
                    // The dense table is already in station order, which
                    // is exactly the sorted order the v2 signature
                    // encoded — bytes stay identical across the layout
                    // change, so old checkpoints still match.
                    let eps: Vec<(u32, u8, u64, u8)> = endpoints
                        .iter()
                        .enumerate()
                        .filter_map(|(st, ep)| {
                            ep.map(|ep| match ep {
                                Endpoint::Host { node } => (st as u32, 0u8, node.0 as u64, 0u8),
                                Endpoint::Bridge { node, port } => {
                                    (st as u32, 1u8, node.0 as u64, port)
                                }
                            })
                        })
                        .collect();
                    enc.seq_len(eps.len());
                    for (st, kind, node, port) in eps {
                        enc.u32(st);
                        enc.u8(kind);
                        enc.u64(node);
                        enc.u8(port);
                    }
                }
                Slot::Bridge { rings } => {
                    enc.u8(1);
                    enc.seq_len(rings.len());
                    for r in rings {
                        enc.u64(r.0 as u64);
                    }
                }
                Slot::Host { index, ring } => {
                    enc.u8(2);
                    enc.u64(*index as u64);
                    enc.u64(ring.0 as u64);
                }
                Slot::Phantom { ring } => {
                    enc.u8(3);
                    enc.u64(ring.0 as u64);
                }
            }
        }
        enc.into_bytes()
    }
}
