//! Bridged-ring **graphs**: the city-scale generalization of the linear
//! chain (ROADMAP item 2).
//!
//! The paper answers its data-rate question for one ring; the era's
//! answer for scaling past one ring was backboning many of them (FDDI:
//! Current Issues and Future Trends). This module turns the topology
//! layer from "chain-shaped special case" into a graph model:
//!
//! * [`RingGraph`] — rings as nodes, bridges as typed edges (an edge
//!   may span more than two rings: an FDDI concentrator attaches a
//!   leaf to both backbone rings with one three-port bridge);
//! * deterministic, seedable generators for [`RingGraph::chain`],
//!   [`RingGraph::tree`], [`RingGraph::mesh`] (redundant parallel
//!   bridges included), and [`RingGraph::fddi`] (dual counter-rotating
//!   backbone);
//! * [`graph_topology`] — builds the [`Topology`]: stations are
//!   allocated per ring, the CTMS path is the shortest path over the
//!   graph (computed once, at build time), and every path bridge's
//!   static forwarding table is configured hop by hop;
//! * [`partition_rings`] — the greedy edge-cut-minimizing shard
//!   partitioner `Topology::build_sharded` uses for *any* graph, not
//!   just contiguous chain blocks.
//!
//! Determinism rules (the golden-digest tests pin all of them):
//!
//! * generators derive every random choice from the scenario seed via
//!   labeled [`Pcg32`] streams — same seed, same graph;
//! * the shortest path is breadth-first with neighbors explored in
//!   canonical (edge index, port position) order, so **redundant
//!   parallel bridges tie-break to the lowest edge index** — the
//!   redundant bridge carries no CTMS traffic unless the graph changes;
//! * the partitioner sees the edge multiset in canonical sorted order,
//!   so its output is invariant under ring/bridge registration order.

use crate::scenario::Scenario;
use crate::topology::Topology;
use ctms_ctmsp::{TrDriver, TrDriverCfg};
use ctms_devices::{CtmsSinkCfg, CtmsSourceCfg, CtmsVcaSink, CtmsVcaSource};
use ctms_router::{Bridge, BridgeKind, BridgePort};
use ctms_rtpc::{Machine, MachineConfig, MemRegion};
use ctms_sim::{Dur, Pcg32};
use ctms_tokenring::{StationId, TokenRing};
use ctms_unixkern::{DriverId, Host, KernConfig, Kernel};

/// One bridge in the graph: the rings of its ports, in port order. Two
/// rings is the classic inter-ring bridge; three is the FDDI
/// concentrator shape (leaf, primary backbone, secondary backbone).
#[derive(Clone, Debug)]
pub struct GraphEdge {
    /// Ring index per bridge port.
    pub rings: Vec<usize>,
}

impl GraphEdge {
    fn pair(a: usize, b: usize) -> GraphEdge {
        GraphEdge { rings: vec![a, b] }
    }
}

/// A bridged-ring graph description: pure shape, no components. Feed it
/// to [`graph_topology`] (or [`crate::RingChainTestbed::graph`]) to get
/// a runnable CTMS testbed with a transmitter on `tx_ring` streaming to
/// a receiver on `rx_ring` along the shortest bridge path.
#[derive(Clone, Debug)]
pub struct RingGraph {
    n_rings: usize,
    edges: Vec<GraphEdge>,
    tx_ring: usize,
    rx_ring: usize,
}

impl RingGraph {
    /// A linear chain of `n ≥ 2` rings — exactly the shape
    /// [`crate::RingChainTestbed::chain`] has always built (and now
    /// builds through this description).
    pub fn chain(n: usize) -> RingGraph {
        assert!(n >= 2, "a chain needs at least two rings");
        RingGraph {
            n_rings: n,
            edges: (0..n - 1).map(|i| GraphEdge::pair(i, i + 1)).collect(),
            tx_ring: 0,
            rx_ring: n - 1,
        }
    }

    /// A rooted tree of `n ≥ 2` rings: ring `i` hangs off ring
    /// `(i − 1) / fanout`. The stream runs root → last leaf, so the
    /// path depth grows with `log_fanout(n)` while most of the tree is
    /// off-path — the shape that rewards per-shard lookahead.
    pub fn tree(n: usize, fanout: usize) -> RingGraph {
        assert!(n >= 2, "a tree needs at least two rings");
        assert!(fanout >= 1, "fanout must be positive");
        RingGraph {
            n_rings: n,
            edges: (1..n)
                .map(|i| GraphEdge::pair((i - 1) / fanout, i))
                .collect(),
            tx_ring: 0,
            rx_ring: n - 1,
        }
    }

    /// A chain of `n ≥ 2` rings thickened into a mesh: seeded chords
    /// (about one per four rings) plus one redundant bridge parallel to
    /// the first chain edge — the redundancy the tie-breaking rule is
    /// pinned against. Same seed, same mesh.
    pub fn mesh(n: usize, seed: u64) -> RingGraph {
        assert!(n >= 2, "a mesh needs at least two rings");
        let mut edges: Vec<GraphEdge> = (0..n - 1).map(|i| GraphEdge::pair(i, i + 1)).collect();
        // Redundant parallel bridge on the first chain edge: the BFS
        // tie-break (lowest edge index) must keep routing through edge 0.
        edges.push(GraphEdge::pair(0, 1));
        let mut rng = Pcg32::new(seed, 0xD2).derive("mesh-chords");
        for _ in 0..(n / 4).max(1) {
            let a = rng.index(n);
            let span = 2 + rng.index((n - 1).max(1));
            let b = (a + span) % n;
            if a != b {
                edges.push(GraphEdge::pair(a.min(b), a.max(b)));
            }
        }
        RingGraph {
            n_rings: n,
            edges,
            tx_ring: 0,
            rx_ring: n - 1,
        }
    }

    /// An FDDI-style dual counter-rotating backbone: rings 0 and 1 are
    /// the primary and secondary backbone rings; every leaf ring
    /// `2 ≤ k < n` attaches through one three-port concentrator bridge
    /// `[leaf, primary, secondary]`. The stream runs leaf 2 → leaf
    /// `n − 1` across the primary; the secondary is the standby port
    /// that makes every concentrator a genuine multi-port bridge.
    /// Needs `n ≥ 4` (two backbone rings, two leaves).
    pub fn fddi(n: usize) -> RingGraph {
        assert!(
            n >= 4,
            "an FDDI backbone needs two backbone rings and two leaves"
        );
        RingGraph {
            n_rings: n,
            edges: (2..n)
                .map(|k| GraphEdge {
                    rings: vec![k, 0, 1],
                })
                .collect(),
            tx_ring: 2,
            rx_ring: n - 1,
        }
    }

    /// Generator lookup by shape name (`chain`, `tree`, `mesh`, `fddi`)
    /// — the `ctms-perf --topology` entry point. `None` for an unknown
    /// name.
    pub fn named(shape: &str, n: usize, seed: u64) -> Option<RingGraph> {
        Some(match shape {
            "chain" => RingGraph::chain(n),
            "tree" => RingGraph::tree(n, 4),
            "mesh" => RingGraph::mesh(n, seed),
            "fddi" => RingGraph::fddi(n),
            _ => return None,
        })
    }

    /// Number of rings.
    pub fn ring_count(&self) -> usize {
        self.n_rings
    }

    /// Number of bridges (edges).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The transmitter's ring.
    pub fn tx_ring(&self) -> usize {
        self.tx_ring
    }

    /// The receiver's ring.
    pub fn rx_ring(&self) -> usize {
        self.rx_ring
    }

    /// The ring-pair multiset of the graph (a multi-ring edge couples
    /// every pair of its rings) — the partitioner's input.
    pub fn pair_edges(&self) -> Vec<(usize, usize)> {
        self.edges
            .iter()
            .flat_map(|e| {
                let r = &e.rings;
                (0..r.len()).flat_map(move |i| (i + 1..r.len()).map(move |j| (r[i], r[j])))
            })
            .collect()
    }

    /// Shortest bridge path `tx_ring → rx_ring`: breadth-first over the
    /// edges with neighbors explored in canonical (edge index, port
    /// position) order, so parallel redundant bridges deterministically
    /// tie-break to the **lowest edge index**. Each hop is
    /// `(edge, in_ring, out_ring)`. Panics if the receiver is
    /// unreachable — a generated graph is connected by construction.
    fn shortest_path(&self) -> Vec<(usize, usize, usize)> {
        // incident[r] = edges touching ring r, ascending.
        let mut incident: Vec<Vec<usize>> = vec![Vec::new(); self.n_rings];
        for (e, edge) in self.edges.iter().enumerate() {
            for &r in &edge.rings {
                assert!(r < self.n_rings, "edge on unknown ring {r}");
                if incident[r].last() != Some(&e) {
                    incident[r].push(e);
                }
            }
        }
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; self.n_rings]; // (edge, from)
        let mut seen = vec![false; self.n_rings];
        let mut frontier = std::collections::VecDeque::new();
        seen[self.tx_ring] = true;
        frontier.push_back(self.tx_ring);
        while let Some(r) = frontier.pop_front() {
            if r == self.rx_ring {
                break;
            }
            for &e in &incident[r] {
                for &next in &self.edges[e].rings {
                    if !seen[next] {
                        seen[next] = true;
                        prev[next] = Some((e, r));
                        frontier.push_back(next);
                    }
                }
            }
        }
        assert!(seen[self.rx_ring], "receiver ring is unreachable");
        let mut path = Vec::new();
        let mut at = self.rx_ring;
        while at != self.tx_ring {
            let (e, from) = prev[at].expect("path step");
            path.push((e, from, at));
            at = from;
        }
        path.reverse();
        path
    }
}

/// Flat per-(edge, port) table: one contiguous arena indexed through a
/// prefix-sum offset vector, instead of one heap `Vec` per edge. At
/// 10^4 edges the nested layout costs an allocation and a pointer chase
/// per edge; the arena is two allocations total and stays cache-dense
/// for the sequential passes the builder makes over it.
struct PortTable<T> {
    /// `off[e]..off[e + 1]` bounds edge `e`'s ports in `data`.
    off: Vec<u32>,
    data: Vec<T>,
}

impl<T: Copy> PortTable<T> {
    /// A table shaped like `g`'s edges, each entry filled by
    /// `fill(port_count, port)`.
    fn new(g: &RingGraph, fill: impl Fn(usize, usize) -> T) -> PortTable<T> {
        let total: usize = g.edges.iter().map(|e| e.rings.len()).sum();
        let mut off = Vec::with_capacity(g.edges.len() + 1);
        let mut data = Vec::with_capacity(total);
        off.push(0u32);
        for e in &g.edges {
            let n = e.rings.len();
            for p in 0..n {
                data.push(fill(n, p));
            }
            off.push(data.len() as u32);
        }
        PortTable { off, data }
    }

    fn get(&self, e: usize, p: usize) -> T {
        self.edge(e)[p]
    }

    fn set(&mut self, e: usize, p: usize, v: T) {
        let i = self.off[e] as usize + p;
        debug_assert!(i < self.off[e + 1] as usize, "port {p} out of range");
        self.data[i] = v;
    }

    /// Edge `e`'s ports as one contiguous slice.
    fn edge(&self, e: usize) -> &[T] {
        &self.data[self.off[e] as usize..self.off[e + 1] as usize]
    }
}

/// Per-ring station allocation. Reproduces the historical chain layout
/// exactly: ports where the ring sits at a non-zero edge position
/// ("B-like" — downstream entries) take stations `0, 1, …` in edge
/// order, hosts take the next free stations, and ports where the ring
/// is the edge's first ring ("A-like" — upstream exits) take stations
/// from the top down (`S−1, S−2, …`). Rings always have at least the
/// classic four stations.
struct StationPlan {
    /// stations[r] = ring r's station count.
    stations: Vec<u32>,
    /// Station of edge `e`'s port `p` on its ring, as a flat arena.
    port_station: PortTable<StationId>,
    /// Host stations on (tx_ring, rx_ring).
    tx_station: StationId,
    rx_station: StationId,
}

fn plan_stations(g: &RingGraph) -> StationPlan {
    let mut b_ports: Vec<Vec<(usize, usize)>> = vec![Vec::new(); g.n_rings];
    let mut a_ports: Vec<Vec<(usize, usize)>> = vec![Vec::new(); g.n_rings];
    for (e, edge) in g.edges.iter().enumerate() {
        for (p, &r) in edge.rings.iter().enumerate() {
            if p == 0 {
                a_ports[r].push((e, p));
            } else {
                b_ports[r].push((e, p));
            }
        }
    }
    let mut hosts: Vec<u32> = vec![0; g.n_rings];
    hosts[g.tx_ring] += 1;
    hosts[g.rx_ring] += 1;

    let mut stations = Vec::with_capacity(g.n_rings);
    let mut port_station = PortTable::new(g, |_, _| StationId(0));
    let mut tx_station = StationId(0);
    let mut rx_station = StationId(0);
    for r in 0..g.n_rings {
        let attachments = (b_ports[r].len() + a_ports[r].len()) as u32 + hosts[r];
        let s = attachments.max(4);
        stations.push(s);
        let mut low = 0u32;
        for &(e, p) in &b_ports[r] {
            port_station.set(e, p, StationId(low));
            low += 1;
        }
        if r == g.tx_ring {
            tx_station = StationId(low);
            low += 1;
        }
        if r == g.rx_ring {
            rx_station = StationId(low);
            low += 1;
        }
        let mut high = s;
        for &(e, p) in &a_ports[r] {
            high -= 1;
            port_station.set(e, p, StationId(high));
        }
        assert!(low <= high, "ring {r} ran out of stations");
    }
    StationPlan {
        stations,
        port_station,
        tx_station,
        rx_station,
    }
}

/// Builds the complete CTMS testbed topology for `graph`: one
/// transmitter host on the graph's TX ring streaming `sc`'s CTMS load
/// to a receiver host on the RX ring, every edge realized as a bridge
/// of `kind`, and every path bridge's forwarding table configured for
/// the (build-time) shortest path. Returns the topology plus the VCA
/// source/sink driver ids. For [`RingGraph::chain`] this reproduces the
/// historical `RingChainTestbed` construction bit for bit.
pub fn graph_topology(
    sc: &Scenario,
    kind: BridgeKind,
    graph: &RingGraph,
) -> (Topology, DriverId, DriverId) {
    let g = graph;
    let plan = plan_stations(g);
    let path = g.shortest_path();
    // First-hop entry: the station the transmitter addresses.
    let (first_edge, _, _) = path[0];
    let first_port = g.edges[first_edge]
        .rings
        .iter()
        .position(|&r| r == g.tx_ring)
        .expect("first hop leaves the tx ring");
    let stream_dst = plan.port_station.get(first_edge, first_port);

    let root = Pcg32::new(sc.seed, 0xD2);
    let mk_ring = |label: &str, stations: u32| {
        let mut ring = TokenRing::new(sc.calib.ring.clone(), root.derive(label));
        for _ in 0..stations {
            ring.add_station();
        }
        ring
    };

    let mut adapter = sc.calib.adapter;
    adapter.buffer_region = if sc.io_channel_memory {
        MemRegion::IoChannel
    } else {
        MemRegion::System
    };

    let tr_cfg = |station: StationId| TrDriverCfg {
        station,
        adapter,
        ctmsp_enabled: true,
        driver_priority: sc.driver_priority,
        precomputed_header: sc.precomputed_header,
        tx_copy_full: sc.tx_copy_full,
        rx_copy_to_mbufs: sc.rx_copy_to_mbufs,
        ctmsp_sink: None,
        ifq_cap: 50,
        header_cost: sc.calib.header_cost,
        precomp_header_cost: sc.calib.precomp_header_cost,
        ctmsp_check_cost: sc.calib.ctmsp_check_cost,
        copy_spl: 5,
        racy_critical_sections: sc.racy_driver,
    };
    let kcfg = KernConfig {
        calib: sc.calib.kern,
        ..KernConfig::default()
    };

    // Transmitter, streaming to the first path bridge's entry port.
    let mut ktx = Kernel::new(kcfg, root.derive("kern-tx"));
    let tr_tx = ktx.add_driver(
        Box::new(TrDriver::new(tr_cfg(plan.tx_station))),
        Some(ctms_unixkern::LINE_TR),
    );
    ktx.set_net_if(tr_tx);
    let vca_src = ktx.add_driver(
        Box::new(CtmsVcaSource::new(CtmsSourceCfg {
            period: sc.period,
            pkt_len: sc.pkt_len,
            dst: stream_dst,
            tr_driver: tr_tx,
            handler_code: sc.calib.vca_handler_code,
            copy_from_device: false,
            pio_per_byte: Dur::ZERO,
            ring_priority: if sc.ring_priority { 4 } else { 0 },
            irq_jitter: Dur::ZERO,
            autostart: true,
            require_setup: false,
        })),
        Some(ctms_unixkern::LINE_VCA),
    );

    // Receiver on the RX ring.
    let mut krx = Kernel::new(kcfg, root.derive("kern-rx"));
    let vca_sink = krx.add_driver(
        Box::new(CtmsVcaSink::new(CtmsSinkCfg {
            copy_to_device: sc.rx_copy_to_device,
            pio_per_byte: Dur::from_ns(800),
            copy_spl: 5,
        })),
        None,
    );
    let mut rx_cfg = tr_cfg(plan.rx_station);
    rx_cfg.ctmsp_sink = Some(vca_sink);
    let tr_rx = krx.add_driver(
        Box::new(TrDriver::new(rx_cfg)),
        Some(ctms_unixkern::LINE_TR),
    );
    krx.set_net_if(tr_rx);

    // Per-edge forwarding configuration, held in flat arenas (not one
    // `Vec` per edge). Defaults: rotate to the next port (the classic
    // two-port A↔B swap), next hop station 0 — only path edges ever see
    // CTMSP traffic, so only they are routed.
    let mut forward = PortTable::new(g, |n, p| ((p + 1) % n) as u8);
    let mut dst = PortTable::new(g, |_, _| StationId(0));
    let mut owner: Vec<usize> = vec![0; g.edges.len()];
    for (hop, &(e, in_ring, out_ring)) in path.iter().enumerate() {
        let in_pos = g.edges[e].rings.iter().position(|&r| r == in_ring).unwrap();
        let out_pos = g.edges[e]
            .rings
            .iter()
            .position(|&r| r == out_ring)
            .unwrap();
        // Forward direction: toward the next hop's entry port, or the
        // receiver on the last hop.
        forward.set(e, in_pos, out_pos as u8);
        dst.set(
            e,
            out_pos,
            match path.get(hop + 1) {
                Some(&(ne, nin, _)) => {
                    let np = g.edges[ne].rings.iter().position(|&r| r == nin).unwrap();
                    plan.port_station.get(ne, np)
                }
                None => plan.rx_station,
            },
        );
        // Reverse direction: back toward the previous hop's exit port,
        // or the transmitter on the first hop.
        forward.set(e, out_pos, in_pos as u8);
        dst.set(
            e,
            in_pos,
            match hop.checked_sub(1) {
                Some(prev) => {
                    let (pe, _, pout) = path[prev];
                    let pp = g.edges[pe].rings.iter().position(|&r| r == pout).unwrap();
                    plan.port_station.get(pe, pp)
                }
                None => plan.tx_station,
            },
        );
        // Ring→bridge delivery is an ordinary same-shard command, so
        // the bridge must co-shard with the ring that feeds it.
        owner[e] = in_pos;
    }

    let mut topo = Topology::new(sc.cascade_limit);
    let rings: Vec<usize> = (0..g.n_rings)
        .map(|i| {
            // The first two rings keep the historical dual-ring RNG
            // labels so existing seeds reproduce bit-identically.
            let label = match i {
                0 => "ring-a".to_string(),
                1 => "ring-b".to_string(),
                _ => format!("ring-{i}"),
            };
            topo.ring(mk_ring(&label, plan.stations[i]))
        })
        .collect();
    for (e, edge) in g.edges.iter().enumerate() {
        let ports: Vec<BridgePort> = (0..edge.rings.len())
            .map(|p| BridgePort {
                station: plan.port_station.get(e, p),
                ctmsp_dst: dst.get(e, p),
            })
            .collect();
        topo.bridge_multi(
            edge.rings.iter().map(|&r| rings[r]).collect(),
            owner[e],
            Bridge::multi(kind, 16, ports, forward.edge(e).to_vec()),
        );
    }
    topo.host(
        rings[g.tx_ring],
        plan.tx_station,
        Host::new(Machine::new(MachineConfig::default()), ktx),
    );
    topo.host(
        rings[g.rx_ring],
        plan.rx_station,
        Host::new(Machine::new(MachineConfig::default()), krx),
    );

    (topo, vca_src, vca_sink)
}

/// Deterministic greedy edge-cut-minimizing graph partition: assigns
/// each of `n_rings` rings to one of `shards` balanced parts, growing
/// each part from the lowest unassigned ring by repeatedly absorbing
/// the unassigned ring with the strongest (highest edge multiplicity)
/// coupling to the part — ties to the lowest ring index.
///
/// Properties (pinned by the enumerated-case tests below):
///
/// * every ring is assigned to exactly one shard, every shard gets at
///   least one ring (`shards ≤ n_rings` required);
/// * the output depends only on the edge *multiset* — the edge list is
///   canonicalized (endpoints sorted, then the list sorted) first, so
///   bridge registration order cannot change the partition;
/// * on a chain it degenerates to the classic contiguous blocks.
pub fn partition_rings(n_rings: usize, edges: &[(usize, usize)], shards: usize) -> Vec<usize> {
    assert!(n_rings > 0, "no rings to partition");
    assert!(
        (1..=n_rings).contains(&shards),
        "need 1..=n_rings shards, got {shards} for {n_rings} rings"
    );
    // Canonical edge multiset → weighted adjacency, invariant under
    // registration order.
    let mut canon: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(a, b)| {
            assert!(a < n_rings && b < n_rings, "edge on unknown ring");
            assert_ne!(a, b, "self-edge");
            (a.min(b), a.max(b))
        })
        .collect();
    canon.sort_unstable();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_rings]; // (neighbor, weight)
    let mut i = 0;
    while i < canon.len() {
        let (a, b) = canon[i];
        let mut w = 0;
        while i < canon.len() && canon[i] == (a, b) {
            w += 1;
            i += 1;
        }
        adj[a].push((b, w));
        adj[b].push((a, w));
    }

    let mut assignment = vec![usize::MAX; n_rings];
    // weight[r] = total multiplicity of edges from r into the part
    // currently being grown. Candidates live in a lazy max-heap keyed
    // (weight, Reverse(ring)): stale entries (superseded weight, or the
    // ring was assigned meanwhile) are skipped on pop, so an absorption
    // costs O(log n) instead of a full O(n) ring scan — the difference
    // between milliseconds and minutes when partitioning 10^4 rings.
    // The pick order is identical to the scan it replaces: highest
    // weight, ties to the lowest ring index, and a part with no
    // positive-weight frontier falls back to the lowest unassigned
    // ring (weights only grow within a shard, so the newest entry for
    // a ring is the one that pops first).
    let mut weight = vec![0usize; n_rings];
    let mut heap: std::collections::BinaryHeap<(usize, std::cmp::Reverse<usize>)> =
        std::collections::BinaryHeap::new();
    let mut touched: Vec<usize> = Vec::new();
    // Lowest unassigned ring; monotone, since rings are never unassigned.
    let mut cursor = 0;
    let mut remaining = n_rings;
    for shard in 0..shards {
        let quota = remaining.div_ceil(shards - shard);
        for r in touched.drain(..) {
            weight[r] = 0;
        }
        heap.clear();
        let mut size = 0;
        while size < quota {
            let pick = if size == 0 {
                // Seed: the lowest unassigned ring.
                while assignment[cursor] != usize::MAX {
                    cursor += 1;
                }
                cursor
            } else {
                loop {
                    match heap.pop() {
                        Some((w, std::cmp::Reverse(r))) => {
                            if assignment[r] == usize::MAX && weight[r] == w {
                                break r;
                            }
                        }
                        None => {
                            // Disconnected remainder: lowest unassigned.
                            while assignment[cursor] != usize::MAX {
                                cursor += 1;
                            }
                            break cursor;
                        }
                    }
                }
            };
            assignment[pick] = shard;
            size += 1;
            remaining -= 1;
            for &(n, w) in &adj[pick] {
                if assignment[n] == usize::MAX {
                    if weight[n] == 0 {
                        touched.push(n);
                    }
                    weight[n] += w;
                    heap.push((weight[n], std::cmp::Reverse(n)));
                }
            }
        }
    }
    debug_assert!(assignment.iter().all(|&s| s < shards));
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_partition_degenerates_to_contiguous_blocks() {
        let g = RingGraph::chain(16);
        let part = partition_rings(16, &g.pair_edges(), 4);
        let expect: Vec<usize> = (0..16).map(|i| i / 4).collect();
        assert_eq!(part, expect);
        // Six rings across four shards: every shard non-empty.
        let g6 = RingGraph::chain(6);
        let part6 = partition_rings(6, &g6.pair_edges(), 4);
        assert_eq!(part6, vec![0, 0, 1, 1, 2, 3]);
    }

    #[test]
    fn heap_partitioner_keeps_contiguous_blocks_at_scale() {
        // The lazy-heap frontier must reproduce the scan-based picks
        // exactly; on a chain that means contiguous quota-sized blocks
        // at any size. 100 rings / 7 shards has uneven quotas
        // (15,15,14,14,14,14,14).
        let g = RingGraph::chain(100);
        let part = partition_rings(100, &g.pair_edges(), 7);
        let mut expect = Vec::new();
        for (shard, quota) in [15, 15, 14, 14, 14, 14, 14].into_iter().enumerate() {
            expect.extend(std::iter::repeat_n(shard, quota));
        }
        assert_eq!(part, expect);
    }

    #[test]
    fn every_ring_lands_in_exactly_one_shard() {
        for (g, shards) in [
            (RingGraph::chain(9), 3),
            (RingGraph::tree(13, 3), 4),
            (RingGraph::mesh(10, 7), 3),
            (RingGraph::fddi(8), 4),
        ] {
            let part = partition_rings(g.ring_count(), &g.pair_edges(), shards);
            assert_eq!(part.len(), g.ring_count());
            for s in 0..shards {
                assert!(part.contains(&s), "shard {s} empty for {g:?}");
            }
            assert!(part.iter().all(|&p| p < shards));
        }
    }

    #[test]
    fn partition_is_invariant_under_edge_registration_order() {
        // Enumerated permutations, no RNG — the house style. The
        // partitioner must see a canonical edge multiset regardless of
        // the order bridges were registered in.
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (0, 3), (1, 3)];
        let baseline = partition_rings(4, &edges, 2);
        let mut perm: Vec<(usize, usize)> = edges.to_vec();
        crate::graph::tests::for_each_permutation(&mut perm, &mut |p| {
            assert_eq!(partition_rings(4, p, 2), baseline, "order {p:?}");
        });
        // Endpoint orientation is also canonicalized.
        let flipped: Vec<(usize, usize)> = edges.iter().map(|&(a, b)| (b, a)).collect();
        assert_eq!(partition_rings(4, &flipped, 2), baseline);
    }

    /// Heap's algorithm, same shape as the shard.rs test helper.
    fn for_each_permutation<T: Clone>(items: &mut [T], f: &mut impl FnMut(&[T])) {
        let n = items.len();
        if n <= 1 {
            f(items);
            return;
        }
        fn heaps<T: Clone>(k: usize, items: &mut [T], f: &mut impl FnMut(&[T])) {
            if k == 1 {
                f(items);
                return;
            }
            for i in 0..k {
                heaps(k - 1, items, f);
                if k.is_multiple_of(2) {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        heaps(n, items, f);
    }

    #[test]
    fn multi_ring_edges_couple_all_their_rings() {
        // An FDDI concentrator edge [leaf, 0, 1] contributes all three
        // pairs; the partitioner keeps the backbone pair together when
        // quotas allow.
        let g = RingGraph::fddi(6);
        let pairs = g.pair_edges();
        assert!(pairs.contains(&(2, 0)) && pairs.contains(&(2, 1)) && pairs.contains(&(0, 1)));
        let part = partition_rings(6, &pairs, 2);
        assert_eq!(part[0], part[1], "backbone rings stay together");
    }

    #[test]
    fn shortest_path_tie_breaks_to_the_lowest_edge_index() {
        // Two parallel bridges between rings 0 and 1: the path must use
        // edge 0, deterministically.
        let g = RingGraph {
            n_rings: 2,
            edges: vec![GraphEdge::pair(0, 1), GraphEdge::pair(0, 1)],
            tx_ring: 0,
            rx_ring: 1,
        };
        assert_eq!(g.shortest_path(), vec![(0, 0, 1)]);
        // In the generated mesh the redundant bridge is always edge
        // n − 1 (right after the chain edges); chords may shorten the
        // path, but the parallel duplicate never carries it.
        let m = RingGraph::mesh(8, 3);
        let path = m.shortest_path();
        assert!(
            path.iter().all(|&(e, _, _)| e != 7),
            "mesh path avoids the redundant parallel bridge: {path:?}"
        );
    }

    #[test]
    fn generated_shapes_are_well_formed() {
        for g in [
            RingGraph::chain(5),
            RingGraph::tree(9, 2),
            RingGraph::mesh(9, 11),
            RingGraph::fddi(7),
        ] {
            let path = g.shortest_path();
            assert!(!path.is_empty());
            assert_eq!(path[0].1, g.tx_ring());
            assert_eq!(path.last().unwrap().2, g.rx_ring());
            // Consecutive hops chain up.
            for w in path.windows(2) {
                assert_eq!(w[0].2, w[1].1);
            }
            let plan = plan_stations(&g);
            // No station double-booked on any ring.
            let mut used: Vec<Vec<u32>> = vec![Vec::new(); g.ring_count()];
            for (e, edge) in g.edges.iter().enumerate() {
                for (p, &r) in edge.rings.iter().enumerate() {
                    used[r].push(plan.port_station.get(e, p).0);
                }
            }
            used[g.tx_ring()].push(plan.tx_station.0);
            used[g.rx_ring()].push(plan.rx_station.0);
            for (r, mut stations) in used.into_iter().enumerate() {
                let n = stations.len();
                stations.sort_unstable();
                stations.dedup();
                assert_eq!(stations.len(), n, "ring {r} double-booked a station");
                assert!(
                    stations.iter().all(|&s| s < plan.stations[r]),
                    "ring {r} station out of range"
                );
            }
        }
    }

    #[test]
    fn chain_description_matches_the_historical_layout() {
        let g = RingGraph::chain(4);
        let plan = plan_stations(&g);
        assert!(plan.stations.iter().all(|&s| s == 4));
        assert_eq!(plan.tx_station, StationId(0));
        assert_eq!(plan.rx_station, StationId(1));
        for (e, _) in g.edges.iter().enumerate() {
            assert_eq!(plan.port_station.get(e, 0), StationId(3), "A port");
            assert_eq!(plan.port_station.get(e, 1), StationId(0), "B port");
        }
    }
}
