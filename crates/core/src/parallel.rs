//! Sharded (conservative-parallel) execution of a built [`Topology`]:
//! the [`ShardedBus`] returned by [`crate::Topology::build_sharded`].
//!
//! A sharded bus runs the same simulation as [`Bus`] — same nodes, same
//! wiring, same seeds — but partitions the node set by ring across a
//! [`ctms_sim::ShardedHarness`], which steps the shards in parallel on
//! the persistent sweep pool inside conservative time windows bounded
//! by bridge forwarding latency. By construction the results (event
//! counts, measurements, telemetry JSON) are bit-identical to the
//! single-threaded bus; only the wall clock changes.
//!
//! Topologies that cannot be sharded soundly (single ring, purge
//! subscriptions, phantom broadcast traffic, non-default scheduler
//! mode) transparently fall back to the [`ShardedBus::Single`] variant,
//! which wraps a plain [`Bus`] — callers see one type either way.

use crate::topology::{
    decode_router_state, persist_router_parts, Bus, CtmsRouter, Measurements, Node, RouterCkpt,
};
use ctms_router::Bridge;
use ctms_sim::{CascadeError, NodeId, Registry, ShardStats, ShardedHarness, SimTime, WindowMode};
use ctms_tokenring::TokenRing;
use ctms_unixkern::{Host, MeasurePoint};

/// A built topology running on the conservative-parallel harness, or —
/// when the partition would be unsound or pointless — on the plain
/// single-threaded bus. See [`crate::Topology::build_sharded`].
// One of these exists per testbed (never in collections), so the size
// spread between the variants costs nothing.
#[allow(clippy::large_enum_variant)]
pub enum ShardedBus {
    /// Fallback: the ordinary single-threaded bus.
    Single(Bus),
    /// The ring-partitioned parallel bus.
    Parallel(ParallelBus),
}

/// The parallel variant of [`Bus`]: a [`ShardedHarness`] plus typed
/// access to its nodes, mirroring the [`Bus`] accessors.
pub struct ParallelBus {
    pub(crate) h: ShardedHarness<Node, CtmsRouter>,
    pub(crate) ring_nodes: Vec<NodeId>,
    pub(crate) bridge_nodes: Vec<NodeId>,
    pub(crate) host_nodes: Vec<NodeId>,
}

impl ShardedBus {
    /// Number of shards actually running (1 for the fallback).
    pub fn shard_count(&self) -> usize {
        match self {
            ShardedBus::Single(_) => 1,
            ShardedBus::Parallel(p) => p.h.shard_count(),
        }
    }

    /// True when this bus fell back to the single-threaded harness.
    pub fn is_single(&self) -> bool {
        matches!(self, ShardedBus::Single(_))
    }

    /// Mutable access to the single-threaded fallback bus, if this is
    /// one — the shape steering mutations require.
    pub fn as_single_mut(&mut self) -> Option<&mut Bus> {
        match self {
            ShardedBus::Single(b) => Some(b),
            ShardedBus::Parallel(_) => None,
        }
    }

    /// Caps how many pool workers a window dispatch invites. No-op on
    /// the single-threaded fallback.
    pub fn set_threads(&mut self, threads: usize) {
        if let ShardedBus::Parallel(p) = self {
            p.h.set_threads(threads);
        }
    }

    /// Selects the synchronization protocol (adaptive windows by
    /// default; the fixed-lookahead baseline for ablation). No-op on
    /// the single-threaded fallback, which has no windows at all.
    pub fn set_window_mode(&mut self, mode: WindowMode) {
        if let ShardedBus::Parallel(p) = self {
            p.h.set_window_mode(mode);
        }
    }

    /// Selects the execution discipline: conservative (default) or the
    /// optimistic Time-Warp-style engine, which speculates past the
    /// conservative bounds and rolls back on cross-shard stragglers.
    /// Results are bit-identical either way — only wall clock and the
    /// `sched.*` exec counters differ. No-op on the single-threaded
    /// fallback, which has nothing to speculate against.
    pub fn set_exec_mode(&mut self, exec: ctms_sim::ExecMode) {
        if let ShardedBus::Parallel(p) = self {
            p.h.set_exec_mode(exec);
        }
    }

    /// Events a shard executes between incremental snapshots in
    /// optimistic mode (trade rollback replay distance against
    /// snapshot overhead). No-op on the fallback.
    pub fn set_snapshot_cadence(&mut self, cadence: u64) {
        if let ShardedBus::Parallel(p) = self {
            p.h.set_snapshot_cadence(cadence);
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        match self {
            ShardedBus::Single(b) => b.now(),
            ShardedBus::Parallel(p) => p.h.now(),
        }
    }

    /// Runs until `horizon`; panics on cascade overflow.
    pub fn run_until(&mut self, horizon: SimTime) {
        match self {
            ShardedBus::Single(b) => b.run_until(horizon),
            ShardedBus::Parallel(p) => p.h.run_until(horizon),
        }
    }

    /// Runs until `horizon`, reporting cascade overflow as an error.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError> {
        match self {
            ShardedBus::Single(b) => b.try_run_until(horizon),
            ShardedBus::Parallel(p) => p.h.try_run_until(horizon),
        }
    }

    /// Component activations serviced so far (equal to the
    /// single-threaded count for the same simulation, by construction).
    pub fn events(&self) -> u64 {
        match self {
            ShardedBus::Single(b) => b.events(),
            ShardedBus::Parallel(p) => p.h.events(),
        }
    }

    /// The cascade failure that poisoned this bus, if any.
    pub fn failure(&self) -> Option<CascadeError> {
        match self {
            ShardedBus::Single(b) => b.failure(),
            ShardedBus::Parallel(p) => p.h.failure(),
        }
    }

    /// Number of rings.
    pub fn ring_count(&self) -> usize {
        match self {
            ShardedBus::Single(b) => b.ring_count(),
            ShardedBus::Parallel(p) => p.ring_nodes.len(),
        }
    }

    /// Ring `k`.
    pub fn ring(&self, k: usize) -> &TokenRing {
        match self {
            ShardedBus::Single(b) => b.ring(k),
            ShardedBus::Parallel(p) => match p.h.node(p.ring_nodes[k]) {
                Node::Ring(r, _) => r,
                _ => unreachable!("ring node"),
            },
        }
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        match self {
            ShardedBus::Single(b) => b.host_count(),
            ShardedBus::Parallel(p) => p.host_nodes.len(),
        }
    }

    /// Host `k` (dense index from [`crate::Topology::host`]).
    pub fn host(&self, k: usize) -> &Host {
        match self {
            ShardedBus::Single(b) => b.host(k),
            ShardedBus::Parallel(p) => match p.h.node(p.host_nodes[k]) {
                Node::Host(host, _) => host,
                _ => unreachable!("host node"),
            },
        }
    }

    /// Mutable host `k`; its deadline is rescheduled before the next step.
    pub fn host_mut(&mut self, k: usize) -> &mut Host {
        match self {
            ShardedBus::Single(b) => b.host_mut(k),
            ShardedBus::Parallel(p) => match p.h.node_mut(p.host_nodes[k]) {
                Node::Host(host, _) => host,
                _ => unreachable!("host node"),
            },
        }
    }

    /// Number of bridges.
    pub fn bridge_count(&self) -> usize {
        match self {
            ShardedBus::Single(b) => b.bridge_count(),
            ShardedBus::Parallel(p) => p.bridge_nodes.len(),
        }
    }

    /// Bridge `k`.
    pub fn bridge(&self, k: usize) -> &Bridge {
        match self {
            ShardedBus::Single(b) => b.bridge(k),
            ShardedBus::Parallel(p) => match p.h.node(p.bridge_nodes[k]) {
                Node::Bridge(b, _) => b,
                _ => unreachable!("bridge node"),
            },
        }
    }

    /// Delivers a ring command to ring `k` at the current instant.
    /// Injection is a coordinator-side (sequential) operation on both
    /// variants, so its fallout routes exactly as single-threaded.
    pub fn inject_ring(
        &mut self,
        k: usize,
        cmd: ctms_tokenring::RingCmd,
    ) -> Result<(), CascadeError> {
        match self {
            ShardedBus::Single(b) => b.inject_ring(k, cmd),
            ShardedBus::Parallel(_) => {
                panic!("inject_ring is not supported on a parallel bus; build with build()")
            }
        }
    }

    /// The recorded ground truth, one part per shard (a single part for
    /// the fallback). Aggregate counters are sums over the parts; truth
    /// logs and presentations live in exactly one part each.
    pub fn measure_parts(&self) -> Vec<&Measurements> {
        match self {
            ShardedBus::Single(b) => vec![b.measurements()],
            ShardedBus::Parallel(p) => (0..p.h.shard_count())
                .map(|k| p.h.shard_router(k).measurements())
                .collect(),
        }
    }

    /// Per-host trace log for one measurement point, if recorded. On the
    /// parallel bus the log lives in the host's owner shard.
    pub fn truth_log(&self, host: usize, point: MeasurePoint) -> Option<&ctms_sim::EdgeLog> {
        match self {
            ShardedBus::Single(b) => b.measurements().truth_log(host, point),
            ShardedBus::Parallel(p) => {
                let shard = p.h.shard_of(p.host_nodes[host]);
                p.h.shard_router(shard)
                    .measurements()
                    .truth_log(host, point)
            }
        }
    }

    /// Collects and serializes the metric tree as canonical JSON —
    /// byte-identical to the single-threaded bus for the same topology,
    /// seeds, and horizon.
    pub fn telemetry_json(&mut self) -> String {
        match self {
            ShardedBus::Single(b) => b.telemetry_json(),
            ShardedBus::Parallel(p) => p.h.telemetry_json(),
        }
    }

    /// Execution-layer counters (windows, sync instants, per-shard
    /// mailbox traffic) — kept out of the main registry so telemetry
    /// stays byte-identical to single-threaded runs. `None` for the
    /// fallback, which has no sharded execution layer.
    pub fn exec_telemetry(&self) -> Option<Registry> {
        match self {
            ShardedBus::Single(_) => None,
            ShardedBus::Parallel(p) => Some(p.h.exec_telemetry()),
        }
    }

    /// Execution counters for shard `k` (zeros for the fallback's only
    /// shard).
    pub fn shard_stats(&self, k: usize) -> ShardStats {
        match self {
            ShardedBus::Single(_) => ShardStats::default(),
            ShardedBus::Parallel(p) => p.h.shard_stats(k),
        }
    }

    /// Appends all dynamic state to `enc` in the shard-agnostic
    /// checkpoint format shared with [`Bus`]. Must be called at a
    /// sync-instant boundary (after `try_run_until` returned). In
    /// optimistic mode this is automatically a drained-to-GVT boundary:
    /// `run_until` never returns with speculation in flight — every
    /// round promotes the committed frontier and the final round
    /// commits or rolls back all speculative segments — so steering and
    /// checkpointing between runs see only committed state (the
    /// harness debug-asserts this).
    pub(crate) fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        match self {
            ShardedBus::Single(b) => b.persist_state(enc),
            ShardedBus::Parallel(p) => p.persist_state(enc),
        }
    }

    /// Applies state persisted by any bus flavor — the snapshot's shard
    /// count and this bus's need not match.
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut ctms_sim::Dec<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        match self {
            ShardedBus::Single(b) => b.restore_state(dec),
            ShardedBus::Parallel(p) => p.restore_state(dec),
        }
    }

    /// Streaming counterpart of [`ShardedBus::persist_state`]: the
    /// chunk payloads concatenate to exactly the monolithic bytes.
    pub(crate) fn persist_state_chunked(
        &self,
        w: &mut ctms_sim::ChunkedWriter<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        match self {
            ShardedBus::Single(b) => b.persist_state_chunked(w),
            ShardedBus::Parallel(p) => p.persist_state_chunked(w),
        }
    }

    /// Streaming counterpart of [`ShardedBus::restore_state`].
    pub(crate) fn restore_state_chunked(
        &mut self,
        prefix: &mut ctms_sim::Dec<'_>,
        r: &mut ctms_sim::ChunkedReader<'_>,
        buf: &mut Vec<u8>,
    ) -> Result<(), ctms_sim::PersistError> {
        match self {
            ShardedBus::Single(b) => b.restore_state_chunked(prefix, r, buf),
            ShardedBus::Parallel(p) => p.restore_state_chunked(prefix, r, buf),
        }
    }

    /// The canonical graph-shape signature checkpoints embed. Every
    /// shard's router holds the complete slot table, so shard 0 signs
    /// for the whole topology and the bytes match the single-threaded
    /// build of the same graph.
    pub(crate) fn topology_signature(&self) -> Vec<u8> {
        match self {
            ShardedBus::Single(b) => b.topology_signature(),
            ShardedBus::Parallel(p) => p.h.shard_router(0).topology_signature(),
        }
    }
}

impl ParallelBus {
    /// See [`ShardedBus::persist_state`]: same byte stream as the
    /// single-threaded bus — the harness walks nodes in global
    /// registration order, and the per-shard router parts are merged
    /// into one canonical stream.
    pub(crate) fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        self.h.persist_state(enc);
        let parts: Vec<&CtmsRouter> = (0..self.h.shard_count())
            .map(|k| self.h.shard_router(k))
            .collect();
        persist_router_parts(&parts, enc);
    }

    /// See [`ShardedBus::restore_state`]: harness state lands on each
    /// node's owner shard; router state is re-distributed — each TAP to
    /// its ring's owner part, each host's truth logs to the host's owner
    /// part, flat event lists and the bridge-drop count to shard 0
    /// (merged telemetry reads only counts and sorted times, so the
    /// placement of historical entries is unobservable).
    pub(crate) fn restore_state(
        &mut self,
        dec: &mut ctms_sim::Dec<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        self.h.restore_state(dec)?;
        let ckpt = decode_router_state(dec)?;
        self.apply_router_ckpt(ckpt)
    }

    /// Streaming counterpart of [`ParallelBus::persist_state`]: same
    /// concatenated bytes, bounded buffering.
    pub(crate) fn persist_state_chunked(
        &self,
        w: &mut ctms_sim::ChunkedWriter<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        self.h.persist_state_chunked(w)?;
        let parts: Vec<&CtmsRouter> = (0..self.h.shard_count())
            .map(|k| self.h.shard_router(k))
            .collect();
        persist_router_parts(&parts, w.enc());
        w.flush_chunk()
    }

    /// Streaming counterpart of [`ParallelBus::restore_state`].
    pub(crate) fn restore_state_chunked(
        &mut self,
        prefix: &mut ctms_sim::Dec<'_>,
        r: &mut ctms_sim::ChunkedReader<'_>,
        buf: &mut Vec<u8>,
    ) -> Result<(), ctms_sim::PersistError> {
        self.h.restore_state_chunked(prefix, r, buf)?;
        if !r.next_chunk_into(buf)? {
            // Stream ended before the router chunk.
            return Err(ctms_sim::PersistError::UnexpectedEof);
        }
        let mut dec = ctms_sim::Dec::new(buf);
        let ckpt = decode_router_state(&mut dec)?;
        dec.finish()?;
        self.apply_router_ckpt(ckpt)
    }

    /// Re-distributes a decoded router snapshot across the shard parts
    /// — shared by the monolithic and streamed restore paths.
    fn apply_router_ckpt(&mut self, ckpt: RouterCkpt) -> Result<(), ctms_sim::PersistError> {
        let shards = self.h.shard_count();
        for k in 0..shards {
            self.h.shard_router_mut(k).clear_measurements();
        }

        let ring_slots = self.h.shard_router(0).ring_slot_indices();
        if ring_slots.len() != ckpt.taps.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "checkpoint has {} taps, topology has {} rings",
                ckpt.taps.len(),
                ring_slots.len()
            )));
        }
        for (slot, tap) in ring_slots.into_iter().zip(ckpt.taps) {
            let owner = (0..shards)
                .find(|&k| self.h.shard_router(k).owns_tap(slot))
                .expect("every ring slot has an owner shard");
            self.h.shard_router_mut(owner).set_tap(slot, tap);
        }

        if self.host_nodes.len() != ckpt.truth.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "checkpoint has {} truth maps, topology has {} hosts",
                ckpt.truth.len(),
                self.host_nodes.len()
            )));
        }
        for (host, entries) in ckpt.truth.into_iter().enumerate() {
            let owner = self.h.shard_of(self.host_nodes[host]);
            let r = self.h.shard_router_mut(owner);
            for (point, log) in entries {
                r.insert_truth(host, point, log);
            }
        }

        self.h.shard_router_mut(0).apply_flat(
            ckpt.drops,
            ckpt.presented,
            ckpt.sock_delivered,
            ckpt.purge_starts,
            ckpt.lost_to_purge,
            ckpt.bridge_drops,
        );
        Ok(())
    }
}
