//! The dual-ring testbed: a CTMS stream crossing two Token Rings through
//! a router (experiment E12, the paper's footnote-5 extension).
//!
//! Topology:
//!
//! ```text
//!   ring A: [0] tx host   [1] idle  [2] idle  [3] bridge port A
//!   ring B: [0] bridge port B  [1] rx host  [2] idle  [3] idle
//! ```
//!
//! The transmitter addresses the bridge's ring-A station; the bridge
//! re-addresses CTMSP frames to the receiver on ring B. Both rings carry
//! their own MAC background; measurement points work exactly as on the
//! single-ring testbed (tags survive the hop).

use crate::scenario::Scenario;
use ctms_ctmsp::{TrDriver, TrDriverCfg};
use ctms_devices::{CtmsSinkCfg, CtmsSourceCfg, CtmsVcaSink, CtmsVcaSource};
use ctms_measure::MeasurementSet;
use ctms_router::{Bridge, BridgeCfg, BridgeCmd, BridgeKind, BridgeOut, RingSide};
use ctms_rtpc::{Machine, MachineConfig, MemRegion};
use ctms_sim::{CascadeGuard, Component, Dur, EdgeLog, Pcg32, SimTime};
use ctms_tokenring::{RingCmd, RingOut, StationId, TokenRing};
use ctms_unixkern::{
    DriverId, Host, HostCmd, HostOut, KernConfig, Kernel, MeasurePoint,
};
use std::collections::HashMap;

/// The dual-ring testbed. See module docs.
pub struct DualRingTestbed {
    /// The transmitter's ring.
    pub ring_a: TokenRing,
    /// The receiver's ring.
    pub ring_b: TokenRing,
    /// The forwarding engine.
    pub bridge: Bridge,
    /// Host 0 = transmitter (ring A station 0), host 1 = receiver
    /// (ring B station 1).
    pub hosts: Vec<Host>,
    vca_src: DriverId,
    vca_sink: DriverId,
    now: SimTime,
    guard: CascadeGuard,
    truth: Vec<HashMap<MeasurePoint, EdgeLog>>,
    presented: Vec<(SimTime, u64, u32)>,
    drops: u64,
}

enum Evt {
    RingA(RingOut),
    RingB(RingOut),
    Host(usize, HostOut),
    Bridge(BridgeOut),
}

const BRIDGE_A: StationId = StationId(3);
const BRIDGE_B: StationId = StationId(0);
const TX_A: StationId = StationId(0);
const RX_B: StationId = StationId(1);

impl DualRingTestbed {
    /// Builds the dual-ring testbed with the given forwarding engine.
    /// Host-side configuration (packet size, period, copy flags) comes
    /// from the scenario; both rings are private four-station rings.
    pub fn new(sc: &Scenario, kind: BridgeKind) -> DualRingTestbed {
        let root = Pcg32::new(sc.seed, 0xD2);
        let mk_ring = |label: &str| {
            let mut ring = TokenRing::new(sc.calib.ring.clone(), root.derive(label));
            for _ in 0..4 {
                ring.add_station();
            }
            ring
        };
        let ring_a = mk_ring("ring-a");
        let ring_b = mk_ring("ring-b");

        let mut adapter = sc.calib.adapter;
        adapter.buffer_region = if sc.io_channel_memory {
            MemRegion::IoChannel
        } else {
            MemRegion::System
        };

        let tr_cfg = |station: StationId| TrDriverCfg {
            station,
            adapter,
            ctmsp_enabled: true,
            driver_priority: sc.driver_priority,
            precomputed_header: sc.precomputed_header,
            tx_copy_full: sc.tx_copy_full,
            rx_copy_to_mbufs: sc.rx_copy_to_mbufs,
            ctmsp_sink: None,
            ifq_cap: 50,
            header_cost: sc.calib.header_cost,
            precomp_header_cost: sc.calib.precomp_header_cost,
            ctmsp_check_cost: sc.calib.ctmsp_check_cost,
            copy_spl: 5,
            racy_critical_sections: sc.racy_driver,
        };
        let kcfg = KernConfig {
            calib: sc.calib.kern,
            ..KernConfig::default()
        };

        // Transmitter on ring A, streaming to the bridge's A-side port.
        let mut ktx = Kernel::new(kcfg, root.derive("kern-tx"));
        let tr_tx = ktx.add_driver(
            Box::new(TrDriver::new(tr_cfg(TX_A))),
            Some(ctms_unixkern::LINE_TR),
        );
        ktx.set_net_if(tr_tx);
        let vca_src = ktx.add_driver(
            Box::new(CtmsVcaSource::new(CtmsSourceCfg {
                period: sc.period,
                pkt_len: sc.pkt_len,
                dst: BRIDGE_A,
                tr_driver: tr_tx,
                handler_code: sc.calib.vca_handler_code,
                copy_from_device: false,
                pio_per_byte: Dur::ZERO,
                ring_priority: if sc.ring_priority { 4 } else { 0 },
                irq_jitter: Dur::ZERO,
                autostart: true,
                require_setup: false,
            })),
            Some(ctms_unixkern::LINE_VCA),
        );

        // Receiver on ring B.
        let mut krx = Kernel::new(kcfg, root.derive("kern-rx"));
        let vca_sink = krx.add_driver(
            Box::new(CtmsVcaSink::new(CtmsSinkCfg {
                copy_to_device: sc.rx_copy_to_device,
                pio_per_byte: Dur::from_ns(800),
                copy_spl: 5,
            })),
            None,
        );
        let mut rx_cfg = tr_cfg(RX_B);
        rx_cfg.ctmsp_sink = Some(vca_sink);
        let tr_rx = krx.add_driver(
            Box::new(TrDriver::new(rx_cfg)),
            Some(ctms_unixkern::LINE_TR),
        );
        krx.set_net_if(tr_rx);

        let bridge = Bridge::new(BridgeCfg {
            station_a: BRIDGE_A,
            station_b: BRIDGE_B,
            ctmsp_dst_b: RX_B,
            ctmsp_dst_a: TX_A,
            kind,
            queue_cap: 16,
        });

        DualRingTestbed {
            ring_a,
            ring_b,
            bridge,
            hosts: vec![
                Host::new(Machine::new(MachineConfig::default()), ktx),
                Host::new(Machine::new(MachineConfig::default()), krx),
            ],
            vca_src,
            vca_sink,
            now: SimTime::ZERO,
            guard: CascadeGuard::default(),
            truth: vec![HashMap::new(), HashMap::new()],
            presented: Vec::new(),
            drops: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        loop {
            let deadlines = [
                self.ring_a.next_deadline(),
                self.ring_b.next_deadline(),
                self.bridge.next_deadline(),
                self.hosts[0].next_deadline(),
                self.hosts[1].next_deadline(),
            ];
            let Some(t) = ctms_sim::earliest(deadlines) else {
                break;
            };
            if t > horizon {
                break;
            }
            self.now = t;
            let mut queue: Vec<Evt> = Vec::new();
            let mut out_a = Vec::new();
            self.ring_a.advance(t, &mut out_a);
            queue.extend(out_a.into_iter().map(Evt::RingA));
            let mut out_b = Vec::new();
            self.ring_b.advance(t, &mut out_b);
            queue.extend(out_b.into_iter().map(Evt::RingB));
            let mut out_br = Vec::new();
            self.bridge.advance(t, &mut out_br);
            queue.extend(out_br.into_iter().map(Evt::Bridge));
            for i in 0..2 {
                let mut out_h = Vec::new();
                self.hosts[i].advance(t, &mut out_h);
                queue.extend(out_h.into_iter().map(|e| Evt::Host(i, e)));
            }
            self.route(t, queue);
        }
        if self.now < horizon {
            self.now = horizon;
        }
    }

    fn route(&mut self, now: SimTime, mut queue: Vec<Evt>) {
        while !queue.is_empty() {
            self.guard.step(now);
            let mut next = Vec::new();
            for evt in queue.drain(..) {
                match evt {
                    Evt::RingA(out) => self.route_ring(now, RingSide::A, out, &mut next),
                    Evt::RingB(out) => self.route_ring(now, RingSide::B, out, &mut next),
                    Evt::Bridge(out) => match out {
                        BridgeOut::Submit { side, frame } => {
                            let ring = match side {
                                RingSide::A => &mut self.ring_a,
                                RingSide::B => &mut self.ring_b,
                            };
                            let mut ring_out = Vec::new();
                            ring.handle(now, RingCmd::Submit(frame), &mut ring_out);
                            next.extend(ring_out.into_iter().map(|o| match side {
                                RingSide::A => Evt::RingA(o),
                                RingSide::B => Evt::RingB(o),
                            }));
                        }
                        BridgeOut::Dropped { .. } => self.drops += 1,
                    },
                    Evt::Host(i, out) => match out {
                        HostOut::RingSubmit(frame) => {
                            // Host 0 lives on ring A, host 1 on ring B.
                            let (ring, side) = if i == 0 {
                                (&mut self.ring_a, RingSide::A)
                            } else {
                                (&mut self.ring_b, RingSide::B)
                            };
                            let mut ring_out = Vec::new();
                            ring.handle(now, RingCmd::Submit(frame), &mut ring_out);
                            next.extend(ring_out.into_iter().map(|o| match side {
                                RingSide::A => Evt::RingA(o),
                                RingSide::B => Evt::RingB(o),
                            }));
                        }
                        HostOut::Trace { point, tag } => {
                            self.truth[i]
                                .entry(point)
                                .or_insert_with(|| EdgeLog::new(format!("h{i}-{point:?}")))
                                .record(now, tag);
                        }
                        HostOut::Presented { tag, bytes } => {
                            self.presented.push((now, tag, bytes))
                        }
                        HostOut::Drop { .. } => self.drops += 1,
                        _ => {}
                    },
                }
            }
            queue = next;
        }
    }

    fn route_ring(&mut self, now: SimTime, side: RingSide, out: RingOut, next: &mut Vec<Evt>) {
        match out {
            RingOut::Delivered { to, frame } => {
                let bridge_station = self.bridge.station(side);
                if to == bridge_station {
                    let mut br_out = Vec::new();
                    self.bridge
                        .handle(now, BridgeCmd::Delivered { side, frame }, &mut br_out);
                    next.extend(br_out.into_iter().map(Evt::Bridge));
                    return;
                }
                let host = match (side, to) {
                    (RingSide::A, TX_A) => Some(0),
                    (RingSide::B, RX_B) => Some(1),
                    _ => None,
                };
                if let Some(i) = host {
                    let mut host_out = Vec::new();
                    self.hosts[i].handle(now, HostCmd::RingDelivered(frame), &mut host_out);
                    next.extend(host_out.into_iter().map(|e| Evt::Host(i, e)));
                }
            }
            RingOut::Stripped {
                from,
                tag,
                delivered,
                ..
            } => {
                // Bridge submissions complete silently; host submissions
                // go back to the host's driver.
                let host = match (side, from) {
                    (RingSide::A, TX_A) => Some(0),
                    (RingSide::B, RX_B) => Some(1),
                    _ => None,
                };
                if let Some(i) = host {
                    let mut host_out = Vec::new();
                    self.hosts[i].handle(
                        now,
                        HostCmd::RingStripped { tag, delivered },
                        &mut host_out,
                    );
                    next.extend(host_out.into_iter().map(|e| Evt::Host(i, e)));
                }
            }
            RingOut::LostToPurge { .. } | RingOut::QueueDrop { .. } => self.drops += 1,
            _ => {}
        }
    }

    /// The measurement set: points 1–3 from the transmitter (ring A),
    /// point 4 from the receiver (ring B). H7 now spans two rings and the
    /// router.
    pub fn measurement_set(&self) -> MeasurementSet {
        let get = |host: usize, point: MeasurePoint| -> EdgeLog {
            self.truth[host]
                .get(&point)
                .cloned()
                .unwrap_or_else(|| EdgeLog::new(format!("h{host}-{point:?}")))
        };
        MeasurementSet {
            vca_irq: get(0, MeasurePoint::VcaIrq),
            handler: get(0, MeasurePoint::VcaHandlerEntry),
            pre_tx: get(0, MeasurePoint::PreTransmit),
            ctmsp_rx: get(1, MeasurePoint::CtmspIdentified),
        }
    }

    /// Packets sent / received / dropped.
    pub fn counters(&self) -> (u64, u64, u64) {
        let sent = self.hosts[0]
            .kernel
            .driver_ref::<CtmsVcaSource>(self.vca_src)
            .map(|d| d.stats().pkts_sent)
            .unwrap_or(0);
        let received = self.hosts[1]
            .kernel
            .driver_ref::<CtmsVcaSink>(self.vca_sink)
            .map(|d| d.stats().received)
            .unwrap_or(0);
        (sent, received, self.drops + self.bridge.stats().overflows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_measure::HistId;
    use ctms_stats::Summary;

    #[test]
    fn stream_crosses_two_rings_via_cut_through() {
        let sc = Scenario::test_case_a(42);
        let mut bed = DualRingTestbed::new(&sc, BridgeKind::cut_through_bridge());
        bed.run_until(SimTime::from_secs(10));
        let (sent, received, drops) = bed.counters();
        assert!(sent > 800, "{sent}");
        assert!(received >= sent - 2, "sent {sent} received {received}");
        assert_eq!(drops, 0);
        // End-to-end latency ≈ two single-ring hops + bridge service.
        let h7 = bed.measurement_set().samples_us(HistId::H7);
        let s = Summary::of(&h7);
        let single = sc.calib.h7_floor_us(sc.pkt_len);
        assert!(
            s.min > single + 4_000.0,
            "two hops strictly slower: {} vs {single}",
            s.min
        );
        assert!(s.mean < 25_000.0, "cut-through keeps it tight: {}", s.mean);
    }

    #[test]
    fn host_router_cannot_keep_up_at_full_rate() {
        // The footnote-5 worry, quantified: the 1991 forwarding host's
        // ~12.6 ms service exceeds the stream's 12 ms period, so its
        // queue overflows and the stream breaks up.
        let sc = Scenario::test_case_a(42);
        let mut bed = DualRingTestbed::new(&sc, BridgeKind::host_router_1991());
        bed.run_until(SimTime::from_secs(20));
        let (sent, received, drops) = bed.counters();
        assert!(
            (received as f64) < sent as f64 * 0.97,
            "router saturated: {received}/{sent}"
        );
        assert!(drops > 5, "{drops}");
    }

    #[test]
    fn host_router_keeps_up_at_half_rate() {
        // At one packet per 24 ms (~83 KB/s) the same host router keeps
        // up — the crossover sits between half and full CTMS rate.
        let mut sc = Scenario::test_case_a(42);
        sc.period = Dur::from_ms(24);
        let mut bed = DualRingTestbed::new(&sc, BridgeKind::host_router_1991());
        bed.run_until(SimTime::from_secs(20));
        let (sent, received, drops) = bed.counters();
        assert!(received >= sent - 2, "{received}/{sent}");
        assert_eq!(drops, 0);
        // It pays the store-and-forward latency even when it keeps up.
        let h7 = bed.measurement_set().samples_us(HistId::H7);
        let host = Summary::of(&h7).mean;
        let cut = {
            let mut b2 = DualRingTestbed::new(&sc, BridgeKind::cut_through_bridge());
            b2.run_until(SimTime::from_secs(20));
            Summary::of(&b2.measurement_set().samples_us(HistId::H7)).mean
        };
        assert!(
            host > cut + 10_000.0,
            "store-and-forward pays ~12 ms: host {host} vs cut {cut}"
        );
    }
}
