//! Ring-chain testbeds: a CTMS stream crossing `N` Token Rings through
//! `N − 1` routers (experiment E12, the paper's footnote-5 extension,
//! generalized to arbitrary chain length).
//!
//! Topology for `N = 2` (the paper's dual-ring case):
//!
//! ```text
//!   ring 0: [0] tx host   [1] idle  [2] idle  [3] bridge 0 port A
//!   ring 1: [0] bridge 0 port B  [1] rx host  [2] idle  [3] idle
//! ```
//!
//! Longer chains repeat the middle pattern: every interior ring carries
//! the previous bridge's B port at station 0 and the next bridge's A
//! port at station 3. The transmitter addresses the first bridge's
//! ring-0 station; each bridge re-addresses CTMSP frames one hop
//! further, until the last bridge targets the receiver. All rings carry
//! their own MAC background; measurement points work exactly as on the
//! single-ring testbed (tags survive every hop).

use crate::graph::{graph_topology, RingGraph};
use crate::parallel::ShardedBus;
use crate::scenario::Scenario;
use crate::topology::{Bus, Topology};
use ctms_devices::{CtmsVcaSink, CtmsVcaSource};
use ctms_measure::MeasurementSet;
use ctms_router::BridgeKind;
use ctms_sim::{CascadeError, SimTime};
use ctms_tokenring::TokenRing;
use ctms_unixkern::{DriverId, Host, MeasurePoint};

/// The N-ring chain testbed. See module docs.
pub struct RingChainTestbed {
    bus: Bus,
    vca_src: DriverId,
    vca_sink: DriverId,
}

/// The paper's dual-ring case is the two-ring chain.
pub type DualRingTestbed = RingChainTestbed;

impl RingChainTestbed {
    /// Builds the two-ring (dual-ring) testbed with the given forwarding
    /// engine — the paper's footnote-5 configuration.
    pub fn new(sc: &Scenario, kind: BridgeKind) -> RingChainTestbed {
        Self::chain(sc, kind, 2)
    }

    /// Builds a chain of `n ≥ 2` rings joined by `n − 1` identical
    /// forwarding engines. Host-side configuration (packet size, period,
    /// copy flags) comes from the scenario; every ring is a private
    /// four-station ring.
    pub fn chain(sc: &Scenario, kind: BridgeKind, n: usize) -> RingChainTestbed {
        let (topo, vca_src, vca_sink) = Self::chain_topology(sc, kind, n);
        RingChainTestbed {
            bus: topo.build(),
            vca_src,
            vca_sink,
        }
    }

    /// Like [`RingChainTestbed::chain`], but runs the chain on the
    /// conservative-parallel sharded harness with `shards` ring
    /// partitions. Bit-identical results to the single-threaded chain
    /// for the same scenario, seed, and horizon — the shard-parity
    /// tests pin this.
    pub fn chain_sharded(sc: &Scenario, kind: BridgeKind, n: usize, shards: usize) -> ShardedChain {
        let (topo, vca_src, vca_sink) = Self::chain_topology(sc, kind, n);
        ShardedChain {
            bus: topo.build_sharded(shards),
            vca_src,
            vca_sink,
        }
    }

    /// Builds the testbed for an arbitrary [`RingGraph`] — a chain is
    /// just one shape; trees, meshes, and FDDI backbones come from the
    /// same construction. The stream runs from the graph's TX ring to
    /// its RX ring along the build-time shortest bridge path.
    pub fn graph(sc: &Scenario, kind: BridgeKind, graph: &RingGraph) -> RingChainTestbed {
        let (topo, vca_src, vca_sink) = graph_topology(sc, kind, graph);
        RingChainTestbed {
            bus: topo.build(),
            vca_src,
            vca_sink,
        }
    }

    /// Like [`RingChainTestbed::graph`], but on the conservative-parallel
    /// sharded harness with a `shards`-way graph partition. Bit-identical
    /// to the single-threaded build for any shape — the topology-variant
    /// golden tests pin this.
    pub fn graph_sharded(
        sc: &Scenario,
        kind: BridgeKind,
        graph: &RingGraph,
        shards: usize,
    ) -> ShardedChain {
        let (topo, vca_src, vca_sink) = graph_topology(sc, kind, graph);
        ShardedChain {
            bus: topo.build_sharded(shards),
            vca_src,
            vca_sink,
        }
    }

    /// The chain as a [`Topology`] description plus the VCA driver ids —
    /// shared by the single-threaded and sharded constructors. Since the
    /// graph refactor this is a thin wrapper over [`graph_topology`]
    /// with the chain-shaped description; the layout (and every RNG
    /// stream) is bit-identical to the historical hand-rolled chain.
    fn chain_topology(sc: &Scenario, kind: BridgeKind, n: usize) -> (Topology, DriverId, DriverId) {
        graph_topology(sc, kind, &RingGraph::chain(n))
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.bus.now()
    }

    /// Runs until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.bus.run_until(horizon);
    }

    /// Runs until `horizon`, reporting cascade overflow as a typed error.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError> {
        self.bus.try_run_until(horizon)
    }

    /// Number of rings in the chain.
    pub fn ring_count(&self) -> usize {
        self.bus.ring_count()
    }

    /// Ring `k` (0 = transmitter's, last = receiver's).
    pub fn ring(&self, k: usize) -> &TokenRing {
        self.bus.ring(k)
    }

    /// Bridge `k` (joins ring `k` to ring `k + 1`).
    pub fn bridge(&self, k: usize) -> &ctms_router::Bridge {
        self.bus.bridge(k)
    }

    /// The transmitter host.
    pub fn tx_host(&self) -> &Host {
        self.bus.host(0)
    }

    /// The receiver host.
    pub fn rx_host(&self) -> &Host {
        self.bus.host(1)
    }

    /// The underlying event bus.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable event bus, for telemetry collection and phase snapshots.
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Consumes the testbed, yielding its bus — the shape
    /// [`crate::checkpoint::fork`] builders produce.
    pub fn into_bus(self) -> Bus {
        self.bus
    }

    /// Collects and serializes the whole chain's metric tree as
    /// canonical JSON (byte-identical across runs of the same seed).
    pub fn telemetry_json(&mut self) -> String {
        self.bus.telemetry_json()
    }

    /// The measurement set: points 1–3 from the transmitter (ring 0),
    /// point 4 from the receiver (last ring). H7 spans every ring and
    /// router in the chain.
    pub fn measurement_set(&self) -> MeasurementSet {
        let m = self.bus.measurements();
        MeasurementSet {
            vca_irq: m.truth_log_or_empty(0, MeasurePoint::VcaIrq),
            handler: m.truth_log_or_empty(0, MeasurePoint::VcaHandlerEntry),
            pre_tx: m.truth_log_or_empty(0, MeasurePoint::PreTransmit),
            ctmsp_rx: m.truth_log_or_empty(1, MeasurePoint::CtmspIdentified),
        }
    }

    /// Packets sent / received / dropped. Drops count every loss along
    /// the chain: host-stack drops, ring-queue drops, purge losses, and
    /// bridge-queue overflows.
    pub fn counters(&self) -> (u64, u64, u64) {
        let sent = self
            .tx_host()
            .kernel
            .driver_ref::<CtmsVcaSource>(self.vca_src)
            .map(|d| d.stats().pkts_sent)
            .unwrap_or(0);
        let received = self
            .rx_host()
            .kernel
            .driver_ref::<CtmsVcaSink>(self.vca_sink)
            .map(|d| d.stats().received)
            .unwrap_or(0);
        let m = self.bus.measurements();
        let overflow: u64 = (0..self.bus.bridge_count())
            .map(|k| self.bus.bridge(k).stats().overflows)
            .sum();
        let drops =
            m.drops().len() as u64 + m.lost_to_purge().len() as u64 + m.bridge_drops() + overflow;
        (sent, received, drops)
    }
}

/// The N-ring chain running on the conservative-parallel sharded bus.
/// Same accessors and same answers as [`RingChainTestbed`] — sharding
/// may only change the wall clock.
pub struct ShardedChain {
    bus: ShardedBus,
    vca_src: DriverId,
    vca_sink: DriverId,
}

impl ShardedChain {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.bus.now()
    }

    /// Runs until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.bus.run_until(horizon);
    }

    /// Runs until `horizon`, reporting cascade overflow as a typed error.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError> {
        self.bus.try_run_until(horizon)
    }

    /// Number of rings in the chain.
    pub fn ring_count(&self) -> usize {
        self.bus.ring_count()
    }

    /// Number of shards the chain actually runs on (1 = fell back to
    /// the single-threaded harness).
    pub fn shard_count(&self) -> usize {
        self.bus.shard_count()
    }

    /// Caps how many pool workers a window dispatch invites.
    pub fn set_threads(&mut self, threads: usize) {
        self.bus.set_threads(threads);
    }

    /// Component activations serviced so far.
    pub fn events(&self) -> u64 {
        self.bus.events()
    }

    /// The underlying sharded bus.
    pub fn bus(&self) -> &ShardedBus {
        &self.bus
    }

    /// Mutable sharded bus, for telemetry collection.
    pub fn bus_mut(&mut self) -> &mut ShardedBus {
        &mut self.bus
    }

    /// Consumes the testbed, yielding its sharded bus.
    pub fn into_bus(self) -> ShardedBus {
        self.bus
    }

    /// Collects and serializes the whole chain's metric tree as
    /// canonical JSON — byte-identical to the single-threaded chain.
    pub fn telemetry_json(&mut self) -> String {
        self.bus.telemetry_json()
    }

    /// The measurement set, identical to
    /// [`RingChainTestbed::measurement_set`].
    pub fn measurement_set(&self) -> MeasurementSet {
        let log = |host: usize, point: MeasurePoint| {
            self.bus
                .truth_log(host, point)
                .cloned()
                .unwrap_or_else(|| ctms_sim::EdgeLog::new(format!("h{host}-{point:?}")))
        };
        MeasurementSet {
            vca_irq: log(0, MeasurePoint::VcaIrq),
            handler: log(0, MeasurePoint::VcaHandlerEntry),
            pre_tx: log(0, MeasurePoint::PreTransmit),
            ctmsp_rx: log(1, MeasurePoint::CtmspIdentified),
        }
    }

    /// Packets sent / received / dropped, identical to
    /// [`RingChainTestbed::counters`]. Measurement parts are summed
    /// across shards.
    pub fn counters(&self) -> (u64, u64, u64) {
        let sent = self
            .bus
            .host(0)
            .kernel
            .driver_ref::<CtmsVcaSource>(self.vca_src)
            .map(|d| d.stats().pkts_sent)
            .unwrap_or(0);
        let received = self
            .bus
            .host(1)
            .kernel
            .driver_ref::<CtmsVcaSink>(self.vca_sink)
            .map(|d| d.stats().received)
            .unwrap_or(0);
        let overflow: u64 = (0..self.bus.bridge_count())
            .map(|k| self.bus.bridge(k).stats().overflows)
            .sum();
        let measured: u64 = self
            .bus
            .measure_parts()
            .iter()
            .map(|m| m.drops().len() as u64 + m.lost_to_purge().len() as u64 + m.bridge_drops())
            .sum();
        (sent, received, measured + overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_measure::HistId;
    use ctms_sim::Dur;
    use ctms_stats::Summary;

    #[test]
    fn stream_crosses_two_rings_via_cut_through() {
        let sc = Scenario::test_case_a(42);
        let mut bed = DualRingTestbed::new(&sc, BridgeKind::cut_through_bridge());
        bed.run_until(SimTime::from_secs(10));
        let (sent, received, drops) = bed.counters();
        assert!(sent > 800, "{sent}");
        assert!(received >= sent - 2, "sent {sent} received {received}");
        assert_eq!(drops, 0);
        // End-to-end latency ≈ two single-ring hops + bridge service.
        let h7 = bed.measurement_set().samples_us(HistId::H7);
        let s = Summary::of(&h7);
        let single = sc.calib.h7_floor_us(sc.pkt_len);
        assert!(
            s.min > single + 4_000.0,
            "two hops strictly slower: {} vs {single}",
            s.min
        );
        assert!(s.mean < 25_000.0, "cut-through keeps it tight: {}", s.mean);
    }

    #[test]
    fn host_router_cannot_keep_up_at_full_rate() {
        // The footnote-5 worry, quantified: the 1991 forwarding host's
        // ~12.6 ms service exceeds the stream's 12 ms period, so its
        // queue overflows and the stream breaks up.
        let sc = Scenario::test_case_a(42);
        let mut bed = DualRingTestbed::new(&sc, BridgeKind::host_router_1991());
        bed.run_until(SimTime::from_secs(20));
        let (sent, received, drops) = bed.counters();
        assert!(
            (received as f64) < sent as f64 * 0.97,
            "router saturated: {received}/{sent}"
        );
        assert!(drops > 5, "{drops}");
    }

    #[test]
    fn host_router_keeps_up_at_half_rate() {
        // At one packet per 24 ms (~83 KB/s) the same host router keeps
        // up — the crossover sits between half and full CTMS rate.
        let mut sc = Scenario::test_case_a(42);
        sc.period = Dur::from_ms(24);
        let mut bed = DualRingTestbed::new(&sc, BridgeKind::host_router_1991());
        bed.run_until(SimTime::from_secs(20));
        let (sent, received, drops) = bed.counters();
        assert!(received >= sent - 2, "{received}/{sent}");
        assert_eq!(drops, 0);
        // It pays the store-and-forward latency even when it keeps up.
        let h7 = bed.measurement_set().samples_us(HistId::H7);
        let host = Summary::of(&h7).mean;
        let cut = {
            let mut b2 = DualRingTestbed::new(&sc, BridgeKind::cut_through_bridge());
            b2.run_until(SimTime::from_secs(20));
            Summary::of(&b2.measurement_set().samples_us(HistId::H7)).mean
        };
        assert!(
            host > cut + 10_000.0,
            "store-and-forward pays ~12 ms: host {host} vs cut {cut}"
        );
    }

    #[test]
    fn stream_crosses_a_three_ring_chain() {
        // The generalization: three rings, two cut-through bridges, end to
        // end. Each extra hop adds ring latency but loses nothing.
        let sc = Scenario::test_case_a(42);
        let mut bed = RingChainTestbed::chain(&sc, BridgeKind::cut_through_bridge(), 3);
        assert_eq!(bed.ring_count(), 3);
        bed.run_until(SimTime::from_secs(10));
        let (sent, received, drops) = bed.counters();
        assert!(sent > 800, "{sent}");
        assert!(received >= sent - 2, "sent {sent} received {received}");
        assert_eq!(drops, 0);
        // Three hops are strictly slower than two.
        let h7_3 = bed.measurement_set().samples_us(HistId::H7);
        let two = {
            let mut b2 = DualRingTestbed::new(&sc, BridgeKind::cut_through_bridge());
            b2.run_until(SimTime::from_secs(10));
            Summary::of(&b2.measurement_set().samples_us(HistId::H7)).mean
        };
        let three = Summary::of(&h7_3).mean;
        assert!(
            three > two + 3_000.0,
            "third hop adds a ring transit: {three} vs {two}"
        );
    }

    #[test]
    fn sharded_chain_matches_single_threaded_bit_for_bit() {
        // The conservative-parallel contract on the real testbed:
        // partitioning a six-ring chain across 1, 2, and 4 shards
        // changes nothing — counters, event counts, and the entire
        // canonical telemetry tree are byte-identical.
        let sc = Scenario::scaled_chain(42);
        let kind = BridgeKind::cut_through_bridge();
        let horizon = SimTime::from_secs(2);
        let mut single = RingChainTestbed::chain(&sc, kind, 6);
        single.run_until(horizon);
        let counters = single.counters();
        let events = single.bus().events();
        let json = single.telemetry_json();
        for shards in [1usize, 2, 4] {
            let mut bed = RingChainTestbed::chain_sharded(&sc, kind, 6, shards);
            assert_eq!(bed.shard_count(), shards, "partition size");
            bed.run_until(horizon);
            assert_eq!(bed.counters(), counters, "shards={shards}");
            assert_eq!(bed.events(), events, "shards={shards}");
            assert_eq!(bed.telemetry_json(), json, "shards={shards}");
        }
    }

    #[test]
    fn single_ring_testbed_falls_back_to_single_threaded() {
        // One ring cannot be partitioned: build_sharded must return the
        // transparent fallback, not panic or degrade.
        let sc = Scenario::test_case_a(42);
        let (bus, _roles) = crate::Testbed::ctms_sharded(&sc, 4);
        assert!(bus.is_single(), "single ring falls back");
        assert_eq!(bus.shard_count(), 1);
    }

    #[test]
    fn chain_latency_grows_monotonically_with_hops() {
        let sc = Scenario::test_case_a(7);
        let mut means = Vec::new();
        for n in 2..=4 {
            let mut bed = RingChainTestbed::chain(&sc, BridgeKind::cut_through_bridge(), n);
            bed.run_until(SimTime::from_secs(5));
            let (sent, received, _) = bed.counters();
            assert!(
                received >= sent.saturating_sub(2),
                "n={n}: {received}/{sent}"
            );
            means.push(Summary::of(&bed.measurement_set().samples_us(HistId::H7)).mean);
        }
        assert!(
            means[0] < means[1] && means[1] < means[2],
            "per-hop cost accumulates: {means:?}"
        );
    }
}
