//! Calibration constants, each traceable to a paper sentence.
//!
//! The paper reports no RT/PC cycle counts, so the absolute cost constants
//! are calibrated *from the paper's own measurements*:
//!
//! * copy rate system→IO-Channel memory ≈ 1 µs/byte — §5.3, Figure 5-2
//!   discussion: "The transfer rate of copying data from the system memory
//!   where the mbufs are located to the IO Channel Memory … is on the
//!   order of 1 microsecond per byte";
//! * non-copy driver code between handler entry and pre-transmit = 600 µs
//!   — same discussion: "The additional 600 microseconds can be attributed
//!   to the execution of the code between the two points of measurement";
//! * point-3→point-4 minimum latency of a 2000-byte packet = 10 740 µs —
//!   Figure 5-3: distributed over adapter DMA on both ends (1.57 µs/byte),
//!   the 4042 µs ring transmission, interrupt dispatch, and the
//!   CTMSP-identification test;
//! * interrupt dispatch ≤ 25 µs with spl-induced variation up to 440 µs —
//!   §5.2.2's IRQ→handler measurement.

use ctms_devices::TrAdapterCfg;
use ctms_sim::Dur;
use ctms_tokenring::RingConfig;
use ctms_unixkern::KernCalib;

/// All tunable costs of the reproduction in one place.
#[derive(Clone, Debug)]
pub struct Calibration {
    /// Kernel path costs.
    pub kern: KernCalib,
    /// Token Ring adapter hardware.
    pub adapter: TrAdapterCfg,
    /// Ring medium parameters.
    pub ring: RingConfig,
    /// VCA driver code between handler entry and the send handle (600 µs).
    pub vca_handler_code: Dur,
    /// Receive-side cost from handler entry to CTMSP determination.
    pub ctmsp_check_cost: Dur,
    /// Per-packet header cost without precomputation.
    pub header_cost: Dur,
    /// Per-packet header cost with precomputation.
    pub precomp_header_cost: Dur,
}

impl Default for Calibration {
    fn default() -> Self {
        let ring = RingConfig {
            // Test-case-A MAC level: 0.2 % of the ring (§5.3), ≈50 frames/s.
            mac_rate_per_sec: 50.0,
            ..RingConfig::default()
        };
        // Calibrated: 2021 bytes × (2.2 + 0.94) µs of DMA + 4042 µs (wire)
        // + posting, dispatch and check ≈ the 10 740 µs minimum of
        // Figure 5-3. The asymmetric split also reproduces Figure 5-2's
        // queueing dynamics (transmit service ≈ 10.7 ms of each 12 ms).
        let adapter = TrAdapterCfg::default();
        Calibration {
            kern: KernCalib::default(),
            adapter,
            ring,
            vca_handler_code: Dur::from_us(600),
            ctmsp_check_cost: Dur::from_us(290),
            header_cost: Dur::from_us(150),
            precomp_header_cost: Dur::from_us(15),
        }
    }
}

impl Calibration {
    /// The expected minimum point-3→point-4 latency for a packet of
    /// `info_len` bytes under this calibration (analytic; the simulation
    /// should never go below it).
    pub fn h7_floor_us(&self, info_len: u32) -> f64 {
        let wire = u64::from(info_len) + 21;
        let dma = (wire as f64)
            * (self.adapter.tx_dma_per_byte.as_us_f64() + self.adapter.rx_dma_per_byte.as_us_f64());
        let tx = (wire * 8) as f64 * 0.25; // 4 Mbit/s
        let cmd = self.adapter.cmd_latency.0.as_us_f64();
        let post = self.adapter.rx_post_latency.0.as_us_f64();
        let dispatch = 25.0;
        dma + tx + cmd + post + dispatch + self.ctmsp_check_cost.as_us_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h7_floor_matches_paper_order() {
        let c = Calibration::default();
        let floor = c.h7_floor_us(2000);
        // Figure 5-3's minimum is 10 740 µs; the analytic floor must sit
        // just below it (the simulation adds only non-negative waits).
        assert!((10_400.0..10_740.0).contains(&floor), "floor = {floor} µs");
    }

    #[test]
    fn copy_rate_is_paper_cited() {
        let c = Calibration::default();
        assert_eq!(
            c.kern.copy.copy(
                2000,
                ctms_rtpc::MemRegion::System,
                ctms_rtpc::MemRegion::IoChannel
            ),
            Dur::from_us(2000)
        );
        assert_eq!(c.vca_handler_code, Dur::from_us(600));
    }
}
