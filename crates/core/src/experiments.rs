//! The experiment suite: one function per table/figure/quantitative claim
//! of the paper. Each returns a [`Report`] pairing the paper's number with
//! the reproduction's measurement; the `repro` binary prints them and
//! EXPERIMENTS.md records them.
//!
//! Experiment ids follow DESIGN.md's index (E1–E11).

use crate::scenario::Scenario;
use crate::testbed::Testbed;
use ctms_devices::{CtmsVcaSink, CtmsVcaSource, StockAudioSink, StockVcaSource};
use ctms_measure::{analyze_period, HistId, PcAt, PcAtCfg};
use ctms_sim::{Dur, EdgeLog, Pcg32, SimTime};
use ctms_stats::{fraction_in_range, fraction_within, Band, Claim, Histogram, Report, Summary};
use ctms_unixkern::SockProto;

/// How long to simulate per experiment.
#[derive(Clone, Copy, Debug)]
pub struct ExpCfg {
    /// Simulation seed.
    pub seed: u64,
    /// Seconds of simulated time for the short experiments.
    pub short_secs: u64,
    /// Seconds for the long Figure 5-4 run (paper: 117 minutes).
    pub long_secs: u64,
}

impl ExpCfg {
    /// Full-fidelity settings (the bench harness).
    pub fn full(seed: u64) -> Self {
        ExpCfg {
            seed,
            short_secs: 120,
            long_secs: 117 * 60,
        }
    }

    /// Quick settings for tests.
    pub fn quick(seed: u64) -> Self {
        ExpCfg {
            seed,
            short_secs: 20,
            long_secs: 60,
        }
    }
}

/// Loss fraction and audible-glitch rate of a stock-path run.
fn stock_failure_metrics(bed: &Testbed, secs: u64) -> (f64, f64) {
    let src = bed
        .host(bed.roles.tx_host)
        .kernel
        .driver_ref::<StockVcaSource>(bed.roles.vca_src)
        .expect("stock source");
    let sink = bed
        .host(bed.roles.rx_host)
        .kernel
        .driver_ref::<StockAudioSink>(bed.roles.vca_sink)
        .expect("stock sink");
    let produced = src.stats().produced.max(1) as f64;
    let lost = (src.stats().overrun_bytes + sink.stats().underrun_bytes) as f64;
    let glitches_per_min = sink.stats().underruns as f64 * 60.0 / secs as f64;
    ((lost / produced).min(1.0), glitches_per_min)
}

/// E1 (§1): 16 KB/s works under stock UNIX; 150 KB/s "failed completely";
/// the modified CTMS path sustains 150 KB/s.
pub fn e1_stock_unix(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E1 (§1): stock UNIX vs CTMS at 16 and 150 KB/s");
    let horizon = SimTime::from_secs(cfg.short_secs);

    // The paper's initial tests ran on the development setup, before the
    // loaded public-ring experiments: standalone hosts, private ring.
    let sc = Scenario::test_case_a(cfg.seed);

    // Stock path, 16 KB/s audio.
    let mut bed = Testbed::stock(&sc, 16_000, SockProto::UdpLite);
    bed.run_until(horizon);
    let (loss16, glitches16) = stock_failure_metrics(&bed, cfg.short_secs);
    r.claim(Claim::new(
        "stock.16k.loss",
        "16 KB/s 'worked extremely well' (loss fraction)",
        0.0,
        loss16,
        "",
        Band::Absolute(0.01),
    ));
    r.claim(Claim::new(
        "stock.16k.glitches",
        "16 KB/s audible glitches per minute",
        0.0,
        glitches16,
        "/min",
        Band::Absolute(3.0),
    ));

    // Stock path, 150 KB/s.
    let mut bed = Testbed::stock(&sc, 150_000, SockProto::UdpLite);
    bed.run_until(horizon);
    let (loss150, glitches150) = stock_failure_metrics(&bed, cfg.short_secs);
    r.claim(Claim::new(
        "stock.150k.fails",
        "150 KB/s 'failed completely' (sustained data loss and glitching)",
        1.0,
        if loss150 > 0.02 && glitches150 > 30.0 {
            1.0
        } else {
            0.0
        },
        "",
        Band::Absolute(0.0),
    ));
    r.note(format!(
        "stock 150 KB/s: loss fraction {loss150:.3}, {glitches150:.0} glitches/min \
         (VCA overruns + audio underruns; the receiver spends ~95 % of its \
         CPU in the copy/protocol path)"
    ));

    // Modified CTMS path, ~167 KB/s, on the loaded public network.
    let sc = Scenario::test_case_b(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(horizon);
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("ctms source");
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("ctms sink");
    let sent = src.stats().pkts_sent.max(1) as f64;
    let received = sink.stats().received as f64;
    r.claim(Claim::new(
        "ctms.150k.delivery",
        "modified path sustains the CTMS stream (delivered fraction)",
        1.0,
        received / sent,
        "",
        Band::Absolute(0.01),
    ));
    r
}

/// Copy census for the §2 accounting (Figures 2-1/2-2): CPU copies per
/// packet on each path variant.
pub fn copy_census(stock: bool, tx_copy_full: bool, rx_copy_to_mbufs: bool) -> u32 {
    if stock {
        // Device→kernel (PIO/driver), kernel→user (read), user→kernel
        // (write/send), mbufs→fixed DMA buffer: four CPU copies (§2:
        // "There will always be four copies made by the CPU").
        4
    } else {
        // Direct driver-to-driver: source builds the packet in mbufs
        // (header only; data appended), then mbufs→DMA buffer if copying
        // fully, plus DMA-buffer→mbufs on receive if configured.
        u32::from(tx_copy_full) + u32::from(rx_copy_to_mbufs)
    }
}

/// E2 (§2): the copy-count arithmetic and its measured CPU cost.
pub fn e2_copy_count(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E2 (§2): data copies per device-to-device transfer");
    r.claim(Claim::new(
        "stock.cpu_copies",
        "stock UNIX: 'always four copies made by the CPU'",
        4.0,
        f64::from(copy_census(true, true, true)),
        "copies",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "ctms.copies_eliminated",
        "direct driver-to-driver 'completely eliminates two of the data copies'",
        2.0,
        f64::from(copy_census(true, true, true) - copy_census(false, true, true)),
        "copies",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "ctms.pointer_transfer",
        "with pointer transfer (header-only, in-place rx) all bulk CPU copies go",
        0.0,
        f64::from(copy_census(false, false, false)),
        "copies",
        Band::Absolute(0.0),
    ));

    // Measured: per-packet CPU copy time on the modified path vs the
    // header-only ablation, from the H6 interval (which contains the one
    // remaining transmit-side bulk copy).
    let horizon = SimTime::from_secs(cfg.short_secs);
    let sc = Scenario::test_case_a(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(horizon);
    let full = Summary::of(&bed.measurement_set().samples_us(HistId::H6)).mean;
    let mut sc2 = Scenario::test_case_a(cfg.seed);
    sc2.tx_copy_full = false;
    let mut bed = Testbed::ctms(&sc2);
    bed.run_until(horizon);
    let header_only = Summary::of(&bed.measurement_set().samples_us(HistId::H6)).mean;
    r.claim(Claim::new(
        "tx_copy.cpu_us",
        "eliminating the 2000-byte transmit copy saves ~2000 µs of CPU (§5.3 rate)",
        2000.0,
        full - header_only,
        "us",
        Band::RelativeFrac(0.05),
    ));
    r
}

/// E3 (§5.2.2): logic-analyzer checks of the VCA interrupt source and the
/// IRQ→handler-entry variation.
pub fn e3_logic_analyzer(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E3 (§5.2.2): VCA IRQ solidity and handler-entry variation");
    let sc = Scenario::test_case_b(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(cfg.short_secs));
    let set = bed.measurement_set();
    let pa = analyze_period(&set.vca_irq, Dur::from_ms(12));
    r.claim(Claim::new(
        "vca.period_dev_ns",
        "VCA IRQ period deviation ≤ 500 ns ('completely solid')",
        0.0,
        pa.max_deviation_ns as f64,
        "ns",
        Band::Absolute(500.0),
    ));
    let h5 = set.samples_us(HistId::H5);
    let max_var = h5.iter().copied().fold(0.0f64, f64::max);
    r.claim(Claim::new(
        "irq_to_handler.max_us",
        "largest IRQ→handler variation 440 µs under load",
        440.0,
        max_var,
        "us",
        Band::Absolute(300.0),
    ));
    let min_var = h5.iter().copied().fold(f64::INFINITY, f64::min);
    r.claim(Claim::new(
        "irq_to_handler.min_us",
        "baseline dispatch latency (vector fetch + register save)",
        25.0,
        min_var,
        "us",
        Band::RelativeFrac(0.2),
    ));
    r
}

/// E4 (§5.2.3): the PC/AT measurement tool's own error.
pub fn e4_pcat_tool(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E4 (§5.2.3): PC/AT timestamper error on a solid 12 ms source");
    // A perfectly solid source (as the logic analyzer established).
    let mut src = EdgeLog::new("vca-irq");
    let n = cfg.short_secs * 1000 / 12;
    for k in 0..n {
        src.record(SimTime::from_ms(12 * k), k + 1);
    }
    let mut tool = PcAt::new(PcAtCfg::default(), Pcg32::new(cfg.seed, 0x9C));
    let cap = tool.observe(&[&src], SimTime::from_secs(cfg.short_secs));
    let rec = cap.reconstruct();
    let intervals: Vec<f64> = rec[0]
        .inter_occurrence()
        .iter()
        .map(|d| d.as_us_f64())
        .collect();
    let s = Summary::of(&intervals);
    let spread = (s.max - 12_000.0).max(12_000.0 - s.min);
    r.claim(Claim::new(
        "pcat.spread_us",
        "spread around the 12 ms mean (paper observed 120 µs; our model's \
         per-edge service error is bounded by the 60 µs loop)",
        120.0,
        spread,
        "us",
        Band::Informational,
    ));
    r.claim(Claim::new(
        "pcat.loop_worst_us",
        "worst-case service loop execution time",
        60.0,
        PcAtCfg::default().loop_worst.as_us_f64(),
        "us",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "pcat.mean_us",
        "the tool does not bias the mean",
        12_000.0,
        s.mean,
        "us",
        Band::RelativeFrac(0.001),
    ));
    r
}

/// E5 (Figure 5-2): test case B, histogram 6 — VCA handler entry to just
/// prior to transmission.
pub fn e5_fig5_2(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E5 (Figure 5-2): case B, handler entry → pre-transmit");
    let sc = Scenario::test_case_b(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(cfg.short_secs));
    let xs = bed.measurement_set().samples_us(HistId::H6);
    let hist = Histogram::of(&xs, 0.0, 500.0);
    let peaks = hist.peaks(0.01);
    r.claim(Claim::new(
        "h6.multimodal",
        "'This particular histogram is interesting because of the bi-model curve'",
        2.0,
        (peaks.len() as f64).min(2.0),
        "modes",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "h6.peak1_center",
        "first-peak mean ≈ 2600 µs (2000 µs copy + 600 µs code)",
        2600.0,
        peaks.first().map(|&(c, _)| c).unwrap_or(0.0),
        "us",
        Band::RelativeFrac(0.1),
    ));
    r.claim(Claim::new(
        "h6.frac_peak1",
        "68 % within 500 µs of 2600 µs",
        0.68,
        fraction_within(&xs, 2600.0, 500.0),
        "",
        Band::Absolute(0.08),
    ));
    r.claim(Claim::new(
        "h6.frac_peak2",
        "15 % within 500 µs of 9400 µs (our queueing model concentrates the \
         delayed mass at ~7.2 ms instead — see EXPERIMENTS.md)",
        0.15,
        fraction_within(&xs, 9400.0, 500.0),
        "",
        Band::Informational,
    ));
    r.claim(Claim::new(
        "h6.frac_delayed",
        "fraction delayed beyond the first peak (paper: 15 % + 16.5 % + tails ≈ 0.32)",
        0.32,
        fraction_in_range(&xs, 3100.0, f64::INFINITY),
        "",
        Band::Absolute(0.10),
    ));
    r.claim(Claim::new(
        "h6.copy_cost",
        "'2000 microseconds of latency specifically attributable to copying'",
        2000.0,
        sc.calib
            .kern
            .copy
            .copy(
                2000,
                ctms_rtpc::MemRegion::System,
                ctms_rtpc::MemRegion::IoChannel,
            )
            .as_us_f64(),
        "us",
        Band::Absolute(0.0),
    ));
    r.note(hist.render_ascii("Figure 5-2 (reproduced): case B histogram 6", "us", 60));
    r
}

/// E6 (Figure 5-3): test case A, histogram 7 — transmitter to receiver.
pub fn e6_fig5_3(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E6 (Figure 5-3): case A, pre-transmit → CTMSP identified");
    let sc = Scenario::test_case_a(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(cfg.short_secs));
    let xs = bed.measurement_set().samples_us(HistId::H7);
    let s = Summary::of(&xs);
    r.claim(Claim::new(
        "h7a.min",
        "minimum latency of a 2000-byte packet is 10 740 µs",
        10_740.0,
        s.min,
        "us",
        Band::RelativeFrac(0.01),
    ));
    r.claim(Claim::new(
        "h7a.mean",
        "10 894 µs mean",
        10_894.0,
        s.mean,
        "us",
        Band::RelativeFrac(0.01),
    ));
    r.claim(Claim::new(
        "h7a.frac_core",
        "98 % of data points within 160 µs of the mean",
        0.98,
        fraction_within(&xs, s.mean, 160.0),
        "",
        Band::Absolute(0.03),
    ));
    r.claim(Claim::new(
        "h7a.tail_max",
        "right tail extends to ~14 600 µs",
        14_600.0,
        s.max,
        "us",
        Band::RelativeFrac(0.25),
    ));
    let hist = Histogram::of(&xs, 10_000.0, 160.0);
    r.note(hist.render_ascii("Figure 5-3 (reproduced): case A histogram 7", "us", 60));
    r
}

/// E7 (Figure 5-4): test case B, histogram 7, over the paper's 117-minute
/// run (or `cfg.long_secs`).
pub fn e7_fig5_4(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E7 (Figure 5-4): case B, pre-transmit → CTMSP identified");
    let sc = Scenario::test_case_b(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(cfg.long_secs));
    let xs = bed.measurement_set().samples_us(HistId::H7);
    let s = Summary::of(&xs);
    r.claim(Claim::new(
        "h7b.min",
        "minimum latency 10 750 µs",
        10_750.0,
        s.min,
        "us",
        Band::RelativeFrac(0.01),
    ));
    r.claim(Claim::new(
        "h7b.frac_core",
        "76 % within 160 µs of the 10 900 µs peak",
        0.76,
        fraction_within(&xs, 10_900.0, 160.0),
        "",
        Band::Absolute(0.08),
    ));
    r.claim(Claim::new(
        "h7b.frac_mid",
        "21.5 % in 11 060–15 000 µs",
        0.215,
        fraction_in_range(&xs, 11_060.0, 15_000.0),
        "",
        Band::Absolute(0.08),
    ));
    r.claim(Claim::new(
        "h7b.frac_heavy",
        "2.49 % in 15 000–40 050 µs",
        0.0249,
        fraction_in_range(&xs, 15_000.0, 40_050.0),
        "",
        Band::Absolute(0.02),
    ));
    // The two exceptional points: insertion events that delayed packets
    // into the 100+ ms range.
    let outlier_samples = xs.iter().filter(|&&x| x >= 100_000.0).count();
    let insertions = bed.purge_starts().len();
    r.claim(Claim::new(
        "h7b.outlier_events",
        "ring insertions during the run produce the 120–130 ms exceptional \
         points (paper: 2 over 117 min)",
        (cfg.long_secs as f64 / 3600.0 * 0.8 + 0.2).round(),
        insertions as f64,
        "events",
        Band::Informational,
    ));
    r.note(format!(
        "samples ≥ 100 ms: {outlier_samples} from {insertions} purge sequences \
         (the paper singles out the two extreme points; our model also \
         retains the drained backlog behind each insertion)"
    ));
    let hist = Histogram::of(&xs, 10_000.0, 500.0);
    r.note(hist.render_ascii("Figure 5-4 (reproduced): case B histogram 7", "us", 60));
    r
}

/// E8 (§5.3): histograms 1–5, "values which could easily be explained".
pub fn e8_hist1_5(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E8 (§5.3): histograms 1–5 for both test cases");
    for (name, sc) in [
        ("A", Scenario::test_case_a(cfg.seed)),
        ("B", Scenario::test_case_b(cfg.seed)),
    ] {
        let mut bed = Testbed::ctms(&sc);
        bed.run_until(SimTime::from_secs(cfg.short_secs));
        let set = bed.measurement_set();
        let h1 = Summary::of(&set.samples_us(HistId::H1));
        r.claim(Claim::new(
            format!("{name}.h1_mean"),
            "VCA IRQ inter-occurrence is the solid 12 ms period",
            12_000.0,
            h1.mean,
            "us",
            Band::RelativeFrac(0.001),
        ));
        r.claim(Claim::new(
            format!("{name}.h1_sd"),
            "…with no detectable variation",
            0.0,
            h1.std_dev,
            "us",
            Band::Absolute(1.0),
        ));
        let h2 = Summary::of(&set.samples_us(HistId::H2));
        r.claim(Claim::new(
            format!("{name}.h2_mean"),
            "handler-entry inter-occurrence centred on the period",
            12_000.0,
            h2.mean,
            "us",
            Band::RelativeFrac(0.001),
        ));
        let h5 = Summary::of(&set.samples_us(HistId::H5));
        r.claim(Claim::new(
            format!("{name}.h5_min"),
            "IRQ→handler delta bounded below by the dispatch cost",
            25.0,
            h5.min,
            "us",
            Band::RelativeFrac(0.05),
        ));
        let h3 = Summary::of(&set.samples_us(HistId::H3));
        r.claim(Claim::new(
            format!("{name}.h3_mean"),
            "pre-transmit inter-occurrence centred on the period",
            12_000.0,
            h3.mean,
            "us",
            Band::RelativeFrac(0.01),
        ));
        let h4 = Summary::of(&set.samples_us(HistId::H4));
        r.claim(Claim::new(
            format!("{name}.h4_mean"),
            "receive-point inter-occurrence centred on the period",
            12_000.0,
            h4.mean,
            "us",
            Band::RelativeFrac(0.01),
        ));
    }
    r
}

/// E9 (§4/§5): Ring Purge and MAC-frame rates.
pub fn e9_ring_purges(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E9 (§4/§5): Ring Purge frequency and MAC traffic");
    // Insertion frequency over a simulated day, generator-level (cheap:
    // traffic classes are zeroed, only the churn process runs).
    use ctms_sim::drain_component;
    let mut pc = ctms_workloads::PhantomCfg::public(vec![]);
    pc.small_rate = 0.0;
    pc.arp_rate = 0.0;
    pc.burst_rate = 0.0;
    let mut gen = ctms_workloads::PhantomTraffic::new(pc, Pcg32::new(cfg.seed, 0xE9));
    let _ = drain_component(&mut gen, SimTime::from_secs(24 * 3600));
    r.claim(Claim::new(
        "insertions_per_day",
        "'The number was under 20, approximately one an hour'",
        19.2,
        gen.stats().insertions as f64,
        "/day",
        Band::RelativeFrac(0.45),
    ));

    // Purges per insertion and MAC rate, from a short full-testbed run.
    let sc = Scenario::test_case_b(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    // Force one insertion immediately so short runs observe a sequence.
    bed.disturb(ctms_tokenring::Disturb::StationInsertion);
    bed.run_until(SimTime::from_secs(cfg.short_secs));
    let stats = bed.ring().stats();
    r.claim(Claim::new(
        "purges_per_insertion",
        "'we have seen on the order of 10 Ring Purges back to back'",
        10.0,
        stats.purges as f64 / stats.purge_sequences.max(1) as f64,
        "",
        Band::RelativeFrac(0.3),
    ));
    let mac_rate = stats.mac_frames as f64 / cfg.short_secs as f64;
    r.claim(Claim::new(
        "mac_per_sec",
        "'between 50 and 250 interrupts to handle MAC frames per second' \
         (at 0.2–1.0 % ring load; the testbed runs at the quiet 0.2 % end)",
        50.0,
        mac_rate,
        "/s",
        Band::RelativeFrac(0.25),
    ));
    let mac_util = stats.mac_frames as f64 * 25.0 * 8.0 * 250e-9 / cfg.short_secs as f64;
    r.claim(Claim::new(
        "mac_util",
        "MAC traffic uses 0.2–1.0 % of the ring",
        0.002,
        mac_util,
        "",
        Band::RelativeFrac(0.5),
    ));
    // TAP sees the purge sequence.
    r.claim(Claim::new(
        "tap.purges",
        "TAP records the Ring Purge MAC frames",
        stats.purges as f64,
        bed.tap().purges() as f64,
        "",
        Band::Absolute(0.0),
    ));
    r
}

/// E10 (§6): worst-case latency and buffer-space conclusion.
pub fn e10_conclusions(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E10 (§6): worst-case latency and buffer requirement");
    let sc = Scenario::test_case_b(cfg.seed);
    let mut bed = Testbed::ctms(&sc);
    bed.run_until(SimTime::from_secs(cfg.long_secs));
    let set = bed.measurement_set();
    let xs = set.samples_us(HistId::H7);
    // The paper attributes its exceptional points to the ring "timing out
    // and resetting" (purges); a regular sample is one whose transfer
    // window overlaps no purge sequence.
    let rx_by_tag: std::collections::HashMap<u64, SimTime> =
        set.ctmsp_rx.edges().iter().map(|e| (e.tag, e.at)).collect();
    let purges = bed.purge_starts();
    let overlaps_purge = |t0: SimTime, t1: SimTime| {
        purges
            .iter()
            .any(|&p| p + Dur::from_ms(200) >= t0 && p <= t1)
    };
    let worst_regular = set
        .pre_tx
        .edges()
        .iter()
        .filter_map(|e| {
            let rx = *rx_by_tag.get(&e.tag)?;
            let d = rx.checked_since(e.at)?;
            if overlaps_purge(e.at, rx) {
                None
            } else {
                Some(d.as_us_f64())
            }
        })
        .fold(0.0f64, f64::max);
    r.claim(Claim::new(
        "worst_regular_ms",
        "'the worst case times between transmission and reception of a \
         single packet is 40 milliseconds' (excluding insertion outliers)",
        40.0,
        worst_regular / 1000.0,
        "ms",
        Band::RelativeFrac(0.5),
    ));
    let outliers: Vec<f64> = xs.iter().copied().filter(|&x| x >= 100_000.0).collect();
    if !outliers.is_empty() {
        let max_out = outliers.iter().copied().fold(0.0f64, f64::max);
        r.claim(Claim::new(
            "outlier_ms",
            "'two exceptional data points within the 120 to 130 millisecond range'",
            125.0,
            max_out / 1000.0,
            "ms",
            Band::RelativeFrac(0.2),
        ));
    }
    let buf = bed.buffer_requirement_bytes(sc.data_rate(), sc.pkt_len);
    r.claim(Claim::new(
        "buffer_bytes",
        "'the buffer space needed for 150KBytes/sec CTMSP data transfer is \
         under 25KBytes'",
        25_600.0,
        buf,
        "B",
        Band::Informational,
    ));
    r.claim(Claim::new(
        "buffer_under_25k",
        "buffer requirement is under 25 KB",
        1.0,
        if buf < 25_600.0 { 1.0 } else { 0.0 },
        "",
        Band::Absolute(0.0),
    ));
    // Recovery accounting: every loss anywhere on the path (purge, queue
    // overflow, receive overrun, mbuf exhaustion) appears to the receiver
    // as a tolerated sequence gap — and nothing else does.
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .expect("source");
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .expect("sink");
    let produced = src.stats().pkts_sent + src.stats().mbuf_drops;
    let received = sink.stats().received;
    let expected_gaps = produced.saturating_sub(received) as f64;
    r.claim(Claim::new(
        "recovery.gaps",
        "receiver recovery tolerates exactly the lost packets (± in-flight)",
        expected_gaps,
        sink.stats().missed_pkts as f64,
        "pkts",
        Band::Absolute(3.0),
    ));
    r.note(format!(
        "losses: purge={} other_drops={} (of {} produced)",
        bed.lost_to_purge().len(),
        bed.drops().len(),
        produced
    ));
    r
}

/// One ablation row: scenario label + H6/H7 means + delivery.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Mean handler-entry→pre-transmit latency (µs).
    pub h6_mean: f64,
    /// Mean pre-transmit→identified latency (µs).
    pub h7_mean: f64,
    /// 99th-percentile H7 (µs).
    pub h7_p99: f64,
    /// Delivered fraction.
    pub delivered: f64,
}

/// Runs one scenario and summarizes it for the ablation table.
pub fn ablation_row(label: &str, sc: &Scenario, secs: u64) -> AblationRow {
    let mut bed = Testbed::ctms(sc);
    bed.run_until(SimTime::from_secs(secs));
    let set = bed.measurement_set();
    let h6 = set.samples_us(HistId::H6);
    let h7 = set.samples_us(HistId::H7);
    let src = bed
        .host(0)
        .kernel
        .driver_ref::<CtmsVcaSource>(bed.roles.vca_src)
        .map(|s| s.stats().pkts_sent)
        .unwrap_or(0)
        .max(1);
    let sink = bed
        .host(1)
        .kernel
        .driver_ref::<CtmsVcaSink>(bed.roles.vca_sink)
        .map(|s| s.stats().received)
        .unwrap_or(0);
    AblationRow {
        label: label.to_string(),
        h6_mean: Summary::of(&h6).mean,
        h7_mean: Summary::of(&h7).mean,
        h7_p99: ctms_stats::quantile(&h7, 0.99),
        delivered: sink as f64 / src as f64,
    }
}

/// E11 (§5.3): the design-variant ablation grid.
pub fn e11_ablation(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E11 (§5.3): design-variant ablations");
    let secs = cfg.short_secs;
    let base = Scenario::test_case_b(cfg.seed);
    let rows = e11_rows(&base, secs);
    let find =
        |label: &str| -> &AblationRow { rows.iter().find(|r| r.label == label).expect("row") };
    let b = find("baseline (case B)");

    // Header precomputation saves its per-packet cost in H6; measured on
    // the unloaded case A so queueing does not amplify the difference.
    let base_a = Scenario::test_case_a(cfg.seed);
    let a_row = ablation_row("case A baseline", &base_a, secs);
    let mut sc = base_a.clone();
    sc.precomputed_header = false;
    let a_nh = ablation_row("case A, header recomputed", &sc, secs);
    r.claim(Claim::new(
        "ablate.header",
        "precomputed header removes a per-packet cost (§3)",
        135.0,
        a_nh.h6_mean - a_row.h6_mean,
        "us",
        Band::RelativeFrac(0.3),
    ));

    // Header-only copy removes the 2000-byte copy; measured on the
    // unloaded case A (under load the shorter service time also changes
    // queueing, amplifying the difference).
    let mut sc = base_a.clone();
    sc.tx_copy_full = false;
    let a_hc = ablation_row("case A, header-only copy", &sc, secs);
    r.claim(Claim::new(
        "ablate.tx_copy",
        "header-only transmit copy saves ~2000 µs (§2 pointer-transfer direction)",
        -2000.0,
        a_hc.h6_mean - a_row.h6_mean,
        "us",
        Band::RelativeFrac(0.1),
    ));

    // Ring priority bounds the tail. Measured with standalone hosts on
    // the public ring so token contention is the only variable (case B's
    // kernel-noise tail otherwise swamps the p99).
    let mut iso = Scenario::test_case_b(cfg.seed);
    iso.host_load = crate::scenario::HostLoad::Standalone;
    let with_prio = ablation_row("iso ring-priority on", &iso, secs);
    let mut iso_off = iso.clone();
    iso_off.ring_priority = false;
    let without = ablation_row("iso ring-priority off", &iso_off, secs);
    r.claim(Claim::new(
        "ablate.ring_priority",
        "removing ring priority lengthens the transfer tail (p99 grows)",
        1.0,
        if without.h7_p99 > with_prio.h7_p99 + 100.0 {
            1.0
        } else {
            0.0
        },
        "",
        Band::Absolute(0.0),
    ));
    r.note(format!(
        "isolated p99 H7: ring-priority on {:.0} µs vs off {:.0} µs",
        with_prio.h7_p99, without.h7_p99
    ));

    // §4's third modification, measured directly: with system-memory DMA
    // buffers the transmitter's CPU loses cycles to bus arbitration on
    // every transfer; IO Channel Memory buffers lose none.
    let stall = |io_channel: bool| -> u64 {
        let mut sc = Scenario::test_case_a(cfg.seed);
        sc.io_channel_memory = io_channel;
        let mut bed = Testbed::ctms(&sc);
        bed.run_until(SimTime::from_secs(secs.min(30)));
        bed.host(0).machine.bus_stats().cpu_stall_ns + bed.host(1).machine.bus_stats().cpu_stall_ns
    };
    let stall_sys = stall(false);
    let stall_io = stall(true);
    r.claim(Claim::new(
        "ablate.io_channel_memory",
        "IO Channel Memory removes all DMA-induced CPU stalls (§4)",
        0.0,
        stall_io as f64 / 1e6,
        "ms",
        Band::Absolute(0.001),
    ));
    r.note(format!(
        "CPU stall from adapter DMA: system-memory buffers {:.1} ms vs          IO Channel Memory {:.1} ms (over the run, both hosts)",
        stall_sys as f64 / 1e6,
        stall_io as f64 / 1e6
    ));

    // Driver priority protects H6 under load.
    let ndp = find("no driver priority");
    r.claim(Claim::new(
        "ablate.driver_priority",
        "removing driver priority worsens handler→transmit latency under load",
        1.0,
        if ndp.h6_mean > b.h6_mean { 1.0 } else { 0.0 },
        "",
        Band::Absolute(0.0),
    ));

    for row in &rows {
        r.note(format!(
            "{:<34} h6={:>8.0}us h7={:>8.0}us p99={:>8.0}us delivered={:.4}",
            row.label, row.h6_mean, row.h7_mean, row.h7_p99, row.delivered
        ));
    }
    r
}

/// The ablation grid rows (shared by the report and the ablation bench).
/// Each variant is an independent simulation, so the grid fans out over
/// worker threads; results come back in grid order, byte-identical to a
/// sequential run.
pub fn e11_rows(base: &Scenario, secs: u64) -> Vec<AblationRow> {
    let variant = |label: &str, tweak: fn(&mut Scenario)| {
        let mut sc = base.clone();
        tweak(&mut sc);
        (label.to_string(), sc)
    };
    let grid = vec![
        variant("baseline (case B)", |_| {}),
        variant("header recomputed per packet", |sc| {
            sc.precomputed_header = false;
        }),
        variant("header-only transmit copy", |sc| sc.tx_copy_full = false),
        variant("in-place receive (no rx copy)", |sc| {
            sc.rx_copy_to_mbufs = false;
        }),
        variant("no ring priority", |sc| sc.ring_priority = false),
        variant("no driver priority", |sc| sc.driver_priority = false),
        variant("system-memory DMA buffers", |sc| {
            sc.io_channel_memory = false;
        }),
        variant("hypothetical purge interrupt", |sc| {
            sc.purge_interrupt = true;
        }),
    ];
    let threads = ctms_sim::default_threads(grid.len());
    ctms_sim::parallel_map(grid, threads, move |(label, sc)| {
        ablation_row(&label, &sc, secs)
    })
}

/// E12 (extension, §1 footnote 5): a CTMS stream crossing two rings
/// through a router — "possible but has not been implemented", now
/// implemented and measured.
pub fn e12_router(cfg: ExpCfg) -> Report {
    use crate::chain::DualRingTestbed;
    use ctms_router::BridgeKind;
    let mut r = Report::new("E12 (ext, §1 note 5): inter-ring CTMS through a router");
    let horizon = SimTime::from_secs(cfg.short_secs);
    let sc = Scenario::test_case_a(cfg.seed);

    let run = |kind: BridgeKind, sc: &Scenario| {
        let mut bed = DualRingTestbed::new(sc, kind);
        bed.run_until(horizon);
        let (sent, received, drops) = bed.counters();
        let h7 = bed.measurement_set().samples_us(HistId::H7);
        (sent, received, drops, Summary::of(&h7))
    };

    // Cut-through bridge at full rate.
    let (sent, received, drops, s) = run(BridgeKind::cut_through_bridge(), &sc);
    r.claim(Claim::new(
        "bridge.delivery",
        "a cut-through bridge carries the full-rate stream across two rings",
        1.0,
        received as f64 / sent.max(1) as f64,
        "",
        Band::Absolute(0.01),
    ));
    r.note(format!(
        "cut-through: {received}/{sent} delivered, {drops} dropped,          end-to-end mean {:.1} ms (single-ring: ~10.9 ms)",
        s.mean / 1000.0
    ));
    let single_ring_mean = 10_900.0;
    r.claim(Claim::new(
        "bridge.extra_latency_ms",
        "the second ring + bridge cost one extra hop (~+5–7 ms)",
        6.0,
        (s.mean - single_ring_mean) / 1000.0,
        "ms",
        Band::RelativeFrac(0.4),
    ));

    // A 1991 forwarding host at full rate: saturates.
    let (sent, received, drops, _) = run(BridgeKind::host_router_1991(), &sc);
    r.claim(Claim::new(
        "host_router.full_rate_fails",
        "a 1991 store-and-forward host cannot keep up with the 12 ms stream          (service ≈ 12.6 ms per packet)",
        1.0,
        if (received as f64) < sent as f64 * 0.97 && drops > 0 {
            1.0
        } else {
            0.0
        },
        "",
        Band::Absolute(0.0),
    ));
    r.note(format!(
        "host router at full rate: {received}/{sent} delivered, {drops} dropped"
    ));

    // …and keeps up at half rate: the crossover.
    let mut half = sc.clone();
    half.period = Dur::from_ms(24);
    let (sent, received, _, _) = run(BridgeKind::host_router_1991(), &half);
    r.claim(Claim::new(
        "host_router.half_rate_ok",
        "the same host keeps up at half rate — the crossover lies between          ~83 and ~167 KB/s",
        1.0,
        received as f64 / sent.max(1) as f64,
        "",
        Band::Absolute(0.01),
    ));
    r
}

/// E13 (extension): stream capacity of a 4 Mbit ring — how many
/// concurrent CTMS streams (the title's "necessary data rates") fit?
///
/// Arithmetic: each stream needs a 2021-byte frame (plus token overhead)
/// every 12 ms ≈ 4.1 ms of ring time, so the medium saturates just
/// below three streams. The experiment measures the cliff.
pub fn e13_capacity(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E13 (ext): concurrent CTMS streams on one 4 Mbit ring");
    let horizon = SimTime::from_secs(cfg.short_secs);
    // Each stream count is an independent simulation: sweep them across
    // worker threads, results in stream-count order.
    let counts: Vec<usize> = (1..=3).collect();
    let seed = cfg.seed;
    let rows = ctms_sim::parallel_map(counts, ctms_sim::default_threads(3), move |n| {
        let sc = Scenario::test_case_a(seed + n as u64);
        let mut bed = Testbed::multi_stream(&sc, n);
        bed.run_until(horizon);
        let mut sent_total = 0u64;
        let mut recv_total = 0u64;
        for k in 0..n {
            let (s, rx) = bed.stream_counters(k);
            sent_total += s;
            recv_total += rx;
        }
        let frac = recv_total as f64 / sent_total.max(1) as f64;
        let util = bed.ring().stats().busy_ns as f64 / horizon.as_ns() as f64;
        (n, frac, util)
    });
    let mut deliveries = Vec::new();
    let mut utils = Vec::new();
    for (n, frac, util) in rows {
        deliveries.push(frac);
        utils.push(util);
        r.note(format!(
            "{n} stream(s): delivered {frac:.4}, ring utilization {util:.2}"
        ));
    }
    r.claim(Claim::new(
        "capacity.two_streams",
        "two ~167 KB/s streams fit on a 4 Mbit ring",
        1.0,
        deliveries[1],
        "",
        Band::Absolute(0.01),
    ));
    r.claim(Claim::new(
        "capacity.three_streams_overload",
        "three streams exceed the medium (~12.3 ms of ring time per 12 ms): \
         the ring saturates and deliveries start falling behind",
        1.0,
        if deliveries[2] < 0.99 && utils[2] > 0.98 {
            1.0
        } else {
            0.0
        },
        "",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "capacity.one_stream_latency",
        "a single stream behaves exactly as the single-stream testbed",
        1.0,
        deliveries[0],
        "",
        Band::Absolute(0.01),
    ));
    r
}

/// E14 (extension): the same stream on a 16 Mbit ring (the TAP manual's
/// "16/4" adapter supports both speeds). Wire time quarters; the host
/// path (copies, DMA, interrupts) is untouched, so the latency floor
/// drops by exactly the transmission-time difference, and the medium's
/// stream capacity roughly quadruples.
pub fn e14_ring_speed(cfg: ExpCfg) -> Report {
    let mut r = Report::new("E14 (ext): 4 Mbit vs 16 Mbit ring");
    let horizon = SimTime::from_secs(cfg.short_secs);
    // The four (ring speed, stream count) points are independent
    // simulations; run the grid across worker threads.
    let seed = cfg.seed;
    let grid: Vec<(u64, usize)> = vec![
        (4_000_000, 1),
        (16_000_000, 1),
        (16_000_000, 8),
        (4_000_000, 3),
    ];
    let points = ctms_sim::parallel_map(
        grid,
        ctms_sim::default_threads(4),
        move |(bps, n_streams)| {
            let mut sc = Scenario::test_case_a(seed);
            sc.calib.ring.bit_rate_bps = bps;
            let mut bed = Testbed::multi_stream(&sc, n_streams);
            bed.run_until(horizon);
            let mut sent = 0u64;
            let mut recv = 0u64;
            for k in 0..n_streams {
                let (s, x) = bed.stream_counters(k);
                sent += s;
                recv += x;
            }
            let h7 = bed.measurement_set().samples_us(HistId::H7);
            (recv as f64 / sent.max(1) as f64, Summary::of(&h7).min)
        },
    );

    let (_, min4) = points[0];
    let (_, min16) = points[1];
    // 2021 bytes: 4042 µs at 4 Mbit vs 1010.5 µs at 16 Mbit.
    r.claim(Claim::new(
        "ring16.latency_cut_us",
        "the latency floor drops by the wire-time difference (~3032 µs)",
        3031.0,
        min4 - min16,
        "us",
        Band::RelativeFrac(0.05),
    ));
    let (d8, _) = points[2];
    r.claim(Claim::new(
        "ring16.eight_streams",
        "eight ~167 KB/s streams fit on a 16 Mbit ring (vs two on 4 Mbit)",
        1.0,
        d8,
        "",
        Band::Absolute(0.01),
    ));
    let (d3_4, _) = points[3];
    r.note(format!(
        "for contrast, three streams on 4 Mbit deliver only {d3_4:.4}"
    ));
    r
}

/// E15 (§5): the spl audit. "In the first case, out of order packets
/// were a direct result of the Token Ring device driver implementation.
/// Once the critical sections of code were more carefully protected, the
/// problem of out of order packets completely disappeared." The racy
/// driver is reproduced behind a flag; TAP and the watchdog catch it,
/// and the protected driver is verifiably clean.
pub fn e15_spl_audit(cfg: ExpCfg) -> Report {
    use ctms_measure::{Anomaly, WatchEvent, Watchdog, WatchdogCfg};
    let mut r = Report::new("E15 (§5): out-of-order packets from unprotected critical sections");
    let horizon = SimTime::from_secs(cfg.short_secs);

    let run = |racy: bool| {
        let mut sc = Scenario::test_case_b(cfg.seed);
        sc.racy_driver = racy;
        let mut bed = Testbed::ctms(&sc);
        bed.run_until(horizon);
        let tap_ooo = bed.tap().analyze_stream().out_of_order;
        // The §5.2.1 watchdog watches the pre-transmit point online.
        let mut dog = Watchdog::new(WatchdogCfg {
            max_interval: Dur::from_secs(1),
            snapshot_len: 32,
            tolerate_gaps: true,
        });
        let set = bed.measurement_set();
        let mut halt = None;
        for edge in set.pre_tx.edges() {
            if let Some(a) = dog.feed(WatchEvent {
                point: 2,
                at: edge.at,
                tag: edge.tag,
            }) {
                halt = Some(a);
                break;
            }
        }
        (tap_ooo, halt, dog.snapshot().len())
    };

    let (ooo_racy, halt_racy, snapshot) = run(true);
    r.claim(Claim::new(
        "racy.tap_sees_ooo",
        "TAP detects out-of-order CTMSP packets from the racy driver",
        1.0,
        if ooo_racy > 0 { 1.0 } else { 0.0 },
        "",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "racy.watchdog_halts",
        "the §5.2.1 watchdog halts the run and keeps a snapshot",
        1.0,
        if matches!(halt_racy, Some(Anomaly::OutOfOrder { .. })) && snapshot > 0 {
            1.0
        } else {
            0.0
        },
        "",
        Band::Absolute(0.0),
    ));
    r.note(format!(
        "racy driver: {ooo_racy} out-of-order frames on the wire; watchdog          halted with {halt_racy:?} and a {snapshot}-event snapshot"
    ));

    let (ooo_fixed, halt_fixed, _) = run(false);
    r.claim(Claim::new(
        "protected.no_ooo",
        "with protected critical sections the problem 'completely disappeared'",
        0.0,
        ooo_fixed as f64,
        "frames",
        Band::Absolute(0.0),
    ));
    r.claim(Claim::new(
        "protected.watchdog_quiet",
        "the watchdog never halts a protected run",
        0.0,
        if halt_fixed.is_some() { 1.0 } else { 0.0 },
        "",
        Band::Absolute(0.0),
    ));
    r
}

/// Runs every experiment at the given fidelity.
pub fn all(cfg: ExpCfg) -> Vec<Report> {
    vec![
        e1_stock_unix(cfg),
        e2_copy_count(cfg),
        e3_logic_analyzer(cfg),
        e4_pcat_tool(cfg),
        e5_fig5_2(cfg),
        e6_fig5_3(cfg),
        e7_fig5_4(cfg),
        e8_hist1_5(cfg),
        e9_ring_purges(cfg),
        e10_conclusions(cfg),
        e11_ablation(cfg),
        e12_router(cfg),
        e13_capacity(cfg),
        e14_ring_speed(cfg),
        e15_spl_audit(cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: ExpCfg = ExpCfg {
        seed: 42,
        short_secs: 15,
        long_secs: 40,
    };

    #[test]
    fn copy_census_matches_section_2() {
        assert_eq!(copy_census(true, true, true), 4);
        assert_eq!(copy_census(false, true, true), 2);
        assert_eq!(copy_census(false, false, false), 0);
    }

    #[test]
    fn e2_copy_savings() {
        let r = e2_copy_count(QUICK);
        assert!(r.all_hold(), "{}", r.render());
    }

    #[test]
    fn e3_holds() {
        let r = e3_logic_analyzer(QUICK);
        // The 440 µs max-variation claim is load-dependent on short runs;
        // check the other claims strictly.
        for c in &r.claims {
            if c.id != "irq_to_handler.max_us" {
                assert!(c.holds(), "{}: {}", c.id, r.render());
            }
        }
    }

    #[test]
    fn e4_holds() {
        let r = e4_pcat_tool(QUICK);
        assert!(r.all_hold(), "{}", r.render());
    }

    #[test]
    fn e6_case_a_core_claims() {
        let r = e6_fig5_3(QUICK);
        for c in &r.claims {
            if c.id == "h7a.tail_max" {
                continue; // tail needs long runs to fill
            }
            assert!(c.holds(), "{}: {}", c.id, r.render());
        }
    }

    #[test]
    fn e9_purge_machinery() {
        let r = e9_ring_purges(QUICK);
        for c in &r.claims {
            if c.id == "purges_per_insertion" || c.id == "tap.purges" {
                assert!(c.holds(), "{}: {}", c.id, r.render());
            }
        }
    }
}
