//! The testbed: hosts + ring + background traffic + monitors, wired.
//!
//! §5.2.1: "We were able to coordinate the activities of the transmitter,
//! receiver and the TAP tool under a centralized control point." That
//! control point is the generic [`ctms_sim::Harness`]; this type only
//! *describes* the §5 prototype as a [`Topology`](crate::Topology) — one
//! ring, the CTMS hosts at its stations, optional campus background
//! traffic — and exposes scenario-aware accessors over the recorded
//! [`Measurements`](crate::Measurements).

use crate::parallel::ShardedBus;
use crate::scenario::{HostLoad, Network, Scenario};
use crate::topology::{Bus, Topology};
use ctms_ctmsp::{TrDriver, TrDriverCfg};
use ctms_devices::{
    CtmsSinkCfg, CtmsSourceCfg, CtmsVcaSink, CtmsVcaSource, DiskCfg, DiskDriver, StockAudioSink,
    StockCfg, StockVcaSource,
};
use ctms_measure::{MeasurementSet, Tap};
use ctms_rtpc::{Machine, MachineConfig, MemRegion};
use ctms_sim::{CascadeError, Dur, EdgeLog, Pcg32, SchedMode, SimTime};
use ctms_tokenring::{RingCmd, StationId, TokenRing};
use ctms_unixkern::{
    DriverId, DropSite, Host, KernConfig, Kernel, MeasurePoint, Pid, Port, Program, Sock,
    SockProto, Step,
};
use ctms_workloads::{
    default_classes, HostTrafficCfg, HostTrafficGen, PhantomCfg, PhantomTraffic, SplLoad,
};

/// A recorded data loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DropRec {
    /// When.
    pub at: SimTime,
    /// Which host observed it.
    pub host: usize,
    /// Where in the stack.
    pub site: DropSite,
    /// Packet tag.
    pub tag: u64,
    /// Bytes lost.
    pub bytes: u32,
}

/// Well-known driver ids of the CTMS roles (for stats extraction).
#[derive(Clone, Copy, Debug, Default)]
pub struct Roles {
    /// Transmit host index.
    pub tx_host: usize,
    /// Receive host index.
    pub rx_host: usize,
    /// Token Ring driver on the transmitter.
    pub tr_tx: DriverId,
    /// Token Ring driver on the receiver.
    pub tr_rx: DriverId,
    /// CTMS VCA source (modified path) or stock VCA source.
    pub vca_src: DriverId,
    /// CTMS VCA sink (modified path) or stock audio sink.
    pub vca_sink: DriverId,
    /// Stock-path reader/writer processes (E1 only).
    pub stock_procs: Option<(Pid, Pid)>,
}

/// The assembled single-ring testbed. See module docs.
pub struct Testbed {
    bus: Bus,
    /// Driver-id bookkeeping.
    pub roles: Roles,
    /// Per-stream roles when built by [`Testbed::multi_stream`]; empty on
    /// the single-stream builders (use [`Testbed::roles`]).
    pub streams: Vec<Roles>,
}

impl Testbed {
    /// Builds the §5 CTMS prototype testbed for a scenario.
    ///
    /// Stations: 0 = transmitter, 1 = receiver, 2 = control machine,
    /// 3 = file server, 4.. = phantom campus stations (public network).
    pub fn ctms(sc: &Scenario) -> Testbed {
        Self::ctms_with_mode(sc, SchedMode::Indexed)
    }

    /// Like [`Testbed::ctms`], selecting the harness scheduler
    /// implementation. Exists for the `ctms-bench` perf harness, which
    /// compares the production indexed scheduler against the
    /// [`SchedMode::LazyBaseline`] emulation on identical topologies.
    pub fn ctms_with_mode(sc: &Scenario, mode: SchedMode) -> Testbed {
        let (topo, roles) = Self::ctms_topology(sc, mode);
        Testbed {
            bus: topo.build(),
            roles,
            streams: Vec::new(),
        }
    }

    /// Builds the §5 testbed's topology on the conservative-parallel
    /// sharded bus. A single-ring topology cannot be partitioned, so
    /// this always falls back to the single-threaded harness — the
    /// point is that the fallback is transparent and bit-identical,
    /// which the shard-parity tests pin.
    pub fn ctms_sharded(sc: &Scenario, shards: usize) -> (ShardedBus, Roles) {
        let (topo, roles) = Self::ctms_topology(sc, SchedMode::Indexed);
        (topo.build_sharded(shards), roles)
    }

    /// The §5 testbed as a [`Topology`] description plus its driver-id
    /// bookkeeping — shared by the single-threaded and sharded builders.
    fn ctms_topology(sc: &Scenario, mode: SchedMode) -> (Topology, Roles) {
        let root = Pcg32::new(sc.seed, 0xC7);
        let mut ring_cfg = sc.calib.ring.clone();
        ring_cfg.priority_enabled = sc.ring_priority;
        let mut ring = TokenRing::new(ring_cfg, root.derive("ring"));
        for _ in 0..sc.station_count() {
            ring.add_station();
        }

        let buffer_region = if sc.io_channel_memory {
            MemRegion::IoChannel
        } else {
            MemRegion::System
        };
        let mut adapter = sc.calib.adapter;
        adapter.buffer_region = buffer_region;
        adapter.purge_interrupt = sc.purge_interrupt;

        let tr_cfg = |station: u32| TrDriverCfg {
            station: StationId(station),
            adapter,
            ctmsp_enabled: true,
            driver_priority: sc.driver_priority,
            precomputed_header: sc.precomputed_header,
            tx_copy_full: sc.tx_copy_full,
            rx_copy_to_mbufs: sc.rx_copy_to_mbufs,
            ctmsp_sink: None,
            ifq_cap: 50,
            header_cost: sc.calib.header_cost,
            precomp_header_cost: sc.calib.precomp_header_cost,
            ctmsp_check_cost: sc.calib.ctmsp_check_cost,
            copy_spl: 5,
            racy_critical_sections: sc.racy_driver,
        };

        let kcfg = KernConfig {
            calib: sc.calib.kern,
            ..KernConfig::default()
        };

        // Transmitter host (station 0).
        let mut ktx = Kernel::new(kcfg, root.derive("kern-tx"));
        let tr_tx = ktx.add_driver(
            Box::new(TrDriver::new(tr_cfg(0))),
            Some(ctms_unixkern::LINE_TR),
        );
        ktx.set_net_if(tr_tx);
        let vca_src = ktx.add_driver(
            Box::new(CtmsVcaSource::new(CtmsSourceCfg {
                period: sc.period,
                pkt_len: sc.pkt_len,
                dst: StationId(1),
                tr_driver: tr_tx,
                handler_code: sc.calib.vca_handler_code,
                copy_from_device: sc.tx_copy_vca_to_mbufs,
                // The paper's own Figure 5-2 accounting (600 µs code +
                // 2000 µs copy) places the VCA data access inside the
                // 600 µs, so its marginal per-byte cost is zero here; the
                // ablation benches raise it. Documented in DESIGN.md.
                pio_per_byte: Dur::ZERO,
                ring_priority: if sc.ring_priority { 4 } else { 0 },
                irq_jitter: Dur::ZERO,
                autostart: !sc.explicit_setup,
                require_setup: sc.explicit_setup,
            })),
            Some(ctms_unixkern::LINE_VCA),
        );
        if sc.explicit_setup {
            // The §5.1 control-plane process establishes the connection
            // and exits; the data path stays in-kernel.
            ktx.add_proc(ctms_ctmsp::setup_program(vca_src));
        }
        Self::add_background(&mut ktx, tr_tx, sc);

        // Receiver host (station 1).
        let mut krx = Kernel::new(kcfg, root.derive("kern-rx"));
        let vca_sink = krx.add_driver(
            Box::new(CtmsVcaSink::new(CtmsSinkCfg {
                copy_to_device: sc.rx_copy_to_device,
                pio_per_byte: Dur::from_ns(800),
                copy_spl: 5,
            })),
            None,
        );
        let mut rx_cfg = tr_cfg(1);
        rx_cfg.ctmsp_sink = Some(vca_sink);
        let tr_rx = krx.add_driver(
            Box::new(TrDriver::new(rx_cfg)),
            Some(ctms_unixkern::LINE_TR),
        );
        krx.set_net_if(tr_rx);
        Self::add_background(&mut krx, tr_rx, sc);

        let mut topo = Topology::new(sc.cascade_limit);
        topo.sched_mode(mode);
        let r = topo.ring(ring);
        let tx = topo.host(
            r,
            StationId(0),
            Host::new(Machine::new(MachineConfig::default()), ktx),
        );
        topo.host(
            r,
            StationId(1),
            Host::new(Machine::new(MachineConfig::default()), krx),
        );
        if sc.network == Network::Public {
            topo.phantom(
                r,
                PhantomTraffic::new(
                    PhantomCfg::public(vec![StationId(0), StationId(1)]),
                    root.derive("phantom"),
                ),
            );
        }
        if sc.purge_interrupt {
            topo.subscribe_purge(tx, tr_tx);
        }

        (
            topo,
            Roles {
                tx_host: 0,
                rx_host: 1,
                tr_tx,
                tr_rx,
                vca_src,
                vca_sink,
                stock_procs: None,
            },
        )
    }

    /// Builds a testbed carrying `n` independent CTMS streams on one
    /// ring: transmitters at stations `0..n`, receivers at `n..2n`, plus
    /// two idle stations. Answers the title's question quantitatively:
    /// how many such streams does a 4 Mbit ring support?
    pub fn multi_stream(sc: &Scenario, n: usize) -> Testbed {
        assert!(n >= 1, "at least one stream");
        let root = Pcg32::new(sc.seed, 0x35);
        let mut ring_cfg = sc.calib.ring.clone();
        ring_cfg.priority_enabled = sc.ring_priority;
        let mut ring = TokenRing::new(ring_cfg, root.derive("ring"));
        for _ in 0..(2 * n + 2) {
            ring.add_station();
        }
        let mut adapter = sc.calib.adapter;
        adapter.buffer_region = if sc.io_channel_memory {
            MemRegion::IoChannel
        } else {
            MemRegion::System
        };
        let kcfg = KernConfig {
            calib: sc.calib.kern,
            ..KernConfig::default()
        };
        let tr_cfg = |station: u32, sink| TrDriverCfg {
            station: StationId(station),
            adapter,
            ctmsp_enabled: true,
            driver_priority: sc.driver_priority,
            precomputed_header: sc.precomputed_header,
            tx_copy_full: sc.tx_copy_full,
            rx_copy_to_mbufs: sc.rx_copy_to_mbufs,
            ctmsp_sink: sink,
            ifq_cap: 50,
            header_cost: sc.calib.header_cost,
            precomp_header_cost: sc.calib.precomp_header_cost,
            ctmsp_check_cost: sc.calib.ctmsp_check_cost,
            copy_spl: 5,
            racy_critical_sections: sc.racy_driver,
        };

        let mut topo = Topology::new(sc.cascade_limit);
        let r = topo.ring(ring);
        let mut streams = Vec::new();
        for k in 0..n {
            // Transmitter k at station k, streaming to station n + k.
            let mut ktx = Kernel::new(kcfg, root.derive(&format!("tx{k}")));
            let tr_tx = ktx.add_driver(
                Box::new(TrDriver::new(tr_cfg(k as u32, None))),
                Some(ctms_unixkern::LINE_TR),
            );
            ktx.set_net_if(tr_tx);
            let vca_src = ktx.add_driver(
                Box::new(CtmsVcaSource::new(CtmsSourceCfg {
                    period: sc.period,
                    pkt_len: sc.pkt_len,
                    dst: StationId((n + k) as u32),
                    tr_driver: tr_tx,
                    handler_code: sc.calib.vca_handler_code,
                    copy_from_device: false,
                    pio_per_byte: Dur::ZERO,
                    ring_priority: if sc.ring_priority { 4 } else { 0 },
                    irq_jitter: Dur::ZERO,
                    autostart: true,
                    require_setup: false,
                })),
                Some(ctms_unixkern::LINE_VCA),
            );
            topo.host(
                r,
                StationId(k as u32),
                Host::new(Machine::new(MachineConfig::default()), ktx),
            );
            streams.push(Roles {
                tx_host: k,
                rx_host: n + k,
                tr_tx,
                tr_rx: DriverId(0),
                vca_src,
                vca_sink: DriverId(0),
                stock_procs: None,
            });
        }
        for (k, stream) in streams.iter_mut().enumerate() {
            let mut krx = Kernel::new(kcfg, root.derive(&format!("rx{k}")));
            let vca_sink = krx.add_driver(
                Box::new(CtmsVcaSink::new(CtmsSinkCfg {
                    copy_to_device: sc.rx_copy_to_device,
                    pio_per_byte: Dur::from_ns(800),
                    copy_spl: 5,
                })),
                None,
            );
            let tr_rx = krx.add_driver(
                Box::new(TrDriver::new(tr_cfg((n + k) as u32, Some(vca_sink)))),
                Some(ctms_unixkern::LINE_TR),
            );
            krx.set_net_if(tr_rx);
            topo.host(
                r,
                StationId((n + k) as u32),
                Host::new(Machine::new(MachineConfig::default()), krx),
            );
            stream.tr_rx = tr_rx;
            stream.vca_sink = vca_sink;
        }

        let roles = streams[0];
        Testbed {
            bus: topo.build(),
            roles,
            streams,
        }
    }

    /// Sent/received counters for stream `k` of a multi-stream testbed.
    pub fn stream_counters(&self, k: usize) -> (u64, u64) {
        let r = &self.streams[k];
        let sent = self
            .host(r.tx_host)
            .kernel
            .driver_ref::<CtmsVcaSource>(r.vca_src)
            .map(|d| d.stats().pkts_sent)
            .unwrap_or(0);
        let received = self
            .host(r.rx_host)
            .kernel
            .driver_ref::<CtmsVcaSink>(r.vca_sink)
            .map(|d| d.stats().received)
            .unwrap_or(0);
        (sent, received)
    }

    /// Builds the stock-UNIX baseline testbed (experiment E1): user-level
    /// processes move the data through sockets over the unmodified driver.
    pub fn stock(sc: &Scenario, bytes_per_sec: u32, proto: SockProto) -> Testbed {
        let root = Pcg32::new(sc.seed, 0x57);
        let mut ring_cfg = sc.calib.ring.clone();
        ring_cfg.priority_enabled = false;
        let mut ring = TokenRing::new(ring_cfg, root.derive("ring"));
        for _ in 0..sc.station_count() {
            ring.add_station();
        }

        let port = Port(10);
        let dev_cfg = StockCfg::for_rate(bytes_per_sec);
        let chunk = dev_cfg.chunk;
        let kcfg = KernConfig {
            calib: sc.calib.kern,
            ..KernConfig::default()
        };

        // Transmitter: stock VCA read by a user process, sent on a socket.
        let mut ktx = Kernel::new(kcfg, root.derive("kern-tx"));
        let tr_tx = ktx.add_driver(
            Box::new(TrDriver::new(TrDriverCfg::stock(StationId(0)))),
            Some(ctms_unixkern::LINE_TR),
        );
        ktx.set_net_if(tr_tx);
        let vca_src = ktx.add_driver(
            Box::new(StockVcaSource::new(dev_cfg)),
            Some(ctms_unixkern::LINE_VCA),
        );
        ktx.add_sock(Sock::new(port, proto, StationId(1), 16 * 1024));
        let reader = ktx.add_proc(Program::forever(vec![
            Step::ReadDev {
                dev: vca_src,
                bytes: chunk,
            },
            Step::SockSend { port, bytes: chunk },
        ]));
        Self::add_background(&mut ktx, tr_tx, sc);

        // Receiver: socket read by a user process, written to audio.
        let mut krx = Kernel::new(kcfg, root.derive("kern-rx"));
        let audio = krx.add_driver(Box::new(StockAudioSink::new(dev_cfg)), None);
        let tr_rx = krx.add_driver(
            Box::new(TrDriver::new(TrDriverCfg::stock(StationId(1)))),
            Some(ctms_unixkern::LINE_TR),
        );
        krx.set_net_if(tr_rx);
        krx.add_sock(Sock::new(port, proto, StationId(0), 16 * 1024));
        let writer = krx.add_proc(Program::forever(vec![
            Step::SockRecv { port },
            Step::WriteDev {
                dev: audio,
                bytes: chunk,
            },
        ]));
        Self::add_background(&mut krx, tr_rx, sc);

        let mut topo = Topology::new(sc.cascade_limit);
        let r = topo.ring(ring);
        topo.host(
            r,
            StationId(0),
            Host::new(Machine::new(MachineConfig::default()), ktx),
        );
        topo.host(
            r,
            StationId(1),
            Host::new(Machine::new(MachineConfig::default()), krx),
        );
        if sc.network == Network::Public {
            topo.phantom(
                r,
                PhantomTraffic::new(
                    PhantomCfg::public(vec![StationId(0), StationId(1)]),
                    root.derive("phantom"),
                ),
            );
        }

        Testbed {
            bus: topo.build(),
            roles: Roles {
                tx_host: 0,
                rx_host: 1,
                tr_tx,
                tr_rx,
                vca_src,
                vca_sink: audio,
                stock_procs: Some((reader, writer)),
            },
            streams: Vec::new(),
        }
    }

    /// Adds per-host background load per the scenario's host mode.
    fn add_background(kernel: &mut Kernel, net_if: DriverId, sc: &Scenario) {
        // Every AOS host, standalone or not, has kernel protected-section
        // activity (§5.2.2 measured the 440 µs IRQ→handler variation on a
        // host that was merely "loading the Token Ring and the local
        // disk").
        kernel.add_driver(Box::new(SplLoad::new(default_classes())), None);
        match sc.host_load {
            HostLoad::Standalone => {}
            HostLoad::Multiprocessing => {
                // Multiprocessing hosts additionally run long kernel
                // copies (file pages, pipe buffers) holding splimp-level
                // protection — §5.3's "execution of protected code
                // segments throughout the kernel".
                kernel.add_driver(
                    Box::new(SplLoad::new(vec![ctms_workloads::SplClass {
                        rate_per_sec: 3.0,
                        mean: Dur::from_ms(7),
                        sd: Dur::from_ms(4),
                        spl: 5,
                    }])),
                    None,
                );
                kernel.add_driver(
                    Box::new(HostTrafficGen::new(HostTrafficCfg::case_b(
                        net_if,
                        StationId(2),
                        StationId(3),
                    ))),
                    None,
                );
                kernel.add_driver(
                    Box::new(DiskDriver::new(DiskCfg {
                        rate_per_sec: 8.0,
                        ..DiskCfg::default()
                    })),
                    Some(ctms_unixkern::LINE_DISK),
                );
                // One background process, lightly loaded.
                kernel.add_proc(Program::forever(vec![
                    Step::Compute(Dur::from_ms(3)),
                    Step::Sleep(Dur::from_ms(60)),
                ]));
            }
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.bus.now()
    }

    /// The ring medium.
    pub fn ring(&self) -> &TokenRing {
        self.bus.ring(0)
    }

    /// Host `i` (index i sits at ring station i).
    pub fn host(&self, i: usize) -> &Host {
        self.bus.host(i)
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.bus.host_count()
    }

    /// All hosts, in station order.
    pub fn hosts(&self) -> impl Iterator<Item = &Host> {
        (0..self.bus.host_count()).map(|i| self.bus.host(i))
    }

    /// The TAP monitor (always attached; §5 used it for every run).
    pub fn tap(&self) -> &Tap {
        self.bus.tap(0)
    }

    /// The underlying event bus (rings, hosts, measurements).
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable event bus, for telemetry collection and phase snapshots.
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }

    /// Consumes the testbed, yielding its bus — the shape
    /// [`crate::checkpoint::fork`] builders produce.
    pub fn into_bus(self) -> Bus {
        self.bus
    }

    /// Collects and serializes the whole testbed's metric tree as
    /// canonical JSON (byte-identical across runs of the same seed).
    pub fn telemetry_json(&mut self) -> String {
        self.bus.telemetry_json()
    }

    /// Injects a ring disturbance (station insertion or soft error) at the
    /// current instant, with its fallout routed like any other ring event.
    pub fn disturb(&mut self, d: ctms_tokenring::Disturb) {
        if let Err(e) = self.bus.inject_ring(0, RingCmd::Disturb(d)) {
            panic!("{e}");
        }
    }

    /// Runs the testbed until `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.bus.run_until(horizon);
    }

    /// Runs until `horizon`, reporting cascade overflow as a typed error
    /// (which node, which instant) instead of panicking.
    pub fn try_run_until(&mut self, horizon: SimTime) -> Result<(), CascadeError> {
        self.bus.try_run_until(horizon)
    }

    /// The ground-truth measurement set (points 1–3 from the transmitter,
    /// point 4 from the receiver).
    pub fn measurement_set(&self) -> MeasurementSet {
        let m = self.bus.measurements();
        MeasurementSet {
            vca_irq: m.truth_log_or_empty(self.roles.tx_host, MeasurePoint::VcaIrq),
            handler: m.truth_log_or_empty(self.roles.tx_host, MeasurePoint::VcaHandlerEntry),
            pre_tx: m.truth_log_or_empty(self.roles.tx_host, MeasurePoint::PreTransmit),
            ctmsp_rx: m.truth_log_or_empty(self.roles.rx_host, MeasurePoint::CtmspIdentified),
        }
    }

    /// A specific ground-truth log.
    pub fn truth_log(&self, host: usize, point: MeasurePoint) -> Option<&EdgeLog> {
        self.bus.measurements().truth_log(host, point)
    }

    /// All recorded drops.
    pub fn drops(&self) -> &[DropRec] {
        self.bus.measurements().drops()
    }

    /// Bytes lost at a specific site, summed.
    pub fn dropped_bytes(&self, site: DropSite) -> u64 {
        self.drops()
            .iter()
            .filter(|d| d.site == site)
            .map(|d| u64::from(d.bytes))
            .sum()
    }

    /// CTMS payload presentations at the sink: `(time, tag, bytes)`.
    pub fn presented(&self) -> &[(SimTime, u64, u32)] {
        self.bus.measurements().presented()
    }

    /// Socket deliveries (stock path): `(time, port, bytes)`.
    pub fn sock_delivered(&self) -> &[(SimTime, Port, u32)] {
        self.bus.measurements().sock_delivered()
    }

    /// Purge-sequence start times.
    pub fn purge_starts(&self) -> &[SimTime] {
        self.bus.measurements().purge_starts()
    }

    /// Frames destroyed by purges: `(time, tag)`.
    pub fn lost_to_purge(&self) -> &[(SimTime, u64)] {
        self.bus.measurements().lost_to_purge()
    }

    /// Receiver-side playout buffer requirement in bytes for a continuous
    /// stream of `rate` bytes/s: the delay spread of the transfer times
    /// converted to buffered data, plus one packet (§6's "buffer space
    /// needed for 150KBytes/sec CTMSP data transfer is under 25KBytes").
    pub fn buffer_requirement_bytes(&self, rate: f64, pkt_len: u32) -> f64 {
        let set = self.measurement_set();
        let h7 = set.samples_us(ctms_measure::HistId::H7);
        if h7.is_empty() {
            return f64::from(pkt_len);
        }
        let min = h7.iter().copied().fold(f64::INFINITY, f64::min);
        let max = h7.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (max - min) * 1e-6 * rate + f64::from(pkt_len)
    }
}
