//! Serializable simulation state: versioned checkpoints of a live bus,
//! byte-identical resume, and warm-start forking.
//!
//! A checkpoint captures **every** piece of dynamic run state — the
//! clock, each node's component state (rings, full host kernels,
//! bridges, background traffic), the RNG streams, the telemetry
//! event/phase history, and the router's measurement ground truth — in
//! one canonical byte stream behind a magic/version header. Restore
//! rebuilds the identical topology from the same scenario description
//! and applies the stream in place, after which continuing the run is
//! indistinguishable from never having stopped: telemetry JSON and
//! edge-log digests are byte-identical (pinned by tier-1 tests).
//!
//! The format is *shard-agnostic*: bytes written by a 4-shard
//! conservative-parallel run restore into a single-threaded bus or a
//! 2-shard one, because both engines walk nodes in global registration
//! order and the per-shard router parts are merged canonically at
//! persist time (see `topology::persist_router_parts`).
//!
//! On top of plain resume sit two steering facilities:
//!
//! * [`Mutation`] — deterministic what-if perturbations applied at a
//!   restore point (station churn, purge storms, DMA stalls),
//! * [`fork`] — clone one checkpoint into N divergent continuations and
//!   run them concurrently on the persistent sweep pool.

use crate::parallel::ShardedBus;
use crate::topology::Bus;
use ctms_sim::{
    parallel_map, ChunkSink, ChunkedReader, ChunkedWriter, Dec, Dur, Enc, FramedWrite,
    PersistError, SimTime,
};
use ctms_tokenring::{Disturb, RingCmd};

/// Leading magic of every checkpoint stream.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CTMSCKPT";

/// Current checkpoint format version. Bumped whenever any `Persist`
/// impl in the workspace changes its byte layout.
///
/// Version history:
///
/// * **1** — magic, version, dynamic state.
/// * **2** — a canonical topology signature (graph shape: slot kinds,
///   station→endpoint wiring, bridge port lists, host placement) sits
///   between the header and the dynamic state. Restore verifies it
///   against the receiving bus, so a snapshot can only land on a bus
///   built from the same graph description — at *any* shard count —
///   and a tree snapshot aimed at a mesh build fails loudly instead of
///   desynchronizing.
pub const CHECKPOINT_VERSION: u32 = 2;

fn seal(enc: Enc) -> Vec<u8> {
    enc.into_bytes()
}

fn write_header(enc: &mut Enc) {
    for b in CHECKPOINT_MAGIC {
        enc.u8(b);
    }
    enc.u32(CHECKPOINT_VERSION);
}

fn header() -> Enc {
    let mut enc = Enc::new();
    write_header(&mut enc);
    enc
}

fn open_header(dec: &mut Dec<'_>) -> Result<(), PersistError> {
    for expect in CHECKPOINT_MAGIC {
        if dec.u8()? != expect {
            return Err(PersistError::mismatch(
                "not a CTMS checkpoint (bad magic)".to_string(),
            ));
        }
    }
    let version = dec.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(PersistError::mismatch(format!(
            "checkpoint version {version}, this build reads {CHECKPOINT_VERSION}"
        )));
    }
    Ok(())
}

fn open(bytes: &[u8]) -> Result<Dec<'_>, PersistError> {
    let mut dec = Dec::new(bytes);
    open_header(&mut dec)?;
    Ok(dec)
}

/// Reads the v2 topology signature and verifies the snapshot was taken
/// on the same graph this bus was built from. Shard count is *not* part
/// of the signature — every shard's router holds the complete slot
/// table, so a 4-shard tree snapshot signs identically to the
/// single-threaded build of the same tree.
fn check_signature(dec: &mut Dec<'_>, own: &[u8]) -> Result<(), PersistError> {
    let sig = dec.bytes()?;
    if sig != own {
        return Err(PersistError::mismatch(
            "checkpoint topology does not match this bus (different graph \
             shape, station layout, or host placement)"
                .to_string(),
        ));
    }
    Ok(())
}

impl Bus {
    /// Serializes the complete dynamic state behind a magic/version
    /// header. Call at a quiescent instant — after
    /// [`Bus::try_run_until`] has returned.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut enc = header();
        enc.bytes(&self.topology_signature());
        self.persist_state(&mut enc);
        seal(enc)
    }

    /// Applies a checkpoint onto this freshly built bus. The bus must
    /// have been built from the same topology description (same
    /// scenario, same seeds) — the embedded graph signature is verified
    /// first, then node counts and kinds, and the whole stream must be
    /// consumed.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let mut dec = open(bytes)?;
        check_signature(&mut dec, &self.topology_signature())?;
        self.restore_state(&mut dec)?;
        dec.finish()
    }

    /// Streams the checkpoint through `sink` chunk by chunk. The chunk
    /// payloads concatenate to **exactly** the bytes of
    /// [`Bus::checkpoint`], but peak memory stays at one chunk buffer
    /// (~[`ctms_sim::STREAM_CHUNK`]) plus the largest single node
    /// encoding, instead of the whole snapshot. Returns
    /// `(payload_bytes, chunks)`.
    pub fn checkpoint_stream(&self, sink: &mut dyn ChunkSink) -> Result<(u64, u64), PersistError> {
        let mut w = ChunkedWriter::new(sink);
        write_header(w.enc());
        let sig = self.topology_signature();
        w.enc().bytes(&sig);
        self.persist_state_chunked(&mut w)?;
        w.finish()
    }

    /// Streams the checkpoint into `out` using the standard
    /// length-prefixed chunk framing ([`ctms_sim::FramedWrite`]).
    /// Returns `(payload_bytes, chunks)`.
    pub fn write_checkpoint(
        &self,
        out: &mut dyn std::io::Write,
    ) -> Result<(u64, u64), PersistError> {
        let mut sink = FramedWrite::new(out);
        self.checkpoint_stream(&mut sink)
    }

    /// Restores from a stream written by [`Bus::write_checkpoint`],
    /// decoding chunk by chunk — the inverse bound: peak memory is one
    /// chunk, not the whole snapshot. A stream truncated mid-chunk or
    /// mid-state surfaces as a typed [`PersistError`], never a panic.
    pub fn read_checkpoint(&mut self, inp: &mut dyn std::io::Read) -> Result<(), PersistError> {
        let mut r = ChunkedReader::new(inp);
        let mut first = Vec::new();
        if !r.next_chunk_into(&mut first)? {
            // No chunks at all: an empty (terminator-only) stream.
            return Err(PersistError::UnexpectedEof);
        }
        let mut prefix = Dec::new(&first);
        open_header(&mut prefix)?;
        check_signature(&mut prefix, &self.topology_signature())?;
        let mut buf = Vec::new();
        self.restore_state_chunked(&mut prefix, &mut r, &mut buf)?;
        if r.next_chunk_into(&mut buf)? {
            return Err(PersistError::mismatch(
                "streamed checkpoint has trailing chunks past the router state".to_string(),
            ));
        }
        Ok(())
    }
}

impl ShardedBus {
    /// Serializes the complete dynamic state behind a magic/version
    /// header — the **same bytes** a single-threaded bus produces for
    /// the same simulation state. Call at a sync-instant boundary
    /// (after [`ShardedBus::try_run_until`] has returned).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut enc = header();
        enc.bytes(&self.topology_signature());
        self.persist_state(&mut enc);
        seal(enc)
    }

    /// Applies a checkpoint onto this freshly built bus. The snapshot
    /// may come from any execution mode: a 4-shard snapshot restores
    /// into a single-threaded bus or a 2-shard one — the graph
    /// signature is shard-agnostic, only the shape must match.
    pub fn restore_checkpoint(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        let mut dec = open(bytes)?;
        check_signature(&mut dec, &self.topology_signature())?;
        self.restore_state(&mut dec)?;
        dec.finish()
    }

    /// Streams the checkpoint through `sink` chunk by chunk — see
    /// [`Bus::checkpoint_stream`]. The concatenated payloads are
    /// byte-identical to [`ShardedBus::checkpoint`] (and therefore to
    /// the single-threaded bus), at bounded peak memory. Returns
    /// `(payload_bytes, chunks)`.
    pub fn checkpoint_stream(&self, sink: &mut dyn ChunkSink) -> Result<(u64, u64), PersistError> {
        let mut w = ChunkedWriter::new(sink);
        write_header(w.enc());
        let sig = self.topology_signature();
        w.enc().bytes(&sig);
        self.persist_state_chunked(&mut w)?;
        w.finish()
    }

    /// Streams the checkpoint into `out` using the standard
    /// length-prefixed chunk framing — see [`Bus::write_checkpoint`].
    pub fn write_checkpoint(
        &self,
        out: &mut dyn std::io::Write,
    ) -> Result<(u64, u64), PersistError> {
        let mut sink = FramedWrite::new(out);
        self.checkpoint_stream(&mut sink)
    }

    /// Restores from a stream written by any bus flavor's
    /// `write_checkpoint` — shard counts need not match; see
    /// [`Bus::read_checkpoint`].
    pub fn read_checkpoint(&mut self, inp: &mut dyn std::io::Read) -> Result<(), PersistError> {
        let mut r = ChunkedReader::new(inp);
        let mut first = Vec::new();
        if !r.next_chunk_into(&mut first)? {
            // No chunks at all: an empty (terminator-only) stream.
            return Err(PersistError::UnexpectedEof);
        }
        let mut prefix = Dec::new(&first);
        open_header(&mut prefix)?;
        check_signature(&mut prefix, &self.topology_signature())?;
        let mut buf = Vec::new();
        self.restore_state_chunked(&mut prefix, &mut r, &mut buf)?;
        if r.next_chunk_into(&mut buf)? {
            return Err(PersistError::mismatch(
                "streamed checkpoint has trailing chunks past the router state".to_string(),
            ));
        }
        Ok(())
    }
}

/// A deterministic perturbation applied at a restore point, before the
/// continued run — the steering hooks of the what-if workflow. Each
/// mutation maps onto an existing first-class disturbance of the model,
/// so a mutated continuation is exactly as reproducible as a plain run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// A station inserts into ring `ring`: the §4 insertion burst of
    /// Ring Purges ("primarily due to new stations inserting").
    StationChurn {
        /// Ring index (dense, from the topology build order).
        ring: usize,
    },
    /// `count` back-to-back soft-error purge sequences on ring `ring` —
    /// a purge storm.
    PurgeStorm {
        /// Ring index.
        ring: usize,
        /// Number of purge sequences injected.
        count: u32,
    },
    /// Every in-flight DMA on host `host` completes `extra` later, as
    /// if the bus arbiter had stalled the engines.
    DmaStall {
        /// Dense host index.
        host: usize,
        /// Extra completion delay.
        extra: Dur,
    },
}

/// Applies mutations in order at the current instant, routing their
/// fallout deterministically. Only the single-threaded [`Bus`] supports
/// injection (mirroring [`ShardedBus::inject_ring`]'s contract), which
/// is no restriction: a checkpoint from any shard count restores into a
/// single-threaded bus.
///
/// Errors use the checkpoint layer's [`PersistError`]: out-of-range
/// indices and cascade overflow during fallout routing both poison the
/// mutation batch.
pub fn apply_mutations(bus: &mut Bus, mutations: &[Mutation]) -> Result<(), PersistError> {
    for m in mutations {
        match *m {
            Mutation::StationChurn { ring } => {
                check_ring(bus, ring)?;
                bus.inject_ring(ring, RingCmd::Disturb(Disturb::StationInsertion))
                    .map_err(|e| PersistError::mismatch(format!("station churn: {e}")))?;
            }
            Mutation::PurgeStorm { ring, count } => {
                check_ring(bus, ring)?;
                for _ in 0..count {
                    bus.inject_ring(ring, RingCmd::Disturb(Disturb::SoftError))
                        .map_err(|e| PersistError::mismatch(format!("purge storm: {e}")))?;
                }
            }
            Mutation::DmaStall { host, extra } => {
                if host >= bus.host_count() {
                    return Err(PersistError::mismatch(format!(
                        "DMA stall on unknown host {host} (topology has {})",
                        bus.host_count()
                    )));
                }
                bus.host_mut(host).machine.delay_active_dmas(extra);
            }
        }
    }
    Ok(())
}

fn check_ring(bus: &Bus, ring: usize) -> Result<(), PersistError> {
    if ring >= bus.ring_count() {
        return Err(PersistError::mismatch(format!(
            "mutation on unknown ring {ring} (topology has {})",
            bus.ring_count()
        )));
    }
    Ok(())
}

/// One divergent continuation of a forked checkpoint.
#[derive(Clone, Debug)]
pub struct ForkSpec {
    /// Mutations applied at the restore point, before running.
    pub mutations: Vec<Mutation>,
    /// Horizon the branch runs to (must be at or past the checkpoint
    /// instant).
    pub run_to: SimTime,
}

/// Warm-start forking: clones one checkpoint into `branches.len()`
/// divergent continuations and runs them concurrently on the
/// persistent sweep pool ([`ctms_sim::parallel_map`]).
///
/// Each branch rebuilds a fresh bus via `build` (same topology as the
/// checkpoint's origin), restores the shared snapshot, applies its
/// [`ForkSpec::mutations`], runs to its horizon, and hands the finished
/// bus to `analyze`. Results come back in branch order, and each branch
/// is bit-deterministic — a branch re-run alone produces the same
/// answer it produced inside the fork.
///
/// An empty `mutations` list makes the branch a pure resume, which is
/// how the equivalence tests pin "forked continuation ≡ uninterrupted
/// run".
pub fn fork<R, B, A>(
    checkpoint: Vec<u8>,
    branches: Vec<ForkSpec>,
    threads: usize,
    build: B,
    analyze: A,
) -> Result<Vec<R>, PersistError>
where
    R: Send + 'static,
    B: Fn() -> Bus + Send + Sync + 'static,
    A: Fn(usize, Bus) -> R + Send + Sync + 'static,
{
    let items: Vec<(usize, ForkSpec)> = branches.into_iter().enumerate().collect();
    let results: Vec<Result<R, PersistError>> = parallel_map(items, threads, move |(idx, spec)| {
        let mut bus = build();
        bus.restore_checkpoint(&checkpoint)?;
        apply_mutations(&mut bus, &spec.mutations)?;
        bus.try_run_until(spec.run_to)
            .map_err(|e| PersistError::mismatch(format!("fork branch {idx}: {e}")))?;
        Ok(analyze(idx, bus))
    });
    results.into_iter().collect()
}
