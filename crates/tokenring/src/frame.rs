//! IEEE 802.5 frame structure.
//!
//! The TAP tool of §5 records each frame's Access Control byte, Frame
//! Control byte and total length, and the paper's traffic analysis (§5.3)
//! classifies ring traffic into ~20-byte MAC frames, 60–300-byte ARP/AFS
//! frames, 1522-byte file-transfer frames and 2000-byte CTMSP frames — so
//! the model carries real AC/FC encodings and real on-wire lengths.

/// A station's position on the ring (attachment order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub u32);

/// Globally unique frame identifier (simulation bookkeeping, not on-wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// MAC (Medium Access Control) frame subtypes the model generates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MacKind {
    /// Ring Purge — transmitted by the Active Monitor after an error or a
    /// station insertion (§5: "Ring Purges occur ... primarily due to new
    /// stations inserting").
    RingPurge,
    /// Active Monitor Present — the monitor's periodic ring poll.
    ActiveMonitorPresent,
    /// Standby Monitor Present — downstream stations' poll responses.
    StandbyMonitorPresent,
    /// Claim Token — monitor contention after a lost token.
    ClaimToken,
}

/// Link-layer protocol discriminator for LLC frames.
///
/// §3 of the paper adds CTMSP "to the same layer as ARP and IP" with its
/// own split point in the receive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Proto {
    /// Address Resolution Protocol.
    Arp,
    /// Internet Protocol (carries the TCP/UDP baseline and AFS traffic).
    Ip,
    /// The paper's Continuous Time Media System Protocol.
    Ctmsp,
    /// Anything else seen on a campus ring.
    Other,
}

/// Frame payload classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A MAC frame; never passed to the host by the paper's adapters.
    Mac(MacKind),
    /// An LLC (data) frame for the given protocol.
    Llc(Proto),
}

/// Fixed per-frame overhead on the wire: SD(1) + AC(1) + FC(1) + DA(6) +
/// SA(6) + FCS(4) + ED(1) + FS(1) = 21 bytes.
pub const FRAME_OVERHEAD_BYTES: u32 = 21;

/// A token is SD + AC + ED = 3 bytes = 24 bits.
pub const TOKEN_BITS: u64 = 24;

/// One frame submitted to (or observed on) the ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Simulation-unique id.
    pub id: FrameId,
    /// Transmitting station.
    pub src: StationId,
    /// Destination station; `None` is broadcast (MAC frames, ARP).
    pub dst: Option<StationId>,
    /// MAC or LLC + protocol.
    pub kind: FrameKind,
    /// Information-field length in bytes (excluding the 21-byte overhead).
    pub info_len: u32,
    /// Requested ring access priority, 0–7 (§3: "CTMSP uses a Token Ring
    /// priority above any other traffic on our Token Ring").
    pub priority: u8,
    /// Opaque tag carried for the measurement tools (CTMSP packet number).
    pub tag: u64,
}

impl Frame {
    /// Total on-wire length in bytes.
    pub fn wire_bytes(&self) -> u32 {
        self.info_len + FRAME_OVERHEAD_BYTES
    }

    /// Total on-wire length in bits.
    pub fn wire_bits(&self) -> u64 {
        u64::from(self.wire_bytes()) * 8
    }

    /// True if this is a MAC frame.
    pub fn is_mac(&self) -> bool {
        matches!(self.kind, FrameKind::Mac(_))
    }

    /// The Access Control byte as it would appear on the wire.
    ///
    /// Bit layout (MSB first): PPP T M RRR — priority, token bit (0 in a
    /// frame), monitor bit, reservation. The model stamps the reservation
    /// bits at strip time; here they are reported as zero.
    pub fn ac_byte(&self) -> u8 {
        ac_byte(self.priority, false, 0)
    }

    /// The Frame Control byte: `00` (MAC) or `01` (LLC) in the two
    /// frame-type bits, subtype in the low bits for MAC frames.
    pub fn fc_byte(&self) -> u8 {
        match self.kind {
            // Top bits 00 = MAC, subtype in the low bits.
            FrameKind::Mac(k) => match k {
                MacKind::ClaimToken => 0x03,
                MacKind::RingPurge => 0x04,
                MacKind::ActiveMonitorPresent => 0x05,
                MacKind::StandbyMonitorPresent => 0x06,
            },
            FrameKind::Llc(_) => 0x40,
        }
    }
}

/// Appends a [`FrameKind`] as a `(class, sub)` tag pair.
pub fn persist_frame_kind(enc: &mut ctms_sim::Enc, kind: FrameKind) {
    let (class, sub) = match kind {
        FrameKind::Mac(MacKind::RingPurge) => (0u8, 0u8),
        FrameKind::Mac(MacKind::ActiveMonitorPresent) => (0, 1),
        FrameKind::Mac(MacKind::StandbyMonitorPresent) => (0, 2),
        FrameKind::Mac(MacKind::ClaimToken) => (0, 3),
        FrameKind::Llc(Proto::Arp) => (1, 0),
        FrameKind::Llc(Proto::Ip) => (1, 1),
        FrameKind::Llc(Proto::Ctmsp) => (1, 2),
        FrameKind::Llc(Proto::Other) => (1, 3),
    };
    enc.u8(class);
    enc.u8(sub);
}

/// Decodes a [`FrameKind`] written by [`persist_frame_kind`].
pub fn decode_frame_kind(dec: &mut ctms_sim::Dec<'_>) -> Result<FrameKind, ctms_sim::PersistError> {
    let class = dec.u8()?;
    let sub = dec.u8()?;
    Ok(match (class, sub) {
        (0, 0) => FrameKind::Mac(MacKind::RingPurge),
        (0, 1) => FrameKind::Mac(MacKind::ActiveMonitorPresent),
        (0, 2) => FrameKind::Mac(MacKind::StandbyMonitorPresent),
        (0, 3) => FrameKind::Mac(MacKind::ClaimToken),
        (1, 0) => FrameKind::Llc(Proto::Arp),
        (1, 1) => FrameKind::Llc(Proto::Ip),
        (1, 2) => FrameKind::Llc(Proto::Ctmsp),
        (1, 3) => FrameKind::Llc(Proto::Other),
        (_, tag) => {
            return Err(ctms_sim::PersistError::BadTag {
                what: "frame kind",
                tag,
            })
        }
    })
}

impl ctms_sim::Persist for Frame {
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.u64(self.id.0);
        enc.u32(self.src.0);
        enc.opt(self.dst.as_ref(), |e, d| e.u32(d.0));
        persist_frame_kind(enc, self.kind);
        enc.u32(self.info_len);
        enc.u8(self.priority);
        enc.u64(self.tag);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        *self = decode_frame(dec)?;
        Ok(())
    }
}

/// Decodes one [`Frame`] persisted by its [`ctms_sim::Persist`] impl
/// (frames live inside queues that are rebuilt element-by-element, so a
/// decode-to-new entry point is needed alongside in-place restore).
pub fn decode_frame(dec: &mut ctms_sim::Dec<'_>) -> Result<Frame, ctms_sim::PersistError> {
    let id = FrameId(dec.u64()?);
    let src = StationId(dec.u32()?);
    let dst = dec.opt(|d| Ok(StationId(d.u32()?)))?;
    let kind = decode_frame_kind(dec)?;
    Ok(Frame {
        id,
        src,
        dst,
        kind,
        info_len: dec.u32()?,
        priority: dec.u8()?,
        tag: dec.u64()?,
    })
}

/// Builds an Access Control byte from fields.
pub fn ac_byte(priority: u8, token: bool, reservation: u8) -> u8 {
    assert!(priority <= 7, "AC priority out of range");
    assert!(reservation <= 7, "AC reservation out of range");
    (priority << 5) | (u8::from(token) << 4) | reservation
}

/// Splits an Access Control byte into `(priority, token, reservation)`.
/// The monitor bit (bit 3 of the low nibble) is not modelled.
pub fn ac_fields(ac: u8) -> (u8, bool, u8) {
    ((ac >> 5) & 0x7, (ac >> 4) & 1 == 1, ac & 0x7)
}

/// Returns true if the FC byte marks a MAC frame.
pub fn fc_is_mac(fc: u8) -> bool {
    fc & 0xC0 == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc_frame(info_len: u32, priority: u8) -> Frame {
        Frame {
            id: FrameId(1),
            src: StationId(0),
            dst: Some(StationId(1)),
            kind: FrameKind::Llc(Proto::Ctmsp),
            info_len,
            priority,
            tag: 7,
        }
    }

    #[test]
    fn wire_length_includes_overhead() {
        // §5.1: 2000-byte CTMSP packet "excluding the Token Ring protocol
        // bytes" — so 2021 bytes on the wire.
        let f = llc_frame(2000, 4);
        assert_eq!(f.wire_bytes(), 2021);
        assert_eq!(f.wire_bits(), 2021 * 8);
    }

    #[test]
    fn mac_frames_are_small() {
        let f = Frame {
            id: FrameId(2),
            src: StationId(3),
            dst: None,
            kind: FrameKind::Mac(MacKind::ActiveMonitorPresent),
            info_len: 4,
            priority: 0,
            tag: 0,
        };
        // §4: "MAC frame packets are on the order of 20 bytes".
        assert_eq!(f.wire_bytes(), 25);
        assert!(f.is_mac());
        assert!(fc_is_mac(f.fc_byte()));
    }

    #[test]
    fn ac_byte_round_trips() {
        for p in 0..=7u8 {
            for r in 0..=7u8 {
                for t in [false, true] {
                    let ac = ac_byte(p, t, r);
                    assert_eq!(ac_fields(ac), (p, t, r));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "priority out of range")]
    fn ac_priority_bounds() {
        let _ = ac_byte(8, false, 0);
    }

    #[test]
    fn fc_distinguishes_llc() {
        let f = llc_frame(100, 0);
        assert!(!fc_is_mac(f.fc_byte()));
        assert!(!f.is_mac());
    }

    #[test]
    fn token_is_24_bits() {
        assert_eq!(TOKEN_BITS, 24);
    }
}
