//! The 4 Mbit Token Ring medium.
//!
//! Models the token-access protocol the paper's guarantees rest on (§3):
//!
//! * **single token** — one frame occupies the ring at a time; a
//!   transmitter finishes a frame before the next can start, which (with an
//!   in-order driver queue) yields the paper's packet-sequence guarantee;
//! * **priority and reservation** — a station only captures a token whose
//!   priority is at or below its frame's priority; at token release the
//!   priority is recomputed from the highest-priority frame waiting
//!   anywhere on the ring (this is the effect the 802.5
//!   reservation/stacking machinery achieves within one rotation);
//! * **hardware delivery confirmation** — the transmitter strips its own
//!   frame and sees the address-recognized/frame-copied bits, so it knows
//!   at interrupt level whether the packet was received;
//! * **Ring Purge** — the Active Monitor resets the ring after station
//!   insertions and soft errors; any in-flight frame is lost *silently*
//!   (the paper's adapters raise no interrupt for purges, §4), and the
//!   medium is unusable for the purge sequence's duration.
//!
//! The ring is a passive [`Component`]: adapters submit frames, the ring
//! reports deliveries, strips, observations (for the TAP monitor) and purge
//! activity.

use crate::frame::{Frame, FrameId, FrameKind, MacKind, StationId, TOKEN_BITS};
use ctms_sim::{Component, Dur, Pcg32, SimTime};
use std::collections::VecDeque;

/// Static configuration of the ring.
#[derive(Clone, Debug)]
pub struct RingConfig {
    /// Signalling rate; the paper's ring is 4 Mbit/s.
    pub bit_rate_bps: u64,
    /// Per-station repeat latency in bits.
    pub station_delay_bits: u64,
    /// Fixed latency (active-monitor elastic buffer + propagation) in bits.
    pub fixed_latency_bits: u64,
    /// Duration of a single Ring Purge (monitor purge frame circulation +
    /// ring recovery). Calibrated so that ~10 back-to-back purges plus the
    /// ring timeout span the paper's 120–130 ms outliers.
    pub purge_duration: Dur,
    /// Additional one-off "ring timing out and resetting" cost at the start
    /// of a purge sequence (§5.3 attributes ~10 ms to this).
    pub purge_timeout: Dur,
    /// Number of back-to-back purges for a station insertion, inclusive
    /// range (§5.3: "on the order of 10 Ring Purges back to back").
    pub insertion_purges: (u32, u32),
    /// Poisson rate of background MAC frames (ring polls etc.); the paper
    /// observes 50–250 MAC frames/s (0.2–1.0 % of a 4 Mbit ring, §4).
    pub mac_rate_per_sec: f64,
    /// Whether the 802.5 priority mechanism is honoured. Disabling it is
    /// the §5.3 ablation "use of the same level of priority as all other
    /// packets on the ring".
    pub priority_enabled: bool,
    /// Per-station transmit queue cap; overflow frames are dropped with a
    /// [`RingOut::QueueDrop`].
    pub station_queue_cap: usize,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            bit_rate_bps: 4_000_000,
            station_delay_bits: 2,
            fixed_latency_bits: 32,
            purge_duration: Dur::from_ms(11),
            purge_timeout: Dur::from_ms(10),
            insertion_purges: (8, 12),
            mac_rate_per_sec: 50.0,
            priority_enabled: true,
            station_queue_cap: 64,
        }
    }
}

/// Ring disturbances injected by the workload layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disturb {
    /// A station inserting/reinserting into the ring: a burst of purges.
    StationInsertion,
    /// A transient soft error: a single purge.
    SoftError,
}

/// Commands into the ring.
#[derive(Clone, Debug)]
pub enum RingCmd {
    /// Submit a frame for transmission from its `src` station's queue.
    Submit(Frame),
    /// Inject a disturbance (purge sequence).
    Disturb(Disturb),
}

/// A TAP-visible observation of a frame on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameView {
    /// Access Control byte.
    pub ac: u8,
    /// Frame Control byte.
    pub fc: u8,
    /// Total on-wire length in bytes.
    pub wire_bytes: u32,
    /// Transmitting station.
    pub src: StationId,
    /// Destination (None = broadcast).
    pub dst: Option<StationId>,
    /// Frame classification.
    pub kind: FrameKind,
    /// Measurement tag (CTMSP packet number).
    pub tag: u64,
    /// Simulation frame id.
    pub id: FrameId,
}

/// Events out of the ring.
#[derive(Clone, Debug)]
pub enum RingOut {
    /// The frame has fully arrived at the destination adapter.
    Delivered { to: StationId, frame: Frame },
    /// The transmitter stripped its frame: transmission is over.
    /// `delivered` is the copied-bit ground truth; on a purge loss the
    /// paper's adapter surfaces no error, so the adapter layer treats every
    /// strip as a normal transmit completion.
    Stripped {
        from: StationId,
        id: FrameId,
        tag: u64,
        delivered: bool,
    },
    /// A promiscuous monitor (TAP) would record this frame here.
    Observed(FrameView),
    /// An in-flight frame was destroyed by a purge.
    LostToPurge { id: FrameId, tag: u64 },
    /// A purge sequence began (`purges` back-to-back purges).
    PurgeStarted { purges: u32 },
    /// The purge sequence finished; the ring is usable again.
    PurgeEnded,
    /// A station transmit queue overflowed and dropped this frame.
    QueueDrop { station: StationId, id: FrameId },
}

#[derive(Debug)]
struct Station {
    queue: VecDeque<(Frame, SimTime)>,
}

#[derive(Clone, Debug)]
struct Busy {
    frame: Frame,
    captured_at: SimTime,
    /// Priority of the token this transmission captured (the release
    /// priority before any raise).
    captured_priority: u8,
    observe_at: Option<SimTime>,
    /// Pending deliveries, earliest first. Unicast frames have one entry;
    /// broadcast LLC frames (ARP) one per other inserted station.
    deliveries: VecDeque<(SimTime, StationId)>,
    strip_at: SimTime,
    will_deliver: bool,
}

/// What the free token does next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TokenAction {
    /// A station captures it to transmit.
    Capture(StationId),
    /// A stacking station catches it to lower the priority.
    Lower(StationId),
}

#[derive(Clone, Debug)]
enum Medium {
    /// Token circulating from `at` since `released_at` with `priority`.
    TokenFree {
        released_at: SimTime,
        at: StationId,
        priority: u8,
    },
    /// A frame on the ring.
    Busy(Busy),
    /// Purge sequence in progress.
    Purging {
        until: SimTime,
        obs: VecDeque<SimTime>,
    },
}

/// Running counters for utilization and reliability claims.
#[derive(Clone, Copy, Debug, Default)]
pub struct RingStats {
    /// Frames fully transmitted (stripped).
    pub frames_sent: u64,
    /// Frames delivered to their destination.
    pub frames_delivered: u64,
    /// Frames destroyed by purges.
    pub frames_lost: u64,
    /// MAC frames transmitted.
    pub mac_frames: u64,
    /// Individual purges (not sequences).
    pub purges: u64,
    /// Purge sequences (disturbances).
    pub purge_sequences: u64,
    /// Nanoseconds the medium carried a frame.
    pub busy_ns: u64,
    /// Frames dropped at station queues.
    pub queue_drops: u64,
    /// Token priority raises (a station stacked).
    pub priority_raises: u64,
    /// Token priority lowers (a stacking station caught its token).
    pub priority_lowers: u64,
}

impl ctms_sim::Instrument for RingStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("frames_sent", self.frames_sent);
        scope.counter("frames_delivered", self.frames_delivered);
        scope.counter("frames_lost", self.frames_lost);
        scope.counter("mac_frames", self.mac_frames);
        scope.counter("purges", self.purges);
        scope.counter("purge_sequences", self.purge_sequences);
        scope.counter("busy_ns", self.busy_ns);
        scope.counter("queue_drops", self.queue_drops);
        scope.counter("priority_raises", self.priority_raises);
        scope.counter("priority_lowers", self.priority_lowers);
    }
}

/// The Token Ring medium model. See the module docs.
#[derive(Debug)]
pub struct TokenRing {
    cfg: RingConfig,
    rng: Pcg32,
    stations: Vec<Station>,
    state: Medium,
    next_mac_at: Option<SimTime>,
    next_frame_id: u64,
    /// 802.5 priority stacking: stations that raised the token priority
    /// record `(old, new, station)` and must later catch the token to
    /// lower it. The protocol guarantees LIFO order, so one stack
    /// suffices for the whole ring.
    stack: Vec<(u8, u8, StationId)>,
    stats: RingStats,
    /// Station indices with a non-empty transmit queue, ascending. The
    /// deadline query (`next_token_action`, via the harness scheduler's
    /// reschedule) runs on every touched instant and only cares about
    /// stations with work; keeping the busy set explicit turns its scan
    /// of all stations into a scan of the (usually 0–2) waiting ones.
    /// Ascending order preserves the lowest-station-wins tie-break of
    /// the full scan. Derived state: rebuilt from the queues on restore.
    busy: Vec<u32>,
}

impl TokenRing {
    /// Creates a ring with no stations; the token idles at position 0.
    pub fn new(cfg: RingConfig, mut rng: Pcg32) -> Self {
        let next_mac_at = if cfg.mac_rate_per_sec > 0.0 {
            Some(SimTime::ZERO + rng.exp_dur(Dur::from_secs_f64(1.0 / cfg.mac_rate_per_sec)))
        } else {
            None
        };
        TokenRing {
            cfg,
            rng,
            stations: Vec::new(),
            state: Medium::TokenFree {
                released_at: SimTime::ZERO,
                at: StationId(0),
                priority: 0,
            },
            next_mac_at,
            next_frame_id: 1,
            stack: Vec::new(),
            stats: RingStats::default(),
            busy: Vec::new(),
        }
    }

    /// Marks `idx`'s queue non-empty (sorted insert, no-op if present).
    fn mark_busy(&mut self, idx: u32) {
        if let Err(slot) = self.busy.binary_search(&idx) {
            self.busy.insert(slot, idx);
        }
    }

    /// Marks `idx`'s queue empty.
    fn mark_idle(&mut self, idx: u32) {
        if let Ok(slot) = self.busy.binary_search(&idx) {
            self.busy.remove(slot);
        }
    }

    /// Attaches a station before the run starts and returns its id.
    pub fn add_station(&mut self) -> StationId {
        self.stations.push(Station {
            queue: VecDeque::new(),
        });
        StationId(self.stations.len() as u32 - 1)
    }

    /// Number of attached stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Allocates a fresh simulation-unique frame id.
    pub fn alloc_frame_id(&mut self) -> FrameId {
        let id = FrameId(self.next_frame_id);
        self.next_frame_id += 1;
        id
    }

    /// The configured ring.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// Duration of one bit on the wire.
    pub fn bit_time(&self) -> Dur {
        Dur::from_ns(1_000_000_000 / self.cfg.bit_rate_bps)
    }

    /// One full rotation of the idle ring.
    pub fn ring_latency(&self) -> Dur {
        let bits = self.stations.len() as u64 * self.cfg.station_delay_bits
            + self.cfg.fixed_latency_bits
            + TOKEN_BITS;
        self.bit_time() * bits.max(1)
    }

    /// Time for the leading edge of a signal to travel from `from` to `to`
    /// (a full rotation when `from == to`).
    fn walk(&self, from: StationId, to: StationId) -> Dur {
        let n = self.stations.len() as u64;
        if n == 0 {
            return self.ring_latency();
        }
        let l = self.ring_latency();
        let hops = (u64::from(to.0) + n - u64::from(from.0)) % n;
        if hops == 0 {
            l
        } else {
            Dur::from_ns(l.as_ns() * hops / n)
        }
    }

    /// Transmission time of a frame at the ring's bit rate.
    pub fn tx_time(&self, frame: &Frame) -> Dur {
        self.bit_time() * frame.wire_bits()
    }

    /// Earliest instant the free token can be captured by station `j`,
    /// given its head frame was submitted at `submitted`.
    fn capture_time(
        &self,
        released_at: SimTime,
        from: StationId,
        j: StationId,
        submitted: SimTime,
    ) -> SimTime {
        let l = self.ring_latency();
        let first = released_at + self.walk(from, j);
        if first >= submitted {
            first
        } else {
            let behind = submitted.since(first).as_ns();
            let k = behind.div_ceil(l.as_ns().max(1));
            first + l * k
        }
    }

    /// What happens to the current free token next.
    fn next_token_action(&self) -> Option<(TokenAction, SimTime)> {
        let Medium::TokenFree {
            released_at,
            at,
            priority,
        } = &self.state
        else {
            return None;
        };
        let mut best: Option<(StationId, SimTime)> = None;
        for &i in &self.busy {
            let sid = StationId(i);
            let (frame, submitted) = self.stations[i as usize]
                .queue
                .front()
                .expect("busy set tracks non-empty queues");
            if self.cfg.priority_enabled && frame.priority < *priority {
                continue;
            }
            let t = self.capture_time(*released_at, *at, sid, *submitted);
            match best {
                Some((_, bt)) if bt <= t => {}
                _ => best = Some((sid, t)),
            }
        }
        if let Some((sid, t)) = best {
            return Some((TokenAction::Capture(sid), t));
        }
        // 802.5 stacking: with no eligible transmitter, the station that
        // raised the priority catches the raised token on its next pass
        // and re-releases it lower (one extra rotation of latency that a
        // global-knowledge model would skip).
        if self.cfg.priority_enabled {
            if let Some(&(_, new, station)) = self.stack.last() {
                if new == *priority && *priority > 0 {
                    let t = self.capture_time(*released_at, *at, station, *released_at);
                    return Some((TokenAction::Lower(station), t));
                }
            }
        }
        None
    }

    /// Priority the next token should carry: the highest priority waiting
    /// anywhere (the one-rotation effect of 802.5 reservations — stations
    /// set the AC reservation bits in every passing frame), or 0.
    fn reservation_priority(&self) -> u8 {
        if !self.cfg.priority_enabled {
            return 0;
        }
        self.busy
            .iter()
            .filter_map(|&i| self.stations[i as usize].queue.front())
            .map(|(f, _)| f.priority)
            .max()
            .unwrap_or(0)
    }

    /// Releases the token at `station` after a transmission that captured
    /// the token at `captured_priority`, applying the 802.5 raise rule.
    fn release_token(&mut self, now: SimTime, station: StationId, captured_priority: u8) {
        let res = self.reservation_priority();
        let priority = if res > captured_priority {
            // Raise: this station becomes a stacking station and owes the
            // ring a matching lower.
            self.stack.push((captured_priority, res, station));
            self.stats.priority_raises += 1;
            res
        } else {
            captured_priority
        };
        self.state = Medium::TokenFree {
            released_at: now,
            at: station,
            priority,
        };
    }

    fn view(frame: &Frame) -> FrameView {
        FrameView {
            ac: frame.ac_byte(),
            fc: frame.fc_byte(),
            wire_bytes: frame.wire_bytes(),
            src: frame.src,
            dst: frame.dst,
            kind: frame.kind,
            tag: frame.tag,
            id: frame.id,
        }
    }

    /// Begins transmitting `frame` from its source at `now`, having
    /// captured a token of priority `captured_priority`.
    fn begin_transmit(&mut self, now: SimTime, frame: Frame, captured_priority: u8) {
        let tx = self.tx_time(&frame);
        let l = self.ring_latency();
        let mut deliveries: Vec<(SimTime, StationId)> = Vec::new();
        match frame.dst {
            Some(d) if (d.0 as usize) < self.stations.len() => {
                deliveries.push((now + self.walk(frame.src, d) + tx, d));
            }
            Some(_) => {}
            None => {
                // Broadcast: LLC frames (ARP) are copied by every other
                // station; MAC frames stay between adapters (§4).
                if !frame.is_mac() {
                    for i in 0..self.stations.len() as u32 {
                        let d = StationId(i);
                        if d != frame.src {
                            deliveries.push((now + self.walk(frame.src, d) + tx, d));
                        }
                    }
                }
            }
        }
        deliveries.sort();
        let will_deliver = !deliveries.is_empty();
        // The transmitter strips its frame as it returns; the strip (and
        // with it the copied-bit delivery confirmation of §3) completes
        // when the frame's tail has travelled the whole ring: tx + L.
        // Delivery at any destination (walk ≤ L after each bit leaves the
        // source) therefore always precedes the strip.
        let strip_at = now + tx + l;
        self.state = Medium::Busy(Busy {
            observe_at: Some(now + tx),
            deliveries: deliveries.into_iter().collect(),
            strip_at,
            captured_at: now,
            captured_priority,
            frame,
            will_deliver,
        });
    }

    /// Starts a purge sequence of `purges` purges at `now`.
    fn begin_purge(&mut self, now: SimTime, purges: u32, sink: &mut Vec<RingOut>) {
        self.stats.purge_sequences += 1;
        self.stats.purges += u64::from(purges);
        // Destroy any in-flight frame, silently for the transmitter.
        if let Medium::Busy(b) = &self.state {
            let delivered_already = b.deliveries.is_empty() && b.will_deliver;
            // MAC frames are generated inside the adapters; hosts never
            // submitted them and see no completion for them.
            if !b.frame.is_mac() {
                sink.push(RingOut::Stripped {
                    from: b.frame.src,
                    id: b.frame.id,
                    tag: b.frame.tag,
                    delivered: delivered_already,
                });
            }
            if !delivered_already {
                self.stats.frames_lost += 1;
                sink.push(RingOut::LostToPurge {
                    id: b.frame.id,
                    tag: b.frame.tag,
                });
            } else {
                self.stats.frames_delivered += 1;
            }
            self.stats.frames_sent += 1;
            self.stats.busy_ns += now.since(b.captured_at).as_ns();
        }
        let mut until = now + self.cfg.purge_timeout;
        let mut obs = VecDeque::new();
        for _ in 0..purges {
            obs.push_back(until);
            until += self.cfg.purge_duration;
        }
        sink.push(RingOut::PurgeStarted { purges });
        self.state = Medium::Purging { until, obs };
    }
}

impl ctms_sim::Persist for TokenRing {
    /// Dynamic ring state: rng, per-station queues, the medium state
    /// machine, MAC-traffic schedule, frame-id allocator, priority stack
    /// and counters. `cfg` and the station count are structural — the
    /// rebuilt ring must already have them (the restore verifies the
    /// station count).
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        self.rng.persist(enc);
        enc.seq_len(self.stations.len());
        for st in &self.stations {
            enc.seq_len(st.queue.len());
            for (f, at) in &st.queue {
                f.persist(enc);
                enc.time(*at);
            }
        }
        match &self.state {
            Medium::TokenFree {
                released_at,
                at,
                priority,
            } => {
                enc.u8(0);
                enc.time(*released_at);
                enc.u32(at.0);
                enc.u8(*priority);
            }
            Medium::Busy(b) => {
                enc.u8(1);
                b.frame.persist(enc);
                enc.time(b.captured_at);
                enc.u8(b.captured_priority);
                enc.opt(b.observe_at.as_ref(), |e, t| e.time(*t));
                enc.seq_len(b.deliveries.len());
                for (t, d) in &b.deliveries {
                    enc.time(*t);
                    enc.u32(d.0);
                }
                enc.time(b.strip_at);
                enc.bool(b.will_deliver);
            }
            Medium::Purging { until, obs } => {
                enc.u8(2);
                enc.time(*until);
                enc.seq_len(obs.len());
                for t in obs {
                    enc.time(*t);
                }
            }
        }
        enc.opt(self.next_mac_at.as_ref(), |e, t| e.time(*t));
        enc.u64(self.next_frame_id);
        enc.seq_len(self.stack.len());
        for (old, new, st) in &self.stack {
            enc.u8(*old);
            enc.u8(*new);
            enc.u32(st.0);
        }
        let s = &self.stats;
        for v in [
            s.frames_sent,
            s.frames_delivered,
            s.frames_lost,
            s.mac_frames,
            s.purges,
            s.purge_sequences,
            s.busy_ns,
            s.queue_drops,
            s.priority_raises,
            s.priority_lowers,
        ] {
            enc.u64(v);
        }
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        use crate::frame::decode_frame;
        self.rng.restore(dec)?;
        let n = dec.seq_len()?;
        if n != self.stations.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "ring checkpoint has {n} stations, rebuilt ring has {}",
                self.stations.len()
            )));
        }
        for st in &mut self.stations {
            st.queue = dec
                .seq(|d| Ok((decode_frame(d)?, d.time()?)))?
                .into_iter()
                .collect();
        }
        // Rebuild the derived busy set (ascending by construction).
        self.busy.clear();
        for (i, st) in self.stations.iter().enumerate() {
            if !st.queue.is_empty() {
                self.busy.push(i as u32);
            }
        }
        self.state = match dec.u8()? {
            0 => Medium::TokenFree {
                released_at: dec.time()?,
                at: StationId(dec.u32()?),
                priority: dec.u8()?,
            },
            1 => Medium::Busy(Busy {
                frame: decode_frame(dec)?,
                captured_at: dec.time()?,
                captured_priority: dec.u8()?,
                observe_at: dec.opt(|d| d.time())?,
                deliveries: dec
                    .seq(|d| Ok((d.time()?, StationId(d.u32()?))))?
                    .into_iter()
                    .collect(),
                strip_at: dec.time()?,
                will_deliver: dec.bool()?,
            }),
            2 => Medium::Purging {
                until: dec.time()?,
                obs: dec.seq(|d| d.time())?.into_iter().collect(),
            },
            tag => {
                return Err(ctms_sim::PersistError::BadTag {
                    what: "ring medium",
                    tag,
                })
            }
        };
        self.next_mac_at = dec.opt(|d| d.time())?;
        self.next_frame_id = dec.u64()?;
        self.stack = dec.seq(|d| Ok((d.u8()?, d.u8()?, StationId(d.u32()?))))?;
        self.stats = RingStats {
            frames_sent: dec.u64()?,
            frames_delivered: dec.u64()?,
            frames_lost: dec.u64()?,
            mac_frames: dec.u64()?,
            purges: dec.u64()?,
            purge_sequences: dec.u64()?,
            busy_ns: dec.u64()?,
            queue_drops: dec.u64()?,
            priority_raises: dec.u64()?,
            priority_lowers: dec.u64()?,
        };
        Ok(())
    }
}

impl Component for TokenRing {
    type Cmd = RingCmd;
    type Out = RingOut;

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
        scope.gauge("stations", self.stations.len() as i64);
    }

    fn next_deadline(&self) -> Option<SimTime> {
        let state_deadline = match &self.state {
            Medium::TokenFree { .. } => self.next_token_action().map(|(_, t)| t),
            Medium::Busy(b) => ctms_sim::earliest([
                b.observe_at,
                b.deliveries.front().map(|&(t, _)| t),
                Some(b.strip_at),
            ]),
            Medium::Purging { until, obs } => {
                ctms_sim::earliest([obs.front().copied(), Some(*until)])
            }
        };
        ctms_sim::earliest([state_deadline, self.next_mac_at])
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<RingOut>) {
        // Background MAC traffic generation.
        if self.next_mac_at == Some(now) {
            let mean = Dur::from_secs_f64(1.0 / self.cfg.mac_rate_per_sec);
            self.next_mac_at = Some(now + self.rng.exp_dur(mean));
            if !self.stations.is_empty() {
                let src = StationId(self.rng.index(self.stations.len()) as u32);
                let id = self.alloc_frame_id();
                let kind = if self.rng.chance(0.5) {
                    MacKind::ActiveMonitorPresent
                } else {
                    MacKind::StandbyMonitorPresent
                };
                let frame = Frame {
                    id,
                    src,
                    dst: None,
                    kind: FrameKind::Mac(kind),
                    info_len: 4,
                    priority: 0,
                    tag: 0,
                };
                self.handle(now, RingCmd::Submit(frame), sink);
            }
        }

        loop {
            match &mut self.state {
                Medium::TokenFree { priority, .. } => {
                    let cur_priority = *priority;
                    match self.next_token_action() {
                        Some((TokenAction::Capture(sid), t)) if t == now => {
                            let (frame, _) = self.stations[sid.0 as usize]
                                .queue
                                .pop_front()
                                .expect("candidate has a queued frame");
                            if self.stations[sid.0 as usize].queue.is_empty() {
                                self.mark_idle(sid.0);
                            }
                            self.begin_transmit(now, frame, cur_priority);
                            // Fall through: a zero-length frame could
                            // complete instantly (not in practice).
                            continue;
                        }
                        Some((TokenAction::Lower(station), t)) if t == now => {
                            // The stacking station catches its raised
                            // token and re-releases it at the stacked
                            // priority (or re-raises if a new reservation
                            // arrived above it meanwhile).
                            let (old, _, st) = self.stack.pop().expect("lower implies stacker");
                            debug_assert_eq!(st, station);
                            self.stats.priority_lowers += 1;
                            self.release_token(now, station, old);
                            continue;
                        }
                        _ => break,
                    }
                }
                Medium::Busy(b) => {
                    let mut progressed = false;
                    if b.observe_at == Some(now) {
                        b.observe_at = None;
                        let v = Self::view(&b.frame);
                        if b.frame.is_mac() {
                            self.stats.mac_frames += 1;
                        }
                        sink.push(RingOut::Observed(v));
                        progressed = true;
                    }
                    while b.deliveries.front().map(|&(t, _)| t) == Some(now) {
                        let (_, to) = b.deliveries.pop_front().expect("checked front");
                        sink.push(RingOut::Delivered {
                            to,
                            frame: b.frame.clone(),
                        });
                        progressed = true;
                    }
                    if b.strip_at == now {
                        let b = b.clone();
                        self.stats.frames_sent += 1;
                        if b.will_deliver {
                            self.stats.frames_delivered += 1;
                        }
                        self.stats.busy_ns += now.since(b.captured_at).as_ns();
                        if !b.frame.is_mac() {
                            sink.push(RingOut::Stripped {
                                from: b.frame.src,
                                id: b.frame.id,
                                tag: b.frame.tag,
                                delivered: b.will_deliver,
                            });
                        }
                        self.release_token(now, b.frame.src, b.captured_priority);
                        continue;
                    }
                    if !progressed {
                        break;
                    }
                }
                Medium::Purging { until, obs } => {
                    if obs.front() == Some(&now) {
                        obs.pop_front();
                        let id = self.alloc_frame_id();
                        sink.push(RingOut::Observed(FrameView {
                            ac: crate::frame::ac_byte(7, false, 0),
                            fc: Frame {
                                id,
                                src: StationId(0),
                                dst: None,
                                kind: FrameKind::Mac(MacKind::RingPurge),
                                info_len: 4,
                                priority: 7,
                                tag: 0,
                            }
                            .fc_byte(),
                            wire_bytes: 25,
                            src: StationId(0),
                            dst: None,
                            kind: FrameKind::Mac(MacKind::RingPurge),
                            tag: 0,
                            id,
                        }));
                        continue;
                    }
                    if *until == now {
                        sink.push(RingOut::PurgeEnded);
                        // The purge resets the ring: new token at priority
                        // 0 from the Active Monitor, all stacks cleared.
                        self.stack.clear();
                        self.state = Medium::TokenFree {
                            released_at: now,
                            at: StationId(0),
                            priority: 0,
                        };
                        continue;
                    }
                    break;
                }
            }
        }
    }

    fn handle(&mut self, now: SimTime, cmd: RingCmd, sink: &mut Vec<RingOut>) {
        match cmd {
            RingCmd::Submit(frame) => {
                let idx = frame.src.0 as usize;
                assert!(
                    idx < self.stations.len(),
                    "submit from unattached station {:?}",
                    frame.src
                );
                let st = &mut self.stations[idx];
                if st.queue.len() >= self.cfg.station_queue_cap {
                    self.stats.queue_drops += 1;
                    sink.push(RingOut::QueueDrop {
                        station: frame.src,
                        id: frame.id,
                    });
                    return;
                }
                st.queue.push_back((frame, now));
                self.mark_busy(idx as u32);
            }
            RingCmd::Disturb(d) => {
                let purges = match d {
                    Disturb::StationInsertion => {
                        let (lo, hi) = self.cfg.insertion_purges;
                        self.rng.range_u64(u64::from(lo), u64::from(hi)) as u32
                    }
                    Disturb::SoftError => 1,
                };
                self.begin_purge(now, purges, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Proto;
    use ctms_sim::drain_component;

    fn ring_with(n: usize) -> TokenRing {
        let cfg = RingConfig {
            mac_rate_per_sec: 0.0, // quiet ring for deterministic tests
            ..RingConfig::default()
        };
        let mut r = TokenRing::new(cfg, Pcg32::new(1, 1));
        for _ in 0..n {
            r.add_station();
        }
        r
    }

    fn ctmsp_frame(r: &mut TokenRing, src: u32, dst: u32, len: u32, prio: u8, tag: u64) -> Frame {
        Frame {
            id: r.alloc_frame_id(),
            src: StationId(src),
            dst: Some(StationId(dst)),
            kind: FrameKind::Llc(Proto::Ctmsp),
            info_len: len,
            priority: prio,
            tag,
        }
    }

    fn submit(r: &mut TokenRing, now: SimTime, f: Frame) {
        let mut sink = Vec::new();
        r.handle(now, RingCmd::Submit(f), &mut sink);
        assert!(sink.is_empty(), "submit should not emit: {sink:?}");
    }

    #[test]
    fn bit_time_at_4mbit_is_250ns() {
        let r = ring_with(2);
        assert_eq!(r.bit_time(), Dur::from_ns(250));
    }

    #[test]
    fn single_frame_timing() {
        let mut r = ring_with(4);
        let f = ctmsp_frame(&mut r, 0, 2, 2000, 4, 1);
        let tx = r.tx_time(&f);
        // 2021 bytes * 8 bits * 250 ns = 4042 µs.
        assert_eq!(tx, Dur::from_us(4042));
        submit(&mut r, SimTime::ZERO, f);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        // Capture happens after the token walks 0 -> 0 is not needed; the
        // token starts at station 0 (released_at = 0) so capture is a full
        // rotation later (walk from 0 to 0 = L).
        let l = r.ring_latency();
        let strip = evs
            .iter()
            .find_map(|(t, e)| match e {
                RingOut::Stripped { delivered, .. } => Some((*t, *delivered)),
                _ => None,
            })
            .expect("stripped");
        assert!(strip.1, "frame delivered");
        // Strip completes when the frame tail has circled the whole ring.
        assert_eq!(strip.0, SimTime::ZERO + l + tx + l);
        let deliver = evs
            .iter()
            .find_map(|(t, e)| match e {
                RingOut::Delivered { to, .. } => Some((*t, *to)),
                _ => None,
            })
            .expect("delivered");
        assert_eq!(deliver.1, StationId(2));
        // Delivery = capture + walk(0->2) + tx, walk(0->2) = L/2 for 4 stations.
        assert_eq!(
            deliver.0,
            SimTime::ZERO + l + Dur::from_ns(l.as_ns() / 2) + tx
        );
        assert_eq!(r.stats().frames_sent, 1);
        assert_eq!(r.stats().frames_delivered, 1);
    }

    #[test]
    fn frames_serialize_one_at_a_time() {
        let mut r = ring_with(4);
        let f1 = ctmsp_frame(&mut r, 0, 2, 1500, 0, 1);
        let f2 = ctmsp_frame(&mut r, 1, 3, 1500, 0, 2);
        submit(&mut r, SimTime::ZERO, f1);
        submit(&mut r, SimTime::ZERO, f2);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let strips: Vec<SimTime> = evs
            .iter()
            .filter_map(|(t, e)| matches!(e, RingOut::Stripped { .. }).then_some(*t))
            .collect();
        assert_eq!(strips.len(), 2);
        let tx = Dur::from_us((1500 + 21) * 8 / 4); // bits * 250ns = bytes*8/4 us
        assert!(strips[1] >= strips[0] + tx, "no overlap on the medium");
    }

    #[test]
    fn priority_token_prefers_high_priority_frame() {
        let mut r = ring_with(8);
        // Seven low-priority frames queued at station 1, one CTMSP frame at
        // station 5 submitted later. With priority, the CTMSP frame goes
        // second (after the in-progress one), not eighth.
        for k in 0..7 {
            let f = ctmsp_frame(&mut r, 1, 2, 1500, 0, 100 + k);
            submit(&mut r, SimTime::ZERO, f);
        }
        let hi = ctmsp_frame(&mut r, 5, 6, 2000, 4, 1);
        submit(&mut r, SimTime::from_us(100), hi);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let order: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Stripped { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        let pos_hi = order.iter().position(|&t| t == 1).expect("hi sent");
        assert!(
            pos_hi <= 1,
            "high-priority frame should preempt the queue order: {order:?}"
        );
    }

    #[test]
    fn without_ring_priority_ctmsp_waits_in_line() {
        let mut r = ring_with(8);
        let cfg = RingConfig {
            mac_rate_per_sec: 0.0,
            priority_enabled: false,
            ..RingConfig::default()
        };
        r.cfg = cfg;
        for k in 0..7 {
            let f = ctmsp_frame(&mut r, 1, 2, 1500, 0, 100 + k);
            submit(&mut r, SimTime::ZERO, f);
        }
        let hi = ctmsp_frame(&mut r, 5, 6, 2000, 4, 1);
        submit(&mut r, SimTime::from_us(100), hi);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let order: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Stripped { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        let pos_hi = order.iter().position(|&t| t == 1).expect("hi sent");
        // Station 5 is downstream of station 1; token-order fairness means
        // the CTMSP frame goes after at least a couple of station-1 frames
        // but the ring alternates 1,5,1,1,... — the key contrast with the
        // priority test is that it is NOT first or second by preemption.
        assert!(pos_hi >= 1, "order: {order:?}");
    }

    #[test]
    fn purge_loses_in_flight_frame_silently() {
        let mut r = ring_with(4);
        let f = ctmsp_frame(&mut r, 0, 2, 2000, 4, 9);
        submit(&mut r, SimTime::ZERO, f);
        // Let the capture happen, then purge mid-transmission.
        let l = r.ring_latency();
        let mut sink = Vec::new();
        let capture = SimTime::ZERO + l;
        r.advance(capture, &mut sink);
        let mid = capture + Dur::from_us(1000);
        r.handle(mid, RingCmd::Disturb(Disturb::SoftError), &mut sink);
        let lost = sink
            .iter()
            .any(|e| matches!(e, RingOut::LostToPurge { tag: 9, .. }));
        assert!(lost, "in-flight frame lost: {sink:?}");
        // The strip still reports (silent loss at the adapter level).
        let stripped = sink.iter().any(|e| {
            matches!(
                e,
                RingOut::Stripped {
                    delivered: false,
                    tag: 9,
                    ..
                }
            )
        });
        assert!(stripped, "{sink:?}");
        assert_eq!(r.stats().frames_lost, 1);
        // After the purge ends the ring recovers and can carry frames.
        let evs = drain_component(&mut r, SimTime::from_secs(2));
        assert!(evs.iter().any(|(_, e)| matches!(e, RingOut::PurgeEnded)));
        let f2 = ctmsp_frame(&mut r, 0, 2, 2000, 4, 10);
        submit(&mut r, SimTime::from_secs(2), f2);
        let evs = drain_component(&mut r, SimTime::from_secs(3));
        assert!(evs
            .iter()
            .any(|(_, e)| matches!(e, RingOut::Delivered { .. })));
    }

    #[test]
    fn insertion_blocks_ring_on_the_order_of_120ms() {
        let mut r = ring_with(4);
        let mut sink = Vec::new();
        r.handle(
            SimTime::from_ms(1),
            RingCmd::Disturb(Disturb::StationInsertion),
            &mut sink,
        );
        let purges = sink
            .iter()
            .find_map(|e| match e {
                RingOut::PurgeStarted { purges } => Some(*purges),
                _ => None,
            })
            .expect("purge started");
        assert!((8..=12).contains(&purges));
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let end = evs
            .iter()
            .find_map(|(t, e)| matches!(e, RingOut::PurgeEnded).then_some(*t))
            .expect("purge ended");
        let blocked = end.since(SimTime::from_ms(1));
        // 10 ms timeout + 8..12 purges of 11 ms: 98–142 ms.
        assert!(
            blocked >= Dur::from_ms(98) && blocked <= Dur::from_ms(142),
            "blocked {blocked}"
        );
        // TAP sees one Ring Purge MAC frame per purge.
        let purge_frames = evs
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    RingOut::Observed(FrameView {
                        kind: FrameKind::Mac(MacKind::RingPurge),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(purge_frames as u32, purges);
    }

    #[test]
    fn mac_traffic_uses_fraction_of_ring() {
        let cfg = RingConfig {
            mac_rate_per_sec: 50.0, // paper's 0.2 % level
            ..RingConfig::default()
        };
        let mut r = TokenRing::new(cfg, Pcg32::new(7, 7));
        for _ in 0..70 {
            r.add_station();
        }
        let horizon = SimTime::from_secs(10);
        let _ = drain_component(&mut r, horizon);
        let stats = r.stats();
        assert!(
            stats.mac_frames > 350 && stats.mac_frames < 650,
            "~50/s expected, got {} over 10 s",
            stats.mac_frames
        );
        let util = stats.busy_ns as f64 / horizon.as_ns() as f64;
        assert!(util < 0.02, "MAC-only utilization small, got {util}");
    }

    #[test]
    fn queue_overflow_drops() {
        let cfg = RingConfig {
            mac_rate_per_sec: 0.0,
            station_queue_cap: 2,
            ..RingConfig::default()
        };
        let mut r = TokenRing::new(cfg, Pcg32::new(1, 1));
        r.add_station();
        r.add_station();
        let mut sink = Vec::new();
        for k in 0..3 {
            let f = ctmsp_frame(&mut r, 0, 1, 100, 0, k);
            r.handle(SimTime::ZERO, RingCmd::Submit(f), &mut sink);
        }
        assert_eq!(
            sink.iter()
                .filter(|e| matches!(e, RingOut::QueueDrop { .. }))
                .count(),
            1
        );
        assert_eq!(r.stats().queue_drops, 1);
    }

    #[test]
    fn broadcast_mac_frames_not_delivered_to_hosts() {
        let mut r = ring_with(3);
        let id = r.alloc_frame_id();
        let f = Frame {
            id,
            src: StationId(0),
            dst: None,
            kind: FrameKind::Mac(MacKind::ActiveMonitorPresent),
            info_len: 4,
            priority: 0,
            tag: 0,
        };
        submit(&mut r, SimTime::ZERO, f);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        assert!(evs.iter().any(|(_, e)| matches!(e, RingOut::Observed(_))));
        assert!(!evs
            .iter()
            .any(|(_, e)| matches!(e, RingOut::Delivered { .. })));
    }

    #[test]
    fn priority_raise_stacks_and_lowers_after_extra_rotation() {
        let mut r = ring_with(8);
        // A low-priority frame is transmitting when a priority-4 frame
        // arrives and reserves; the transmitter raises the token (and
        // stacks), the high frame goes, and the stacker must then catch
        // the raised token to lower it. An idle ring never raises: the
        // raise exists only to serve a reservation made during a
        // transmission.
        let lo = ctmsp_frame(&mut r, 5, 6, 1500, 0, 1);
        submit(&mut r, SimTime::ZERO, lo);
        let hi = ctmsp_frame(&mut r, 2, 3, 2000, 4, 2);
        submit(&mut r, SimTime::from_ms(2), hi);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let order: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Stripped { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![1, 2], "in-progress finishes, then priority");
        let stats = r.stats();
        assert_eq!(stats.priority_raises, 1, "token raised once");
        assert_eq!(stats.priority_lowers, 1, "and lowered by the stacker");
    }

    #[test]
    fn no_raise_when_only_low_priority_waits() {
        let mut r = ring_with(4);
        for k in 0..3 {
            let f = ctmsp_frame(&mut r, 0, 2, 500, 0, k);
            submit(&mut r, SimTime::ZERO, f);
        }
        let _ = drain_component(&mut r, SimTime::from_secs(1));
        assert_eq!(r.stats().priority_raises, 0);
        assert_eq!(r.stats().priority_lowers, 0);
    }

    #[test]
    fn sustained_high_priority_keeps_token_raised() {
        let mut r = ring_with(4);
        // Back-to-back priority-4 frames: one raise at the start, one
        // lower at the end, nothing in between.
        for k in 0..5u64 {
            let f = ctmsp_frame(&mut r, 0, 2, 2000, 4, k + 1);
            submit(&mut r, SimTime::from_ms(k), f);
        }
        let lo = ctmsp_frame(&mut r, 1, 3, 500, 0, 100);
        submit(&mut r, SimTime::ZERO, lo);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let order: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Stripped { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        // The low frame was closest to the idle token and goes first; the
        // priority-4 burst then reserves, raises once, holds the raised
        // token for all five frames, and lowers once at the end.
        assert_eq!(order, vec![100, 1, 2, 3, 4, 5]);
        let stats = r.stats();
        assert_eq!(stats.priority_raises, 1, "raised once for the burst");
        assert_eq!(stats.priority_lowers, 1);
    }

    #[test]
    fn nested_raises_lower_in_lifo_order() {
        let mut r = ring_with(8);
        // Priority 2 raises over 0; priority 6 then raises over 2; the
        // lowers must unwind 6 -> 2 -> 0.
        let mid = ctmsp_frame(&mut r, 1, 2, 2000, 2, 1);
        submit(&mut r, SimTime::ZERO, mid);
        // While the mid frame transmits, a high-priority frame arrives
        // (reservation above the raised level) and a low one too.
        let hi = ctmsp_frame(&mut r, 3, 4, 2000, 6, 2);
        submit(&mut r, SimTime::from_ms(2), hi);
        let mid2 = ctmsp_frame(&mut r, 5, 6, 2000, 2, 3);
        submit(&mut r, SimTime::from_ms(2), mid2);
        let lo = ctmsp_frame(&mut r, 7, 0, 500, 0, 4);
        submit(&mut r, SimTime::from_ms(2), lo);
        let evs = drain_component(&mut r, SimTime::from_secs(1));
        let order: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Stripped { tag, .. } => Some(*tag),
                _ => None,
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3, 4], "strict priority order");
        let stats = r.stats();
        assert_eq!(stats.priority_raises, stats.priority_lowers);
        assert!(stats.priority_raises >= 2, "{stats:?}");
    }

    #[test]
    fn purge_clears_priority_stack() {
        let mut r = ring_with(4);
        let hi = ctmsp_frame(&mut r, 0, 2, 2000, 4, 1);
        submit(&mut r, SimTime::ZERO, hi);
        // Purge mid-transmission, after the raise decision would be
        // pending; the new token must come back at priority 0.
        let l = r.ring_latency();
        let mut sink = Vec::new();
        r.advance(SimTime::ZERO + l, &mut sink);
        r.handle(
            SimTime::ZERO + l + Dur::from_us(500),
            RingCmd::Disturb(Disturb::SoftError),
            &mut sink,
        );
        let _ = drain_component(&mut r, SimTime::from_secs(1));
        // Low-priority traffic flows immediately after recovery.
        let lo = ctmsp_frame(&mut r, 1, 3, 500, 0, 9);
        submit(&mut r, SimTime::from_secs(1), lo);
        let evs = drain_component(&mut r, SimTime::from_secs(2));
        assert!(evs
            .iter()
            .any(|(_, e)| matches!(e, RingOut::Delivered { frame, .. } if frame.tag == 9)));
    }

    #[test]
    fn sequence_preserved_for_same_station_frames() {
        let mut r = ring_with(4);
        for k in 0..10 {
            let f = ctmsp_frame(&mut r, 0, 2, 2000, 4, k);
            submit(&mut r, SimTime::from_ms(k), f);
        }
        let evs = drain_component(&mut r, SimTime::from_secs(2));
        let tags: Vec<u64> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                RingOut::Delivered { frame, .. } => Some(frame.tag),
                _ => None,
            })
            .collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }
}
