//! # ctms-tokenring — IEEE 802.5 Token Ring model
//!
//! The 4 Mbit Token Ring of the paper's operational environment (§1): ~70
//! stations on one physical ring, single-token access, 802.5 priority and
//! reservation, an Active Monitor that purges the ring after station
//! insertions and soft errors, and background MAC-frame traffic using
//! 0.2–1.0 % of the ring (§4).
//!
//! The model is a passive [`ctms_sim::Component`]: adapters submit
//! [`frame::Frame`]s, the ring emits deliveries, strip/transmit-complete
//! confirmations (with the hardware copied-bit ground truth of §3),
//! promiscuous observations for the TAP monitor, and purge activity.

pub mod frame;
pub mod ring;

pub use frame::{
    ac_byte, ac_fields, decode_frame, decode_frame_kind, fc_is_mac, persist_frame_kind, Frame,
    FrameId, FrameKind, MacKind, Proto, StationId, FRAME_OVERHEAD_BYTES, TOKEN_BITS,
};
pub use ring::{Disturb, FrameView, RingCmd, RingConfig, RingOut, RingStats, TokenRing};
