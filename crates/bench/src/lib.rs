//! # ctms-bench — benchmark harness
//!
//! Two entry points:
//!
//! * the **`repro` binary** regenerates every table and figure of the
//!   paper (experiments E1–E11 of DESIGN.md) and prints paper-vs-measured
//!   claim tables plus ASCII renderings of Figures 5-2/5-3/5-4;
//! * the **benches** (`cargo bench --features bench`) measure the
//!   simulator's wall-clock cost per scenario and per substrate
//!   operation, and run the §5.3 ablation grid on the std-only
//!   [`harness`] (no external benchmark crate, so the default offline
//!   build needs nothing beyond the workspace).

pub mod harness;

use ctms_core::{ExpCfg, Scenario};
use ctms_stats::Report;

/// An experiment entry point: scenario config in, report out.
pub type Runner = fn(ExpCfg) -> Report;

/// The experiment registry: `(name, runner)` in DESIGN.md order.
pub fn registry() -> Vec<(&'static str, Runner)> {
    use ctms_core::experiments as e;
    vec![
        ("e1", e::e1_stock_unix as Runner),
        ("e2", e::e2_copy_count),
        ("e3", e::e3_logic_analyzer),
        ("e4", e::e4_pcat_tool),
        ("fig5_2", e::e5_fig5_2),
        ("fig5_3", e::e6_fig5_3),
        ("fig5_4", e::e7_fig5_4),
        ("hist1_5", e::e8_hist1_5),
        ("e9", e::e9_ring_purges),
        ("e10", e::e10_conclusions),
        ("ablation", e::e11_ablation),
        ("router", e::e12_router),
        ("capacity", e::e13_capacity),
        ("ring16", e::e14_ring_speed),
        ("spl_audit", e::e15_spl_audit),
    ]
}

/// Runs a short slice of a scenario (used by the Criterion benches so a
/// sample stays in the milliseconds range).
pub fn run_slice(sc: &Scenario, secs: u64) -> usize {
    let mut bed = ctms_core::Testbed::ctms(sc);
    bed.run_until(ctms_sim::SimTime::from_secs(secs));
    bed.presented().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_design_md() {
        let names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        for required in [
            "e1",
            "e2",
            "e3",
            "e4",
            "fig5_2",
            "fig5_3",
            "fig5_4",
            "hist1_5",
            "e9",
            "e10",
            "ablation",
            "router",
            "capacity",
            "ring16",
            "spl_audit",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn run_slice_delivers_packets() {
        let sc = Scenario::test_case_a(7);
        let n = run_slice(&sc, 2);
        // ~83 packets/s for 2 s, minus in-flight.
        assert!((150..=170).contains(&n), "{n}");
    }
}
