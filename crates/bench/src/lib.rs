//! # ctms-bench — benchmark harness
//!
//! Four entry points:
//!
//! * the **`repro` binary** regenerates every table and figure of the
//!   paper (experiments E1–E11 of DESIGN.md) and prints paper-vs-measured
//!   claim tables plus ASCII renderings of Figures 5-2/5-3/5-4;
//! * the **`perf` binary** measures scheduler throughput (indexed vs
//!   lazy baseline, single vs sharded chains, and `--topology`
//!   tree/mesh/fddi graph shapes) with ground-truth parity asserted
//!   before any timing, writing the checked-in `BENCH_PR*.json`
//!   trajectory reports;
//! * the **`serve` binary** is the line-oriented JSON service runtime
//!   (run/telemetry/checkpoint/restore/steer/fork) over a live bus;
//! * the **benches** (`cargo bench --features bench`) measure the
//!   simulator's wall-clock cost per scenario and per substrate
//!   operation, and run the §5.3 ablation grid on the std-only
//!   [`harness`] (no external benchmark crate, so the default offline
//!   build needs nothing beyond the workspace).

pub mod harness;

use ctms_core::{ExpCfg, Scenario};
use ctms_stats::Report;

/// An experiment entry point: scenario config in, report out.
pub type Runner = fn(ExpCfg) -> Report;

/// The experiment registry: `(name, runner)` in DESIGN.md order.
pub fn registry() -> Vec<(&'static str, Runner)> {
    use ctms_core::experiments as e;
    vec![
        ("e1", e::e1_stock_unix as Runner),
        ("e2", e::e2_copy_count),
        ("e3", e::e3_logic_analyzer),
        ("e4", e::e4_pcat_tool),
        ("fig5_2", e::e5_fig5_2),
        ("fig5_3", e::e6_fig5_3),
        ("fig5_4", e::e7_fig5_4),
        ("hist1_5", e::e8_hist1_5),
        ("e9", e::e9_ring_purges),
        ("e10", e::e10_conclusions),
        ("ablation", e::e11_ablation),
        ("router", e::e12_router),
        ("capacity", e::e13_capacity),
        ("ring16", e::e14_ring_speed),
        ("spl_audit", e::e15_spl_audit),
    ]
}

/// Runs a short slice of a scenario (used by the Criterion benches so a
/// sample stays in the milliseconds range).
pub fn run_slice(sc: &Scenario, secs: u64) -> usize {
    let mut bed = ctms_core::Testbed::ctms(sc);
    bed.run_until(ctms_sim::SimTime::from_secs(secs));
    bed.presented().len()
}

/// Simulated horizon of [`telemetry_case`]: fixed regardless of
/// `--quick`, so the run report's telemetry section and the
/// determinism tests hash the same tree.
pub const TELEMETRY_CASE_SECS: u64 = 10;

/// Runs a scenario on the CTMS testbed for the fixed
/// [`TELEMETRY_CASE_SECS`] horizon and returns the canonical registry
/// JSON. This is the single source of truth for telemetry determinism:
/// `tests/determinism.rs` asserts two calls are byte-identical and pins
/// the digest, and `repro --json` embeds the same trees in the run
/// report.
pub fn telemetry_case(sc: &Scenario) -> String {
    let mut bed = ctms_core::Testbed::ctms(sc);
    bed.run_until(ctms_sim::SimTime::from_secs(TELEMETRY_CASE_SECS));
    bed.telemetry_json()
}

/// One experiment's outcome plus its wall-clock cost, as recorded by
/// the `repro` binary for the machine-readable run report.
pub struct ExperimentRun {
    /// Registry name (`e1`, `fig5_2`, …).
    pub name: String,
    /// Wall-clock seconds the runner took.
    pub wall_secs: f64,
    /// The paper-vs-measured report.
    pub report: Report,
}

/// Serializes a whole `repro` invocation as a JSON run report: the
/// claims table per experiment (with wall-clock timings) and the full
/// telemetry trees for test cases A and B. Everything except
/// `wall_secs` is deterministic for a fixed seed; floats use `{:?}`
/// shortest-round-trip formatting via [`ctms_sim::telemetry::json_f64`].
pub fn run_report_json(
    seed: u64,
    quick: bool,
    runs: &[ExperimentRun],
    case_a: &str,
    case_b: &str,
) -> String {
    use ctms_sim::telemetry::{json_f64, json_string};
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"format\": \"ctms-repro-run/1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"experiments\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(&run.name)));
        out.push_str(&format!(
            "      \"title\": {},\n",
            json_string(&run.report.title)
        ));
        out.push_str(&format!(
            "      \"wall_secs\": {},\n",
            json_f64(run.wall_secs)
        ));
        out.push_str("      \"claims\": [\n");
        for (j, c) in run.report.claims.iter().enumerate() {
            out.push_str("        {");
            out.push_str(&format!("\"id\": {}, ", json_string(&c.id)));
            out.push_str(&format!("\"paper\": {}, ", json_f64(c.paper)));
            out.push_str(&format!("\"measured\": {}, ", json_f64(c.measured)));
            out.push_str(&format!("\"unit\": {}, ", json_string(&c.unit)));
            out.push_str(&format!("\"band\": {}, ", json_string(&c.band.label())));
            out.push_str(&format!("\"holds\": {}", c.holds()));
            out.push('}');
            if j + 1 < run.report.claims.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("      ]\n");
        out.push_str("    }");
        if i + 1 < runs.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str("  \"telemetry\": {\n");
    out.push_str(&format!("    \"case_a\": {case_a},\n"));
    out.push_str(&format!("    \"case_b\": {case_b}\n"));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_design_md() {
        let names: Vec<&str> = registry().iter().map(|(n, _)| *n).collect();
        for required in [
            "e1",
            "e2",
            "e3",
            "e4",
            "fig5_2",
            "fig5_3",
            "fig5_4",
            "hist1_5",
            "e9",
            "e10",
            "ablation",
            "router",
            "capacity",
            "ring16",
            "spl_audit",
        ] {
            assert!(names.contains(&required), "missing {required}");
        }
    }

    #[test]
    fn run_slice_delivers_packets() {
        let sc = Scenario::test_case_a(7);
        let n = run_slice(&sc, 2);
        // ~83 packets/s for 2 s, minus in-flight.
        assert!((150..=170).contains(&n), "{n}");
    }
}
