//! A minimal wall-clock benchmark harness on `std::time` alone.
//!
//! The offline build policy (DESIGN.md §3) keeps third-party crates out
//! of the workspace, so the `cargo bench` targets use this instead of
//! Criterion: per benchmark it runs a warm-up pass, takes a fixed number
//! of timed samples, and reports min / median / mean wall time. Robust
//! enough to spot order-of-magnitude regressions in the simulator's
//! cost per scenario, which is what these benches are for.

use std::time::{Duration, Instant};

/// A named group of benchmarks sharing a sample count.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Creates a group; `samples` timed runs are taken per benchmark.
    pub fn new(name: &str, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        BenchGroup {
            name: name.to_string(),
            samples,
        }
    }

    /// Times `f` (after one untimed warm-up call) and prints a summary
    /// line. Returns the median sample so callers can assert on it.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Duration {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            times.push(t0.elapsed());
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{}/{name}: min {} | median {} | mean {} ({} samples)",
            self.name,
            fmt(min),
            fmt(median),
            fmt(mean),
            self.samples
        );
        median
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_a_plausible_median() {
        let g = BenchGroup::new("t", 5);
        let m = g.bench("sleepless", || std::hint::black_box(2u64 + 2));
        assert!(m < Duration::from_millis(50));
    }
}
