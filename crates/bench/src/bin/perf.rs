//! `perf` — scheduler hot-path benchmark for the CTMS testbed.
//!
//! ```text
//! perf [--quick] [--seed N] [--json PATH] [--compare PATH]
//!      [--shards N] [--rings N] [--threads N] [--adaptive]
//!      [--topology SHAPE[:RINGS]]...
//!
//! --quick        short simulated horizon and a single repetition
//!                (CI smoke size) instead of the full measurement
//! --seed N       simulation seed (default 42)
//! --json PATH    write the machine-readable benchmark report
//!                (the checked-in BENCH_PR4.json / BENCH_PR5.json /
//!                BENCH_PR7.json are produced this way)
//! --compare PATH report-only comparison against a previously written
//!                report; never fails, prints current vs recorded
//! --shards N     also benchmark the conservative-parallel sharded
//!                scheduler on the N-ring chain, sweeping power-of-two
//!                shard counts up to N
//! --rings N      chain length for --shards and default ring count for
//!                --topology (default 128)
//! --threads N    worker threads per sharded run (default: hardware
//!                parallelism capped at the shard count; at 1 the
//!                windows run inline, measuring pure protocol overhead)
//! --topology SHAPE[:RINGS]
//!                also benchmark a generated graph topology — one of
//!                chain, tree, mesh, fddi — single-threaded and at
//!                power-of-two shard counts up to --shards (default 4).
//!                Repeatable; an optional :RINGS overrides --rings per
//!                shape (e.g. --topology tree:1024 --topology fddi:32)
//! --adaptive     run every sharded configuration under BOTH window
//!                protocols — adaptive (the default) and the
//!                fixed-lookahead ablation baseline — with cross-mode
//!                ground-truth parity asserted before any timing, and
//!                report per-mode protocol-efficiency counters
//!                (windows, sync instants, mailbox rounds, idle-window
//!                fraction)
//! --optimistic   additionally run every sharded configuration under
//!                the optimistic (Time-Warp-style) execution engine —
//!                same parity rule as every other ablation — and
//!                report its speculation counters (rollbacks, events
//!                rolled back, snapshot bytes, GVT rounds) plus the
//!                headline speculation_efficiency = committed events
//!                per executed event
//! --scale        run the city-scale capacity section: build a large
//!                tree topology (10³ and 10⁴ rings; smaller with
//!                --quick), recording build wall-time, peak build
//!                allocation bytes (with --features alloc-count),
//!                events/sec to a scaled horizon, and streamed
//!                checkpoint write/read throughput — with the streamed
//!                bytes asserted identical to the monolithic snapshot
//!                and round-tripped at 1/2/4 shards before any timing
//!                is reported
//! ```
//!
//! The binary runs test cases A and B to a fixed simulated horizon under
//! both scheduler modes — [`SchedMode::Indexed`] (the indexed deadline
//! heap with reusable routing buffers) and [`SchedMode::LazyBaseline`]
//! (which reproduces the pre-change lazy-invalidation heap and its
//! per-step/per-event allocation profile) — and reports events/sec plus
//! the cross-mode speedup. Both modes must produce bit-identical ground
//! truth: the run asserts that every edge-log digest and the serviced
//! event count agree before any timing is reported, so the speedup can
//! never come from simulating something different.
//!
//! With `--shards N` it additionally runs the scaled ring-chain scenario
//! on the single-threaded indexed scheduler (the ground truth and the
//! PR-4 baseline) and on the sharded conservative-parallel scheduler at
//! each swept shard count. The same parity rule applies per
//! configuration: edge-log digests and event counts must match the
//! single-threaded run before the wall clock is reported.
//!
//! When built with `--features alloc-count` the counting global
//! allocator is installed and a steady-state window on the synthetic
//! allocation-free ring (`ctms_sim::synth`) measures allocations/event
//! for both modes; the indexed scheduler must come out at exactly zero.

use ctms_core::{RingChainTestbed, RingGraph, Scenario, ShardedChain, Testbed};
use ctms_router::BridgeKind;
use ctms_sim::telemetry::{json_f64, json_string};
use ctms_sim::{ExecMode, SchedMode, SimTime, WindowMode};
use ctms_unixkern::MeasurePoint;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ctms_sim::alloc_count::CountingAlloc = ctms_sim::alloc_count::CountingAlloc::new();

/// Simulated horizon for the full measurement. Long enough that the
/// run-loop dominates testbed construction by orders of magnitude.
const FULL_HORIZON_SECS: u64 = 60;
/// Simulated horizon for `--quick` (CI smoke).
const QUICK_HORIZON_SECS: u64 = 10;
/// Wall-clock repetitions in full mode; the best (minimum) run is kept,
/// which is the standard way to strip scheduler/cache noise from a
/// deterministic workload.
const FULL_REPS: usize = 3;
/// Simulated horizon for the `--shards` chain benchmark. The chain is
/// two orders of magnitude more nodes than a test case, so its horizon
/// is shorter than the cases' while still dominating construction.
const CHAIN_HORIZON_SECS: u64 = 10;
/// `--quick` chain horizon (CI smoke).
const CHAIN_QUICK_HORIZON_SECS: u64 = 2;
/// Default chain length for `--shards` (the N ≥ 128 scaling regime the
/// sharded scheduler is built for).
const DEFAULT_CHAIN_RINGS: usize = 128;

struct ModeRun {
    events: u64,
    wall_secs: f64,
    digests: [u64; 4],
}

struct CaseResult {
    name: &'static str,
    indexed: ModeRun,
    lazy: ModeRun,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        // Identical event counts (asserted), so the events/sec ratio
        // reduces to the wall-clock ratio.
        self.lazy.wall_secs / self.indexed.wall_secs
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut shards: Option<usize> = None;
    let mut rings = DEFAULT_CHAIN_RINGS;
    let mut threads: Option<usize> = None;
    let mut adaptive = false;
    let mut optimistic = false;
    let mut scale = false;
    let mut topologies: Vec<(String, Option<usize>)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--adaptive" => adaptive = true,
            "--optimistic" => optimistic = true,
            "--scale" => scale = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--json" => {
                json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a path")),
                );
            }
            "--compare" => {
                compare_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--compare needs a path")),
                );
            }
            "--shards" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--shards needs a number"));
                if n < 2 {
                    die("--shards needs at least 2");
                }
                shards = Some(n);
            }
            "--rings" => {
                rings = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--rings needs a number"));
                if rings < 2 {
                    die("--rings needs at least 2");
                }
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
                if n < 1 {
                    die("--threads needs at least 1");
                }
                threads = Some(n);
            }
            "--topology" => {
                let spec = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| die("--topology needs a shape"));
                let (shape, n) = match spec.split_once(':') {
                    Some((shape, n)) => {
                        let n: usize = n
                            .parse()
                            .unwrap_or_else(|_| die("--topology SHAPE:RINGS needs a ring count"));
                        (shape.to_string(), Some(n))
                    }
                    None => (spec, None),
                };
                if !matches!(shape.as_str(), "chain" | "tree" | "mesh" | "fddi") {
                    die(&format!(
                        "--topology {shape}: unknown shape (chain, tree, mesh, fddi)"
                    ));
                }
                topologies.push((shape, n));
            }
            "--help" | "-h" => {
                eprintln!("{HELP}");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    let horizon_secs = if quick {
        QUICK_HORIZON_SECS
    } else {
        FULL_HORIZON_SECS
    };
    let reps = if quick { 1 } else { FULL_REPS };
    eprintln!(
        "# perf: seed={seed} horizon={horizon_secs}s reps={reps} alloc_count={}",
        cfg!(feature = "alloc-count")
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores == 1 {
        eprintln!(
            "# perf: WARNING: one hardware core available — sharded runs execute their \
             windows inline, so parallel speedups are degraded (expect <1.0x); the report \
             is marked \"degraded_parallelism\": true"
        );
    }

    let cases = [
        ("case_a", Scenario::test_case_a(seed)),
        ("case_b", Scenario::test_case_b(seed)),
    ];
    let mut results = Vec::new();
    for (name, sc) in &cases {
        let indexed = measure_case(sc, SchedMode::Indexed, horizon_secs, reps);
        let lazy = measure_case(sc, SchedMode::LazyBaseline, horizon_secs, reps);
        // Ground-truth parity: the optimized scheduler must service the
        // exact same events in the exact same order as the baseline.
        assert_eq!(
            indexed.digests, lazy.digests,
            "{name}: scheduler modes disagree on ground truth"
        );
        assert_eq!(
            indexed.events, lazy.events,
            "{name}: scheduler modes disagree on serviced event count"
        );
        let case = CaseResult {
            name,
            indexed,
            lazy,
        };
        eprintln!(
            "# {name}: indexed {:.1}ms ({:.2}M ev/s)  lazy {:.1}ms ({:.2}M ev/s)  speedup {:.2}x",
            case.indexed.wall_secs * 1e3,
            case.indexed.events as f64 / case.indexed.wall_secs / 1e6,
            case.lazy.wall_secs * 1e3,
            case.lazy.events as f64 / case.lazy.wall_secs / 1e6,
            case.speedup()
        );
        results.push(case);
    }

    let chain = shards.map(|max_shards| {
        let chain_horizon = if quick {
            CHAIN_QUICK_HORIZON_SECS
        } else {
            CHAIN_HORIZON_SECS
        };
        measure_chain(
            seed,
            rings,
            max_shards,
            threads,
            chain_horizon,
            reps,
            adaptive,
            optimistic,
        )
    });

    let topo_horizon = if quick {
        CHAIN_QUICK_HORIZON_SECS
    } else {
        CHAIN_HORIZON_SECS
    };
    let topo_results: Vec<TopoResult> = topologies
        .iter()
        .map(|(shape, n)| {
            measure_topology(
                seed,
                shape,
                n.unwrap_or(rings),
                shards.unwrap_or(4),
                threads,
                topo_horizon,
                reps,
                adaptive,
                optimistic,
            )
        })
        .collect();

    let scale_results: Vec<ScaleEntry> = if scale {
        let sizes: &[usize] = if quick { &[64, 256] } else { &[1000, 10_000] };
        sizes
            .iter()
            .map(|&rings| measure_scale_entry(seed, rings, quick, reps))
            .collect()
    } else {
        Vec::new()
    };

    let steady = steady_state_allocs();
    if let Some(s) = &steady {
        eprintln!(
            "# steady-state synth ring: indexed {} allocs / {} events, baseline {} allocs / {} events",
            s.indexed_allocs, s.events, s.lazy_allocs, s.events
        );
    }

    let json = report_json(
        seed,
        quick,
        horizon_secs,
        threads,
        &results,
        chain.as_ref(),
        &topo_results,
        &scale_results,
        steady.as_ref(),
    );
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, &json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("# benchmark report written to {path}");
    } else if compare_path.is_none() {
        println!("{json}");
    }

    if let Some(path) = &compare_path {
        compare_report(path, &results, chain.as_ref(), &topo_results);
    }
}

fn measure_case(sc: &Scenario, mode: SchedMode, horizon_secs: u64, reps: usize) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..reps {
        let mut bed = Testbed::ctms_with_mode(sc, mode);
        let t0 = std::time::Instant::now();
        bed.run_until(SimTime::from_secs(horizon_secs));
        let wall_secs = t0.elapsed().as_secs_f64();
        let events = bed.bus().events();
        let get = |host: usize, point: MeasurePoint| {
            bed.truth_log(host, point)
                .map(|log| log.digest())
                .unwrap_or(0)
        };
        let digests = [
            get(0, MeasurePoint::VcaIrq),
            get(0, MeasurePoint::VcaHandlerEntry),
            get(0, MeasurePoint::PreTransmit),
            get(1, MeasurePoint::CtmspIdentified),
        ];
        let run = ModeRun {
            events,
            wall_secs,
            digests,
        };
        if let Some(b) = &best {
            assert_eq!(b.digests, run.digests, "repetition changed ground truth");
            assert_eq!(b.events, run.events, "repetition changed event count");
        }
        if best.as_ref().is_none_or(|b| run.wall_secs < b.wall_secs) {
            best = Some(run);
        }
    }
    best.expect("at least one repetition")
}

/// Protocol-efficiency counters for one sharded run, read from the
/// harness's execution telemetry. Deterministic (they describe the
/// synchronization schedule, not the wall clock), so repetitions are
/// asserted identical.
#[derive(Clone, Copy, PartialEq)]
struct WindowStats {
    windows: u64,
    sync_instants: u64,
    mail_rounds: u64,
    /// Fraction of per-shard window grants that found no work:
    /// `sum(idle_windows) / sum(idle_windows + window_advances)`.
    idle_fraction: f64,
}

fn window_stats(bus: &ctms_core::ShardedBus, shards: usize) -> Option<WindowStats> {
    let reg = bus.exec_telemetry()?;
    let count = |key: &str| reg.counter_value(key).unwrap_or(0);
    let (mut idle, mut advances) = (0u64, 0u64);
    for k in 0..shards {
        let s = bus.shard_stats(k);
        idle += s.idle_windows;
        advances += s.window_advances;
    }
    let grants = idle + advances;
    Some(WindowStats {
        windows: count("sched.windows"),
        sync_instants: count("sched.sync_instants"),
        mail_rounds: count("sched.mail_rounds"),
        idle_fraction: if grants == 0 {
            0.0
        } else {
            idle as f64 / grants as f64
        },
    })
}

/// Speculation counters for one optimistic run, read from the exec
/// registry. Deterministic like the window schedule (the coordinator's
/// rounds are data-parallel with barriers, so rollback decisions do not
/// depend on thread interleaving); asserted stable across repetitions.
#[derive(Clone, Copy, PartialEq)]
struct OptStats {
    rollbacks: u64,
    events_rolled_back: u64,
    snapshot_bytes: u64,
    gvt_rounds: u64,
}

impl OptStats {
    /// Committed events per executed event: 1.0 means no speculative
    /// work was wasted, lower means rollback replay dominated.
    fn efficiency(&self, committed: u64) -> f64 {
        let executed = committed + self.events_rolled_back;
        if executed == 0 {
            1.0
        } else {
            committed as f64 / executed as f64
        }
    }
}

fn opt_stats(bus: &ctms_core::ShardedBus) -> Option<OptStats> {
    let reg = bus.exec_telemetry()?;
    let count = |key: &str| reg.counter_value(key).unwrap_or(0);
    Some(OptStats {
        rollbacks: count("sched.rollbacks"),
        events_rolled_back: count("sched.events_rolled_back"),
        snapshot_bytes: count("sched.snapshot_bytes"),
        gvt_rounds: count("sched.gvt_rounds"),
    })
}

struct ChainSharded {
    shards: usize,
    threads: usize,
    /// The default protocol (adaptive windows).
    run: ModeRun,
    window: Option<WindowStats>,
    /// The fixed-lookahead ablation baseline, measured with `--adaptive`.
    fixed: Option<(ModeRun, WindowStats)>,
    /// The optimistic-engine ablation, measured with `--optimistic`.
    optimistic: Option<(ModeRun, WindowStats, OptStats)>,
}

struct ChainResult {
    rings: usize,
    horizon_secs: u64,
    single: ModeRun,
    sharded: Vec<ChainSharded>,
}

/// Measures one sharded configuration under one window protocol:
/// best-of-`reps` wall clock, with ground-truth parity against
/// `single` asserted on every repetition before the timing is kept,
/// and the (deterministic) protocol-efficiency counters asserted
/// stable across repetitions.
#[allow(clippy::too_many_arguments)]
fn measure_sharded_mode(
    build: &dyn Fn() -> ShardedChain,
    digests_of: &dyn Fn(&ShardedChain) -> [u64; 4],
    mode: WindowMode,
    exec: ExecMode,
    k: usize,
    workers: usize,
    horizon: SimTime,
    reps: usize,
    single: &ModeRun,
    label: &str,
) -> (ModeRun, Option<WindowStats>, Option<OptStats>) {
    let mut best: Option<ModeRun> = None;
    let mut stats: Option<WindowStats> = None;
    let mut spec: Option<OptStats> = None;
    for _ in 0..reps {
        let mut bed = build();
        assert_eq!(bed.shard_count(), k, "{label} must partition into {k}");
        bed.bus_mut().set_window_mode(mode);
        bed.bus_mut().set_exec_mode(exec);
        bed.set_threads(workers);
        let t0 = std::time::Instant::now();
        bed.run_until(horizon);
        let wall_secs = t0.elapsed().as_secs_f64();
        let run = ModeRun {
            events: bed.events(),
            wall_secs,
            digests: digests_of(&bed),
        };
        // Ground-truth parity before timing is reported: the parallel
        // run must have simulated the exact same world — under either
        // window protocol.
        assert_eq!(
            run.digests, single.digests,
            "{label} shards={k} ({mode:?}, {exec:?}): sharded scheduler changed ground truth"
        );
        assert_eq!(
            run.events, single.events,
            "{label} shards={k} ({mode:?}, {exec:?}): sharded scheduler changed event count"
        );
        let s = window_stats(bed.bus(), k);
        if let (Some(prev), Some(now)) = (&stats, &s) {
            assert!(
                prev == now,
                "{label} shards={k} ({mode:?}, {exec:?}): window schedule varied across repetitions"
            );
        }
        stats = s;
        let o = (exec == ExecMode::Optimistic)
            .then(|| opt_stats(bed.bus()))
            .flatten();
        if let (Some(prev), Some(now)) = (&spec, &o) {
            assert!(
                prev == now,
                "{label} shards={k} ({mode:?}, {exec:?}): speculation schedule varied across repetitions"
            );
        }
        spec = o;
        if best.as_ref().is_none_or(|b| run.wall_secs < b.wall_secs) {
            best = Some(run);
        }
    }
    (best.expect("at least one repetition"), stats, spec)
}

/// One stderr progress line per measured sharded configuration,
/// including the protocol-efficiency counters when available.
#[allow(clippy::too_many_arguments)]
fn report_sharded(
    label: &str,
    k: usize,
    workers: usize,
    run: &ModeRun,
    single: &ModeRun,
    window: Option<&WindowStats>,
    spec: Option<&OptStats>,
    tag: Option<&str>,
) {
    let tag = tag.map(|t| format!(" [{t}]")).unwrap_or_default();
    let counters = window
        .map(|w| {
            format!(
                "  windows {} sync {} mail {} idle {:.0}%",
                w.windows,
                w.sync_instants,
                w.mail_rounds,
                w.idle_fraction * 100.0
            )
        })
        .unwrap_or_default();
    let speculation = spec
        .map(|o| {
            format!(
                "  rollbacks {} eff {:.1}%",
                o.rollbacks,
                o.efficiency(run.events) * 100.0
            )
        })
        .unwrap_or_default();
    eprintln!(
        "# {label}: shards={k} threads={workers}{tag} {:.1}ms ({:.2}M ev/s)  speedup {:.2}x{counters}{speculation}",
        run.wall_secs * 1e3,
        run.events as f64 / run.wall_secs / 1e6,
        single.wall_secs / run.wall_secs
    );
}

fn chain_digests(mut get: impl FnMut(usize, MeasurePoint) -> u64) -> [u64; 4] {
    [
        get(0, MeasurePoint::VcaIrq),
        get(0, MeasurePoint::VcaHandlerEntry),
        get(0, MeasurePoint::PreTransmit),
        get(1, MeasurePoint::CtmspIdentified),
    ]
}

/// Benchmarks the scaled `rings`-ring chain: single-threaded indexed
/// (the ground truth and the baseline) against the sharded
/// conservative-parallel scheduler at every power-of-two shard count up
/// to `max_shards`. Per configuration, edge-log digests and serviced
/// event counts are asserted equal to the single-threaded run before
/// any wall clock is reported.
#[allow(clippy::too_many_arguments)]
fn measure_chain(
    seed: u64,
    rings: usize,
    max_shards: usize,
    threads: Option<usize>,
    horizon_secs: u64,
    reps: usize,
    adaptive: bool,
    optimistic: bool,
) -> ChainResult {
    let sc = Scenario::scaled_chain(seed);
    let kind = BridgeKind::cut_through_bridge();
    let horizon = SimTime::from_secs(horizon_secs);

    let mut single: Option<ModeRun> = None;
    for _ in 0..reps {
        let mut bed = RingChainTestbed::chain(&sc, kind, rings);
        let t0 = std::time::Instant::now();
        bed.run_until(horizon);
        let wall_secs = t0.elapsed().as_secs_f64();
        let run = ModeRun {
            events: bed.bus().events(),
            wall_secs,
            digests: chain_digests(|host, point| {
                bed.bus()
                    .measurements()
                    .truth_log(host, point)
                    .map(|log| log.digest())
                    .unwrap_or(0)
            }),
        };
        if let Some(b) = &single {
            assert_eq!(b.digests, run.digests, "repetition changed ground truth");
            assert_eq!(b.events, run.events, "repetition changed event count");
        }
        if single.as_ref().is_none_or(|b| run.wall_secs < b.wall_secs) {
            single = Some(run);
        }
    }
    let single = single.expect("at least one repetition");
    eprintln!(
        "# chain/{rings}: single-threaded {:.1}ms ({:.2}M ev/s, {} events)",
        single.wall_secs * 1e3,
        single.events as f64 / single.wall_secs / 1e6,
        single.events
    );

    let mut sharded = Vec::new();
    let mut k = 2;
    while k <= max_shards {
        let workers = threads.unwrap_or_else(|| ctms_sim::default_threads(k));
        let label = format!("chain/{rings}");
        let build = || RingChainTestbed::chain_sharded(&sc, kind, rings, k);
        let digests_of = |bed: &ShardedChain| {
            chain_digests(|host, point| {
                bed.bus()
                    .truth_log(host, point)
                    .map(|log| log.digest())
                    .unwrap_or(0)
            })
        };
        let (run, window, _) = measure_sharded_mode(
            &build,
            &digests_of,
            WindowMode::Adaptive,
            ExecMode::Conservative,
            k,
            workers,
            horizon,
            reps,
            &single,
            &label,
        );
        report_sharded(
            &label,
            k,
            workers,
            &run,
            &single,
            window.as_ref(),
            None,
            None,
        );
        let fixed = adaptive.then(|| {
            let (run, stats, _) = measure_sharded_mode(
                &build,
                &digests_of,
                WindowMode::FixedLookahead,
                ExecMode::Conservative,
                k,
                workers,
                horizon,
                reps,
                &single,
                &label,
            );
            let stats = stats.expect("sharded run must expose execution telemetry");
            report_sharded(
                &label,
                k,
                workers,
                &run,
                &single,
                Some(&stats),
                None,
                Some("fixed"),
            );
            (run, stats)
        });
        let optimistic = optimistic.then(|| {
            let (run, stats, spec) = measure_sharded_mode(
                &build,
                &digests_of,
                WindowMode::Adaptive,
                ExecMode::Optimistic,
                k,
                workers,
                horizon,
                reps,
                &single,
                &label,
            );
            let stats = stats.expect("sharded run must expose execution telemetry");
            let spec = spec.expect("optimistic run must expose speculation counters");
            report_sharded(
                &label,
                k,
                workers,
                &run,
                &single,
                Some(&stats),
                Some(&spec),
                Some("opt"),
            );
            (run, stats, spec)
        });
        sharded.push(ChainSharded {
            shards: k,
            threads: workers,
            run,
            window,
            fixed,
            optimistic,
        });
        k *= 2;
    }

    ChainResult {
        rings,
        horizon_secs,
        single,
        sharded,
    }
}

struct TopoResult {
    shape: String,
    rings: usize,
    horizon_secs: u64,
    single: ModeRun,
    sharded: Vec<ChainSharded>,
}

/// Benchmarks one generated graph topology: single-threaded indexed
/// (ground truth) against the graph-partitioned sharded scheduler at
/// every power-of-two shard count up to `max_shards`. Same parity rule
/// as the chain benchmark — edge-log digests and serviced event counts
/// must match the single-threaded run before any wall clock is
/// reported, which is what makes per-shape wall clocks comparable.
#[allow(clippy::too_many_arguments)]
fn measure_topology(
    seed: u64,
    shape: &str,
    rings: usize,
    max_shards: usize,
    threads: Option<usize>,
    horizon_secs: u64,
    reps: usize,
    adaptive: bool,
    optimistic: bool,
) -> TopoResult {
    let sc = Scenario::scaled_chain(seed);
    let kind = BridgeKind::cut_through_bridge();
    let graph = RingGraph::named(shape, rings, seed)
        .unwrap_or_else(|| die(&format!("unknown topology shape {shape}")));
    let horizon = SimTime::from_secs(horizon_secs);
    let set_digests = |set: &ctms_measure::MeasurementSet| {
        [
            set.vca_irq.digest(),
            set.handler.digest(),
            set.pre_tx.digest(),
            set.ctmsp_rx.digest(),
        ]
    };

    let mut single: Option<ModeRun> = None;
    for _ in 0..reps {
        let mut bed = RingChainTestbed::graph(&sc, kind, &graph);
        let t0 = std::time::Instant::now();
        bed.run_until(horizon);
        let wall_secs = t0.elapsed().as_secs_f64();
        let run = ModeRun {
            events: bed.bus().events(),
            wall_secs,
            digests: set_digests(&bed.measurement_set()),
        };
        if let Some(b) = &single {
            assert_eq!(b.digests, run.digests, "repetition changed ground truth");
            assert_eq!(b.events, run.events, "repetition changed event count");
        }
        if single.as_ref().is_none_or(|b| run.wall_secs < b.wall_secs) {
            single = Some(run);
        }
    }
    let single = single.expect("at least one repetition");
    eprintln!(
        "# {shape}/{rings}: single-threaded {:.1}ms ({:.2}M ev/s, {} events)",
        single.wall_secs * 1e3,
        single.events as f64 / single.wall_secs / 1e6,
        single.events
    );

    let mut sharded = Vec::new();
    let mut k = 2;
    while k <= max_shards {
        let workers = threads.unwrap_or_else(|| ctms_sim::default_threads(k));
        let label = format!("{shape}/{rings}");
        let build = || RingChainTestbed::graph_sharded(&sc, kind, &graph, k);
        let digests_of = |bed: &ShardedChain| set_digests(&bed.measurement_set());
        let (run, window, _) = measure_sharded_mode(
            &build,
            &digests_of,
            WindowMode::Adaptive,
            ExecMode::Conservative,
            k,
            workers,
            horizon,
            reps,
            &single,
            &label,
        );
        report_sharded(
            &label,
            k,
            workers,
            &run,
            &single,
            window.as_ref(),
            None,
            None,
        );
        let fixed = adaptive.then(|| {
            let (run, stats, _) = measure_sharded_mode(
                &build,
                &digests_of,
                WindowMode::FixedLookahead,
                ExecMode::Conservative,
                k,
                workers,
                horizon,
                reps,
                &single,
                &label,
            );
            let stats = stats.expect("sharded run must expose execution telemetry");
            report_sharded(
                &label,
                k,
                workers,
                &run,
                &single,
                Some(&stats),
                None,
                Some("fixed"),
            );
            (run, stats)
        });
        let optimistic = optimistic.then(|| {
            let (run, stats, spec) = measure_sharded_mode(
                &build,
                &digests_of,
                WindowMode::Adaptive,
                ExecMode::Optimistic,
                k,
                workers,
                horizon,
                reps,
                &single,
                &label,
            );
            let stats = stats.expect("sharded run must expose execution telemetry");
            let spec = spec.expect("optimistic run must expose speculation counters");
            report_sharded(
                &label,
                k,
                workers,
                &run,
                &single,
                Some(&stats),
                Some(&spec),
                Some("opt"),
            );
            (run, stats, spec)
        });
        sharded.push(ChainSharded {
            shards: k,
            threads: workers,
            run,
            window,
            fixed,
            optimistic,
        });
        k *= 2;
    }

    TopoResult {
        shape: shape.to_string(),
        rings,
        horizon_secs,
        single,
        sharded,
    }
}

/// One row of the `--scale` capacity section: a large tree topology,
/// measured end to end — build, run, streamed checkpoint.
struct ScaleEntry {
    rings: usize,
    /// Rings + bridges + hosts of the built topology.
    nodes: usize,
    build_wall_secs: f64,
    /// Peak heap growth during graph generation + topology build, with
    /// `--features alloc-count`; `None` otherwise.
    build_peak_bytes: Option<u64>,
    horizon_ms: u64,
    run: ModeRun,
    ckpt_bytes: u64,
    ckpt_chunks: u64,
    write_secs: f64,
    read_secs: f64,
    /// Shard counts the streamed checkpoint round-tripped at, with the
    /// re-streamed bytes asserted identical to the monolithic snapshot.
    parity_shards: Vec<usize>,
}

/// Concatenating sink for the stream-vs-monolithic identity assert.
struct ConcatSink(Vec<u8>);

impl ctms_sim::ChunkSink for ConcatSink {
    fn chunk(&mut self, bytes: &[u8]) -> Result<(), ctms_sim::PersistError> {
        self.0.extend_from_slice(bytes);
        Ok(())
    }
}

#[cfg(feature = "alloc-count")]
fn peak_region_start() -> u64 {
    ALLOC.reset_peak();
    ALLOC.current_bytes()
}

#[cfg(feature = "alloc-count")]
fn peak_region_bytes(live0: u64) -> Option<u64> {
    Some(ALLOC.peak_bytes().saturating_sub(live0))
}

#[cfg(not(feature = "alloc-count"))]
fn peak_region_start() -> u64 {
    0
}

#[cfg(not(feature = "alloc-count"))]
fn peak_region_bytes(_live0: u64) -> Option<u64> {
    None
}

/// Simulated horizon for one scale row: long enough to exercise the
/// steady state, scaled down as the topology grows so the section's
/// wall clock stays bounded. Deterministic per ring count, so every
/// shard configuration of a row simulates the same world.
fn scale_horizon_ms(rings: usize, quick: bool) -> u64 {
    if quick {
        500
    } else {
        (1_000_000 / rings as u64).clamp(100, 1000)
    }
}

/// Measures one `--scale` row at `rings`: times the tree build (with
/// peak heap growth under `alloc-count`), runs to the scaled horizon,
/// then asserts — before any number is reported — that ground truth is
/// bit-identical at 1/2/4 shards and that the streamed checkpoint
/// concatenates to exactly the monolithic snapshot and round-trips
/// byte-identically (telemetry included) at every shard count. Only
/// then are streamed write/read throughput measured, best-of-`reps`.
fn measure_scale_entry(seed: u64, rings: usize, quick: bool, reps: usize) -> ScaleEntry {
    let sc = Scenario::scaled_chain(seed);
    let kind = BridgeKind::cut_through_bridge();
    let horizon_ms = scale_horizon_ms(rings, quick);
    let horizon = SimTime::from_ms(horizon_ms);
    let set_digests = |set: &ctms_measure::MeasurementSet| {
        [
            set.vca_irq.digest(),
            set.handler.digest(),
            set.pre_tx.digest(),
            set.ctmsp_rx.digest(),
        ]
    };

    // Build: graph generation plus topology construction, timed as one
    // region — this is the "10⁴ rings build in seconds" claim.
    let live0 = peak_region_start();
    let t0 = std::time::Instant::now();
    let graph = RingGraph::named("tree", rings, seed).expect("tree is a known shape");
    let mut bed = RingChainTestbed::graph(&sc, kind, &graph);
    let build_wall_secs = t0.elapsed().as_secs_f64();
    let build_peak_bytes = peak_region_bytes(live0);
    let nodes = bed.bus().ring_count() + bed.bus().host_count() + bed.bus().bridge_count();
    eprintln!(
        "# scale tree/{rings}: built {nodes} nodes in {:.2}s{}",
        build_wall_secs,
        build_peak_bytes
            .map(|b| format!(" (peak +{:.1} MB)", b as f64 / 1e6))
            .unwrap_or_default()
    );

    // Single-threaded run to the horizon: the ground truth and the
    // events/sec number of the row.
    let t0 = std::time::Instant::now();
    bed.run_until(horizon);
    let run = ModeRun {
        events: bed.bus().events(),
        wall_secs: t0.elapsed().as_secs_f64(),
        digests: set_digests(&bed.measurement_set()),
    };
    let single_telemetry = bed.telemetry_json();
    eprintln!(
        "# scale tree/{rings}: ran {horizon_ms}ms sim in {:.2}s ({:.2}M ev/s, {} events)",
        run.wall_secs,
        run.events as f64 / run.wall_secs / 1e6,
        run.events
    );

    // The monolithic snapshot is the byte-level reference for every
    // streaming assert below.
    let mono = bed.bus().checkpoint();
    let mut concat = ConcatSink(Vec::with_capacity(mono.len()));
    let (payload, chunks) = bed
        .bus()
        .checkpoint_stream(&mut concat)
        .expect("stream checkpoint");
    assert_eq!(
        concat.0, mono,
        "tree/{rings}: streamed chunks do not concatenate to the monolithic snapshot"
    );
    assert_eq!(payload as usize, mono.len());

    // Parity before timing: 1/2/4 shards must reproduce the exact same
    // world, snapshot to the exact same bytes, and round-trip through
    // the framed streaming path back to those bytes with telemetry
    // intact.
    let mut parity_shards = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut sbed = RingChainTestbed::graph_sharded(&sc, kind, &graph, shards);
        sbed.run_until(horizon);
        let sdigests = set_digests(&sbed.measurement_set());
        assert_eq!(
            sdigests, run.digests,
            "tree/{rings} shards={shards}: sharded run changed ground truth"
        );
        assert_eq!(
            sbed.events(),
            run.events,
            "tree/{rings} shards={shards}: sharded run changed event count"
        );
        assert_eq!(
            sbed.bus().checkpoint(),
            mono,
            "tree/{rings} shards={shards}: sharded snapshot is not byte-identical"
        );
        let mut framed = Vec::new();
        sbed.bus()
            .write_checkpoint(&mut framed)
            .expect("framed write");
        let mut back = RingChainTestbed::graph_sharded(&sc, kind, &graph, shards);
        back.bus_mut()
            .read_checkpoint(&mut framed.as_slice())
            .unwrap_or_else(|e| panic!("tree/{rings} shards={shards}: streamed restore: {e}"));
        assert_eq!(
            back.bus().checkpoint(),
            mono,
            "tree/{rings} shards={shards}: streamed round-trip drifted"
        );
        assert_eq!(
            back.telemetry_json(),
            single_telemetry,
            "tree/{rings} shards={shards}: streamed round-trip changed telemetry"
        );
        parity_shards.push(shards);
    }

    // Streamed checkpoint throughput, best-of-reps, measured only after
    // every parity assert above has passed.
    let mut write_secs = f64::INFINITY;
    let mut framed = Vec::with_capacity(mono.len() + mono.len() / 8);
    for _ in 0..reps {
        framed.clear();
        let t0 = std::time::Instant::now();
        bed.bus()
            .write_checkpoint(&mut framed)
            .expect("framed write");
        write_secs = write_secs.min(t0.elapsed().as_secs_f64());
    }
    let mut fresh = RingChainTestbed::graph(&sc, kind, &graph);
    let mut read_secs = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        fresh
            .bus_mut()
            .read_checkpoint(&mut framed.as_slice())
            .expect("framed read");
        read_secs = read_secs.min(t0.elapsed().as_secs_f64());
    }
    assert_eq!(
        fresh.bus().checkpoint(),
        mono,
        "tree/{rings}: timed streamed restore drifted"
    );
    let mb = mono.len() as f64 / 1e6;
    eprintln!(
        "# scale tree/{rings}: checkpoint {:.1} MB in {chunks} chunks, write {:.0} MB/s, read {:.0} MB/s",
        mb,
        mb / write_secs,
        mb / read_secs
    );

    ScaleEntry {
        rings,
        nodes,
        build_wall_secs,
        build_peak_bytes,
        horizon_ms,
        run,
        ckpt_bytes: mono.len() as u64,
        ckpt_chunks: chunks,
        write_secs,
        read_secs,
        parity_shards,
    }
}

struct SteadyState {
    events: u64,
    indexed_allocs: u64,
    lazy_allocs: u64,
}

/// Measures allocations/event over a steady-state window on the
/// synthetic allocation-free ring, per scheduler mode. Only meaningful
/// with the counting allocator installed; returns `None` otherwise.
#[cfg(feature = "alloc-count")]
fn steady_state_allocs() -> Option<SteadyState> {
    let window = |mode: SchedMode| -> (u64, u64) {
        let mut h = ctms_sim::synth::build_ring_with_mode(16, 1_000, 4, mode);
        h.run_until(SimTime::from_ns(2_000_000)); // warm-up: buffers reach capacity
        let events0 = h.events();
        let allocs0 = ALLOC.allocations();
        h.run_until(SimTime::from_ns(10_000_000));
        (h.events() - events0, ALLOC.allocations() - allocs0)
    };
    let (events, indexed_allocs) = window(SchedMode::Indexed);
    let (lazy_events, lazy_allocs) = window(SchedMode::LazyBaseline);
    assert_eq!(events, lazy_events, "synth ring modes disagree on events");
    Some(SteadyState {
        events,
        indexed_allocs,
        lazy_allocs,
    })
}

#[cfg(not(feature = "alloc-count"))]
fn steady_state_allocs() -> Option<SteadyState> {
    None
}

fn mode_json(m: &ModeRun) -> String {
    format!(
        "{{ \"events\": {}, \"wall_secs\": {}, \"events_per_sec\": {} }}",
        m.events,
        json_f64(m.wall_secs),
        json_f64(m.events as f64 / m.wall_secs)
    )
}

fn window_json(w: &WindowStats) -> String {
    format!(
        "{{ \"windows\": {}, \"sync_instants\": {}, \"mail_rounds\": {}, \
         \"idle_window_fraction\": {} }}",
        w.windows,
        w.sync_instants,
        w.mail_rounds,
        json_f64(w.idle_fraction)
    )
}

/// Emits one sharded configuration entry. `indent` is the indentation
/// of the entry's opening brace. The `window` counters describe the
/// adaptive (default) run; `fixed_lookahead` is present only for
/// `--adaptive` reports and carries the ablation baseline plus the
/// headline `sync_instant_reduction` = fixed sync instants per adaptive
/// sync instant.
fn sharded_json(
    s: &ChainSharded,
    single: &ModeRun,
    threads_requested: Option<usize>,
    indent: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("{indent}{{\n"));
    out.push_str(&format!("{indent}  \"shards\": {},\n", s.shards));
    out.push_str(&format!("{indent}  \"threads\": {},\n", s.threads));
    // The thread count actually used is stamped above; this records
    // whether it was a `--threads` request, so trend tooling can tell
    // "measured on one core" from "ran with --threads 1 by request".
    match threads_requested {
        Some(n) => out.push_str(&format!("{indent}  \"threads_requested\": {n},\n")),
        None => out.push_str(&format!("{indent}  \"threads_requested\": null,\n")),
    }
    out.push_str(&format!("{indent}  \"run\": {},\n", mode_json(&s.run)));
    out.push_str(&format!(
        "{indent}  \"speedup\": {},\n",
        json_f64(single.wall_secs / s.run.wall_secs)
    ));
    match &s.window {
        Some(w) => out.push_str(&format!("{indent}  \"window\": {},\n", window_json(w))),
        None => out.push_str(&format!("{indent}  \"window\": null,\n")),
    }
    match &s.fixed {
        Some((run, w)) => {
            out.push_str(&format!("{indent}  \"fixed_lookahead\": {{\n"));
            out.push_str(&format!("{indent}    \"run\": {},\n", mode_json(run)));
            out.push_str(&format!(
                "{indent}    \"speedup\": {},\n",
                json_f64(single.wall_secs / run.wall_secs)
            ));
            out.push_str(&format!("{indent}    \"window\": {},\n", window_json(w)));
            let adaptive_sync = s.window.as_ref().map_or(1, |a| a.sync_instants.max(1));
            out.push_str(&format!(
                "{indent}    \"sync_instant_reduction\": {}\n",
                json_f64(w.sync_instants as f64 / adaptive_sync as f64)
            ));
            out.push_str(&format!("{indent}  }},\n"));
        }
        None => out.push_str(&format!("{indent}  \"fixed_lookahead\": null,\n")),
    }
    match &s.optimistic {
        Some((run, w, o)) => {
            out.push_str(&format!("{indent}  \"optimistic\": {{\n"));
            out.push_str(&format!("{indent}    \"run\": {},\n", mode_json(run)));
            out.push_str(&format!(
                "{indent}    \"speedup\": {},\n",
                json_f64(single.wall_secs / run.wall_secs)
            ));
            out.push_str(&format!("{indent}    \"window\": {},\n", window_json(w)));
            out.push_str(&format!(
                "{indent}    \"speculation\": {{ \"rollbacks\": {}, \"events_rolled_back\": {}, \
                 \"snapshot_bytes\": {}, \"gvt_rounds\": {}, \"speculation_efficiency\": {} }}\n",
                o.rollbacks,
                o.events_rolled_back,
                o.snapshot_bytes,
                o.gvt_rounds,
                json_f64(o.efficiency(run.events))
            ));
            out.push_str(&format!("{indent}  }},\n"));
        }
        None => out.push_str(&format!("{indent}  \"optimistic\": null,\n")),
    }
    out.push_str(&format!("{indent}  \"ground_truth_parity\": true\n"));
    out.push_str(&format!("{indent}}}"));
    out
}

fn scale_json(entries: &[ScaleEntry]) -> String {
    let mut out = String::new();
    out.push_str("  \"scale\": {\n");
    out.push_str("    \"shape\": \"tree\",\n");
    out.push_str("    \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("      {\n");
        out.push_str(&format!("        \"rings\": {},\n", e.rings));
        out.push_str(&format!("        \"nodes\": {},\n", e.nodes));
        out.push_str(&format!(
            "        \"build_wall_secs\": {},\n",
            json_f64(e.build_wall_secs)
        ));
        match e.build_peak_bytes {
            Some(b) => out.push_str(&format!("        \"build_peak_bytes\": {b},\n")),
            None => out.push_str("        \"build_peak_bytes\": null,\n"),
        }
        out.push_str(&format!("        \"horizon_ms\": {},\n", e.horizon_ms));
        out.push_str(&format!("        \"run\": {},\n", mode_json(&e.run)));
        let mb = e.ckpt_bytes as f64 / 1e6;
        out.push_str(&format!(
            "        \"checkpoint\": {{ \"bytes\": {}, \"chunks\": {}, \"write_secs\": {}, \
             \"write_mb_per_sec\": {}, \"read_secs\": {}, \"read_mb_per_sec\": {} }},\n",
            e.ckpt_bytes,
            e.ckpt_chunks,
            json_f64(e.write_secs),
            json_f64(mb / e.write_secs),
            json_f64(e.read_secs),
            json_f64(mb / e.read_secs)
        ));
        let shards: Vec<String> = e.parity_shards.iter().map(|s| s.to_string()).collect();
        out.push_str(&format!(
            "        \"stream_parity_shards\": [{}],\n",
            shards.join(", ")
        ));
        out.push_str("        \"ground_truth_parity\": true\n");
        out.push_str(if i + 1 == entries.len() {
            "      }\n"
        } else {
            "      },\n"
        });
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");
    out
}

#[allow(clippy::too_many_arguments)]
fn report_json(
    seed: u64,
    quick: bool,
    horizon_secs: u64,
    threads_requested: Option<usize>,
    results: &[CaseResult],
    chain: Option<&ChainResult>,
    topologies: &[TopoResult],
    scale: &[ScaleEntry],
    steady: Option<&SteadyState>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"format\": \"ctms-perf/6\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"horizon_secs\": {horizon_secs},\n"));
    out.push_str(&format!(
        "  \"alloc_count\": {},\n",
        cfg!(feature = "alloc-count")
    ));
    // Hardware parallelism of the measuring machine: sharded speedups
    // below 1.0 on a single-core box are expected (the window protocol
    // runs inline there) and must be read against these two fields —
    // `degraded_parallelism` is the machine-readable version of the
    // stderr warning, so trend tooling can flag single-core numbers.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"degraded_parallelism\": {},\n", cores == 1));
    out.push_str("  \"cases\": [\n");
    for (i, case) in results.iter().enumerate() {
        let mode = |m: &ModeRun| {
            format!(
                "{{ \"events\": {}, \"wall_secs\": {}, \"events_per_sec\": {} }}",
                m.events,
                json_f64(m.wall_secs),
                json_f64(m.events as f64 / m.wall_secs)
            )
        };
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(case.name)));
        out.push_str(&format!("      \"indexed\": {},\n", mode(&case.indexed)));
        out.push_str(&format!("      \"lazy_baseline\": {},\n", mode(&case.lazy)));
        out.push_str(&format!(
            "      \"speedup\": {},\n",
            json_f64(case.speedup())
        ));
        out.push_str("      \"ground_truth_parity\": true\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    match chain {
        Some(c) => {
            out.push_str("  \"chain\": {\n");
            out.push_str(&format!("    \"rings\": {},\n", c.rings));
            out.push_str(&format!("    \"horizon_secs\": {},\n", c.horizon_secs));
            out.push_str(&format!("    \"single\": {},\n", mode_json(&c.single)));
            out.push_str("    \"sharded\": [\n");
            for (i, s) in c.sharded.iter().enumerate() {
                out.push_str(&sharded_json(s, &c.single, threads_requested, "      "));
                out.push_str(if i + 1 == c.sharded.len() {
                    "\n"
                } else {
                    ",\n"
                });
            }
            out.push_str("    ]\n");
            out.push_str("  },\n");
        }
        None => out.push_str("  \"chain\": null,\n"),
    }
    if topologies.is_empty() {
        out.push_str("  \"topologies\": null,\n");
    } else {
        out.push_str("  \"topologies\": [\n");
        for (i, t) in topologies.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"shape\": {},\n", json_string(&t.shape)));
            out.push_str(&format!("      \"rings\": {},\n", t.rings));
            out.push_str(&format!("      \"horizon_secs\": {},\n", t.horizon_secs));
            out.push_str(&format!("      \"single\": {},\n", mode_json(&t.single)));
            out.push_str("      \"sharded\": [\n");
            for (j, s) in t.sharded.iter().enumerate() {
                out.push_str(&sharded_json(s, &t.single, threads_requested, "        "));
                out.push_str(if j + 1 == t.sharded.len() {
                    "\n"
                } else {
                    ",\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str(if i + 1 == topologies.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ],\n");
    }
    if scale.is_empty() {
        out.push_str("  \"scale\": null,\n");
    } else {
        out.push_str(&scale_json(scale));
    }
    match steady {
        Some(s) => {
            out.push_str("  \"steady_state\": {\n");
            out.push_str("    \"workload\": \"synth-ring/16\",\n");
            out.push_str(&format!("    \"events\": {},\n", s.events));
            out.push_str(&format!(
                "    \"indexed\": {{ \"allocations\": {}, \"allocs_per_event\": {} }},\n",
                s.indexed_allocs,
                json_f64(s.indexed_allocs as f64 / s.events as f64)
            ));
            out.push_str(&format!(
                "    \"lazy_baseline\": {{ \"allocations\": {}, \"allocs_per_event\": {} }}\n",
                s.lazy_allocs,
                json_f64(s.lazy_allocs as f64 / s.events as f64)
            ));
            out.push_str("  }\n");
        }
        None => out.push_str("  \"steady_state\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Report-only comparison against a previously written report. Wall
/// clocks differ across machines, so this never fails the run — it
/// surfaces the recorded vs current speedups for a human (or a CI log
/// reader) to eyeball.
fn compare_report(
    path: &str,
    results: &[CaseResult],
    chain: Option<&ChainResult>,
    topologies: &[TopoResult],
) {
    let recorded = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("# compare: cannot read {path}: {e} (skipping)");
            return;
        }
    };
    for case in results {
        let rec = extract_speedup_after(&recorded, &format!("\"name\": \"{}\"", case.name));
        match rec {
            Some(r) => eprintln!(
                "# compare {}: recorded speedup {r:.2}x, this run {:.2}x",
                case.name,
                case.speedup()
            ),
            None => eprintln!(
                "# compare {}: no recorded speedup found in {path}",
                case.name
            ),
        }
    }
    if let Some(c) = chain {
        for s in &c.sharded {
            let rec = extract_speedup_after(&recorded, &format!("\"shards\": {}", s.shards));
            let now = c.single.wall_secs / s.run.wall_secs;
            match rec {
                Some(r) => eprintln!(
                    "# compare chain shards={}: recorded speedup {r:.2}x, this run {now:.2}x",
                    s.shards
                ),
                None => eprintln!(
                    "# compare chain shards={}: no recorded speedup found in {path}",
                    s.shards
                ),
            }
        }
    }
    for t in topologies {
        for s in &t.sharded {
            // Anchor on the shape name, then the shard entry after it.
            let anchor = format!("\"shape\": \"{}\"", t.shape);
            let rec = recorded.find(&anchor).and_then(|at| {
                extract_speedup_after(&recorded[at..], &format!("\"shards\": {}", s.shards))
            });
            let now = t.single.wall_secs / s.run.wall_secs;
            match rec {
                Some(r) => eprintln!(
                    "# compare {}/{} shards={}: recorded speedup {r:.2}x, this run {now:.2}x",
                    t.shape, t.rings, s.shards
                ),
                None => eprintln!(
                    "# compare {}/{} shards={}: no recorded speedup found in {path}",
                    t.shape, t.rings, s.shards
                ),
            }
        }
    }
}

/// Pulls the `"speedup": <number>` that follows `anchor` out of a
/// report without a JSON parser: find the anchor line (a case's
/// `"name"` or a chain entry's `"shards"` key), then the next
/// `"speedup"` key after it.
fn extract_speedup_after(report: &str, anchor: &str) -> Option<f64> {
    let at = report.find(anchor)?;
    let rest = &report[at..];
    let sp = rest.find("\"speedup\":")?;
    let tail = rest[sp + "\"speedup\":".len()..].trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn die(msg: &str) -> ! {
    eprintln!("perf: {msg}\n{HELP}");
    std::process::exit(2);
}

const HELP: &str = "usage: perf [--quick] [--seed N] [--json PATH] [--compare PATH] [--shards N] [--rings N] [--threads N] [--adaptive] [--optimistic] [--scale] [--topology SHAPE[:RINGS]]...";
