//! `perf` — scheduler hot-path benchmark for the CTMS testbed.
//!
//! ```text
//! perf [--quick] [--seed N] [--json PATH] [--compare PATH]
//!
//! --quick        short simulated horizon and a single repetition
//!                (CI smoke size) instead of the full measurement
//! --seed N       simulation seed (default 42)
//! --json PATH    write the machine-readable benchmark report
//!                (the checked-in BENCH_PR4.json is produced this way)
//! --compare PATH report-only comparison against a previously written
//!                report; never fails, prints current vs recorded
//! ```
//!
//! The binary runs test cases A and B to a fixed simulated horizon under
//! both scheduler modes — [`SchedMode::Indexed`] (the indexed deadline
//! heap with reusable routing buffers) and [`SchedMode::LazyBaseline`]
//! (which reproduces the pre-change lazy-invalidation heap and its
//! per-step/per-event allocation profile) — and reports events/sec plus
//! the cross-mode speedup. Both modes must produce bit-identical ground
//! truth: the run asserts that every edge-log digest and the serviced
//! event count agree before any timing is reported, so the speedup can
//! never come from simulating something different.
//!
//! When built with `--features alloc-count` the counting global
//! allocator is installed and a steady-state window on the synthetic
//! allocation-free ring (`ctms_sim::synth`) measures allocations/event
//! for both modes; the indexed scheduler must come out at exactly zero.

use ctms_core::{Scenario, Testbed};
use ctms_sim::telemetry::{json_f64, json_string};
use ctms_sim::{SchedMode, SimTime};
use ctms_unixkern::MeasurePoint;

#[cfg(feature = "alloc-count")]
#[global_allocator]
static ALLOC: ctms_sim::alloc_count::CountingAlloc = ctms_sim::alloc_count::CountingAlloc::new();

/// Simulated horizon for the full measurement. Long enough that the
/// run-loop dominates testbed construction by orders of magnitude.
const FULL_HORIZON_SECS: u64 = 60;
/// Simulated horizon for `--quick` (CI smoke).
const QUICK_HORIZON_SECS: u64 = 10;
/// Wall-clock repetitions in full mode; the best (minimum) run is kept,
/// which is the standard way to strip scheduler/cache noise from a
/// deterministic workload.
const FULL_REPS: usize = 3;

struct ModeRun {
    events: u64,
    wall_secs: f64,
    digests: [u64; 4],
}

struct CaseResult {
    name: &'static str,
    indexed: ModeRun,
    lazy: ModeRun,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        // Identical event counts (asserted), so the events/sec ratio
        // reduces to the wall-clock ratio.
        self.lazy.wall_secs / self.indexed.wall_secs
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--json" => {
                json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a path")),
                );
            }
            "--compare" => {
                compare_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--compare needs a path")),
                );
            }
            "--help" | "-h" => {
                eprintln!("{HELP}");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }

    let horizon_secs = if quick {
        QUICK_HORIZON_SECS
    } else {
        FULL_HORIZON_SECS
    };
    let reps = if quick { 1 } else { FULL_REPS };
    eprintln!(
        "# perf: seed={seed} horizon={horizon_secs}s reps={reps} alloc_count={}",
        cfg!(feature = "alloc-count")
    );

    let cases = [
        ("case_a", Scenario::test_case_a(seed)),
        ("case_b", Scenario::test_case_b(seed)),
    ];
    let mut results = Vec::new();
    for (name, sc) in &cases {
        let indexed = measure_case(sc, SchedMode::Indexed, horizon_secs, reps);
        let lazy = measure_case(sc, SchedMode::LazyBaseline, horizon_secs, reps);
        // Ground-truth parity: the optimized scheduler must service the
        // exact same events in the exact same order as the baseline.
        assert_eq!(
            indexed.digests, lazy.digests,
            "{name}: scheduler modes disagree on ground truth"
        );
        assert_eq!(
            indexed.events, lazy.events,
            "{name}: scheduler modes disagree on serviced event count"
        );
        let case = CaseResult {
            name,
            indexed,
            lazy,
        };
        eprintln!(
            "# {name}: indexed {:.1}ms ({:.2}M ev/s)  lazy {:.1}ms ({:.2}M ev/s)  speedup {:.2}x",
            case.indexed.wall_secs * 1e3,
            case.indexed.events as f64 / case.indexed.wall_secs / 1e6,
            case.lazy.wall_secs * 1e3,
            case.lazy.events as f64 / case.lazy.wall_secs / 1e6,
            case.speedup()
        );
        results.push(case);
    }

    let steady = steady_state_allocs();
    if let Some(s) = &steady {
        eprintln!(
            "# steady-state synth ring: indexed {} allocs / {} events, baseline {} allocs / {} events",
            s.indexed_allocs, s.events, s.lazy_allocs, s.events
        );
    }

    let json = report_json(seed, quick, horizon_secs, &results, steady.as_ref());
    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, &json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("# benchmark report written to {path}");
    } else if compare_path.is_none() {
        println!("{json}");
    }

    if let Some(path) = &compare_path {
        compare_report(path, &results);
    }
}

fn measure_case(sc: &Scenario, mode: SchedMode, horizon_secs: u64, reps: usize) -> ModeRun {
    let mut best: Option<ModeRun> = None;
    for _ in 0..reps {
        let mut bed = Testbed::ctms_with_mode(sc, mode);
        let t0 = std::time::Instant::now();
        bed.run_until(SimTime::from_secs(horizon_secs));
        let wall_secs = t0.elapsed().as_secs_f64();
        let events = bed.bus().events();
        let get = |host: usize, point: MeasurePoint| {
            bed.truth_log(host, point)
                .map(|log| log.digest())
                .unwrap_or(0)
        };
        let digests = [
            get(0, MeasurePoint::VcaIrq),
            get(0, MeasurePoint::VcaHandlerEntry),
            get(0, MeasurePoint::PreTransmit),
            get(1, MeasurePoint::CtmspIdentified),
        ];
        let run = ModeRun {
            events,
            wall_secs,
            digests,
        };
        if let Some(b) = &best {
            assert_eq!(b.digests, run.digests, "repetition changed ground truth");
            assert_eq!(b.events, run.events, "repetition changed event count");
        }
        if best.as_ref().is_none_or(|b| run.wall_secs < b.wall_secs) {
            best = Some(run);
        }
    }
    best.expect("at least one repetition")
}

struct SteadyState {
    events: u64,
    indexed_allocs: u64,
    lazy_allocs: u64,
}

/// Measures allocations/event over a steady-state window on the
/// synthetic allocation-free ring, per scheduler mode. Only meaningful
/// with the counting allocator installed; returns `None` otherwise.
#[cfg(feature = "alloc-count")]
fn steady_state_allocs() -> Option<SteadyState> {
    let window = |mode: SchedMode| -> (u64, u64) {
        let mut h = ctms_sim::synth::build_ring_with_mode(16, 1_000, 4, mode);
        h.run_until(SimTime::from_ns(2_000_000)); // warm-up: buffers reach capacity
        let events0 = h.events();
        let allocs0 = ALLOC.allocations();
        h.run_until(SimTime::from_ns(10_000_000));
        (h.events() - events0, ALLOC.allocations() - allocs0)
    };
    let (events, indexed_allocs) = window(SchedMode::Indexed);
    let (lazy_events, lazy_allocs) = window(SchedMode::LazyBaseline);
    assert_eq!(events, lazy_events, "synth ring modes disagree on events");
    Some(SteadyState {
        events,
        indexed_allocs,
        lazy_allocs,
    })
}

#[cfg(not(feature = "alloc-count"))]
fn steady_state_allocs() -> Option<SteadyState> {
    None
}

fn report_json(
    seed: u64,
    quick: bool,
    horizon_secs: u64,
    results: &[CaseResult],
    steady: Option<&SteadyState>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"format\": \"ctms-perf/1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"horizon_secs\": {horizon_secs},\n"));
    out.push_str(&format!(
        "  \"alloc_count\": {},\n",
        cfg!(feature = "alloc-count")
    ));
    out.push_str("  \"cases\": [\n");
    for (i, case) in results.iter().enumerate() {
        let mode = |m: &ModeRun| {
            format!(
                "{{ \"events\": {}, \"wall_secs\": {}, \"events_per_sec\": {} }}",
                m.events,
                json_f64(m.wall_secs),
                json_f64(m.events as f64 / m.wall_secs)
            )
        };
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": {},\n", json_string(case.name)));
        out.push_str(&format!("      \"indexed\": {},\n", mode(&case.indexed)));
        out.push_str(&format!("      \"lazy_baseline\": {},\n", mode(&case.lazy)));
        out.push_str(&format!(
            "      \"speedup\": {},\n",
            json_f64(case.speedup())
        ));
        out.push_str("      \"ground_truth_parity\": true\n");
        out.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    match steady {
        Some(s) => {
            out.push_str("  \"steady_state\": {\n");
            out.push_str("    \"workload\": \"synth-ring/16\",\n");
            out.push_str(&format!("    \"events\": {},\n", s.events));
            out.push_str(&format!(
                "    \"indexed\": {{ \"allocations\": {}, \"allocs_per_event\": {} }},\n",
                s.indexed_allocs,
                json_f64(s.indexed_allocs as f64 / s.events as f64)
            ));
            out.push_str(&format!(
                "    \"lazy_baseline\": {{ \"allocations\": {}, \"allocs_per_event\": {} }}\n",
                s.lazy_allocs,
                json_f64(s.lazy_allocs as f64 / s.events as f64)
            ));
            out.push_str("  }\n");
        }
        None => out.push_str("  \"steady_state\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Report-only comparison against a previously written report. Wall
/// clocks differ across machines, so this never fails the run — it
/// surfaces the recorded vs current speedups for a human (or a CI log
/// reader) to eyeball.
fn compare_report(path: &str, results: &[CaseResult]) {
    let recorded = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("# compare: cannot read {path}: {e} (skipping)");
            return;
        }
    };
    for case in results {
        let rec = extract_speedup(&recorded, case.name);
        match rec {
            Some(r) => eprintln!(
                "# compare {}: recorded speedup {r:.2}x, this run {:.2}x",
                case.name,
                case.speedup()
            ),
            None => eprintln!(
                "# compare {}: no recorded speedup found in {path}",
                case.name
            ),
        }
    }
}

/// Pulls `"speedup": <number>` for the named case out of a report
/// without a JSON parser: find the case's `"name"` line, then the next
/// `"speedup"` key after it.
fn extract_speedup(report: &str, case: &str) -> Option<f64> {
    let name_key = format!("\"name\": \"{case}\"");
    let at = report.find(&name_key)?;
    let rest = &report[at..];
    let sp = rest.find("\"speedup\":")?;
    let tail = rest[sp + "\"speedup\":".len()..].trim_start();
    let end = tail
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn die(msg: &str) -> ! {
    eprintln!("perf: {msg}\n{HELP}");
    std::process::exit(2);
}

const HELP: &str = "usage: perf [--quick] [--seed N] [--json PATH] [--compare PATH]";
