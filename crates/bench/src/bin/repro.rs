//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [EXPERIMENT ...] [--quick] [--seed N] [--markdown] [--json PATH]
//!
//! EXPERIMENT: all (default) | e1 | e2 | e3 | e4 | fig5_2 | fig5_3 |
//!             fig5_4 | hist1_5 | e9 | e10 | ablation | router | capacity | ring16 | spl_audit
//! --quick     short simulated durations (CI-sized)
//! --seed N    simulation seed (default 42)
//! --markdown  emit GitHub-flavoured markdown (EXPERIMENTS.md source)
//! --json PATH write a machine-readable run report (claims + wall-clock
//!             timings + the full telemetry trees of test cases A and B)
//! ```

use ctms_core::ExpCfg;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut markdown = false;
    let mut seed = 42u64;
    let mut json_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs a number"));
            }
            "--json" => {
                json_path = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| die("--json needs a path")),
                );
            }
            "--help" | "-h" => {
                eprintln!("{}", HELP);
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = ctms_bench::registry()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
    }

    let cfg = if quick {
        ExpCfg::quick(seed)
    } else {
        ExpCfg::full(seed)
    };
    eprintln!(
        "# repro: seed={seed} short={}s long={}s ({} experiments)",
        cfg.short_secs,
        cfg.long_secs,
        wanted.len()
    );

    let registry = ctms_bench::registry();
    let runners: Vec<(String, ctms_bench::Runner)> = wanted
        .iter()
        .map(|name| {
            let Some((_, runner)) = registry.iter().find(|(n, _)| n == name) else {
                die(&format!("unknown experiment {name}"));
            };
            (name.clone(), *runner)
        })
        .collect();

    // Experiments are independent simulations: fan them out over worker
    // threads, then print in request order — the output is byte-identical
    // to running them sequentially.
    let threads = ctms_sim::default_threads(runners.len());
    let results = ctms_sim::parallel_map(runners, threads, move |(name, runner)| {
        let t0 = std::time::Instant::now();
        let report = runner(cfg);
        (name, report, t0.elapsed())
    });

    let mut failures = 0;
    let mut runs = Vec::new();
    for (name, report, elapsed) in results {
        if markdown {
            println!("{}", report.render_markdown());
        } else {
            println!("{}", report.render());
        }
        eprintln!("# {name}: {:.1}s wall", elapsed.as_secs_f64());
        failures += report.claims.iter().filter(|c| !c.holds()).count();
        runs.push(ctms_bench::ExperimentRun {
            name,
            wall_secs: elapsed.as_secs_f64(),
            report,
        });
    }

    if let Some(path) = json_path {
        let case_a = ctms_bench::telemetry_case(&ctms_core::Scenario::test_case_a(seed));
        let case_b = ctms_bench::telemetry_case(&ctms_core::Scenario::test_case_b(seed));
        let json = ctms_bench::run_report_json(seed, quick, &runs, &case_a, &case_b);
        if let Err(e) = std::fs::write(&path, json) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("# run report written to {path}");
    }

    if failures > 0 {
        eprintln!("# {failures} claim(s) outside their bands");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}\n{HELP}");
    std::process::exit(2);
}

const HELP: &str = "usage: repro [all|e1|e2|e3|e4|fig5_2|fig5_3|fig5_4|hist1_5|e9|e10|ablation|router|capacity|ring16|spl_audit]... \
[--quick] [--seed N] [--markdown] [--json PATH]";
