//! `ctms-serve` — a steerable simulation runtime on stdin/stdout.
//!
//! The checkpoint layer (`ctms_core::checkpoint`) turns a run into a
//! value; this binary turns the simulator into a *service* over that
//! value: a driving process (a notebook, a sweep orchestrator, a CI
//! step) feeds line-oriented JSON commands on stdin and reads JSON
//! replies on stdout, one line each. Everything stderr is human-facing
//! commentary; stdout is protocol only.
//!
//! ## Session
//!
//! The first line selects the scenario and execution mode:
//!
//! ```text
//! {"scenario": "case_a" | "case_b" | "chain", "seed": 42,
//!  "rings": 16, "shards": 4, "exec": "optimistic",
//!  "cascade_limit": 64}
//! ```
//!
//! `seed` defaults to 42; `rings` (chain only) to 16; `shards` to 1
//! (single-threaded). Single-ring scenarios always fall back to the
//! single-threaded harness regardless of `shards`, mirroring
//! `Topology::build_sharded`. `exec` selects the sharded execution
//! protocol (`"conservative"`, the default, or `"optimistic"` for
//! Time-Warp-style speculation); replies are byte-identical either
//! way. `cascade_limit` overrides the same-instant cascade bound —
//! mostly useful for deliberately tripping the typed error path.
//!
//! ## Commands
//!
//! ```text
//! {"cmd":"run","until_ms":N,"step_ms":M}   run to N ms; with step_ms,
//!                                          emit a progress event per
//!                                          bounded step (streaming)
//! {"cmd":"telemetry"}                      full canonical metric tree
//! {"cmd":"checkpoint"}                     serialize state as hex
//! {"cmd":"checkpoint_stream"}              the same bytes as a stream
//!                                          of chunk events (bounded
//!                                          peak memory): one
//!                                          checkpoint_chunk line per
//!                                          chunk, then checkpoint_done;
//!                                          concatenating the "data"
//!                                          fields reproduces the
//!                                          "checkpoint" hex exactly
//! {"cmd":"restore","checkpoint":"<hex>"}   rebuild + restore; the hex
//!                                          may come from any session
//!                                          with the same scenario —
//!                                          any shard count
//! {"cmd":"steer","mutations":[...]}        apply mutations now
//! {"cmd":"fork","branches":[[...],...],"until_ms":N}
//!                                          checkpoint, fork one branch
//!                                          per mutation list on the
//!                                          sweep pool, report each
//!                                          branch's outcome
//! {"cmd":"quit"}                           exit
//! ```
//!
//! Mutations: `{"kind":"station_churn","ring":0}`,
//! `{"kind":"purge_storm","ring":0,"count":3}`,
//! `{"kind":"dma_stall","host":0,"extra_us":500}`. Only the
//! single-threaded bus can inject (like `Bus::inject_ring`), so a
//! sharded session steers through the shard-agnostic snapshot round
//! trip: checkpoint → apply the mutations on a single-threaded rebuild
//! → restore the mutated state into a fresh sharded build. The
//! continuation is bit-identical to steering the same state
//! single-threaded.
//!
//! Every reply carries `"ok"`; failures are reported as
//! `{"ok":false,"error":"..."}` and the session keeps serving.
//! Scheduling failures carry a machine-readable tag alongside the
//! prose: `{"ok":false,"kind":"overflow"|"cross_shard"|"speculation",
//! "at_ns":N,"error":"..."}` — one kind per `CascadeError` variant.
//! The
//! simulation is deterministic throughout: the same command script
//! against the same session line produces byte-identical stdout.

use ctms_core::{
    apply_mutations, fork, Bus, ForkSpec, Mutation, RingChainTestbed, Scenario, ShardedBus, Testbed,
};
use ctms_router::BridgeKind;
use ctms_sim::telemetry::{fnv1a, json_string};
use ctms_sim::{ChunkSink, Dur, PersistError, SimTime};
use std::io::{BufRead, Write};

// --- Minimal JSON ---------------------------------------------------------
//
// The workspace deliberately has no serde dependency (PERSIST is a
// hand-rolled canonical format for the same reason); the command
// protocol is small enough for a ~100-line recursive-descent parser.

#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.keyword("true", Json::Bool(true)),
            b'f' => self.keyword("false", Json::Bool(false)),
            b'n' => self.keyword("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected '{}' at offset {}",
                other as char, self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(hex)
                                    .ok_or("unsupported \\u codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8 passes through untouched; the
                    // input line was already validated as UTF-8.
                    out.push(b as char);
                    if b >= 0x80 {
                        // Re-take the full scalar from the source.
                        out.pop();
                        let start = self.pos - 1;
                        let s = std::str::from_utf8(&self.bytes[start..])
                            .map_err(|_| "bad utf-8".to_string())?;
                        let c = s.chars().next().ok_or("bad utf-8".to_string())?;
                        out.push(c);
                        self.pos = start + c.len_utf8();
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got '{}'", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => return Err(format!("expected ',' or '}}', got '{}'", other as char)),
            }
        }
    }
}

// --- Hex checkpoints ------------------------------------------------------

fn push_hex(dst: &mut String, bytes: &[u8]) {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    dst.reserve(bytes.len() * 2);
    for &b in bytes {
        dst.push(DIGITS[(b >> 4) as usize] as char);
        dst.push(DIGITS[(b & 0xF) as usize] as char);
    }
}

/// Streams a checkpoint's hex onto an open reply line, one chunk at a
/// time: peak memory is one chunk's hex, not snapshot-plus-full-hex
/// (the monolithic `to_hex` reply doubled the peak). The caller writes
/// the JSON prefix and suffix around it.
struct HexLineSink<'a, W: Write> {
    out: &'a mut W,
    hex: String,
}

impl<W: Write> ChunkSink for HexLineSink<'_, W> {
    fn chunk(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.hex.clear();
        push_hex(&mut self.hex, bytes);
        write_or_exit(self.out, self.hex.as_bytes());
        Ok(())
    }
}

/// Emits each chunk as its own `checkpoint_chunk` reply line; the
/// caller follows up with the `checkpoint_done` summary. Concatenating
/// every `data` field reproduces the monolithic checkpoint hex.
struct ChunkEventSink<'a, W: Write> {
    out: &'a mut W,
    hex: String,
    seq: u64,
}

impl<W: Write> ChunkSink for ChunkEventSink<'_, W> {
    fn chunk(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.hex.clear();
        push_hex(&mut self.hex, bytes);
        let line = format!(
            "{{\"ok\":true,\"event\":\"checkpoint_chunk\",\"seq\":{},\"data\":\"{}\"}}\n",
            self.seq, self.hex
        );
        write_or_exit(self.out, line.as_bytes());
        self.seq += 1;
        Ok(())
    }
}

/// Writes raw bytes onto the reply stream with the same broken-pipe
/// policy as [`emit`]: if the driver went away, exit quietly.
fn write_or_exit(out: &mut impl Write, bytes: &[u8]) {
    if out.write_all(bytes).is_err() {
        std::process::exit(0);
    }
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex checkpoint has odd length".to_string());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|_| format!("bad hex at offset {}", 2 * i))
        })
        .collect()
}

// --- Session --------------------------------------------------------------

#[derive(Clone)]
enum ScenarioKind {
    CaseA,
    CaseB,
    Chain,
}

#[derive(Clone)]
struct Spec {
    kind: ScenarioKind,
    seed: u64,
    rings: usize,
    shards: usize,
    optimistic: bool,
    cascade_limit: Option<u32>,
}

impl Spec {
    fn parse(v: &Json) -> Result<Spec, String> {
        let kind = match v
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or("session needs \"scenario\"")?
        {
            "case_a" => ScenarioKind::CaseA,
            "case_b" => ScenarioKind::CaseB,
            "chain" => ScenarioKind::Chain,
            other => return Err(format!("unknown scenario \"{other}\"")),
        };
        let rings = v.get("rings").and_then(Json::as_u64).unwrap_or(16) as usize;
        if matches!(kind, ScenarioKind::Chain) && rings < 2 {
            return Err("chain needs rings >= 2".to_string());
        }
        let optimistic = match v.get("exec").and_then(Json::as_str) {
            None | Some("conservative") => false,
            Some("optimistic") => true,
            Some(other) => return Err(format!("unknown exec mode \"{other}\"")),
        };
        Ok(Spec {
            kind,
            seed: v.get("seed").and_then(Json::as_u64).unwrap_or(42),
            rings,
            shards: v.get("shards").and_then(Json::as_u64).unwrap_or(1) as usize,
            optimistic,
            cascade_limit: v
                .get("cascade_limit")
                .and_then(Json::as_u64)
                .map(|n| n.max(1) as u32),
        })
    }

    fn scenario(&self) -> Scenario {
        let mut sc = match self.kind {
            ScenarioKind::CaseA => Scenario::test_case_a(self.seed),
            ScenarioKind::CaseB => Scenario::test_case_b(self.seed),
            ScenarioKind::Chain => Scenario::scaled_chain(self.seed),
        };
        if let Some(limit) = self.cascade_limit {
            sc.cascade_limit = limit;
        }
        sc
    }

    fn build(&self) -> ShardedBus {
        let sc = self.scenario();
        let mut bus = match self.kind {
            ScenarioKind::CaseA | ScenarioKind::CaseB => {
                if self.shards > 1 {
                    Testbed::ctms_sharded(&sc, self.shards).0
                } else {
                    ShardedBus::Single(Testbed::ctms(&sc).into_bus())
                }
            }
            ScenarioKind::Chain => {
                let kind = BridgeKind::cut_through_bridge();
                if self.shards > 1 {
                    RingChainTestbed::chain_sharded(&sc, kind, self.rings, self.shards).into_bus()
                } else {
                    ShardedBus::Single(RingChainTestbed::chain(&sc, kind, self.rings).into_bus())
                }
            }
        };
        if self.optimistic {
            bus.set_exec_mode(ctms_sim::ExecMode::Optimistic);
        }
        bus
    }

    /// The single-threaded rebuild fork branches run on (checkpoints
    /// are shard-agnostic, so this restores snapshots from any mode).
    fn build_single(&self) -> Bus {
        let sc = self.scenario();
        match self.kind {
            ScenarioKind::CaseA | ScenarioKind::CaseB => Testbed::ctms(&sc).into_bus(),
            ScenarioKind::Chain => {
                RingChainTestbed::chain(&sc, BridgeKind::cut_through_bridge(), self.rings)
                    .into_bus()
            }
        }
    }
}

fn parse_mutation(v: &Json) -> Result<Mutation, String> {
    let need = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("mutation needs numeric \"{key}\""))
    };
    match v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("mutation needs \"kind\"")?
    {
        "station_churn" => Ok(Mutation::StationChurn {
            ring: need("ring")? as usize,
        }),
        "purge_storm" => Ok(Mutation::PurgeStorm {
            ring: need("ring")? as usize,
            count: need("count")? as u32,
        }),
        "dma_stall" => Ok(Mutation::DmaStall {
            host: need("host")? as usize,
            extra: Dur::from_us(need("extra_us")?),
        }),
        other => Err(format!("unknown mutation kind \"{other}\"")),
    }
}

fn parse_mutations(v: &Json) -> Result<Vec<Mutation>, String> {
    v.as_arr()
        .ok_or("\"mutations\" must be an array".to_string())?
        .iter()
        .map(parse_mutation)
        .collect()
}

// --- Replies --------------------------------------------------------------

fn emit(out: &mut impl Write, line: &str) {
    // A broken pipe means the driver went away; exit quietly.
    if writeln!(out, "{line}").is_err() {
        std::process::exit(0);
    }
    let _ = out.flush();
}

fn emit_err(out: &mut impl Write, msg: &str) {
    emit(
        out,
        &format!("{{\"ok\":false,\"error\":{}}}", json_string(msg)),
    );
}

/// A scheduling failure as a machine-readable error line: `kind` names
/// the typed [`CascadeError`] variant (a same-instant cascade overflow,
/// a cross-shard lookahead violation, or an optimistic speculation
/// fault) so drivers can branch without parsing prose, and the session
/// keeps serving — the failure poisons the simulation, not the process.
fn emit_cascade_err(out: &mut impl Write, e: &ctms_sim::CascadeError) {
    let kind = match e {
        ctms_sim::CascadeError::Overflow { .. } => "overflow",
        ctms_sim::CascadeError::CrossShard { .. } => "cross_shard",
        ctms_sim::CascadeError::Speculation { .. } => "speculation",
    };
    emit(
        out,
        &format!(
            "{{\"ok\":false,\"kind\":{},\"at_ns\":{},\"error\":{}}}",
            json_string(kind),
            e.at().as_ns(),
            json_string(&e.to_string())
        ),
    );
}

fn status_line(bus: &ShardedBus) -> String {
    let presented: usize = bus
        .measure_parts()
        .iter()
        .map(|m| m.presented().len())
        .sum();
    let purges: usize = bus
        .measure_parts()
        .iter()
        .map(|m| m.purge_starts().len())
        .sum();
    format!(
        "\"now_ms\":{},\"events\":{},\"presented\":{presented},\"purge_starts\":{purges}",
        bus.now().as_ns() / 1_000_000,
        bus.events()
    )
}

// --- Main loop ------------------------------------------------------------

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut lines = stdin.lock().lines().filter_map(|l| {
        let l = l.ok()?;
        let t = l.trim().to_string();
        (!t.is_empty()).then_some(t)
    });

    let spec = loop {
        let Some(line) = lines.next() else {
            return; // EOF before a session line: nothing to do.
        };
        match parse_json(&line).and_then(|v| Spec::parse(&v)) {
            Ok(spec) => break spec,
            Err(e) => emit_err(&mut out, &format!("bad session line: {e}")),
        }
    };
    let mut bus = spec.build();
    emit(
        &mut out,
        &format!(
            "{{\"ok\":true,\"event\":\"ready\",\"shards\":{},{}}}",
            bus.shard_count(),
            status_line(&bus)
        ),
    );

    for line in lines {
        let cmd = match parse_json(&line) {
            Ok(v) => v,
            Err(e) => {
                emit_err(&mut out, &format!("bad command line: {e}"));
                continue;
            }
        };
        match cmd.get("cmd").and_then(Json::as_str) {
            Some("run") => {
                let Some(until_ms) = cmd.get("until_ms").and_then(Json::as_u64) else {
                    emit_err(&mut out, "run needs numeric \"until_ms\"");
                    continue;
                };
                let until = SimTime::from_ms(until_ms);
                if until < bus.now() {
                    emit_err(&mut out, "\"until_ms\" is in the simulated past");
                    continue;
                }
                let step = cmd.get("step_ms").and_then(Json::as_u64).filter(|&s| s > 0);
                let mut failed = false;
                while bus.now() < until {
                    let next = match step {
                        Some(ms) => {
                            let stepped = SimTime::from_ns(bus.now().as_ns() + ms * 1_000_000);
                            if stepped < until {
                                stepped
                            } else {
                                until
                            }
                        }
                        None => until,
                    };
                    if let Err(e) = bus.try_run_until(next) {
                        emit_cascade_err(&mut out, &e);
                        failed = true;
                        break;
                    }
                    if step.is_some() && bus.now() < until {
                        emit(
                            &mut out,
                            &format!(
                                "{{\"ok\":true,\"event\":\"progress\",{}}}",
                                status_line(&bus)
                            ),
                        );
                    }
                }
                if !failed {
                    emit(
                        &mut out,
                        &format!("{{\"ok\":true,\"event\":\"ran\",{}}}", status_line(&bus)),
                    );
                }
            }
            Some("telemetry") => {
                // The canonical tree is pretty-printed; collapse it to
                // one line so the reply stays a single stdout record.
                // Safe because the emitter escapes every control
                // character inside strings — no literal newlines exist.
                let tree: String = bus.telemetry_json().lines().map(str::trim_start).collect();
                emit(&mut out, &format!("{{\"ok\":true,\"telemetry\":{tree}}}"));
            }
            Some("checkpoint") => {
                // The hex streams straight onto the reply line chunk by
                // chunk; `bytes` (known only at the end) follows the hex.
                write_or_exit(&mut out, b"{\"ok\":true,\"checkpoint\":\"");
                let mut sink = HexLineSink {
                    out: &mut out,
                    hex: String::new(),
                };
                let (payload, _) = bus
                    .checkpoint_stream(&mut sink)
                    .expect("in-memory persist cannot fail");
                write_or_exit(&mut out, format!("\",\"bytes\":{payload}}}\n").as_bytes());
                let _ = out.flush();
            }
            Some("checkpoint_stream") => {
                let mut sink = ChunkEventSink {
                    out: &mut out,
                    hex: String::new(),
                    seq: 0,
                };
                let (payload, chunks) = bus
                    .checkpoint_stream(&mut sink)
                    .expect("in-memory persist cannot fail");
                emit(
                    &mut out,
                    &format!(
                        "{{\"ok\":true,\"event\":\"checkpoint_done\",\"chunks\":{chunks},\"bytes\":{payload}}}"
                    ),
                );
            }
            Some("restore") => {
                let Some(hex) = cmd.get("checkpoint").and_then(Json::as_str) else {
                    emit_err(&mut out, "restore needs \"checkpoint\" hex");
                    continue;
                };
                let snapshot = match from_hex(hex) {
                    Ok(b) => b,
                    Err(e) => {
                        emit_err(&mut out, &e);
                        continue;
                    }
                };
                // Restore lands on a fresh rebuild; the old bus is only
                // replaced once the snapshot is verified applicable.
                let mut fresh = spec.build();
                match fresh.restore_checkpoint(&snapshot) {
                    Ok(()) => {
                        bus = fresh;
                        emit(
                            &mut out,
                            &format!(
                                "{{\"ok\":true,\"event\":\"restored\",{}}}",
                                status_line(&bus)
                            ),
                        );
                    }
                    Err(e) => emit_err(&mut out, &format!("restore failed: {e}")),
                }
            }
            Some("steer") => {
                let Some(muts) = cmd.get("mutations") else {
                    emit_err(&mut out, "steer needs \"mutations\"");
                    continue;
                };
                let muts = match parse_mutations(muts) {
                    Ok(m) => m,
                    Err(e) => {
                        emit_err(&mut out, &e);
                        continue;
                    }
                };
                let steered = match bus.as_single_mut() {
                    Some(single) => apply_mutations(single, &muts),
                    None => {
                        // Sharded session: only the single-threaded bus
                        // can inject, so steer through the shard-agnostic
                        // snapshot round trip — checkpoint here, mutate
                        // on a single-threaded rebuild, restore the
                        // mutated state into a fresh sharded build.
                        let snapshot = bus.checkpoint();
                        let mut single = spec.build_single();
                        single
                            .restore_checkpoint(&snapshot)
                            .and_then(|()| apply_mutations(&mut single, &muts))
                            .and_then(|()| {
                                let mutated = single.checkpoint();
                                let mut fresh = spec.build();
                                fresh.restore_checkpoint(&mutated).map(|()| {
                                    bus = fresh;
                                })
                            })
                    }
                };
                match steered {
                    Ok(()) => emit(
                        &mut out,
                        &format!(
                            "{{\"ok\":true,\"event\":\"steered\",\"applied\":{},{}}}",
                            muts.len(),
                            status_line(&bus)
                        ),
                    ),
                    Err(e) => emit_err(&mut out, &format!("steer failed: {e}")),
                }
            }
            Some("fork") => {
                let Some(until_ms) = cmd.get("until_ms").and_then(Json::as_u64) else {
                    emit_err(&mut out, "fork needs numeric \"until_ms\"");
                    continue;
                };
                let run_to = SimTime::from_ms(until_ms);
                if run_to < bus.now() {
                    emit_err(&mut out, "\"until_ms\" is in the simulated past");
                    continue;
                }
                let branches: Result<Vec<ForkSpec>, String> =
                    match cmd.get("branches").and_then(Json::as_arr) {
                        Some(lists) if !lists.is_empty() => lists
                            .iter()
                            .map(|l| {
                                Ok(ForkSpec {
                                    mutations: parse_mutations(l)?,
                                    run_to,
                                })
                            })
                            .collect(),
                        _ => Err(
                            "fork needs a non-empty \"branches\" array of mutation lists"
                                .to_string(),
                        ),
                    };
                let branches = match branches {
                    Ok(b) => b,
                    Err(e) => {
                        emit_err(&mut out, &e);
                        continue;
                    }
                };
                let n = branches.len();
                let snapshot = bus.checkpoint();
                let build_spec = spec.clone();
                let result = fork(
                    snapshot,
                    branches,
                    ctms_sim::default_threads(n),
                    move || build_spec.build_single(),
                    |_idx, mut branch: Bus| {
                        let tree = branch.telemetry_json();
                        let m = branch.measurements();
                        format!(
                            "{{\"telemetry_digest\":\"{:#018X}\",\"now_ms\":{},\"events\":{},\
                             \"presented\":{},\"purge_starts\":{},\"drops\":{}}}",
                            fnv1a(tree.as_bytes()),
                            branch.now().as_ns() / 1_000_000,
                            branch.events(),
                            m.presented().len(),
                            m.purge_starts().len(),
                            m.drops().len()
                        )
                    },
                );
                match result {
                    Ok(summaries) => emit(
                        &mut out,
                        &format!(
                            "{{\"ok\":true,\"event\":\"forked\",\"branches\":[{}]}}",
                            summaries.join(",")
                        ),
                    ),
                    Err(e) => emit_err(&mut out, &format!("fork failed: {e}")),
                }
            }
            Some("quit") => {
                emit(&mut out, "{\"ok\":true,\"event\":\"bye\"}");
                return;
            }
            Some(other) => emit_err(&mut out, &format!("unknown command \"{other}\"")),
            None => emit_err(&mut out, "command needs a \"cmd\" string"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::{CascadeError, NodeId, SpeculationFault};

    fn line(e: &CascadeError) -> String {
        let mut buf = Vec::new();
        emit_cascade_err(&mut buf, e);
        String::from_utf8(buf).unwrap()
    }

    /// One machine-readable `kind` per `CascadeError` variant, with the
    /// failure instant stamped so drivers can place the error on the
    /// simulation timeline without parsing the prose.
    #[test]
    fn cascade_errors_emit_kind_tagged_json() {
        let overflow = CascadeError::overflow(SimTime::from_ns(1_500), NodeId(7), 65);
        let got = line(&overflow);
        assert!(
            got.starts_with("{\"ok\":false,\"kind\":\"overflow\",\"at_ns\":1500,"),
            "{got}"
        );
        assert!(got.contains("\"error\":\"cascade guard tripped"), "{got}");

        let cross = CascadeError::CrossShard {
            at: SimTime::from_ns(2_000),
            src: NodeId(1),
            dst: NodeId(9),
            src_shard: 0,
            dst_shard: 1,
        };
        let got = line(&cross);
        assert!(
            got.starts_with("{\"ok\":false,\"kind\":\"cross_shard\",\"at_ns\":2000,"),
            "{got}"
        );
        assert!(got.contains("protocol violation"), "{got}");

        let spec = CascadeError::Speculation {
            at: SimTime::from_ns(3_000),
            shard: 2,
            kind: SpeculationFault::RollbackPastOldestSnapshot,
        };
        let got = line(&spec);
        assert!(
            got.starts_with("{\"ok\":false,\"kind\":\"speculation\",\"at_ns\":3000,"),
            "{got}"
        );
        assert!(got.contains("oldest retained snapshot"), "{got}");
    }

    /// The session line accepts `exec` / `cascade_limit`; unknown exec
    /// modes are rejected up front instead of silently running the
    /// conservative protocol.
    #[test]
    fn spec_parses_exec_and_cascade_limit() {
        let v = parse_json("{\"scenario\":\"chain\",\"exec\":\"optimistic\",\"cascade_limit\":3}")
            .unwrap();
        let spec = Spec::parse(&v).unwrap();
        assert!(spec.optimistic);
        assert_eq!(spec.cascade_limit, Some(3));
        assert_eq!(spec.scenario().cascade_limit, 3);

        let v = parse_json("{\"scenario\":\"chain\"}").unwrap();
        let spec = Spec::parse(&v).unwrap();
        assert!(!spec.optimistic);
        assert_eq!(spec.cascade_limit, None);

        let v = parse_json("{\"scenario\":\"chain\",\"exec\":\"mystery\"}").unwrap();
        assert!(Spec::parse(&v).is_err());
    }
}
