//! Benches: simulation cost of each figure's scenario.
//!
//! One group per paper artifact. The measured quantity is the wall-clock
//! cost of simulating a fixed slice of the corresponding testbed — the
//! practical number a user extending this reproduction cares about.
//!
//! Run with `cargo bench --features bench`.

use ctms_bench::harness::BenchGroup;
use ctms_core::{Scenario, Testbed};
use ctms_sim::SimTime;
use ctms_unixkern::SockProto;
use std::hint::black_box;

fn main() {
    let g = BenchGroup::new("figures", 10);

    // Figure 5-3's scenario: test case A (private ring, standalone hosts).
    g.bench("fig5_3/case_a_2s", || {
        let sc = Scenario::test_case_a(black_box(42));
        ctms_bench::run_slice(&sc, 2)
    });

    // Figures 5-2/5-4's scenario: test case B (public ring, multiprocessing).
    g.bench("fig5_2_fig5_4/case_b_2s", || {
        let sc = Scenario::test_case_b(black_box(42));
        ctms_bench::run_slice(&sc, 2)
    });

    // E1's scenarios: the stock path at both rates.
    for rate in [16_000u32, 150_000] {
        g.bench(&format!("e1_stock/{rate}Bps_2s"), || {
            let sc = Scenario::test_case_a(black_box(42));
            let mut bed = Testbed::stock(&sc, rate, SockProto::UdpLite);
            bed.run_until(SimTime::from_secs(2));
            bed.sock_delivered().len()
        });
    }

    // E9's scenario: purge sequences (forced insertion).
    g.bench("e9/insertion_purge_2s", || {
        let sc = Scenario::test_case_b(black_box(42));
        let mut bed = Testbed::ctms(&sc);
        bed.disturb(ctms_tokenring::Disturb::StationInsertion);
        bed.run_until(SimTime::from_secs(2));
        bed.purge_starts().len()
    });
}
