//! Criterion benches: simulation cost of each figure's scenario.
//!
//! One group per paper artifact. The measured quantity is the wall-clock
//! cost of simulating a fixed slice of the corresponding testbed — the
//! practical number a user extending this reproduction cares about.

use criterion::{criterion_group, criterion_main, Criterion};
use ctms_core::{Scenario, Testbed};
use ctms_sim::SimTime;
use ctms_unixkern::SockProto;
use std::hint::black_box;

/// Figure 5-3's scenario: test case A (private ring, standalone hosts).
fn fig5_3_case_a(c: &mut Criterion) {
    c.bench_function("fig5_3/case_a_2s", |b| {
        b.iter(|| {
            let sc = Scenario::test_case_a(black_box(42));
            ctms_bench::run_slice(&sc, 2)
        })
    });
}

/// Figures 5-2/5-4's scenario: test case B (public ring, multiprocessing).
fn fig5_2_and_5_4_case_b(c: &mut Criterion) {
    c.bench_function("fig5_2_fig5_4/case_b_2s", |b| {
        b.iter(|| {
            let sc = Scenario::test_case_b(black_box(42));
            ctms_bench::run_slice(&sc, 2)
        })
    });
}

/// E1's scenarios: the stock path at both rates.
fn e1_stock(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_stock");
    for rate in [16_000u32, 150_000] {
        g.bench_function(format!("{rate}Bps_2s"), |b| {
            b.iter(|| {
                let sc = Scenario::test_case_a(black_box(42));
                let mut bed = Testbed::stock(&sc, rate, SockProto::UdpLite);
                bed.run_until(SimTime::from_secs(2));
                bed.sock_delivered().len()
            })
        });
    }
    g.finish();
}

/// E9's scenario: purge sequences (forced insertion).
fn e9_purges(c: &mut Criterion) {
    c.bench_function("e9/insertion_purge_2s", |b| {
        b.iter(|| {
            let sc = Scenario::test_case_b(black_box(42));
            let mut bed = Testbed::ctms(&sc);
            bed.disturb(ctms_tokenring::Disturb::StationInsertion);
            bed.run_until(SimTime::from_secs(2));
            bed.purge_starts().len()
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig5_3_case_a, fig5_2_and_5_4_case_b, e1_stock, e9_purges
}
criterion_main!(figures);
