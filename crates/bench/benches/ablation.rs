//! Benches over the §5.3 ablation grid: simulation cost of each design
//! variant (E11). The correctness-side comparison lives in
//! `repro ablation`; this measures how each variant loads the simulator
//! (queue-heavy variants do more event work per simulated second).
//!
//! Run with `cargo bench --features bench`.

use ctms_bench::harness::BenchGroup;
use ctms_core::Scenario;
use std::hint::black_box;

fn main() {
    let g = BenchGroup::new("ablation", 10);
    let base = Scenario::test_case_b(42);

    let variants: Vec<(&str, Scenario)> = vec![
        ("baseline", base.clone()),
        ("no_ring_priority", {
            let mut s = base.clone();
            s.ring_priority = false;
            s
        }),
        ("no_driver_priority", {
            let mut s = base.clone();
            s.driver_priority = false;
            s
        }),
        ("system_memory_buffers", {
            let mut s = base.clone();
            s.io_channel_memory = false;
            s
        }),
        ("header_only_tx_copy", {
            let mut s = base.clone();
            s.tx_copy_full = false;
            s
        }),
        ("no_precomputed_header", {
            let mut s = base.clone();
            s.precomputed_header = false;
            s
        }),
        ("purge_interrupt", {
            let mut s = base.clone();
            s.purge_interrupt = true;
            s
        }),
    ];

    for (name, sc) in variants {
        g.bench(name, || ctms_bench::run_slice(black_box(&sc), 2));
    }
}
