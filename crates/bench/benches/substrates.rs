//! Micro-benches of the substrate data structures: the token ring
//! medium, the CPU scheduler, the mbuf pool, the PC/AT instrument
//! model, and histogram accumulation.
//!
//! Run with `cargo bench --features bench`.

use ctms_bench::harness::BenchGroup;
use ctms_rtpc::{Cpu, CpuCmd, CpuConfig, ExecLevel, Job};
use ctms_sim::{drain_component, Component, Dur, EdgeLog, Pcg32, SimTime};
use ctms_stats::Histogram;
use ctms_tokenring::{Frame, FrameKind, Proto, RingCmd, RingConfig, StationId, TokenRing};
use std::hint::black_box;

fn main() {
    let g = BenchGroup::new("substrate", 20);

    g.bench("ring_1000_frames", || {
        let mut cfg = RingConfig::default();
        cfg.mac_rate_per_sec = 0.0;
        let mut ring = TokenRing::new(cfg, Pcg32::new(1, 1));
        for _ in 0..8 {
            ring.add_station();
        }
        let mut sink = Vec::new();
        for k in 0..1000u64 {
            let id = ring.alloc_frame_id();
            ring.handle(
                SimTime::from_us(k),
                RingCmd::Submit(Frame {
                    id,
                    src: StationId((k % 8) as u32),
                    dst: Some(StationId(((k + 1) % 8) as u32)),
                    kind: FrameKind::Llc(Proto::Ip),
                    info_len: 1500,
                    priority: 0,
                    tag: k,
                }),
                &mut sink,
            );
        }
        let evs = drain_component(&mut ring, SimTime::from_secs(60));
        black_box(evs.len())
    });

    g.bench("cpu_10k_jobs", || {
        let mut cpu: Cpu<u64> = Cpu::new(CpuConfig::default());
        let mut sink = Vec::new();
        for k in 0..10_000u64 {
            cpu.handle(
                SimTime::from_us(k),
                CpuCmd::Push(Job {
                    tag: k,
                    cost: Dur::from_us(3),
                    level: if k % 7 == 0 {
                        ExecLevel::KernelSpl((k % 6 + 1) as u8)
                    } else {
                        ExecLevel::User
                    },
                }),
                &mut sink,
            );
        }
        let evs = drain_component(&mut cpu, SimTime::from_secs(1));
        black_box(evs.len())
    });

    g.bench("mbuf_10k_alloc_free", || {
        let mut pool = ctms_unixkern::MbufPool::new(2048);
        let mut live = Vec::new();
        for k in 0..10_000u32 {
            if let Some(chain) = pool.alloc_nowait(2000) {
                live.push(chain);
            }
            if k % 3 == 0 {
                if let Some(c) = live.pop() {
                    let _ = pool.free(c);
                }
            }
            if live.len() > 50 {
                for c in live.drain(..) {
                    let _ = pool.free(c);
                }
            }
        }
        for c in live.drain(..) {
            let _ = pool.free(c);
        }
        black_box(pool.stats().allocs)
    });

    let mut log = EdgeLog::new("bench");
    for k in 0..5_000u64 {
        log.record(SimTime::from_us(12_000 * k), k);
    }
    g.bench("pcat_5k_edges", || {
        let mut tool = ctms_measure::PcAt::new(ctms_measure::PcAtCfg::default(), Pcg32::new(3, 3));
        let cap = tool.observe(&[&log], SimTime::from_secs(61));
        black_box(cap.reconstruct().len())
    });

    let mut rng = Pcg32::new(9, 9);
    let xs: Vec<f64> = (0..100_000)
        .map(|_| rng.normal_f64(10_900.0, 160.0))
        .collect();
    g.bench("histogram_100k_samples", || {
        let h = Histogram::of(black_box(&xs), 10_000.0, 160.0);
        black_box(h.peaks(0.01).len())
    });
}
