//! # ctms-router — inter-ring forwarding (the footnote-5 extension)
//!
//! The paper confines itself to one physical ring and notes (§1, note 5)
//! that crossing rings "would \[add\] the additional problem of creating a
//! router that could keep up with the data rates … This is possible but
//! has not been implemented." This crate implements that router, in two
//! flavours — a 1991 store-and-forward host and a hardware cut-through
//! bridge — so the dual-ring experiment (E12) can measure whether an
//! inter-ring CTMS stream is viable with each.

pub mod bridge;

pub use bridge::{Bridge, BridgeCfg, BridgeCmd, BridgeKind, BridgeOut, BridgePort, BridgeStats};
