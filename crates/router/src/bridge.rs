//! Inter-ring forwarding engines.
//!
//! §1 footnote 5: "If we did not [keep source and destination on the same
//! ring] then we would have the additional problem of creating a router
//! that could keep up with the data rates that we were using. This is
//! possible but has not been implemented." This module implements it,
//! with two engines spanning the design space the paper hints at:
//!
//! * [`BridgeKind::HostRouter`] — a store-and-forward host doing
//!   kernel-level forwarding: receive DMA, route lookup, two CPU copies,
//!   transmit DMA. One shared engine for both directions (one CPU). At
//!   1991 copy rates this is ~13 ms per 2000-byte packet — more than the
//!   stream's 12 ms period, exactly the paper's worry;
//! * [`BridgeKind::CutThrough`] — a source-routing bridge forwarding in
//!   hardware with a small fixed latency and one engine per port.
//!
//! The bridge occupies one station on each ring. CTMSP traffic follows a
//! static point-to-point route (the protocol's §3 assumption extends to
//! one configured inter-ring hop); everything else is dropped, as the
//! paper's CTMSP is "specifically designed for and limited to" the media
//! path.

use ctms_sim::{Component, Dur, SimTime};
use ctms_tokenring::{Frame, FrameId, Proto, StationId};
use std::collections::VecDeque;

/// Which ring a frame/event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RingSide {
    /// The source ring.
    A,
    /// The destination ring.
    B,
}

impl RingSide {
    /// The opposite side.
    pub fn other(self) -> RingSide {
        match self {
            RingSide::A => RingSide::B,
            RingSide::B => RingSide::A,
        }
    }
}

/// Forwarding engine model.
#[derive(Clone, Copy, Debug)]
pub enum BridgeKind {
    /// Store-and-forward host: one shared engine, per-packet +
    /// per-byte service cost.
    HostRouter {
        /// Fixed per-packet cost (interrupt, route lookup, headers).
        per_packet: Dur,
        /// Per-byte cost (receive copy + transmit copy).
        per_byte: Dur,
    },
    /// Hardware source-routing bridge: per-port engines, fixed latency
    /// plus a per-byte cut-through cost.
    CutThrough {
        /// Fixed forwarding latency.
        latency: Dur,
        /// Per-byte forwarding cost (elastic buffer).
        per_byte: Dur,
    },
}

impl BridgeKind {
    /// A 1991 host router at the paper's copy rates: two adapter
    /// interrupts, a receive copy out of the fixed DMA buffer, route
    /// lookup and header rebuild, a transmit copy back into the other
    /// adapter's buffer — all on a CPU that both adapters' DMA engines
    /// are simultaneously stealing cycles from. ≈13 ms for a 2000-byte
    /// packet: *more than the stream's 12 ms period*, which is exactly
    /// the paper's footnote-5 worry.
    pub fn host_router_1991() -> BridgeKind {
        BridgeKind::HostRouter {
            per_packet: Dur::from_us(2_500),
            per_byte: Dur::from_ns(5_000),
        }
    }

    /// A contemporary source-routing bridge.
    pub fn cut_through_bridge() -> BridgeKind {
        BridgeKind::CutThrough {
            latency: Dur::from_us(350),
            per_byte: Dur::from_ns(150),
        }
    }

    /// Service time for a frame of `wire_bytes`.
    pub fn service(&self, wire_bytes: u32) -> Dur {
        match *self {
            BridgeKind::HostRouter {
                per_packet,
                per_byte,
            } => per_packet + per_byte * u64::from(wire_bytes),
            BridgeKind::CutThrough { latency, per_byte } => {
                latency + per_byte * u64::from(wire_bytes)
            }
        }
    }

    /// Lower bound on the time between a frame entering this bridge and
    /// any effect appearing on the far ring: the fixed per-packet term
    /// of [`BridgeKind::service`] (byte costs only add to it). This is
    /// the conservative-synchronization **lookahead** of a cross-shard
    /// link in the sharded scheduler: a shard that has simulated up to
    /// `t` can safely run to `t + lookahead()` before looking at its
    /// inbox again, because nothing a neighbor does at or after `t` can
    /// reach it earlier than that.
    pub fn lookahead(&self) -> Dur {
        match *self {
            BridgeKind::HostRouter { per_packet, .. } => per_packet,
            BridgeKind::CutThrough { latency, .. } => latency,
        }
    }

    fn shared_engine(&self) -> bool {
        matches!(self, BridgeKind::HostRouter { .. })
    }
}

/// Bridge configuration.
#[derive(Clone, Copy, Debug)]
pub struct BridgeCfg {
    /// The bridge's station on ring A.
    pub station_a: StationId,
    /// The bridge's station on ring B.
    pub station_b: StationId,
    /// CTMSP forward target on ring B (static route, A→B direction).
    pub ctmsp_dst_b: StationId,
    /// CTMSP forward target on ring A (static route, B→A direction).
    pub ctmsp_dst_a: StationId,
    /// Engine model.
    pub kind: BridgeKind,
    /// Per-direction queue capacity in frames.
    pub queue_cap: usize,
}

/// Commands into the bridge.
#[derive(Clone, Debug)]
pub enum BridgeCmd {
    /// A frame arrived at the bridge's station on `side`.
    Delivered {
        /// Which ring it came from.
        side: RingSide,
        /// The frame.
        frame: Frame,
    },
}

/// Events out of the bridge.
#[derive(Clone, Debug)]
pub enum BridgeOut {
    /// Submit this frame on the given ring.
    Submit {
        /// Target ring.
        side: RingSide,
        /// The (re-addressed) frame.
        frame: Frame,
    },
    /// A frame was dropped (queue overflow or non-routable protocol).
    Dropped {
        /// The frame's tag.
        tag: u64,
        /// True if dropped for queue overflow (vs. unroutable).
        overflow: bool,
    },
}

/// Bridge counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct BridgeStats {
    /// Frames forwarded A→B.
    pub forwarded_ab: u64,
    /// Frames forwarded B→A.
    pub forwarded_ba: u64,
    /// Queue-overflow drops.
    pub overflows: u64,
    /// Unroutable frames discarded.
    pub unroutable: u64,
    /// High-water queue depth.
    pub queue_highwater: usize,
    /// Busy nanoseconds of the (shared or per-port) engines.
    pub busy_ns: u64,
}

impl ctms_sim::Instrument for BridgeStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("forwarded_ab", self.forwarded_ab);
        scope.counter("forwarded_ba", self.forwarded_ba);
        scope.counter("overflows", self.overflows);
        scope.counter("unroutable", self.unroutable);
        scope.gauge("queue_highwater", self.queue_highwater as i64);
        scope.counter("busy_ns", self.busy_ns);
    }
}

struct Pending {
    side_in: RingSide,
    frame: Frame,
}

/// The bridge. See module docs.
pub struct Bridge {
    cfg: BridgeCfg,
    queues: [VecDeque<Pending>; 2],
    /// Engine-busy horizon per port (HostRouter uses slot 0 only).
    busy_until: [Option<(SimTime, RingSide)>; 2],
    next_id: u64,
    stats: BridgeStats,
}

impl Bridge {
    /// Creates the bridge.
    pub fn new(cfg: BridgeCfg) -> Self {
        Bridge {
            cfg,
            queues: [VecDeque::new(), VecDeque::new()],
            busy_until: [None, None],
            next_id: 0,
            stats: BridgeStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> BridgeStats {
        self.stats
    }

    /// The forwarding-engine model (partition derivation reads the
    /// lookahead off it).
    pub fn kind(&self) -> BridgeKind {
        self.cfg.kind
    }

    /// This bridge's station id on the given ring.
    pub fn station(&self, side: RingSide) -> StationId {
        match side {
            RingSide::A => self.cfg.station_a,
            RingSide::B => self.cfg.station_b,
        }
    }

    fn engine_index(&self, side_in: RingSide) -> usize {
        if self.cfg.kind.shared_engine() {
            0
        } else {
            match side_in {
                RingSide::A => 0,
                RingSide::B => 1,
            }
        }
    }

    fn queue_index(side_in: RingSide) -> usize {
        match side_in {
            RingSide::A => 0,
            RingSide::B => 1,
        }
    }

    fn alloc_id(&mut self) -> FrameId {
        self.next_id += 1;
        FrameId(0xB000_0000_0000_0000 | self.next_id)
    }

    /// Starts service on `engine` if it is idle and work is queued.
    fn kick(&mut self, now: SimTime, engine: usize) {
        if self.busy_until[engine].is_some() {
            return;
        }
        // A shared engine serves both queues round-robin by arrival;
        // per-port engines serve their own queue.
        let candidates: &[usize] = if self.cfg.kind.shared_engine() {
            &[0, 1]
        } else {
            std::slice::from_ref(match engine {
                0 => &0,
                _ => &1,
            })
        };
        let mut best: Option<usize> = None;
        for &q in candidates {
            if !self.queues[q].is_empty()
                && best
                    .map(|b| self.queues[q].len() > self.queues[b].len())
                    .unwrap_or(true)
            {
                best = Some(q);
            }
        }
        let Some(q) = best else { return };
        let head = self.queues[q].front().expect("non-empty");
        let service = self.cfg.kind.service(head.frame.wire_bytes());
        self.stats.busy_ns += service.as_ns();
        self.busy_until[engine] = Some((now + service, head.side_in));
        // The frame leaves the queue when service completes; keep it at
        // the head so depth accounting stays truthful.
        let _ = q;
    }

    fn finish(&mut self, engine: usize, side_in: RingSide, sink: &mut Vec<BridgeOut>) {
        let q = Self::queue_index(side_in);
        let Some(p) = self.queues[q].pop_front() else {
            return;
        };
        let side_out = p.side_in.other();
        let dst = match side_out {
            RingSide::A => self.cfg.ctmsp_dst_a,
            RingSide::B => self.cfg.ctmsp_dst_b,
        };
        let mut frame = p.frame;
        frame.id = self.alloc_id();
        frame.src = self.station(side_out);
        frame.dst = Some(dst);
        match p.side_in {
            RingSide::A => self.stats.forwarded_ab += 1,
            RingSide::B => self.stats.forwarded_ba += 1,
        }
        sink.push(BridgeOut::Submit {
            side: side_out,
            frame,
        });
        let _ = engine;
    }
}

fn persist_side(enc: &mut ctms_sim::Enc, side: RingSide) {
    enc.u8(match side {
        RingSide::A => 0,
        RingSide::B => 1,
    });
}

fn restore_side(dec: &mut ctms_sim::Dec<'_>) -> Result<RingSide, ctms_sim::PersistError> {
    match dec.u8()? {
        0 => Ok(RingSide::A),
        1 => Ok(RingSide::B),
        tag => Err(ctms_sim::PersistError::BadTag {
            what: "ring side",
            tag,
        }),
    }
}

impl ctms_sim::Persist for Bridge {
    /// Dynamic bridge state: both direction queues, the engine-busy
    /// horizons, the forwarded-frame id allocator and counters. `cfg`
    /// is structural.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        for q in &self.queues {
            enc.seq_len(q.len());
            for p in q {
                persist_side(enc, p.side_in);
                p.frame.persist(enc);
            }
        }
        for b in &self.busy_until {
            enc.opt(b.as_ref(), |e, (t, side)| {
                e.time(*t);
                persist_side(e, *side);
            });
        }
        enc.u64(self.next_id);
        let s = &self.stats;
        enc.u64(s.forwarded_ab);
        enc.u64(s.forwarded_ba);
        enc.u64(s.overflows);
        enc.u64(s.unroutable);
        enc.u64(s.queue_highwater as u64);
        enc.u64(s.busy_ns);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        use ctms_tokenring::decode_frame;
        for q in &mut self.queues {
            *q = dec
                .seq(|d| {
                    let side_in = restore_side(d)?;
                    let frame = decode_frame(d)?;
                    Ok(Pending { side_in, frame })
                })?
                .into_iter()
                .collect();
        }
        for b in &mut self.busy_until {
            *b = dec.opt(|d| Ok((d.time()?, restore_side(d)?)))?;
        }
        self.next_id = dec.u64()?;
        self.stats = BridgeStats {
            forwarded_ab: dec.u64()?,
            forwarded_ba: dec.u64()?,
            overflows: dec.u64()?,
            unroutable: dec.u64()?,
            queue_highwater: dec.u64()? as usize,
            busy_ns: dec.u64()?,
        };
        Ok(())
    }
}

impl Component for Bridge {
    type Cmd = BridgeCmd;
    type Out = BridgeOut;

    fn next_deadline(&self) -> Option<SimTime> {
        ctms_sim::earliest(self.busy_until.iter().map(|b| b.map(|(t, _)| t)))
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<BridgeOut>) {
        for engine in 0..2 {
            if let Some((t, side_in)) = self.busy_until[engine] {
                if t <= now {
                    self.busy_until[engine] = None;
                    self.finish(engine, side_in, sink);
                    self.kick(now, engine);
                }
            }
        }
    }

    fn handle(&mut self, now: SimTime, cmd: BridgeCmd, sink: &mut Vec<BridgeOut>) {
        let BridgeCmd::Delivered { side, frame } = cmd;
        // Only the static CTMSP route is forwarded (§3's point-to-point
        // assumption, extended across one hop).
        if frame.kind != ctms_tokenring::FrameKind::Llc(Proto::Ctmsp) {
            self.stats.unroutable += 1;
            sink.push(BridgeOut::Dropped {
                tag: frame.tag,
                overflow: false,
            });
            return;
        }
        let q = Self::queue_index(side);
        if self.queues[q].len() >= self.cfg.queue_cap {
            self.stats.overflows += 1;
            sink.push(BridgeOut::Dropped {
                tag: frame.tag,
                overflow: true,
            });
            return;
        }
        self.queues[q].push_back(Pending {
            side_in: side,
            frame,
        });
        let depth = self.queues[0].len() + self.queues[1].len();
        self.stats.queue_highwater = self.stats.queue_highwater.max(depth);
        let engine = self.engine_index(side);
        self.kick(now, engine);
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
        scope.gauge(
            "queue_depth",
            (self.queues[0].len() + self.queues[1].len()) as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::drain_component;
    use ctms_tokenring::FrameKind;

    fn cfg(kind: BridgeKind) -> BridgeCfg {
        BridgeCfg {
            station_a: StationId(3),
            station_b: StationId(0),
            ctmsp_dst_b: StationId(1),
            ctmsp_dst_a: StationId(0),
            kind,
            queue_cap: 8,
        }
    }

    fn ctmsp(tag: u64) -> Frame {
        Frame {
            id: FrameId(tag),
            src: StationId(0),
            dst: Some(StationId(3)),
            kind: FrameKind::Llc(Proto::Ctmsp),
            info_len: 2000,
            priority: 4,
            tag,
        }
    }

    #[test]
    fn forwards_with_service_latency() {
        let mut b = Bridge::new(cfg(BridgeKind::host_router_1991()));
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                side: RingSide::A,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        assert!(sink.is_empty(), "service takes time");
        let evs = drain_component(&mut b, SimTime::from_ms(100));
        let (t, out) = &evs[0];
        // 2.5 ms + 2021 × 5 µs ≈ 12.6 ms.
        assert_eq!(*t, SimTime::from_ns(2_500_000 + 2021 * 5_000));
        match out {
            BridgeOut::Submit { side, frame } => {
                assert_eq!(*side, RingSide::B);
                assert_eq!(frame.dst, Some(StationId(1)));
                assert_eq!(frame.src, StationId(0));
                assert_eq!(frame.tag, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(b.stats().forwarded_ab, 1);
    }

    #[test]
    fn cut_through_is_fast_and_duplex() {
        let mut b = Bridge::new(cfg(BridgeKind::cut_through_bridge()));
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                side: RingSide::A,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        let mut back = ctmsp(2);
        back.src = StationId(1);
        back.dst = Some(StationId(0));
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                side: RingSide::B,
                frame: back,
            },
            &mut sink,
        );
        let evs = drain_component(&mut b, SimTime::from_ms(10));
        // Per-port engines: both forwarded at the same instant.
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].0, evs[1].0);
        let service = BridgeKind::cut_through_bridge().service(2021);
        assert_eq!(evs[0].0, SimTime::ZERO + service);
        assert!(service < Dur::from_us(700), "{service}");
        assert_eq!(b.stats().forwarded_ab, 1);
        assert_eq!(b.stats().forwarded_ba, 1);
    }

    #[test]
    fn host_router_serializes_directions() {
        let mut b = Bridge::new(cfg(BridgeKind::host_router_1991()));
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                side: RingSide::A,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                side: RingSide::B,
                frame: ctmsp(2),
            },
            &mut sink,
        );
        let evs = drain_component(&mut b, SimTime::from_ms(100));
        assert_eq!(evs.len(), 2);
        let service = BridgeKind::host_router_1991().service(2021);
        assert_eq!(evs[1].0.since(evs[0].0), service, "one CPU, one at a time");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut b = Bridge::new(cfg(BridgeKind::host_router_1991()));
        let mut sink = Vec::new();
        for k in 0..12 {
            b.handle(
                SimTime::ZERO,
                BridgeCmd::Delivered {
                    side: RingSide::A,
                    frame: ctmsp(k),
                },
                &mut sink,
            );
        }
        let drops = sink
            .iter()
            .filter(|e| matches!(e, BridgeOut::Dropped { overflow: true, .. }))
            .count();
        assert_eq!(drops, 4, "cap 8");
        assert_eq!(b.stats().overflows, 4);
        assert_eq!(b.stats().queue_highwater, 8);
    }

    #[test]
    fn non_ctmsp_is_unroutable() {
        let mut b = Bridge::new(cfg(BridgeKind::cut_through_bridge()));
        let mut sink = Vec::new();
        let mut f = ctmsp(9);
        f.kind = FrameKind::Llc(Proto::Ip);
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                side: RingSide::A,
                frame: f,
            },
            &mut sink,
        );
        assert!(matches!(
            sink[0],
            BridgeOut::Dropped {
                overflow: false,
                ..
            }
        ));
        assert_eq!(b.stats().unroutable, 1);
    }
}
