//! Inter-ring forwarding engines.
//!
//! §1 footnote 5: "If we did not [keep source and destination on the same
//! ring] then we would have the additional problem of creating a router
//! that could keep up with the data rates that we were using. This is
//! possible but has not been implemented." This module implements it,
//! with two engines spanning the design space the paper hints at:
//!
//! * [`BridgeKind::HostRouter`] — a store-and-forward host doing
//!   kernel-level forwarding: receive DMA, route lookup, two CPU copies,
//!   transmit DMA. One shared engine for both directions (one CPU). At
//!   1991 copy rates this is ~13 ms per 2000-byte packet — more than the
//!   stream's 12 ms period, exactly the paper's worry;
//! * [`BridgeKind::CutThrough`] — a source-routing bridge forwarding in
//!   hardware with a small fixed latency and one engine per port.
//!
//! A bridge occupies one station on each ring it attaches to. The
//! classic configuration is two ports (the paper's dual-ring case), but
//! a bridge may attach to any number of rings — FDDI-style backbone
//! concentrators take three (leaf, primary backbone, secondary
//! backbone). Forwarding is a static per-input-port table (`forward`):
//! CTMSP traffic entering port `p` leaves on port `forward[p]`,
//! re-addressed to that port's configured next hop (the protocol's §3
//! point-to-point assumption, extended hop by hop along a precomputed
//! path); everything else is dropped, as the paper's CTMSP is
//! "specifically designed for and limited to" the media path.

use ctms_sim::{Component, Dur, SimTime};
use ctms_tokenring::{Frame, FrameId, Proto, StationId};
use std::collections::VecDeque;

/// Forwarding engine model.
#[derive(Clone, Copy, Debug)]
pub enum BridgeKind {
    /// Store-and-forward host: one shared engine, per-packet +
    /// per-byte service cost.
    HostRouter {
        /// Fixed per-packet cost (interrupt, route lookup, headers).
        per_packet: Dur,
        /// Per-byte cost (receive copy + transmit copy).
        per_byte: Dur,
    },
    /// Hardware source-routing bridge: per-port engines, fixed latency
    /// plus a per-byte cut-through cost.
    CutThrough {
        /// Fixed forwarding latency.
        latency: Dur,
        /// Per-byte forwarding cost (elastic buffer).
        per_byte: Dur,
    },
}

impl BridgeKind {
    /// A 1991 host router at the paper's copy rates: two adapter
    /// interrupts, a receive copy out of the fixed DMA buffer, route
    /// lookup and header rebuild, a transmit copy back into the other
    /// adapter's buffer — all on a CPU that both adapters' DMA engines
    /// are simultaneously stealing cycles from. ≈13 ms for a 2000-byte
    /// packet: *more than the stream's 12 ms period*, which is exactly
    /// the paper's footnote-5 worry.
    pub fn host_router_1991() -> BridgeKind {
        BridgeKind::HostRouter {
            per_packet: Dur::from_us(2_500),
            per_byte: Dur::from_ns(5_000),
        }
    }

    /// A contemporary source-routing bridge.
    pub fn cut_through_bridge() -> BridgeKind {
        BridgeKind::CutThrough {
            latency: Dur::from_us(350),
            per_byte: Dur::from_ns(150),
        }
    }

    /// Service time for a frame of `wire_bytes`.
    pub fn service(&self, wire_bytes: u32) -> Dur {
        match *self {
            BridgeKind::HostRouter {
                per_packet,
                per_byte,
            } => per_packet + per_byte * u64::from(wire_bytes),
            BridgeKind::CutThrough { latency, per_byte } => {
                latency + per_byte * u64::from(wire_bytes)
            }
        }
    }

    /// Lower bound on the time between a frame entering this bridge and
    /// any effect appearing on another ring: the fixed per-packet term
    /// of [`BridgeKind::service`] (byte costs only add to it).
    ///
    /// This is the conservative-synchronization **lookahead** of a
    /// cross-shard link in the sharded scheduler. When a bridge's port
    /// rings land in different shards, the bridge becomes a sync-class
    /// node, and this bound licenses the shards to run ahead: a shard
    /// that has simulated up to `t` can safely run to `t + lookahead()`
    /// before looking at its inbox again, because a frame a neighbor
    /// hands the bridge at or after `t` cannot emerge on any other ring
    /// earlier than `t + lookahead()`. The topology build derives each
    /// shard's window bound as the minimum over the cut bridges incident
    /// to it (see `ctms_core::Topology::build_sharded`), so the bound
    /// must be **positive**: a zero here would collapse the conservative
    /// window to nothing and stall the parallel engine. Both engine
    /// models have an inherently positive fixed term; the topology build
    /// debug-asserts this for every bridge that ends up on a shard cut.
    pub fn lookahead(&self) -> Dur {
        match *self {
            BridgeKind::HostRouter { per_packet, .. } => per_packet,
            BridgeKind::CutThrough { latency, .. } => latency,
        }
    }

    fn shared_engine(&self) -> bool {
        matches!(self, BridgeKind::HostRouter { .. })
    }
}

/// One bridge attachment: the station the bridge occupies on that ring
/// and the static CTMSP next hop used when *emitting* on that ring.
#[derive(Clone, Copy, Debug)]
pub struct BridgePort {
    /// The bridge's station on this port's ring.
    pub station: StationId,
    /// CTMSP forward target on this port's ring (static route).
    pub ctmsp_dst: StationId,
}

/// Two-port bridge configuration — the classic dual-ring shape, kept as
/// the convenient construction path for chains. Port 0 is the A (source
/// side) ring, port 1 the B (destination side) ring.
#[derive(Clone, Copy, Debug)]
pub struct BridgeCfg {
    /// The bridge's station on ring A (port 0).
    pub station_a: StationId,
    /// The bridge's station on ring B (port 1).
    pub station_b: StationId,
    /// CTMSP forward target on ring B (static route, A→B direction).
    pub ctmsp_dst_b: StationId,
    /// CTMSP forward target on ring A (static route, B→A direction).
    pub ctmsp_dst_a: StationId,
    /// Engine model.
    pub kind: BridgeKind,
    /// Per-port queue capacity in frames.
    pub queue_cap: usize,
}

/// Commands into the bridge.
#[derive(Clone, Debug)]
pub enum BridgeCmd {
    /// A frame arrived at the bridge's station on port `port`.
    Delivered {
        /// Which port (ring attachment) it came from.
        port: u8,
        /// The frame.
        frame: Frame,
    },
}

/// Events out of the bridge.
#[derive(Clone, Debug)]
pub enum BridgeOut {
    /// Submit this frame on the given port's ring.
    Submit {
        /// Target port (ring attachment).
        port: u8,
        /// The (re-addressed) frame.
        frame: Frame,
    },
    /// A frame was dropped (queue overflow or non-routable protocol).
    Dropped {
        /// The frame's tag.
        tag: u64,
        /// True if dropped for queue overflow (vs. unroutable).
        overflow: bool,
    },
}

/// Bridge counters, aggregated over ports. `forwarded_ab`/`forwarded_ba`
/// are the two-port directions (frames that *entered* port 0 / port 1);
/// per-port counts on wider bridges come from [`Bridge::forwarded`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BridgeStats {
    /// Frames forwarded that entered on port 0 (A→B on a two-port).
    pub forwarded_ab: u64,
    /// Frames forwarded that entered on port 1 (B→A on a two-port).
    pub forwarded_ba: u64,
    /// Queue-overflow drops.
    pub overflows: u64,
    /// Unroutable frames discarded.
    pub unroutable: u64,
    /// High-water queue depth (all ports).
    pub queue_highwater: usize,
    /// Busy nanoseconds of the (shared or per-port) engines.
    pub busy_ns: u64,
}

struct Pending {
    port_in: u8,
    frame: Frame,
}

/// The bridge. See module docs.
pub struct Bridge {
    kind: BridgeKind,
    queue_cap: usize,
    ports: Vec<BridgePort>,
    /// Static forwarding table: input port → output port.
    forward: Vec<u8>,
    /// One ingress queue per port.
    queues: Vec<VecDeque<Pending>>,
    /// Engine-busy horizon per port (a shared HostRouter engine uses
    /// slot 0 only; the rest stay idle).
    busy_until: Vec<Option<(SimTime, u8)>>,
    next_id: u64,
    /// Forwarded frames per *input* port.
    forwarded: Vec<u64>,
    overflows: u64,
    unroutable: u64,
    queue_highwater: usize,
    busy_ns: u64,
}

impl Bridge {
    /// Creates the classic two-port bridge from a [`BridgeCfg`]: frames
    /// entering either port leave on the other.
    pub fn new(cfg: BridgeCfg) -> Self {
        Bridge::multi(
            cfg.kind,
            cfg.queue_cap,
            vec![
                BridgePort {
                    station: cfg.station_a,
                    ctmsp_dst: cfg.ctmsp_dst_a,
                },
                BridgePort {
                    station: cfg.station_b,
                    ctmsp_dst: cfg.ctmsp_dst_b,
                },
            ],
            vec![1, 0],
        )
    }

    /// Creates a multi-port bridge: `ports[p]` is the attachment on the
    /// `p`-th ring, `forward[p]` the output port for frames entering at
    /// `p`. The table must be complete, in range, and never forward a
    /// frame back onto its own ring.
    pub fn multi(
        kind: BridgeKind,
        queue_cap: usize,
        ports: Vec<BridgePort>,
        forward: Vec<u8>,
    ) -> Self {
        assert!(ports.len() >= 2, "a bridge joins at least two rings");
        assert!(ports.len() <= u8::MAX as usize, "too many bridge ports");
        assert_eq!(
            forward.len(),
            ports.len(),
            "one forwarding entry per input port"
        );
        for (p, &out) in forward.iter().enumerate() {
            assert!((out as usize) < ports.len(), "forward target out of range");
            assert_ne!(out as usize, p, "port {p} would forward onto its own ring");
        }
        let n = ports.len();
        Bridge {
            kind,
            queue_cap,
            ports,
            forward,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            busy_until: vec![None; n],
            next_id: 0,
            forwarded: vec![0; n],
            overflows: 0,
            unroutable: 0,
            queue_highwater: 0,
            busy_ns: 0,
        }
    }

    /// Aggregate counters (two-port directions; see [`BridgeStats`]).
    pub fn stats(&self) -> BridgeStats {
        BridgeStats {
            forwarded_ab: self.forwarded.first().copied().unwrap_or(0),
            forwarded_ba: self.forwarded.get(1).copied().unwrap_or(0),
            overflows: self.overflows,
            unroutable: self.unroutable,
            queue_highwater: self.queue_highwater,
            busy_ns: self.busy_ns,
        }
    }

    /// Forwarded frames that entered on `port`.
    pub fn forwarded(&self, port: usize) -> u64 {
        self.forwarded[port]
    }

    /// The forwarding-engine model (shard-partition derivation reads the
    /// lookahead off it).
    pub fn kind(&self) -> BridgeKind {
        self.kind
    }

    /// Number of ring attachments.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// This bridge's station id on port `port`'s ring.
    pub fn port_station(&self, port: usize) -> StationId {
        self.ports[port].station
    }

    /// The output port frames entering at `port` leave on.
    pub fn forward_port(&self, port: usize) -> usize {
        self.forward[port] as usize
    }

    fn engine_index(&self, port_in: u8) -> usize {
        if self.kind.shared_engine() {
            0
        } else {
            port_in as usize
        }
    }

    fn alloc_id(&mut self) -> FrameId {
        self.next_id += 1;
        FrameId(0xB000_0000_0000_0000 | self.next_id)
    }

    /// Starts service on `engine` if it is idle and work is queued.
    fn kick(&mut self, now: SimTime, engine: usize) {
        if self.busy_until[engine].is_some() {
            return;
        }
        // A shared engine serves every queue, longest first (lowest port
        // wins ties); per-port engines serve their own queue.
        let mut best: Option<usize> = None;
        let candidates = if self.kind.shared_engine() {
            0..self.queues.len()
        } else {
            engine..engine + 1
        };
        for q in candidates {
            if !self.queues[q].is_empty()
                && best
                    .map(|b| self.queues[q].len() > self.queues[b].len())
                    .unwrap_or(true)
            {
                best = Some(q);
            }
        }
        let Some(q) = best else { return };
        let head = self.queues[q].front().expect("non-empty");
        let service = self.kind.service(head.frame.wire_bytes());
        self.busy_ns += service.as_ns();
        self.busy_until[engine] = Some((now + service, head.port_in));
        // The frame leaves the queue when service completes; keep it at
        // the head so depth accounting stays truthful.
    }

    fn finish(&mut self, port_in: u8, sink: &mut Vec<BridgeOut>) {
        let Some(p) = self.queues[port_in as usize].pop_front() else {
            return;
        };
        let port_out = self.forward[p.port_in as usize];
        let out = self.ports[port_out as usize];
        let mut frame = p.frame;
        frame.id = self.alloc_id();
        frame.src = out.station;
        frame.dst = Some(out.ctmsp_dst);
        self.forwarded[p.port_in as usize] += 1;
        sink.push(BridgeOut::Submit {
            port: port_out,
            frame,
        });
    }
}

fn restore_port(dec: &mut ctms_sim::Dec<'_>, ports: usize) -> Result<u8, ctms_sim::PersistError> {
    let port = dec.u8()?;
    if (port as usize) >= ports {
        return Err(ctms_sim::PersistError::BadTag {
            what: "bridge port",
            tag: port,
        });
    }
    Ok(port)
}

impl ctms_sim::Persist for Bridge {
    /// Dynamic bridge state: every port's ingress queue, the engine-busy
    /// horizons, the forwarded-frame id allocator and counters. The port
    /// list, forwarding table, kind, and queue cap are structural, so the
    /// per-port vectors are written without a count prefix — a two-port
    /// bridge produces exactly the bytes the fixed-two-ring format did.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        for q in &self.queues {
            enc.seq_len(q.len());
            for p in q {
                enc.u8(p.port_in);
                p.frame.persist(enc);
            }
        }
        for b in &self.busy_until {
            enc.opt(b.as_ref(), |e, (t, port)| {
                e.time(*t);
                e.u8(*port);
            });
        }
        enc.u64(self.next_id);
        for f in &self.forwarded {
            enc.u64(*f);
        }
        enc.u64(self.overflows);
        enc.u64(self.unroutable);
        enc.u64(self.queue_highwater as u64);
        enc.u64(self.busy_ns);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        use ctms_tokenring::decode_frame;
        let ports = self.ports.len();
        for q in &mut self.queues {
            *q = dec
                .seq(|d| {
                    let port_in = restore_port(d, ports)?;
                    let frame = decode_frame(d)?;
                    Ok(Pending { port_in, frame })
                })?
                .into_iter()
                .collect();
        }
        for b in &mut self.busy_until {
            *b = dec.opt(|d| Ok((d.time()?, restore_port(d, ports)?)))?;
        }
        self.next_id = dec.u64()?;
        for f in &mut self.forwarded {
            *f = dec.u64()?;
        }
        self.overflows = dec.u64()?;
        self.unroutable = dec.u64()?;
        self.queue_highwater = dec.u64()? as usize;
        self.busy_ns = dec.u64()?;
        Ok(())
    }
}

impl Component for Bridge {
    type Cmd = BridgeCmd;
    type Out = BridgeOut;

    fn next_deadline(&self) -> Option<SimTime> {
        ctms_sim::earliest(self.busy_until.iter().map(|b| b.map(|(t, _)| t)))
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<BridgeOut>) {
        for engine in 0..self.busy_until.len() {
            if let Some((t, port_in)) = self.busy_until[engine] {
                if t <= now {
                    self.busy_until[engine] = None;
                    self.finish(port_in, sink);
                    self.kick(now, engine);
                }
            }
        }
    }

    fn handle(&mut self, now: SimTime, cmd: BridgeCmd, sink: &mut Vec<BridgeOut>) {
        let BridgeCmd::Delivered { port, frame } = cmd;
        // Only the static CTMSP route is forwarded (§3's point-to-point
        // assumption, extended hop by hop).
        if frame.kind != ctms_tokenring::FrameKind::Llc(Proto::Ctmsp) {
            self.unroutable += 1;
            sink.push(BridgeOut::Dropped {
                tag: frame.tag,
                overflow: false,
            });
            return;
        }
        let q = port as usize;
        if self.queues[q].len() >= self.queue_cap {
            self.overflows += 1;
            sink.push(BridgeOut::Dropped {
                tag: frame.tag,
                overflow: true,
            });
            return;
        }
        self.queues[q].push_back(Pending {
            port_in: port,
            frame,
        });
        let depth: usize = self.queues.iter().map(|q| q.len()).sum();
        self.queue_highwater = self.queue_highwater.max(depth);
        let engine = self.engine_index(port);
        self.kick(now, engine);
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        // Ports 0/1 keep the historical direction names so existing
        // telemetry trees (and their golden digests) are untouched;
        // wider bridges add per-port counters beyond them.
        scope.counter("forwarded_ab", self.forwarded.first().copied().unwrap_or(0));
        scope.counter("forwarded_ba", self.forwarded.get(1).copied().unwrap_or(0));
        for (p, f) in self.forwarded.iter().enumerate().skip(2) {
            scope.counter(&format!("forwarded_p{p}"), *f);
        }
        scope.counter("overflows", self.overflows);
        scope.counter("unroutable", self.unroutable);
        scope.gauge("queue_highwater", self.queue_highwater as i64);
        scope.counter("busy_ns", self.busy_ns);
        scope.gauge(
            "queue_depth",
            self.queues.iter().map(|q| q.len()).sum::<usize>() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::drain_component;
    use ctms_tokenring::FrameKind;

    fn cfg(kind: BridgeKind) -> BridgeCfg {
        BridgeCfg {
            station_a: StationId(3),
            station_b: StationId(0),
            ctmsp_dst_b: StationId(1),
            ctmsp_dst_a: StationId(0),
            kind,
            queue_cap: 8,
        }
    }

    fn ctmsp(tag: u64) -> Frame {
        Frame {
            id: FrameId(tag),
            src: StationId(0),
            dst: Some(StationId(3)),
            kind: FrameKind::Llc(Proto::Ctmsp),
            info_len: 2000,
            priority: 4,
            tag,
        }
    }

    #[test]
    fn forwards_with_service_latency() {
        let mut b = Bridge::new(cfg(BridgeKind::host_router_1991()));
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 0,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        assert!(sink.is_empty(), "service takes time");
        let evs = drain_component(&mut b, SimTime::from_ms(100));
        let (t, out) = &evs[0];
        // 2.5 ms + 2021 × 5 µs ≈ 12.6 ms.
        assert_eq!(*t, SimTime::from_ns(2_500_000 + 2021 * 5_000));
        match out {
            BridgeOut::Submit { port, frame } => {
                assert_eq!(*port, 1);
                assert_eq!(frame.dst, Some(StationId(1)));
                assert_eq!(frame.src, StationId(0));
                assert_eq!(frame.tag, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(b.stats().forwarded_ab, 1);
    }

    #[test]
    fn cut_through_is_fast_and_duplex() {
        let mut b = Bridge::new(cfg(BridgeKind::cut_through_bridge()));
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 0,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        let mut back = ctmsp(2);
        back.src = StationId(1);
        back.dst = Some(StationId(0));
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 1,
                frame: back,
            },
            &mut sink,
        );
        let evs = drain_component(&mut b, SimTime::from_ms(10));
        // Per-port engines: both forwarded at the same instant.
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].0, evs[1].0);
        let service = BridgeKind::cut_through_bridge().service(2021);
        assert_eq!(evs[0].0, SimTime::ZERO + service);
        assert!(service < Dur::from_us(700), "{service}");
        assert_eq!(b.stats().forwarded_ab, 1);
        assert_eq!(b.stats().forwarded_ba, 1);
    }

    #[test]
    fn host_router_serializes_directions() {
        let mut b = Bridge::new(cfg(BridgeKind::host_router_1991()));
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 0,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 1,
                frame: ctmsp(2),
            },
            &mut sink,
        );
        let evs = drain_component(&mut b, SimTime::from_ms(100));
        assert_eq!(evs.len(), 2);
        let service = BridgeKind::host_router_1991().service(2021);
        assert_eq!(evs[1].0.since(evs[0].0), service, "one CPU, one at a time");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut b = Bridge::new(cfg(BridgeKind::host_router_1991()));
        let mut sink = Vec::new();
        for k in 0..12 {
            b.handle(
                SimTime::ZERO,
                BridgeCmd::Delivered {
                    port: 0,
                    frame: ctmsp(k),
                },
                &mut sink,
            );
        }
        let drops = sink
            .iter()
            .filter(|e| matches!(e, BridgeOut::Dropped { overflow: true, .. }))
            .count();
        assert_eq!(drops, 4, "cap 8");
        assert_eq!(b.stats().overflows, 4);
        assert_eq!(b.stats().queue_highwater, 8);
    }

    #[test]
    fn non_ctmsp_is_unroutable() {
        let mut b = Bridge::new(cfg(BridgeKind::cut_through_bridge()));
        let mut sink = Vec::new();
        let mut f = ctmsp(9);
        f.kind = FrameKind::Llc(Proto::Ip);
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered { port: 0, frame: f },
            &mut sink,
        );
        assert!(matches!(
            sink[0],
            BridgeOut::Dropped {
                overflow: false,
                ..
            }
        ));
        assert_eq!(b.stats().unroutable, 1);
    }

    /// The FDDI-concentrator shape: three ports (leaf, primary,
    /// secondary) with leaf↔primary forwarding configured and the
    /// secondary parked on the default next port.
    fn three_port(kind: BridgeKind) -> Bridge {
        Bridge::multi(
            kind,
            8,
            vec![
                BridgePort {
                    station: StationId(3),
                    ctmsp_dst: StationId(0),
                },
                BridgePort {
                    station: StationId(0),
                    ctmsp_dst: StationId(7),
                },
                BridgePort {
                    station: StationId(1),
                    ctmsp_dst: StationId(0),
                },
            ],
            vec![1, 0, 0],
        )
    }

    #[test]
    fn multi_port_forwards_by_table() {
        let mut b = three_port(BridgeKind::cut_through_bridge());
        let mut sink = Vec::new();
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 0,
                frame: ctmsp(1),
            },
            &mut sink,
        );
        b.handle(
            SimTime::ZERO,
            BridgeCmd::Delivered {
                port: 1,
                frame: ctmsp(2),
            },
            &mut sink,
        );
        let evs = drain_component(&mut b, SimTime::from_ms(10));
        assert_eq!(evs.len(), 2);
        let submits: Vec<(u8, StationId)> = evs
            .iter()
            .filter_map(|(_, e)| match e {
                BridgeOut::Submit { port, frame } => Some((*port, frame.dst.unwrap())),
                _ => None,
            })
            .collect();
        // Leaf ingress goes out the primary port toward its next hop;
        // primary ingress comes back out the leaf port.
        assert_eq!(submits, vec![(1, StationId(7)), (0, StationId(0))]);
        assert_eq!(b.forwarded(0), 1);
        assert_eq!(b.forwarded(1), 1);
        assert_eq!(b.forwarded(2), 0);
    }

    #[test]
    fn multi_port_state_round_trips() {
        use ctms_sim::{Dec, Enc, Persist as _};
        let mut b = three_port(BridgeKind::host_router_1991());
        let mut sink = Vec::new();
        for (port, tag) in [(0u8, 1u64), (2, 2), (0, 3)] {
            b.handle(
                SimTime::ZERO,
                BridgeCmd::Delivered {
                    port,
                    frame: ctmsp(tag),
                },
                &mut sink,
            );
        }
        let mut enc = Enc::new();
        b.persist(&mut enc);
        let bytes = enc.into_bytes();

        let mut fresh = three_port(BridgeKind::host_router_1991());
        let mut dec = Dec::new(&bytes);
        fresh.restore(&mut dec).expect("restore");
        dec.finish().expect("stream fully consumed");
        let mut enc2 = Enc::new();
        fresh.persist(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes, "re-persist is a fixed point");
        // The restored bridge drains identically.
        let a = drain_component(&mut b, SimTime::from_secs(1));
        let c = drain_component(&mut fresh, SimTime::from_secs(1));
        assert_eq!(a.len(), c.len());
        for ((ta, ea), (tc, ec)) in a.iter().zip(&c) {
            assert_eq!(ta, tc);
            assert_eq!(format!("{ea:?}"), format!("{ec:?}"));
        }
    }
}
