//! # ctms-workloads — background load generators
//!
//! The traffic environment of §5.3's test cases:
//!
//! * [`phantom`] — frames from the ~66 stations the testbed does not model
//!   as full hosts (AFS/ARP/file-transfer classes) plus station-insertion
//!   and soft-error disturbances,
//! * [`hosttraffic`] — host-originated background flows (control-socket
//!   keep-alives, AFS keep-alives, page-in bursts) that share the Token
//!   Ring driver with the CTMSP stream and produce Figure 5-2's second
//!   peak.

pub mod hosttraffic;
pub mod phantom;
pub mod splload;

pub use hosttraffic::{HostTrafficCfg, HostTrafficGen, HostTrafficStats};
pub use phantom::{PhantomCfg, PhantomOut, PhantomStats, PhantomTraffic};
pub use splload::{default_classes, SplClass, SplLoad, SplLoadStats};
