//! Host-originated background traffic.
//!
//! §5.3 attributes Figure 5-2's second peak to "interaction between the
//! transmission of CTMSP packets and the transmission of other system
//! packets. The other traffic includes AFS keep alive packets, ARP traffic
//! and socket keep alive packets" — the socket traffic being the test
//! harness's own control connection. All of these leave through the same
//! Token Ring driver as the CTMSP stream, so whenever one occupies the
//! transmitter, the next CTMSP packet queues and "the system then plays
//! catch up for tens of CTMSP packets".
//!
//! This driver generates those host-resident flows: periodic socket
//! keep-alives to the control machine, AFS keep-alives to a file server,
//! and occasional file-transfer bursts (page-ins/compiles over AFS).

use ctms_sim::Dur;
use ctms_tokenring::{Proto, StationId};
use ctms_unixkern::{Ctx, Driver, DriverCall, DriverId, Pkt};
use std::any::Any;

const T_KEEPALIVE: u64 = 1;
const T_AFS: u64 = 2;
const T_BURST: u64 = 3;
const T_BURST_FRAME: u64 = 4;

/// Host traffic configuration.
#[derive(Clone, Copy, Debug)]
pub struct HostTrafficCfg {
    /// The Token Ring driver to send through.
    pub net_if: DriverId,
    /// Control machine's station (socket keep-alives).
    pub control: StationId,
    /// File server's station (AFS traffic).
    pub server: StationId,
    /// Socket keep-alive period (0 disables).
    pub keepalive_period: Dur,
    /// Keep-alive payload size.
    pub keepalive_size: u32,
    /// AFS keep-alive period (0 disables).
    pub afs_period: Dur,
    /// AFS keep-alive size.
    pub afs_size: u32,
    /// File-transfer bursts per second (Poisson; 0 disables).
    pub burst_rate: f64,
    /// Frames per burst, inclusive range.
    pub burst_len: (u32, u32),
    /// Pacing between burst frames.
    pub burst_gap: Dur,
    /// Burst frame size (info bytes).
    pub ft_size: u32,
}

impl HostTrafficCfg {
    /// No background traffic (standalone mode, test case A).
    pub fn quiet(net_if: DriverId) -> Self {
        HostTrafficCfg {
            net_if,
            control: StationId(0),
            server: StationId(0),
            keepalive_period: Dur::ZERO,
            keepalive_size: 80,
            afs_period: Dur::ZERO,
            afs_size: 200,
            burst_rate: 0.0,
            burst_len: (0, 0),
            burst_gap: Dur::from_ms(4),
            ft_size: 1501,
        }
    }

    /// Test case B's "multiprocessing mode but not heavily loaded": the
    /// control-connection chatter plus AFS liveness plus occasional
    /// page-in bursts.
    pub fn case_b(net_if: DriverId, control: StationId, server: StationId) -> Self {
        HostTrafficCfg {
            net_if,
            control,
            server,
            keepalive_period: Dur::from_ms(250),
            keepalive_size: 80,
            afs_period: Dur::from_secs(1),
            afs_size: 200,
            burst_rate: 0.35,
            burst_len: (15, 40),
            burst_gap: Dur::from_ms(1),
            ft_size: 1501,
        }
    }
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostTrafficStats {
    /// Keep-alive packets sent.
    pub keepalives: u64,
    /// AFS packets sent.
    pub afs: u64,
    /// File-transfer frames sent.
    pub ft_frames: u64,
    /// Packets skipped for want of mbufs.
    pub mbuf_skips: u64,
}

impl ctms_sim::Instrument for HostTrafficStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("keepalives", self.keepalives);
        scope.counter("afs", self.afs);
        scope.counter("ft_frames", self.ft_frames);
        scope.counter("mbuf_skips", self.mbuf_skips);
    }
}

/// The generator driver. See module docs.
#[derive(Debug)]
pub struct HostTrafficGen {
    cfg: HostTrafficCfg,
    burst_left: u32,
    stats: HostTrafficStats,
}

impl HostTrafficGen {
    /// Creates the driver.
    pub fn new(cfg: HostTrafficCfg) -> Self {
        HostTrafficGen {
            cfg,
            burst_left: 0,
            stats: HostTrafficStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> HostTrafficStats {
        self.stats
    }

    fn send(&mut self, ctx: &mut Ctx, dst: StationId, len: u32) -> bool {
        let Some(chain) = ctx.mbufs.alloc_nowait(len) else {
            self.stats.mbuf_skips += 1;
            return false;
        };
        ctx.call(
            self.cfg.net_if,
            DriverCall::NetOutput(Pkt {
                proto: Proto::Ip,
                dst,
                len,
                tag: 0,
                priority: 0,
                chain: Some(chain),
            }),
        );
        true
    }

    fn arm_burst(&mut self, ctx: &mut Ctx) {
        if self.cfg.burst_rate > 0.0 {
            let gap = ctx
                .rng
                .exp_dur(Dur::from_secs_f64(1.0 / self.cfg.burst_rate));
            ctx.set_timer(T_BURST, ctx.now + gap);
        }
    }
}

impl Driver for HostTrafficGen {
    fn name(&self) -> &'static str {
        "host-traffic"
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u32(self.burst_left);
        enc.u64(self.stats.keepalives);
        enc.u64(self.stats.afs);
        enc.u64(self.stats.ft_frames);
        enc.u64(self.stats.mbuf_skips);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.burst_left = dec.u32()?;
        self.stats.keepalives = dec.u64()?;
        self.stats.afs = dec.u64()?;
        self.stats.ft_frames = dec.u64()?;
        self.stats.mbuf_skips = dec.u64()?;
        Ok(())
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn on_boot(&mut self, ctx: &mut Ctx) {
        if !self.cfg.keepalive_period.is_zero() {
            // Desynchronize the first firing.
            let first = ctx.rng.uniform_dur(Dur::ZERO, self.cfg.keepalive_period);
            ctx.set_timer(T_KEEPALIVE, ctx.now + self.cfg.keepalive_period + first);
        }
        if !self.cfg.afs_period.is_zero() {
            let first = ctx.rng.uniform_dur(Dur::ZERO, self.cfg.afs_period);
            ctx.set_timer(T_AFS, ctx.now + self.cfg.afs_period + first);
        }
        self.arm_burst(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            T_KEEPALIVE => {
                if self.send(ctx, self.cfg.control, self.cfg.keepalive_size) {
                    self.stats.keepalives += 1;
                }
                ctx.set_timer(T_KEEPALIVE, ctx.now + self.cfg.keepalive_period);
            }
            T_AFS => {
                if self.send(ctx, self.cfg.server, self.cfg.afs_size) {
                    self.stats.afs += 1;
                }
                ctx.set_timer(T_AFS, ctx.now + self.cfg.afs_period);
            }
            T_BURST => {
                let (lo, hi) = self.cfg.burst_len;
                self.burst_left = ctx.rng.range_u64(u64::from(lo), u64::from(hi)) as u32;
                if self.burst_left > 0 {
                    ctx.set_timer(T_BURST_FRAME, ctx.now);
                }
                self.arm_burst(ctx);
            }
            T_BURST_FRAME => {
                if self.burst_left > 0 {
                    self.burst_left -= 1;
                    if self.send(ctx, self.cfg.server, self.cfg.ft_size) {
                        self.stats.ft_frames += 1;
                    }
                    if self.burst_left > 0 {
                        ctx.set_timer(T_BURST_FRAME, ctx.now + self.cfg.burst_gap);
                    }
                }
            }
            other => panic!("host-traffic: unknown timer {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_rtpc::{Machine, MachineConfig};
    use ctms_sim::{drain_component, Pcg32, SimTime};
    use ctms_unixkern::{Host, HostOut, KernConfig, Kernel};

    /// Collects NetOutput calls.
    #[derive(Default)]
    struct NetSink {
        pkts: Vec<(u32, StationId)>,
    }
    impl Driver for NetSink {
        fn name(&self) -> &'static str {
            "netsink"
        }
        fn on_call(&mut self, ctx: &mut Ctx, _from: DriverId, call: DriverCall) {
            if let DriverCall::NetOutput(pkt) = call {
                self.pkts.push((pkt.len, pkt.dst));
                if let Some(chain) = pkt.chain {
                    ctx.free_chain(chain);
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn case_b_traffic_mix() {
        let kcfg = KernConfig {
            clock_enabled: false,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(21, 1));
        let sink = kernel.add_driver(Box::<NetSink>::default(), None);
        let cfg = HostTrafficCfg::case_b(sink, StationId(2), StationId(3));
        let gen = kernel.add_driver(Box::new(HostTrafficGen::new(cfg)), None);
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let _ = drain_component(&mut host, SimTime::from_secs(30));
        let stats = host
            .kernel
            .driver_ref::<HostTrafficGen>(gen)
            .expect("gen")
            .stats();
        // 4/s keepalives, 1/s AFS, ~0.35 bursts/s × ~4 frames.
        assert!((100..140).contains(&stats.keepalives), "{stats:?}");
        assert!((25..35).contains(&stats.afs), "{stats:?}");
        assert!(stats.ft_frames > 10, "{stats:?}");
        let sink_d = host.kernel.driver_ref::<NetSink>(sink).expect("sink");
        let to_control = sink_d
            .pkts
            .iter()
            .filter(|(_, d)| *d == StationId(2))
            .count() as u64;
        assert_eq!(to_control, stats.keepalives);
        assert!(sink_d.pkts.iter().any(|(len, _)| *len == 1501));
    }

    #[test]
    fn quiet_config_sends_nothing() {
        let kcfg = KernConfig {
            clock_enabled: false,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(1, 1));
        let sink = kernel.add_driver(Box::<NetSink>::default(), None);
        let gen = kernel.add_driver(
            Box::new(HostTrafficGen::new(HostTrafficCfg::quiet(sink))),
            None,
        );
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let evs: Vec<(SimTime, HostOut)> = drain_component(&mut host, SimTime::from_secs(10));
        assert!(evs.is_empty());
        assert_eq!(
            host.kernel
                .driver_ref::<HostTrafficGen>(gen)
                .expect("gen")
                .stats()
                .keepalives,
            0
        );
    }
}
