//! Kernel protected-section load.
//!
//! §5.3 attributes the latency spread of Figure 5-3 to "other interrupt
//! sources and the execution of protected code segments throughout the
//! kernel", and §5.2.2 measured IRQ→handler-entry variation up to 440 µs
//! "even while loading the Token Ring and the local disk" — i.e. even a
//! standalone AOS kernel periodically holds elevated spl. This driver
//! generates those sections: Poisson-arriving CPU jobs at configurable spl
//! levels and durations.

use ctms_rtpc::ExecLevel;
use ctms_sim::Dur;
use ctms_unixkern::{Ctx, Driver};
use std::any::Any;

/// One class of protected sections.
#[derive(Clone, Copy, Debug)]
pub struct SplClass {
    /// Poisson arrivals per second.
    pub rate_per_sec: f64,
    /// Mean section duration.
    pub mean: Dur,
    /// Duration standard deviation (truncated normal).
    pub sd: Dur,
    /// The spl the section holds (1–7).
    pub spl: u8,
}

/// Default classes for an AOS 4.3 host:
///
/// * splimp-level (5) network/buffer housekeeping, occasionally
///   millisecond-long — the source of Figure 5-3's right tail,
/// * splhigh-level (7) short sections (callout wheel, profiling) — the
///   source of the ≤440 µs IRQ→handler variation of §5.2.2.
pub fn default_classes() -> Vec<SplClass> {
    vec![
        SplClass {
            rate_per_sec: 6.0,
            mean: Dur::from_us(1200),
            sd: Dur::from_us(700),
            spl: 5,
        },
        SplClass {
            rate_per_sec: 2.0,
            mean: Dur::from_us(200),
            sd: Dur::from_us(60),
            spl: 7,
        },
    ]
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SplLoadStats {
    /// Sections executed.
    pub sections: u64,
    /// Total protected nanoseconds.
    pub busy_ns: u64,
}

impl ctms_sim::Instrument for SplLoadStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("sections", self.sections);
        scope.counter("busy_ns", self.busy_ns);
    }
}

/// The generator driver. See module docs.
#[derive(Debug)]
pub struct SplLoad {
    classes: Vec<SplClass>,
    stats: SplLoadStats,
}

impl SplLoad {
    /// Creates the driver.
    pub fn new(classes: Vec<SplClass>) -> Self {
        SplLoad {
            classes,
            stats: SplLoadStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> SplLoadStats {
        self.stats
    }

    fn arm(&self, ctx: &mut Ctx, class: usize) {
        let c = self.classes[class];
        if c.rate_per_sec > 0.0 {
            let gap = ctx.rng.exp_dur(Dur::from_secs_f64(1.0 / c.rate_per_sec));
            ctx.set_timer(class as u64, ctx.now + gap);
        }
    }
}

impl Driver for SplLoad {
    fn name(&self) -> &'static str {
        "spl-load"
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u64(self.stats.sections);
        enc.u64(self.stats.busy_ns);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.stats.sections = dec.u64()?;
        self.stats.busy_ns = dec.u64()?;
        Ok(())
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn on_boot(&mut self, ctx: &mut Ctx) {
        for k in 0..self.classes.len() {
            self.arm(ctx, k);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let class = token as usize;
        let c = self.classes[class];
        let dur = ctx.rng.normal_dur(c.mean, c.sd);
        self.stats.sections += 1;
        self.stats.busy_ns += dur.as_ns();
        ctx.push_job(token, dur, ExecLevel::KernelSpl(c.spl));
        self.arm(ctx, class);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_rtpc::{Machine, MachineConfig};
    use ctms_sim::{drain_component, Pcg32, SimTime};
    use ctms_unixkern::{Host, KernConfig, Kernel};

    #[test]
    fn sections_arrive_at_configured_rate() {
        let kcfg = KernConfig {
            clock_enabled: false,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(17, 3));
        let id = kernel.add_driver(Box::new(SplLoad::new(default_classes())), None);
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let _ = drain_component(&mut host, SimTime::from_secs(30));
        let s = host
            .kernel
            .driver_ref::<SplLoad>(id)
            .expect("spl-load")
            .stats();
        // 8/s combined over 30 s.
        assert!((160..320).contains(&s.sections), "{}", s.sections);
        assert!(s.busy_ns > 0);
    }

    #[test]
    fn empty_classes_are_silent() {
        let kcfg = KernConfig {
            clock_enabled: false,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(1, 1));
        kernel.add_driver(Box::new(SplLoad::new(Vec::new())), None);
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let evs = drain_component(&mut host, SimTime::from_secs(5));
        assert!(evs.is_empty());
    }
}
