//! Ring-level background traffic from the other ~66 stations.
//!
//! The paper's ring carries a campus department: "70 machines of which
//! several are file servers running AFS" (§1). Simulating 70 full kernels
//! is unnecessary — what the CTMS hosts feel is the *frames*: §5.3
//! identifies three classes (≈20-byte MAC frames, 60–300-byte ARP/AFS
//! keep-alives, 1522-byte file-transfer packets) plus station
//! insertions/reinsertions (~20/day) that purge the ring. This component
//! generates exactly those, from "phantom" stations that transmit and
//! receive without a host model attached.

use ctms_sim::{Component, Dur, Pcg32, SimTime};
use ctms_tokenring::{Disturb, Frame, FrameId, FrameKind, Proto, StationId};

/// Phantom-traffic configuration.
#[derive(Clone, Debug)]
pub struct PhantomCfg {
    /// Phantom station id range `[lo, hi)` (must be attached to the ring
    /// by the testbed).
    pub stations: (u32, u32),
    /// Real host stations: receive a share of addressed traffic.
    pub host_stations: Vec<StationId>,
    /// AFS keep-alive / RPC small packets per second (ring-wide).
    pub small_rate: f64,
    /// Fraction of small packets addressed to a real host.
    pub small_to_host_frac: f64,
    /// Small packet size range (info bytes).
    pub small_size: (u32, u32),
    /// Broadcast ARP packets per second.
    pub arp_rate: f64,
    /// File-transfer bursts per second (compiles, kernel copies).
    pub burst_rate: f64,
    /// Frames per burst, inclusive range.
    pub burst_len: (u32, u32),
    /// Sender pacing between frames of a burst.
    pub burst_gap: Dur,
    /// File-transfer frame info size (1500 info + 21 overhead + LLC ≈ the
    /// paper's 1522 total).
    pub ft_size: u32,
    /// Station insertions per hour (§5: "under 20 [per day],
    /// approximately one an hour").
    pub insertions_per_hour: f64,
    /// Ring soft errors per hour (single purges).
    pub soft_errors_per_hour: f64,
}

impl PhantomCfg {
    /// A quiet private ring: no background traffic, no churn (test case A
    /// plus the MAC traffic the ring itself generates).
    pub fn private() -> Self {
        PhantomCfg {
            stations: (2, 4),
            host_stations: Vec::new(),
            small_rate: 0.0,
            small_to_host_frac: 0.0,
            small_size: (60, 300),
            arp_rate: 0.0,
            burst_rate: 0.0,
            burst_len: (0, 0),
            burst_gap: Dur::from_ms(4),
            ft_size: 1501,
            insertions_per_hour: 0.0,
            soft_errors_per_hour: 0.0,
        }
    }

    /// The public campus ring of test case B.
    pub fn public(hosts: Vec<StationId>) -> Self {
        PhantomCfg {
            stations: (4, 70),
            host_stations: hosts,
            small_rate: 120.0,
            small_to_host_frac: 0.08,
            small_size: (60, 300),
            arp_rate: 2.0,
            burst_rate: 3.0,
            burst_len: (4, 12),
            burst_gap: Dur::from_ms(4),
            ft_size: 1501,
            insertions_per_hour: 0.8,
            soft_errors_per_hour: 0.2,
        }
    }
}

/// Events out of the generator, for the testbed to route to the ring.
#[derive(Clone, Debug)]
pub enum PhantomOut {
    /// Submit this frame to the ring.
    Submit(Frame),
    /// Inject a ring disturbance.
    Disturb(Disturb),
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhantomStats {
    /// Small packets generated.
    pub small: u64,
    /// ARP broadcasts generated.
    pub arp: u64,
    /// File-transfer frames generated.
    pub ft_frames: u64,
    /// Insertions injected.
    pub insertions: u64,
    /// Soft errors injected.
    pub soft_errors: u64,
}

impl ctms_sim::Instrument for PhantomStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("small", self.small);
        scope.counter("arp", self.arp);
        scope.counter("ft_frames", self.ft_frames);
        scope.counter("insertions", self.insertions);
        scope.counter("soft_errors", self.soft_errors);
    }
}

/// The generator. See module docs.
#[derive(Debug)]
pub struct PhantomTraffic {
    cfg: PhantomCfg,
    rng: Pcg32,
    next_small: Option<SimTime>,
    next_arp: Option<SimTime>,
    next_burst: Option<SimTime>,
    burst_left: u32,
    next_burst_frame: Option<SimTime>,
    burst_src: StationId,
    burst_dst: StationId,
    next_insertion: Option<SimTime>,
    next_soft: Option<SimTime>,
    next_id: u64,
    stats: PhantomStats,
}

impl PhantomTraffic {
    /// Creates the generator; event streams start after their first
    /// randomized inter-arrival from time zero.
    pub fn new(cfg: PhantomCfg, mut rng: Pcg32) -> Self {
        let next = |rng: &mut Pcg32, rate: f64| -> Option<SimTime> {
            (rate > 0.0).then(|| SimTime::ZERO + rng.exp_dur(Dur::from_secs_f64(1.0 / rate)))
        };
        let next_small = next(&mut rng, cfg.small_rate);
        let next_arp = next(&mut rng, cfg.arp_rate);
        let next_burst = next(&mut rng, cfg.burst_rate);
        let next_insertion = next(&mut rng, cfg.insertions_per_hour / 3600.0);
        let next_soft = next(&mut rng, cfg.soft_errors_per_hour / 3600.0);
        PhantomTraffic {
            cfg,
            rng,
            next_small,
            next_arp,
            next_burst,
            burst_left: 0,
            next_burst_frame: None,
            burst_src: StationId(0),
            burst_dst: StationId(0),
            next_insertion,
            next_soft,
            next_id: 0,
            stats: PhantomStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> PhantomStats {
        self.stats
    }

    fn frame_id(&mut self) -> FrameId {
        self.next_id += 1;
        FrameId(0xF000_0000_0000_0000 | self.next_id)
    }

    fn phantom_station(&mut self) -> StationId {
        let (lo, hi) = self.cfg.stations;
        StationId(self.rng.range_u64(u64::from(lo), u64::from(hi - 1)) as u32)
    }

    fn reschedule(&mut self, rate: f64, now: SimTime) -> Option<SimTime> {
        (rate > 0.0).then(|| now + self.rng.exp_dur(Dur::from_secs_f64(1.0 / rate)))
    }
}

impl ctms_sim::Persist for PhantomTraffic {
    /// The rng, every pending arrival, in-progress burst bookkeeping, the
    /// frame-id counter and the counters; `cfg` is structural.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        self.rng.persist(enc);
        enc.opt(self.next_small.as_ref(), |e, t| e.time(*t));
        enc.opt(self.next_arp.as_ref(), |e, t| e.time(*t));
        enc.opt(self.next_burst.as_ref(), |e, t| e.time(*t));
        enc.u32(self.burst_left);
        enc.opt(self.next_burst_frame.as_ref(), |e, t| e.time(*t));
        enc.u32(self.burst_src.0);
        enc.u32(self.burst_dst.0);
        enc.opt(self.next_insertion.as_ref(), |e, t| e.time(*t));
        enc.opt(self.next_soft.as_ref(), |e, t| e.time(*t));
        enc.u64(self.next_id);
        enc.u64(self.stats.small);
        enc.u64(self.stats.arp);
        enc.u64(self.stats.ft_frames);
        enc.u64(self.stats.insertions);
        enc.u64(self.stats.soft_errors);
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.rng.restore(dec)?;
        self.next_small = dec.opt(|d| d.time())?;
        self.next_arp = dec.opt(|d| d.time())?;
        self.next_burst = dec.opt(|d| d.time())?;
        self.burst_left = dec.u32()?;
        self.next_burst_frame = dec.opt(|d| d.time())?;
        self.burst_src = StationId(dec.u32()?);
        self.burst_dst = StationId(dec.u32()?);
        self.next_insertion = dec.opt(|d| d.time())?;
        self.next_soft = dec.opt(|d| d.time())?;
        self.next_id = dec.u64()?;
        self.stats.small = dec.u64()?;
        self.stats.arp = dec.u64()?;
        self.stats.ft_frames = dec.u64()?;
        self.stats.insertions = dec.u64()?;
        self.stats.soft_errors = dec.u64()?;
        Ok(())
    }
}

impl Component for PhantomTraffic {
    type Cmd = ();
    type Out = PhantomOut;

    fn next_deadline(&self) -> Option<SimTime> {
        ctms_sim::earliest([
            self.next_small,
            self.next_arp,
            self.next_burst,
            self.next_burst_frame,
            self.next_insertion,
            self.next_soft,
        ])
    }

    fn advance(&mut self, now: SimTime, sink: &mut Vec<PhantomOut>) {
        if self.next_small == Some(now) {
            self.next_small = self.reschedule(self.cfg.small_rate, now);
            self.stats.small += 1;
            let src = self.phantom_station();
            let dst = if !self.cfg.host_stations.is_empty()
                && self.rng.chance(self.cfg.small_to_host_frac)
            {
                self.cfg.host_stations[self.rng.index(self.cfg.host_stations.len())]
            } else {
                self.phantom_station()
            };
            let (lo, hi) = self.cfg.small_size;
            let id = self.frame_id();
            sink.push(PhantomOut::Submit(Frame {
                id,
                src,
                dst: Some(dst),
                kind: FrameKind::Llc(Proto::Ip),
                info_len: self.rng.range_u64(u64::from(lo), u64::from(hi)) as u32,
                priority: 0,
                tag: 0,
            }));
        }
        if self.next_arp == Some(now) {
            self.next_arp = self.reschedule(self.cfg.arp_rate, now);
            self.stats.arp += 1;
            let src = self.phantom_station();
            let id = self.frame_id();
            sink.push(PhantomOut::Submit(Frame {
                id,
                src,
                dst: None,
                kind: FrameKind::Llc(Proto::Arp),
                info_len: 46,
                priority: 0,
                tag: 0,
            }));
        }
        if self.next_burst == Some(now) {
            self.next_burst = self.reschedule(self.cfg.burst_rate, now);
            let (lo, hi) = self.cfg.burst_len;
            self.burst_left = self.rng.range_u64(u64::from(lo), u64::from(hi)) as u32;
            self.burst_src = self.phantom_station();
            self.burst_dst = self.phantom_station();
            if self.burst_left > 0 {
                self.next_burst_frame = Some(now);
            }
        }
        if self.next_burst_frame == Some(now) && self.burst_left > 0 {
            self.burst_left -= 1;
            self.stats.ft_frames += 1;
            let id = self.frame_id();
            sink.push(PhantomOut::Submit(Frame {
                id,
                src: self.burst_src,
                dst: Some(self.burst_dst),
                kind: FrameKind::Llc(Proto::Ip),
                info_len: self.cfg.ft_size,
                priority: 0,
                tag: 0,
            }));
            self.next_burst_frame = (self.burst_left > 0).then(|| now + self.cfg.burst_gap);
        }
        if self.next_insertion == Some(now) {
            self.next_insertion = self.reschedule(self.cfg.insertions_per_hour / 3600.0, now);
            self.stats.insertions += 1;
            sink.push(PhantomOut::Disturb(Disturb::StationInsertion));
        }
        if self.next_soft == Some(now) {
            self.next_soft = self.reschedule(self.cfg.soft_errors_per_hour / 3600.0, now);
            self.stats.soft_errors += 1;
            sink.push(PhantomOut::Disturb(Disturb::SoftError));
        }
    }

    fn handle(&mut self, _now: SimTime, _cmd: (), _sink: &mut Vec<PhantomOut>) {}

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::drain_component;

    #[test]
    fn private_ring_is_silent() {
        let mut g = PhantomTraffic::new(PhantomCfg::private(), Pcg32::new(1, 1));
        let evs = drain_component(&mut g, SimTime::from_secs(100));
        assert!(evs.is_empty());
    }

    #[test]
    fn public_ring_rates_are_close() {
        let cfg = PhantomCfg::public(vec![StationId(0), StationId(1)]);
        let mut g = PhantomTraffic::new(cfg, Pcg32::new(7, 1));
        let evs = drain_component(&mut g, SimTime::from_secs(60));
        let stats = g.stats();
        // 120/s small over 60 s.
        assert!((6000..8500).contains(&stats.small), "{}", stats.small);
        assert!((60..180).contains(&stats.arp), "{}", stats.arp);
        // 3 bursts/s × ~8 frames.
        assert!(
            (800..2200).contains(&stats.ft_frames),
            "{}",
            stats.ft_frames
        );
        // Some small packets are addressed to hosts.
        let to_hosts = evs
            .iter()
            .filter(|(_, e)| match e {
                PhantomOut::Submit(f) => {
                    matches!(f.dst, Some(StationId(0)) | Some(StationId(1)))
                }
                _ => false,
            })
            .count();
        assert!(to_hosts > 100, "{to_hosts}");
    }

    #[test]
    fn insertions_arrive_at_about_one_per_hour() {
        let mut cfg = PhantomCfg::public(vec![]);
        cfg.small_rate = 0.0;
        cfg.arp_rate = 0.0;
        cfg.burst_rate = 0.0;
        cfg.soft_errors_per_hour = 0.0;
        let mut g = PhantomTraffic::new(cfg, Pcg32::new(3, 5));
        let _ = drain_component(&mut g, SimTime::from_secs(24 * 3600));
        let n = g.stats().insertions;
        // ~24 expected over a day; the paper saw "under 20".
        assert!((10..45).contains(&n), "insertions over a day: {n}");
    }

    #[test]
    fn burst_frames_are_paced() {
        let mut cfg = PhantomCfg::public(vec![]);
        cfg.small_rate = 0.0;
        cfg.arp_rate = 0.0;
        cfg.insertions_per_hour = 0.0;
        cfg.soft_errors_per_hour = 0.0;
        cfg.burst_rate = 0.2;
        cfg.burst_len = (5, 5);
        let mut g = PhantomTraffic::new(cfg, Pcg32::new(9, 2));
        let evs = drain_component(&mut g, SimTime::from_secs(20));
        let times: Vec<SimTime> = evs
            .iter()
            .filter_map(|(t, e)| matches!(e, PhantomOut::Submit(_)).then_some(*t))
            .collect();
        assert!(times.len() >= 5);
        // Within a burst, consecutive frames are exactly burst_gap apart.
        let gap = times[1].since(times[0]);
        assert_eq!(gap, Dur::from_ms(4));
    }
}
