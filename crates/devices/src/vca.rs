//! The IBM Voice Communications Adapter (VCA).
//!
//! §5.1: "the adapter has a TI32010 DSP, 2k by 16 bit memory, which is byte
//! accessible by the host processor, can be interrupted by the host and can
//! interrupt the host. We created a program to run on the adapter that
//! would interrupt the host every 12 milliseconds." §5.2.2 establishes the
//! interrupt source is solid to within 500 ns.
//!
//! Four driver personalities:
//!
//! * [`CtmsVcaSource`] — the paper's modified driver (§5.1): every 12 ms
//!   interrupt builds a CTMSP packet in mbufs (precomputed header, packet
//!   number, appended data) and hands it to the Token Ring driver through
//!   the §2 direct driver-to-driver send handle.
//! * [`CtmsVcaSink`] — the receive-side presentation device: accepts
//!   CTMSP packets through the delivery handle, optionally copies into the
//!   device buffer, and runs the single-packet-loss recovery of §5.
//! * [`StockVcaSource`] — the unmodified driver (experiment E1): data is
//!   PIO-copied into a kernel staging buffer at interrupt level and a user
//!   process `read()`s it. The 4 KB on-card buffer overruns when the host
//!   falls behind — the stock path's failure signal.
//! * [`StockAudioSink`] — a playback device consuming at a continuous
//!   rate; buffer underruns are the audible glitches of §1.

use ctms_rtpc::ExecLevel;
use ctms_sim::Dur;
use ctms_tokenring::{Proto, StationId};
use ctms_unixkern::{
    Ctx, Driver, DriverCall, DriverId, DropSite, MeasurePoint, OpResult, Pid, Pkt, WakeKind,
    LINE_VCA,
};
use std::any::Any;

/// Ioctl request code: start the device's timer chain (alternative to
/// `autostart`).
pub const IOCTL_START: u32 = 1;

/// Ioctl: put the VCA into CTMS mode (§5.1's "special mode").
pub const IOCTL_SET_MODE: u32 = 0x10;
/// Ioctl: request the precomputed Token Ring header from the ring driver
/// and store it in the device state.
pub const IOCTL_SET_HEADER: u32 = 0x11;
/// Ioctl: exchange the direct driver-to-driver function handles (§2).
pub const IOCTL_SET_HANDLES: u32 = 0x12;
/// Ioctl: start the stream (arms the 12 ms interrupt chain).
pub const IOCTL_START_STREAM: u32 = 0x13;
/// Ioctl: stop the stream.
pub const IOCTL_STOP_STREAM: u32 = 0x14;

/// Setup progress a CTMS source tracks (the §5.1 device state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetupState {
    /// CTMS mode entered.
    pub mode_set: bool,
    /// Precomputed Token Ring header stored.
    pub header_set: bool,
    /// Send/receive handles exchanged.
    pub handles_set: bool,
    /// Stream running.
    pub running: bool,
}

impl SetupState {
    /// True once every setup ioctl has been issued.
    pub fn complete(&self) -> bool {
        self.mode_set && self.header_set && self.handles_set
    }

    /// Applies one ioctl; returns false for out-of-order or unknown
    /// requests (the driver rejects them, as a real ioctl would with
    /// `EINVAL`).
    pub fn apply(&mut self, req: u32) -> bool {
        match req {
            IOCTL_SET_MODE => {
                self.mode_set = true;
                true
            }
            IOCTL_SET_HEADER => {
                if !self.mode_set {
                    return false;
                }
                self.header_set = true;
                true
            }
            IOCTL_SET_HANDLES => {
                if !self.mode_set {
                    return false;
                }
                self.handles_set = true;
                true
            }
            IOCTL_START_STREAM => {
                if !self.complete() {
                    return false;
                }
                self.running = true;
                true
            }
            IOCTL_STOP_STREAM => {
                self.running = false;
                true
            }
            _ => false,
        }
    }
}

// Driver-job tokens.
const JOB_BUILD: u64 = 1;
const JOB_PIO: u64 = 2;

/// Configuration for [`CtmsVcaSource`].
#[derive(Clone, Copy, Debug)]
pub struct CtmsSourceCfg {
    /// Interrupt period (§5.1: 12 ms).
    pub period: Dur,
    /// CTMSP packet length including CTMSP header, excluding ring
    /// overhead (§5.1: 2000 bytes).
    pub pkt_len: u32,
    /// Destination station on the ring.
    pub dst: StationId,
    /// The Token Ring driver holding the send handle.
    pub tr_driver: DriverId,
    /// Non-copy driver code between handler entry and the send handle:
    /// mbuf allocation, precomputed-header copy, packet numbering
    /// (§5.3 attributes 600 µs to "execution of the code between the two
    /// points of measurement").
    pub handler_code: Dur,
    /// §5.3 variant: copy the payload from the VCA's byte-wide device
    /// memory into the mbufs (vs. appending synthetic data).
    pub copy_from_device: bool,
    /// PIO cost per byte for `copy_from_device`.
    pub pio_per_byte: Dur,
    /// Ring access priority for CTMSP frames (§3: above all other
    /// traffic). 0 disables the priority ablation-style.
    pub ring_priority: u8,
    /// Peak-to-peak interrupt-source jitter (§5.2.2 measured ≤ 500 ns
    /// around the second pulse; 0 = perfect).
    pub irq_jitter: Dur,
    /// Arm the timer chain at kernel boot.
    pub autostart: bool,
    /// Require the §5.1 ioctl setup sequence before streaming (the
    /// paper's control-plane path); `autostart` is ignored when set.
    pub require_setup: bool,
}

impl Default for CtmsSourceCfg {
    fn default() -> Self {
        CtmsSourceCfg {
            period: Dur::from_ms(12),
            pkt_len: 2000,
            dst: StationId(1),
            tr_driver: DriverId(0),
            handler_code: Dur::from_us(600),
            copy_from_device: false,
            pio_per_byte: Dur::from_ns(800),
            ring_priority: 4,
            irq_jitter: Dur::ZERO,
            autostart: true,
            require_setup: false,
        }
    }
}

/// Counters for [`CtmsVcaSource`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CtmsSourceStats {
    /// Interrupts taken.
    pub interrupts: u64,
    /// Packets handed to the Token Ring driver.
    pub pkts_sent: u64,
    /// Packets dropped for want of mbufs.
    pub mbuf_drops: u64,
    /// Setup ioctls rejected (out of order / before mode set).
    pub ioctl_rejects: u64,
}

impl ctms_sim::Instrument for CtmsSourceStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("interrupts", self.interrupts);
        scope.counter("pkts_sent", self.pkts_sent);
        scope.counter("mbuf_drops", self.mbuf_drops);
        scope.counter("ioctl_rejects", self.ioctl_rejects);
    }
}

/// The modified VCA source driver. See module docs.
#[derive(Debug)]
pub struct CtmsVcaSource {
    cfg: CtmsSourceCfg,
    seq: u64,
    setup: SetupState,
    stats: CtmsSourceStats,
}

impl CtmsVcaSource {
    /// Creates the driver.
    pub fn new(cfg: CtmsSourceCfg) -> Self {
        CtmsVcaSource {
            cfg,
            seq: 0,
            setup: SetupState::default(),
            stats: CtmsSourceStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> CtmsSourceStats {
        self.stats
    }

    /// Connection-setup progress (§5.1 device state).
    pub fn setup(&self) -> SetupState {
        self.setup
    }

    fn arm(&self, ctx: &mut Ctx) {
        let jitter = if self.cfg.irq_jitter.is_zero() {
            Dur::ZERO
        } else {
            ctx.rng.uniform_dur(Dur::ZERO, self.cfg.irq_jitter)
        };
        ctx.set_timer(0, ctx.now + self.cfg.period + jitter);
    }
}

impl Driver for CtmsVcaSource {
    fn name(&self) -> &'static str {
        "vca-ctms-src"
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u64(self.seq);
        enc.bool(self.setup.mode_set);
        enc.bool(self.setup.header_set);
        enc.bool(self.setup.handles_set);
        enc.bool(self.setup.running);
        enc.u64(self.stats.interrupts);
        enc.u64(self.stats.pkts_sent);
        enc.u64(self.stats.mbuf_drops);
        enc.u64(self.stats.ioctl_rejects);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.seq = dec.u64()?;
        self.setup.mode_set = dec.bool()?;
        self.setup.header_set = dec.bool()?;
        self.setup.handles_set = dec.bool()?;
        self.setup.running = dec.bool()?;
        self.stats.interrupts = dec.u64()?;
        self.stats.pkts_sent = dec.u64()?;
        self.stats.mbuf_drops = dec.u64()?;
        self.stats.ioctl_rejects = dec.u64()?;
        Ok(())
    }

    fn on_boot(&mut self, ctx: &mut Ctx) {
        if self.cfg.autostart && !self.cfg.require_setup {
            self.setup.mode_set = true;
            self.setup.header_set = true;
            self.setup.handles_set = true;
            self.setup.running = true;
            self.arm(ctx);
        }
    }

    fn ioctl(&mut self, ctx: &mut Ctx, _pid: Pid, req: u32) {
        if req == IOCTL_START {
            self.setup.running = true;
            self.arm(ctx);
            return;
        }
        let was_running = self.setup.running;
        if !self.setup.apply(req) {
            self.stats.ioctl_rejects += 1;
            return;
        }
        if req == IOCTL_SET_HEADER {
            // The precomputed header comes from the ring driver, once per
            // connection (§3); the computation rides on a driver job.
            ctx.push_job(99, Dur::from_us(150), ExecLevel::KernelSpl(1));
        }
        if self.setup.running && !was_running {
            self.arm(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        if !self.setup.running {
            return; // IOCTL_STOP_STREAM landed since the last arm
        }
        // Measurement point 1: the IRQ pulse, tagged with the packet
        // number this period will produce.
        ctx.trace(MeasurePoint::VcaIrq, self.seq + 1);
        ctx.raise_irq(LINE_VCA);
        self.arm(ctx);
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx) {
        self.stats.interrupts += 1;
        // Measurement point 2: handler entry.
        ctx.trace(MeasurePoint::VcaHandlerEntry, self.seq + 1);
        let mut cost = self.cfg.handler_code;
        if self.cfg.copy_from_device {
            cost += self.cfg.pio_per_byte * u64::from(self.cfg.pkt_len);
        }
        ctx.push_job(JOB_BUILD, cost, ExecLevel::Irq(LINE_VCA));
    }

    fn on_job(&mut self, ctx: &mut Ctx, token: u64) {
        if token == 99 {
            return; // header-computation cost only
        }
        debug_assert_eq!(token, JOB_BUILD);
        self.seq += 1;
        let Some(chain) = ctx.mbufs.alloc_nowait(self.cfg.pkt_len) else {
            self.stats.mbuf_drops += 1;
            ctx.drop_data(DropSite::MbufExhausted, self.seq, self.cfg.pkt_len);
            return;
        };
        self.stats.pkts_sent += 1;
        ctx.call(
            self.cfg.tr_driver,
            DriverCall::CtmspSend(Pkt {
                proto: Proto::Ctmsp,
                dst: self.cfg.dst,
                len: self.cfg.pkt_len,
                tag: self.seq,
                priority: self.cfg.ring_priority,
                chain: Some(chain),
            }),
        );
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Configuration for [`CtmsVcaSink`].
#[derive(Clone, Copy, Debug)]
pub struct CtmsSinkCfg {
    /// §5.3 variant: copy the payload from mbufs into the VCA device
    /// buffer (test case B) vs. dropping after identification (case A).
    pub copy_to_device: bool,
    /// PIO cost per byte for the device copy.
    pub pio_per_byte: Dur,
    /// spl level the delivery copy runs at.
    pub copy_spl: u8,
}

impl Default for CtmsSinkCfg {
    fn default() -> Self {
        CtmsSinkCfg {
            copy_to_device: false,
            pio_per_byte: Dur::from_ns(800),
            copy_spl: 5,
        }
    }
}

/// Counters for [`CtmsVcaSink`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CtmsSinkStats {
    /// Packets received through the delivery handle.
    pub received: u64,
    /// Sequence gaps tolerated (Ring Purge losses, §5's recovery code).
    pub gaps: u64,
    /// Packets missing inside those gaps.
    pub missed_pkts: u64,
    /// Duplicates discarded (retransmission recovery).
    pub duplicates: u64,
    /// Highest packet number seen.
    pub last_seq: u64,
}

impl ctms_sim::Instrument for CtmsSinkStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("received", self.received);
        scope.counter("gaps", self.gaps);
        scope.counter("missed_pkts", self.missed_pkts);
        scope.counter("duplicates", self.duplicates);
        scope.gauge("last_seq", self.last_seq as i64);
    }
}

/// The CTMS presentation device. See module docs.
#[derive(Debug)]
pub struct CtmsVcaSink {
    cfg: CtmsSinkCfg,
    stats: CtmsSinkStats,
    pending: std::collections::VecDeque<(u64, u32)>,
}

impl CtmsVcaSink {
    /// Creates the driver.
    pub fn new(cfg: CtmsSinkCfg) -> Self {
        CtmsVcaSink {
            cfg,
            stats: CtmsSinkStats::default(),
            pending: std::collections::VecDeque::new(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> CtmsSinkStats {
        self.stats
    }
}

impl Driver for CtmsVcaSink {
    fn name(&self) -> &'static str {
        "vca-ctms-sink"
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u64(self.stats.received);
        enc.u64(self.stats.gaps);
        enc.u64(self.stats.missed_pkts);
        enc.u64(self.stats.duplicates);
        enc.u64(self.stats.last_seq);
        enc.seq_len(self.pending.len());
        for (tag, len) in &self.pending {
            enc.u64(*tag);
            enc.u32(*len);
        }
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.stats.received = dec.u64()?;
        self.stats.gaps = dec.u64()?;
        self.stats.missed_pkts = dec.u64()?;
        self.stats.duplicates = dec.u64()?;
        self.stats.last_seq = dec.u64()?;
        self.pending = dec.seq(|d| Ok((d.u64()?, d.u32()?)))?.into();
        Ok(())
    }

    fn on_call(&mut self, ctx: &mut Ctx, _from: DriverId, call: DriverCall) {
        let DriverCall::CtmspDeliver(pkt) = call else {
            return;
        };
        // Recovery (§5: "adding code to recover" from single purge
        // losses): tolerate gaps, discard duplicates.
        if pkt.tag <= self.stats.last_seq && self.stats.last_seq != 0 {
            self.stats.duplicates += 1;
            ctx.drop_data(DropSite::Duplicate, pkt.tag, pkt.len);
            if let Some(chain) = pkt.chain {
                ctx.free_chain(chain);
            }
            return;
        }
        if self.stats.last_seq != 0 && pkt.tag > self.stats.last_seq + 1 {
            self.stats.gaps += 1;
            self.stats.missed_pkts += pkt.tag - self.stats.last_seq - 1;
        }
        self.stats.last_seq = pkt.tag;
        self.stats.received += 1;
        if let Some(chain) = pkt.chain {
            ctx.free_chain(chain);
        }
        if self.cfg.copy_to_device {
            self.pending.push_back((pkt.tag, pkt.len));
            ctx.push_job(
                JOB_PIO,
                self.cfg.pio_per_byte * u64::from(pkt.len),
                ExecLevel::KernelSpl(self.cfg.copy_spl),
            );
        } else {
            // Case-A variant: the packet is dropped after identification;
            // presentation accounting still records the arrival.
            ctx.presented(pkt.tag, pkt.len);
        }
    }

    fn on_job(&mut self, ctx: &mut Ctx, token: u64) {
        debug_assert_eq!(token, JOB_PIO);
        let (tag, len) = self.pending.pop_front().expect("pio without pending");
        ctx.presented(tag, len);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Configuration for [`StockVcaSource`] and [`StockAudioSink`].
#[derive(Clone, Copy, Debug)]
pub struct StockCfg {
    /// Device service period.
    pub period: Dur,
    /// Bytes produced/consumed per period.
    pub chunk: u32,
    /// On-card buffer capacity (the VCA's 2K×16 memory = 4096 bytes).
    pub buf_cap: u32,
    /// Byte-wide PIO cost per byte.
    pub pio_per_byte: Dur,
    /// Kernel staging buffer capacity (source only).
    pub staging_cap: u32,
    /// Playback begins once this many bytes are buffered (sink only);
    /// models the device priming before starting the DAC clock.
    pub prefill: u32,
    /// Arm at boot.
    pub autostart: bool,
}

impl StockCfg {
    /// A stock configuration for the given continuous data rate.
    pub fn for_rate(bytes_per_sec: u32) -> Self {
        let period = Dur::from_ms(12);
        let chunk = (u64::from(bytes_per_sec) * period.as_ns() / 1_000_000_000) as u32;
        StockCfg {
            period,
            chunk,
            buf_cap: 4096,
            pio_per_byte: Dur::from_ns(3_000),
            staging_cap: 2 * chunk.max(1),
            prefill: 2048,
            autostart: true,
        }
    }
}

/// Counters for [`StockVcaSource`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StockSourceStats {
    /// Bytes produced by the device.
    pub produced: u64,
    /// Bytes lost to on-card buffer overrun (host too slow).
    pub overrun_bytes: u64,
    /// Overrun events.
    pub overruns: u64,
    /// Bytes consumed by readers.
    pub consumed: u64,
}

impl ctms_sim::Instrument for StockSourceStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("produced", self.produced);
        scope.counter("overrun_bytes", self.overrun_bytes);
        scope.counter("overruns", self.overruns);
        scope.counter("consumed", self.consumed);
    }
}

/// The unmodified VCA source driver (E1 baseline). See module docs.
#[derive(Debug)]
pub struct StockVcaSource {
    cfg: StockCfg,
    device_buf: u32,
    staging: u32,
    reader: Option<(Pid, u32)>,
    pio_in_flight: u32,
    stats: StockSourceStats,
}

impl StockVcaSource {
    /// Creates the driver.
    pub fn new(cfg: StockCfg) -> Self {
        StockVcaSource {
            cfg,
            device_buf: 0,
            staging: 0,
            reader: None,
            pio_in_flight: 0,
            stats: StockSourceStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> StockSourceStats {
        self.stats
    }
}

impl Driver for StockVcaSource {
    fn name(&self) -> &'static str {
        "vca-stock-src"
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u32(self.device_buf);
        enc.u32(self.staging);
        enc.opt(self.reader.as_ref(), |e, (pid, want)| {
            e.u32(pid.0);
            e.u32(*want);
        });
        enc.u32(self.pio_in_flight);
        enc.u64(self.stats.produced);
        enc.u64(self.stats.overrun_bytes);
        enc.u64(self.stats.overruns);
        enc.u64(self.stats.consumed);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.device_buf = dec.u32()?;
        self.staging = dec.u32()?;
        self.reader = dec.opt(|d| Ok((Pid(d.u32()?), d.u32()?)))?;
        self.pio_in_flight = dec.u32()?;
        self.stats.produced = dec.u64()?;
        self.stats.overrun_bytes = dec.u64()?;
        self.stats.overruns = dec.u64()?;
        self.stats.consumed = dec.u64()?;
        Ok(())
    }

    fn on_boot(&mut self, ctx: &mut Ctx) {
        if self.cfg.autostart {
            ctx.set_timer(0, ctx.now + self.cfg.period);
        }
    }

    fn ioctl(&mut self, ctx: &mut Ctx, _pid: Pid, req: u32) {
        if req == IOCTL_START {
            ctx.set_timer(0, ctx.now + self.cfg.period);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        // The DSP deposits a chunk; the on-card buffer overruns if the
        // host has not drained it.
        self.stats.produced += u64::from(self.cfg.chunk);
        let space = self.cfg.buf_cap - self.device_buf;
        if self.cfg.chunk > space {
            let lost = self.cfg.chunk - space;
            self.stats.overrun_bytes += u64::from(lost);
            self.stats.overruns += 1;
            ctx.drop_data(DropSite::VcaOverrun, 0, lost);
            self.device_buf = self.cfg.buf_cap;
        } else {
            self.device_buf += self.cfg.chunk;
        }
        ctx.raise_irq(LINE_VCA);
        ctx.set_timer(0, ctx.now + self.cfg.period);
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx) {
        // PIO-copy as much as fits into staging, at interrupt level —
        // the byte-wide interface of §2's footnote.
        if self.pio_in_flight > 0 {
            return; // previous copy still on the CPU
        }
        let n = self.device_buf.min(self.cfg.staging_cap - self.staging);
        if n == 0 {
            return;
        }
        self.pio_in_flight = n;
        ctx.push_job(
            JOB_PIO,
            self.cfg.pio_per_byte * u64::from(n),
            ExecLevel::Irq(LINE_VCA),
        );
    }

    fn on_job(&mut self, ctx: &mut Ctx, token: u64) {
        debug_assert_eq!(token, JOB_PIO);
        let n = self.pio_in_flight;
        self.pio_in_flight = 0;
        self.device_buf -= n;
        self.staging += n;
        if let Some((pid, want)) = self.reader {
            if self.staging >= want {
                self.staging -= want;
                self.stats.consumed += u64::from(want);
                self.reader = None;
                ctx.wake(pid, WakeKind::DevRead { bytes: want });
            }
        }
    }

    fn read(&mut self, _ctx: &mut Ctx, pid: Pid, bytes: u32) -> OpResult {
        if self.staging >= bytes {
            self.staging -= bytes;
            self.stats.consumed += u64::from(bytes);
            OpResult::Done
        } else {
            self.reader = Some((pid, bytes));
            OpResult::Blocked
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counters for [`StockAudioSink`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StockSinkStats {
    /// Bytes played.
    pub consumed: u64,
    /// Bytes of silence inserted (underrun).
    pub underrun_bytes: u64,
    /// Underrun events — the audible glitches.
    pub underruns: u64,
    /// Bytes written by processes.
    pub written: u64,
}

impl ctms_sim::Instrument for StockSinkStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("consumed", self.consumed);
        scope.counter("underrun_bytes", self.underrun_bytes);
        scope.counter("underruns", self.underruns);
        scope.counter("written", self.written);
    }
}

/// A playback device consuming at a continuous rate (E1 baseline sink).
#[derive(Debug)]
pub struct StockAudioSink {
    cfg: StockCfg,
    buffered: u32,
    writer: Option<(Pid, u32)>,
    started: bool,
    stats: StockSinkStats,
}

impl StockAudioSink {
    /// Creates the driver.
    pub fn new(cfg: StockCfg) -> Self {
        StockAudioSink {
            cfg,
            buffered: 0,
            writer: None,
            started: false,
            stats: StockSinkStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> StockSinkStats {
        self.stats
    }
}

impl Driver for StockAudioSink {
    fn name(&self) -> &'static str {
        "audio-stock-sink"
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u32(self.buffered);
        enc.opt(self.writer.as_ref(), |e, (pid, bytes)| {
            e.u32(pid.0);
            e.u32(*bytes);
        });
        enc.bool(self.started);
        enc.u64(self.stats.consumed);
        enc.u64(self.stats.underrun_bytes);
        enc.u64(self.stats.underruns);
        enc.u64(self.stats.written);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.buffered = dec.u32()?;
        self.writer = dec.opt(|d| Ok((Pid(d.u32()?), d.u32()?)))?;
        self.started = dec.bool()?;
        self.stats.consumed = dec.u64()?;
        self.stats.underrun_bytes = dec.u64()?;
        self.stats.underruns = dec.u64()?;
        self.stats.written = dec.u64()?;
        Ok(())
    }

    fn on_boot(&mut self, ctx: &mut Ctx) {
        if self.cfg.autostart {
            // Playback starts once the first write arrives; the timer is
            // armed then so startup silence is not counted as underrun.
            let _ = ctx;
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        let want = self.cfg.chunk;
        if self.buffered >= want {
            self.buffered -= want;
            self.stats.consumed += u64::from(want);
            ctx.set_timer(0, ctx.now + self.cfg.period);
        } else {
            // Underrun: one audible glitch. Playback pauses and resumes
            // once the buffer refills to the prefill level (real playback
            // hardware stalls and rebuffers; it does not tick through
            // silence forever).
            let missing = want - self.buffered;
            self.stats.consumed += u64::from(self.buffered);
            self.stats.underrun_bytes += u64::from(missing);
            self.stats.underruns += 1;
            ctx.drop_data(DropSite::Underrun, 0, missing);
            self.buffered = 0;
            self.started = false;
        }
        if let Some((pid, bytes)) = self.writer {
            if self.buffered + bytes <= self.cfg.buf_cap {
                // Unblock only; the retried write() transfers the data.
                self.writer = None;
                ctx.wake(pid, WakeKind::DevWrite);
            }
        }
    }

    fn write(&mut self, ctx: &mut Ctx, pid: Pid, bytes: u32) -> OpResult {
        if !self.started && self.buffered + bytes >= self.cfg.prefill {
            self.started = true;
            ctx.set_timer(0, ctx.now + self.cfg.period);
        }
        if self.buffered + bytes <= self.cfg.buf_cap {
            self.buffered += bytes;
            self.stats.written += u64::from(bytes);
            // The byte-wide device copy burns CPU.
            ctx.push_job(
                JOB_PIO,
                self.cfg.pio_per_byte * u64::from(bytes),
                ExecLevel::User,
            );
            OpResult::Done
        } else {
            self.writer = Some((pid, bytes));
            OpResult::Blocked
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_rtpc::{Machine, MachineConfig};
    use ctms_sim::{drain_component, Component, Pcg32, SimTime};
    use ctms_unixkern::{Host, HostOut, KernConfig, Kernel, MeasurePoint};

    fn host_with<D: Driver + 'static>(
        d: D,
        line: Option<u8>,
        clock: bool,
    ) -> (Host, ctms_unixkern::DriverId) {
        let cfg = KernConfig {
            clock_enabled: clock,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(cfg, Pcg32::new(3, 3));
        let id = kernel.add_driver(Box::new(d), line);
        (
            Host::new(Machine::new(MachineConfig::default()), kernel),
            id,
        )
    }

    #[test]
    fn ctms_source_period_is_solid() {
        // §5.2.2: the VCA interrupts every 12 ms "with no detectable
        // variation" when jitter is 0.
        let cfg = CtmsSourceCfg {
            tr_driver: DriverId(0), // self-call: packets loop back as calls
            ..CtmsSourceCfg::default()
        };
        let (mut host, _id) = host_with(CtmsVcaSource::new(cfg), Some(LINE_VCA), false);
        let evs = drain_component(&mut host, SimTime::from_ms(121));
        let irqs: Vec<SimTime> = evs
            .iter()
            .filter_map(|(t, e)| match e {
                HostOut::Trace {
                    point: MeasurePoint::VcaIrq,
                    ..
                } => Some(*t),
                _ => None,
            })
            .collect();
        assert_eq!(irqs.len(), 10);
        for w in irqs.windows(2) {
            assert_eq!(w[1].since(w[0]), Dur::from_ms(12));
        }
    }

    #[test]
    fn ctms_source_traces_handler_entry_and_sends() {
        let cfg = CtmsSourceCfg {
            tr_driver: DriverId(1),
            ..CtmsSourceCfg::default()
        };
        let (mut host, _id) = host_with(CtmsVcaSource::new(cfg), Some(LINE_VCA), false);
        // Driver 1: a sink that records CtmspSend arrivals.
        struct Recorder(Vec<(SimTime, u64)>);
        impl Driver for Recorder {
            fn name(&self) -> &'static str {
                "rec"
            }
            fn on_call(&mut self, ctx: &mut Ctx, _from: DriverId, call: DriverCall) {
                if let DriverCall::CtmspSend(pkt) = call {
                    self.0.push((ctx.now, pkt.tag));
                    if let Some(chain) = pkt.chain {
                        ctx.free_chain(chain);
                    }
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let rec = host.kernel.add_driver(Box::new(Recorder(Vec::new())), None);
        let evs = drain_component(&mut host, SimTime::from_ms(40));
        // Handler entry at 12 ms + 25 µs dispatch; send 600 µs later.
        let entry = evs
            .iter()
            .find_map(|(t, e)| match e {
                HostOut::Trace {
                    point: MeasurePoint::VcaHandlerEntry,
                    tag: 1,
                } => Some(*t),
                _ => None,
            })
            .expect("handler entry");
        assert_eq!(entry, SimTime::from_us(12_025));
        let r = host.kernel.driver_ref::<Recorder>(rec).expect("recorder");
        assert_eq!(r.0.len(), 3);
        assert_eq!(r.0[0], (SimTime::from_us(12_625), 1));
    }

    #[test]
    fn ctms_sink_recovery_tolerates_gap_and_duplicate() {
        let (mut host, id) = host_with(CtmsVcaSink::new(CtmsSinkCfg::default()), None, false);
        let mut sink = Vec::new();
        let deliver = |host: &mut Host, sink: &mut Vec<HostOut>, tag: u64| {
            host.handle(
                SimTime::from_ms(tag),
                ctms_unixkern::HostCmd::Kern(ctms_unixkern::KernCmd::Call {
                    driver: id,
                    call: DriverCall::CtmspDeliver(Pkt {
                        proto: Proto::Ctmsp,
                        dst: StationId(0),
                        len: 2000,
                        tag,
                        priority: 4,
                        chain: None,
                    }),
                }),
                sink,
            );
        };
        deliver(&mut host, &mut sink, 1);
        deliver(&mut host, &mut sink, 2);
        deliver(&mut host, &mut sink, 4); // packet 3 lost to a purge
        deliver(&mut host, &mut sink, 4); // duplicate retransmission
        deliver(&mut host, &mut sink, 5);
        let s = host
            .kernel
            .driver_ref::<CtmsVcaSink>(id)
            .expect("sink")
            .stats();
        assert_eq!(s.received, 4);
        assert_eq!(s.gaps, 1);
        assert_eq!(s.missed_pkts, 1);
        assert_eq!(s.duplicates, 1);
        let presented = sink
            .iter()
            .filter(|e| matches!(e, HostOut::Presented { .. }))
            .count();
        assert_eq!(presented, 4);
    }

    #[test]
    fn ctms_sink_copy_mode_defers_presentation() {
        let cfg = CtmsSinkCfg {
            copy_to_device: true,
            ..CtmsSinkCfg::default()
        };
        let (mut host, id) = host_with(CtmsVcaSink::new(cfg), None, false);
        let mut sink = Vec::new();
        host.handle(
            SimTime::ZERO,
            ctms_unixkern::HostCmd::Kern(ctms_unixkern::KernCmd::Call {
                driver: id,
                call: DriverCall::CtmspDeliver(Pkt {
                    proto: Proto::Ctmsp,
                    dst: StationId(0),
                    len: 2000,
                    tag: 1,
                    priority: 4,
                    chain: None,
                }),
            }),
            &mut sink,
        );
        assert!(sink.iter().all(|e| !matches!(e, HostOut::Presented { .. })));
        let evs = drain_component(&mut host, SimTime::from_ms(10));
        // 2000 bytes × 800 ns = 1.6 ms device copy.
        let t = evs
            .iter()
            .find_map(|(t, e)| matches!(e, HostOut::Presented { tag: 1, .. }).then_some(*t))
            .expect("presented");
        assert_eq!(t, SimTime::from_us(1600));
    }

    #[test]
    fn stock_source_overruns_when_unread() {
        let cfg = StockCfg::for_rate(150_000);
        assert_eq!(cfg.chunk, 1800);
        let (mut host, id) = host_with(StockVcaSource::new(cfg), Some(LINE_VCA), false);
        // Nobody reads: staging fills (2 chunks), then the on-card buffer
        // (4096), then overruns begin.
        let _ = drain_component(&mut host, SimTime::from_secs(1));
        let s = host
            .kernel
            .driver_ref::<StockVcaSource>(id)
            .expect("src")
            .stats();
        assert!(s.overruns > 50, "sustained overrun, got {}", s.overruns);
        assert!(s.consumed == 0);
    }

    #[test]
    fn stock_sink_stalls_and_rebuffers() {
        let cfg = StockCfg::for_rate(150_000);
        let (mut host, id) = host_with(StockAudioSink::new(cfg), None, false);
        let dev = id;
        // The first write sits below the prefill level: no playback yet.
        // The second crosses it; then silence causes ONE glitch (the sink
        // pauses rather than ticking through silence).
        host.kernel.add_proc(ctms_unixkern::Program::once(vec![
            ctms_unixkern::Step::WriteDev { dev, bytes: 1800 },
            ctms_unixkern::Step::WriteDev { dev, bytes: 1800 },
        ]));
        let _ = drain_component(&mut host, SimTime::from_secs(1));
        let s = host
            .kernel
            .driver_ref::<StockAudioSink>(id)
            .expect("sink")
            .stats();
        assert_eq!(s.written, 3600);
        assert_eq!(s.consumed, 3600);
        assert_eq!(s.underruns, 1, "one glitch then pause, got {}", s.underruns);
    }
}
