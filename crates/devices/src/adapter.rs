//! Token Ring 16/4 adapter hardware characteristics.
//!
//! The adapter itself: fixed DMA buffers (in system memory or IO Channel
//! Memory, the §4 modification), an on-card command processor with
//! non-trivial command latency, and the documented §4 limitation that a
//! Ring Purge raises **no** host interrupt — making purge losses silent
//! and uncorrectable without promiscuous MAC-frame reception.

use ctms_rtpc::MemRegion;
use ctms_sim::Dur;

/// Adapter configuration shared by the stock and CTMSP drivers.
#[derive(Clone, Copy, Debug)]
pub struct TrAdapterCfg {
    /// Host→adapter DMA rate per byte (transmit side). The transmit DMA
    /// reads the adapter's shared RAM a word at a time and is the slower
    /// direction; calibrated (with the receive rate, ring transmission
    /// time and handler costs) against the paper's 10 740 µs minimum
    /// point-3→point-4 latency for a 2000-byte packet.
    pub tx_dma_per_byte: Dur,
    /// Adapter→host DMA rate per byte (receive side).
    pub rx_dma_per_byte: Dur,
    /// Where the fixed DMA buffers live. `IoChannel` is the paper's third
    /// modification; `System` is the ablation that slows the CPU during
    /// every transfer.
    pub buffer_region: MemRegion,
    /// Transmit-command service latency on the adapter's on-card
    /// processor (uniform min..=max).
    pub cmd_latency: (Dur, Dur),
    /// Receive-complete to interrupt-posting latency (uniform min..=max).
    pub rx_post_latency: (Dur, Dur),
    /// Receive fixed buffers; frames arriving with all buffers busy are
    /// dropped (adapter overrun).
    pub rx_buffers: u32,
    /// Hypothetical mode (§5 discussion): the adapter interrupts on Ring
    /// Purge so the driver can retransmit the last packet from its fixed
    /// buffer. The real adapter cannot do this.
    pub purge_interrupt: bool,
}

impl Default for TrAdapterCfg {
    fn default() -> Self {
        TrAdapterCfg {
            tx_dma_per_byte: Dur::from_ns(1570),
            rx_dma_per_byte: Dur::from_ns(1570),
            buffer_region: MemRegion::IoChannel,
            cmd_latency: (Dur::from_us(20), Dur::from_us(200)),
            rx_post_latency: (Dur::from_us(10), Dur::from_us(90)),
            rx_buffers: 4,
            purge_interrupt: false,
        }
    }
}

impl TrAdapterCfg {
    /// Transmit DMA time for a frame of `wire_bytes`.
    pub fn tx_dma_time(&self, wire_bytes: u32) -> Dur {
        self.tx_dma_per_byte * u64::from(wire_bytes)
    }

    /// Receive DMA time for a frame of `wire_bytes`.
    pub fn rx_dma_time(&self, wire_bytes: u32) -> Dur {
        self.rx_dma_per_byte * u64::from(wire_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dma_time_scales() {
        let cfg = TrAdapterCfg::default();
        assert_eq!(cfg.tx_dma_time(2021), Dur::from_ns(2021 * 1570));
        assert_eq!(cfg.rx_dma_time(2021), Dur::from_ns(2021 * 1570));
    }

    #[test]
    fn default_uses_io_channel_memory() {
        assert_eq!(TrAdapterCfg::default().buffer_region, MemRegion::IoChannel);
        assert!(!TrAdapterCfg::default().purge_interrupt);
    }
}
