//! # ctms-devices — adapter and device models
//!
//! The hardware of the paper's testbed, each modelled as a kernel driver:
//!
//! * [`vca`] — the IBM Voice Communications Adapter in both its modified
//!   CTMS personalities (§5.1 source, presentation sink with recovery) and
//!   its stock personalities (the E1 baseline's source and audio sink),
//! * [`adapter`] — the Token Ring 16/4 adapter's hardware parameters
//!   (the drivers built on it live in `ctms-ctmsp`),
//! * [`disk`] — background disk interrupt load for multiprocessing-mode
//!   hosts.

pub mod adapter;
pub mod disk;
pub mod vca;

pub use adapter::TrAdapterCfg;
pub use disk::{DiskCfg, DiskDriver, DiskStats};
pub use vca::{
    CtmsSinkCfg, CtmsSinkStats, CtmsSourceCfg, CtmsSourceStats, CtmsVcaSink, CtmsVcaSource,
    StockAudioSink, StockCfg, StockSinkStats, StockSourceStats, StockVcaSource, IOCTL_START,
};
