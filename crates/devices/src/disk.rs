//! A background disk: Poisson interrupt load.
//!
//! §5.3's "multiprocessing mode" hosts run compiles and kernel copies;
//! their disk completions interrupt at level 4 and their handlers hold the
//! CPU, contributing to the latency spread of Figures 5-2/5-4.

use ctms_rtpc::ExecLevel;
use ctms_sim::Dur;
use ctms_unixkern::{Ctx, Driver, LINE_DISK};
use std::any::Any;

/// Disk load configuration.
#[derive(Clone, Copy, Debug)]
pub struct DiskCfg {
    /// Mean interrupts per second (Poisson).
    pub rate_per_sec: f64,
    /// Mean handler cost.
    pub handler_mean: Dur,
    /// Handler cost standard deviation (truncated normal).
    pub handler_sd: Dur,
    /// Arm at boot.
    pub autostart: bool,
}

impl Default for DiskCfg {
    fn default() -> Self {
        DiskCfg {
            rate_per_sec: 10.0,
            handler_mean: Dur::from_us(500),
            handler_sd: Dur::from_us(150),
            autostart: true,
        }
    }
}

/// Counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Interrupts taken.
    pub interrupts: u64,
}

impl ctms_sim::Instrument for DiskStats {
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("interrupts", self.interrupts);
    }
}

/// The disk driver. See module docs.
#[derive(Debug)]
pub struct DiskDriver {
    cfg: DiskCfg,
    stats: DiskStats,
}

impl DiskDriver {
    /// Creates the driver.
    pub fn new(cfg: DiskCfg) -> Self {
        DiskDriver {
            cfg,
            stats: DiskStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    fn arm(&self, ctx: &mut Ctx) {
        let mean = Dur::from_secs_f64(1.0 / self.cfg.rate_per_sec);
        let gap = ctx.rng.exp_dur(mean);
        ctx.set_timer(0, ctx.now + gap);
    }
}

impl Driver for DiskDriver {
    fn name(&self) -> &'static str {
        "disk"
    }

    fn persist_state(&self, enc: &mut ctms_sim::Enc) {
        enc.u64(self.stats.interrupts);
    }

    fn restore_state(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.stats.interrupts = dec.u64()?;
        Ok(())
    }

    fn publish_telemetry(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        use ctms_sim::Instrument as _;
        self.stats.publish(scope);
    }

    fn on_boot(&mut self, ctx: &mut Ctx) {
        if self.cfg.autostart && self.cfg.rate_per_sec > 0.0 {
            self.arm(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
        ctx.raise_irq(LINE_DISK);
        self.arm(ctx);
    }

    fn on_interrupt(&mut self, ctx: &mut Ctx) {
        self.stats.interrupts += 1;
        let cost = ctx
            .rng
            .normal_dur(self.cfg.handler_mean, self.cfg.handler_sd);
        ctx.push_job(0, cost, ExecLevel::Irq(LINE_DISK));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_rtpc::{Machine, MachineConfig};
    use ctms_sim::{drain_component, Pcg32, SimTime};
    use ctms_unixkern::{Host, KernConfig, Kernel};

    #[test]
    fn poisson_interrupt_rate() {
        let kcfg = KernConfig {
            clock_enabled: false,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(11, 2));
        let cfg = DiskCfg {
            rate_per_sec: 50.0,
            ..DiskCfg::default()
        };
        let id = kernel.add_driver(Box::new(DiskDriver::new(cfg)), Some(LINE_DISK));
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let _ = drain_component(&mut host, SimTime::from_secs(10));
        let n = host
            .kernel
            .driver_ref::<DiskDriver>(id)
            .expect("disk")
            .stats()
            .interrupts;
        assert!((350..650).contains(&n), "~500 expected, got {n}");
    }

    #[test]
    fn zero_rate_stays_silent() {
        let kcfg = KernConfig {
            clock_enabled: false,
            ..KernConfig::default()
        };
        let mut kernel = Kernel::new(kcfg, Pcg32::new(1, 1));
        let cfg = DiskCfg {
            rate_per_sec: 0.0,
            ..DiskCfg::default()
        };
        let id = kernel.add_driver(Box::new(DiskDriver::new(cfg)), Some(LINE_DISK));
        let mut host = Host::new(Machine::new(MachineConfig::default()), kernel);
        let evs = drain_component(&mut host, SimTime::from_secs(1));
        assert!(evs.is_empty());
        assert_eq!(
            host.kernel
                .driver_ref::<DiskDriver>(id)
                .expect("disk")
                .stats()
                .interrupts,
            0
        );
    }
}
