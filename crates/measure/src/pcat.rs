//! The IBM PC/AT parallel-port timestamper (§5.2.3).
//!
//! The real tool: a PC/AT with eight 8-bit parallel input ports. Probed
//! machines write the low 7 bits of the packet number to a port and toggle
//! a strobe line; the PC/AT's interrupt-handler loop polls the pending
//! register, reads a 16-bit clock with 2 µs resolution, and forwards
//! `(clock, ports)` records to a second PC/AT for storage. A 50 Hz square
//! wave on the eighth port guarantees roll-overs of the 16-bit clock are
//! reconstructible offline.
//!
//! Documented instrument error (§5.2.3): a 120 µs spread on both sides of
//! a known-solid 12 ms source, bounded by the 60 µs worst-case service
//! loop. The model reproduces that error band: each edge's timestamp is
//! its true time plus a uniform service delay, then quantized, wrapped to
//! 16 bits, and reconstructed exactly as the real analysis programs did.

use ctms_sim::{Dur, EdgeLog, Pcg32, SimTime};

/// Channel index of the 50 Hz roll-over marker.
pub const MARKER_CHANNEL: u8 = 7;

/// PC/AT tool configuration.
#[derive(Clone, Copy, Debug)]
pub struct PcAtCfg {
    /// Clock resolution (§5.2.3: two microseconds).
    pub clock_quantum: Dur,
    /// Worst-case service-loop execution time (§5.2.3: 60 µs).
    pub loop_worst: Dur,
    /// Roll-over marker period (50 Hz ⇒ 20 ms edges. Some margin below
    /// the 131.072 ms wrap period of the 16-bit × 2 µs clock).
    pub marker_period: Dur,
}

impl Default for PcAtCfg {
    fn default() -> Self {
        PcAtCfg {
            clock_quantum: Dur::from_us(2),
            loop_worst: Dur::from_us(60),
            marker_period: Dur::from_ms(20),
        }
    }
}

/// One stored record: 16-bit clock ticks + channel + 7-bit tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcAtRecord {
    /// 16-bit clock at read time (wraps every 131.072 ms).
    pub ticks: u16,
    /// Input channel (0–6 data, 7 marker).
    pub channel: u8,
    /// Low 7 bits of the tag written to the port.
    pub tag7: u8,
}

/// The captured record stream (what the second PC/AT's disk holds).
#[derive(Clone, Debug, Default)]
pub struct PcAtCapture {
    /// Records in read order.
    pub records: Vec<PcAtRecord>,
    cfg: Option<PcAtCfg>,
}

/// The timestamper. See module docs.
#[derive(Debug)]
pub struct PcAt {
    cfg: PcAtCfg,
    rng: Pcg32,
}

impl PcAt {
    /// Creates the tool.
    pub fn new(cfg: PcAtCfg, rng: Pcg32) -> Self {
        PcAt { cfg, rng }
    }

    /// Observes up to seven ground-truth channels over `[0, horizon]`,
    /// producing the record stream the second PC/AT would store.
    ///
    /// # Panics
    ///
    /// Panics if more than 7 channels are supplied (the eighth port is
    /// the marker).
    pub fn observe(&mut self, channels: &[&EdgeLog], horizon: SimTime) -> PcAtCapture {
        assert!(channels.len() <= 7, "only 7 data ports available");
        // Merge all edges plus marker pulses, in true-time order.
        let mut merged: Vec<(SimTime, u8, u64)> = Vec::new();
        for (ch, log) in channels.iter().enumerate() {
            for e in log.edges() {
                if e.at <= horizon {
                    merged.push((e.at, ch as u8, e.tag));
                }
            }
        }
        let mut t = SimTime::ZERO;
        while t <= horizon {
            merged.push((t, MARKER_CHANNEL, 0));
            t += self.cfg.marker_period;
        }
        merged.sort_by_key(|&(at, ch, _)| (at, ch));

        // Service loop: each edge is read a uniform [0, loop_worst] after
        // it occurs, and reads never reorder (the loop drains in port
        // order per iteration).
        let mut records = Vec::with_capacity(merged.len());
        let mut last_read = SimTime::ZERO;
        for (at, channel, tag) in merged {
            let delay = self.rng.uniform_dur(Dur::ZERO, self.cfg.loop_worst);
            let read = (at + delay).max(last_read);
            last_read = read;
            let q = read.quantize(self.cfg.clock_quantum);
            let ticks = (q.as_ns() / self.cfg.clock_quantum.as_ns()) as u16;
            records.push(PcAtRecord {
                ticks,
                channel,
                tag7: (tag & 0x7F) as u8,
            });
        }
        PcAtCapture {
            records,
            cfg: Some(self.cfg),
        }
    }
}

impl PcAtCapture {
    /// Reconstructs per-channel edge logs, resolving 16-bit clock
    /// roll-overs exactly as the paper's offline analysis did: a tick
    /// value lower than its predecessor means the clock wrapped, and the
    /// 50 Hz marker guarantees at least one record per wrap period.
    pub fn reconstruct(&self) -> Vec<EdgeLog> {
        let cfg = self.cfg.unwrap_or_default();
        let quantum = cfg.clock_quantum.as_ns();
        let mut logs: Vec<EdgeLog> = (0..7)
            .map(|ch| EdgeLog::new(format!("pcat-ch{ch}")))
            .collect();
        let mut rollovers: u64 = 0;
        let mut prev_ticks: Option<u16> = None;
        for r in &self.records {
            if let Some(p) = prev_ticks {
                if r.ticks < p {
                    rollovers += 1;
                }
            }
            prev_ticks = Some(r.ticks);
            if r.channel == MARKER_CHANNEL {
                continue;
            }
            let ns = (rollovers * 65_536 + u64::from(r.ticks)) * quantum;
            logs[r.channel as usize].record(SimTime::from_ns(ns), u64::from(r.tag7));
        }
        logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid_source(n: u64, period_us: u64) -> EdgeLog {
        let mut log = EdgeLog::new("vca-irq");
        for k in 0..n {
            log.record(SimTime::from_us(period_us * k), k + 1);
        }
        log
    }

    #[test]
    fn error_band_matches_section_5_2_3() {
        // A solid 12 ms source observed through the tool shows a spread
        // bounded by ±loop_worst (the paper measured ±120 µs total
        // including its own clock effects; our per-edge error is
        // U[0,60µs] so deltas spread within ±60 µs + quantization).
        let src = solid_source(2_000, 12_000);
        let mut tool = PcAt::new(PcAtCfg::default(), Pcg32::new(42, 1));
        let cap = tool.observe(&[&src], SimTime::from_secs(25));
        let rec = cap.reconstruct();
        let intervals = rec[0].inter_occurrence();
        assert_eq!(intervals.len(), 1_999);
        let mut min = u64::MAX;
        let mut max = 0;
        for d in &intervals {
            min = min.min(d.as_us());
            max = max.max(d.as_us());
        }
        assert!(min >= 12_000 - 62, "min {min}");
        assert!(max <= 12_000 + 62, "max {max}");
        // And the spread is real (the tool is not a perfect instrument).
        assert!(max - min >= 30, "spread {}", max - min);
    }

    #[test]
    fn rollover_reconstruction_is_exact_modulo_error() {
        // A sparse source spanning many 131 ms wrap periods.
        let mut log = EdgeLog::new("sparse");
        for k in 0..10u64 {
            log.record(SimTime::from_ms(400 * k), k);
        }
        let mut tool = PcAt::new(PcAtCfg::default(), Pcg32::new(7, 7));
        let cap = tool.observe(&[&log], SimTime::from_secs(4));
        let rec = cap.reconstruct();
        assert_eq!(rec[0].len(), 10);
        for (orig, got) in log.edges().iter().zip(rec[0].edges()) {
            let err = got.at.as_ns().abs_diff(orig.at.as_ns());
            assert!(
                err <= 62_000,
                "reconstructed {} vs true {}",
                got.at,
                orig.at
            );
        }
    }

    #[test]
    fn tags_truncated_to_7_bits() {
        let mut log = EdgeLog::new("tags");
        log.record(SimTime::from_ms(1), 0x1FF); // 9 bits
        let mut tool = PcAt::new(PcAtCfg::default(), Pcg32::new(1, 1));
        let cap = tool.observe(&[&log], SimTime::from_ms(10));
        let rec = cap.reconstruct();
        assert_eq!(rec[0].edges()[0].tag, 0x7F);
    }

    #[test]
    fn marker_keeps_quiet_channels_reconstructible() {
        // Two edges 500 ms apart with nothing between: without the 50 Hz
        // marker the three intervening wraps would be lost.
        let mut log = EdgeLog::new("quiet");
        log.record(SimTime::ZERO, 1);
        log.record(SimTime::from_ms(500), 2);
        let mut tool = PcAt::new(PcAtCfg::default(), Pcg32::new(3, 3));
        let cap = tool.observe(&[&log], SimTime::from_ms(600));
        let rec = cap.reconstruct();
        let gap = rec[0].edges()[1].at.since(rec[0].edges()[0].at);
        assert!(
            gap >= Dur::from_ms(499) && gap <= Dur::from_ms(501),
            "gap {gap} should be ~500 ms"
        );
    }

    #[test]
    #[should_panic(expected = "7 data ports")]
    fn too_many_channels_rejected() {
        let logs: Vec<EdgeLog> = (0..8).map(|k| EdgeLog::new(format!("l{k}"))).collect();
        let refs: Vec<&EdgeLog> = logs.iter().collect();
        let mut tool = PcAt::new(PcAtCfg::default(), Pcg32::new(1, 1));
        let _ = tool.observe(&refs, SimTime::from_ms(1));
    }
}
