//! The paper's seven histograms (§5.3).
//!
//! Both test cases examine:
//!
//! 1. inter-occurrence of VCA IRQ pulses,
//! 2. inter-occurrence of VCA handler entries,
//! 3. inter-occurrence of the pre-transmit point,
//! 4. inter-occurrence of the CTMSP-identified point,
//! 5. differences between like occurrences of (1) and (2),
//! 6. differences between like occurrences of (2) and (3)  — Figure 5-2,
//! 7. differences between like occurrences of (3) and (4)  — Figures 5-3/5-4.

use ctms_sim::EdgeLog;

/// Histogram selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HistId {
    /// Inter-occurrence, VCA IRQ.
    H1,
    /// Inter-occurrence, VCA handler entry.
    H2,
    /// Inter-occurrence, pre-transmit.
    H3,
    /// Inter-occurrence, CTMSP identified.
    H4,
    /// IRQ → handler entry deltas.
    H5,
    /// Handler entry → pre-transmit deltas (Figure 5-2).
    H6,
    /// Pre-transmit → CTMSP-identified deltas (Figures 5-3 and 5-4).
    H7,
}

impl HistId {
    /// All seven in paper order.
    pub const ALL: [HistId; 7] = [
        HistId::H1,
        HistId::H2,
        HistId::H3,
        HistId::H4,
        HistId::H5,
        HistId::H6,
        HistId::H7,
    ];

    /// The paper's description of this histogram.
    pub fn description(self) -> &'static str {
        match self {
            HistId::H1 => "inter-occurrence of VCA IRQ pulses",
            HistId::H2 => "inter-occurrence of VCA handler entries",
            HistId::H3 => "inter-occurrence of pre-transmit points",
            HistId::H4 => "inter-occurrence of CTMSP-identified points",
            HistId::H5 => "VCA IRQ to handler-entry deltas",
            HistId::H6 => "handler entry to pre-transmit deltas (Fig 5-2)",
            HistId::H7 => "pre-transmit to CTMSP-identified deltas (Fig 5-3/5-4)",
        }
    }
}

/// The four measurement-point logs of one run (source side 1–3, receive
/// side 4), as captured by some instrument.
#[derive(Clone, Debug, Default)]
pub struct MeasurementSet {
    /// Point 1: VCA IRQ line.
    pub vca_irq: EdgeLog,
    /// Point 2: VCA handler entry.
    pub handler: EdgeLog,
    /// Point 3: pre-transmit.
    pub pre_tx: EdgeLog,
    /// Point 4: CTMSP identified at the receiver.
    pub ctmsp_rx: EdgeLog,
}

impl MeasurementSet {
    /// Sample values (microseconds) for the selected histogram.
    pub fn samples_us(&self, which: HistId) -> Vec<f64> {
        let durs = match which {
            HistId::H1 => self.vca_irq.inter_occurrence(),
            HistId::H2 => self.handler.inter_occurrence(),
            HistId::H3 => self.pre_tx.inter_occurrence(),
            HistId::H4 => self.ctmsp_rx.inter_occurrence(),
            HistId::H5 => self.vca_irq.deltas_to(&self.handler),
            HistId::H6 => self.handler.deltas_to(&self.pre_tx),
            HistId::H7 => self.pre_tx.deltas_to(&self.ctmsp_rx),
        };
        durs.into_iter().map(|d| d.as_us_f64()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    #[test]
    fn histogram_definitions() {
        let mut m = MeasurementSet::default();
        for k in 0..3u64 {
            let base = 12_000 * k;
            m.vca_irq.record(t(base), k + 1);
            m.handler.record(t(base + 25), k + 1);
            m.pre_tx.record(t(base + 2_625), k + 1);
            m.ctmsp_rx.record(t(base + 13_400), k + 1);
        }
        assert_eq!(m.samples_us(HistId::H1), vec![12_000.0, 12_000.0]);
        assert_eq!(m.samples_us(HistId::H2), vec![12_000.0, 12_000.0]);
        assert_eq!(m.samples_us(HistId::H5), vec![25.0, 25.0, 25.0]);
        assert_eq!(m.samples_us(HistId::H6), vec![2_600.0, 2_600.0, 2_600.0]);
        assert_eq!(m.samples_us(HistId::H7), vec![10_775.0, 10_775.0, 10_775.0]);
    }

    #[test]
    fn lost_packet_skipped_in_deltas() {
        let mut m = MeasurementSet::default();
        m.pre_tx.record(t(0), 1);
        m.pre_tx.record(t(12_000), 2);
        m.ctmsp_rx.record(t(10_740), 1);
        // Packet 2 lost to a purge: H7 has one sample.
        assert_eq!(m.samples_us(HistId::H7).len(), 1);
    }

    #[test]
    fn all_ids_have_descriptions() {
        for id in HistId::ALL {
            assert!(!id.description().is_empty());
        }
    }
}
