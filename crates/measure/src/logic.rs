//! Logic analyzer and oscilloscope (§5.2.2).
//!
//! "The use of a logic analyzer is the least obtrusive way of measuring
//! the values of interest" — in the simulation it reads the ground-truth
//! edge logs with zero error, and provides the §5.2.2 analyses: period
//! variation of the VCA IRQ source and the worst-case IRQ→handler-entry
//! delay. Its paper-documented limitation — no full histograms — is
//! deliberately preserved: it reports extremes and means only.

use ctms_sim::{Dur, EdgeLog};

/// §5.2.2-style period analysis of a (nominally) periodic signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeriodAnalysis {
    /// Number of intervals measured.
    pub intervals: usize,
    /// Mean period in nanoseconds.
    pub mean_ns: f64,
    /// Largest deviation from the nominal period, in nanoseconds.
    pub max_deviation_ns: u64,
}

/// Triggers on every edge of `log` and measures the inter-pulse period
/// against `nominal` (the oscilloscope's "second pulse" measurement).
pub fn analyze_period(log: &EdgeLog, nominal: Dur) -> PeriodAnalysis {
    let intervals = log.inter_occurrence();
    if intervals.is_empty() {
        return PeriodAnalysis {
            intervals: 0,
            mean_ns: 0.0,
            max_deviation_ns: 0,
        };
    }
    let mut sum = 0u128;
    let mut max_dev = 0u64;
    for d in &intervals {
        sum += u128::from(d.as_ns());
        max_dev = max_dev.max(d.as_ns().abs_diff(nominal.as_ns()));
    }
    PeriodAnalysis {
        intervals: intervals.len(),
        mean_ns: sum as f64 / intervals.len() as f64,
        max_deviation_ns: max_dev,
    }
}

/// §5.2.2's second measurement: the variation between an IRQ pulse and
/// the start of its handler. Returns `(min, max)` delay, pairing edges
/// by tag. `None` if no pairs exist.
pub fn irq_to_handler_variation(irq: &EdgeLog, handler: &EdgeLog) -> Option<(Dur, Dur)> {
    let deltas = irq.deltas_to(handler);
    let min = deltas.iter().copied().min()?;
    let max = deltas.iter().copied().max()?;
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::SimTime;

    #[test]
    fn solid_source_shows_no_variation() {
        let mut log = EdgeLog::new("irq");
        for k in 0..100u64 {
            log.record(SimTime::from_us(12_000 * k), k);
        }
        let a = analyze_period(&log, Dur::from_ms(12));
        assert_eq!(a.intervals, 99);
        assert_eq!(a.mean_ns, 12_000_000.0);
        assert_eq!(a.max_deviation_ns, 0);
    }

    #[test]
    fn jittered_source_deviation_measured() {
        let mut log = EdgeLog::new("irq");
        log.record(SimTime::from_ns(0), 0);
        log.record(SimTime::from_ns(12_000_500), 1); // +500 ns (§5.2.2)
        log.record(SimTime::from_ns(24_000_500), 2);
        let a = analyze_period(&log, Dur::from_ms(12));
        assert_eq!(a.max_deviation_ns, 500);
    }

    #[test]
    fn empty_log_analysis() {
        let log = EdgeLog::new("x");
        let a = analyze_period(&log, Dur::from_ms(12));
        assert_eq!(a.intervals, 0);
        assert_eq!(a.max_deviation_ns, 0);
    }

    #[test]
    fn handler_variation_bounds() {
        let mut irq = EdgeLog::new("irq");
        let mut h = EdgeLog::new("handler");
        irq.record(SimTime::from_us(0), 1);
        irq.record(SimTime::from_us(12_000), 2);
        irq.record(SimTime::from_us(24_000), 3);
        h.record(SimTime::from_us(25), 1);
        h.record(SimTime::from_us(12_440), 2); // blocked by an spl section
        h.record(SimTime::from_us(24_030), 3);
        let (min, max) = irq_to_handler_variation(&irq, &h).expect("pairs");
        assert_eq!(min, Dur::from_us(25));
        assert_eq!(max, Dur::from_us(440));
        assert_eq!(
            irq_to_handler_variation(&EdgeLog::new("a"), &EdgeLog::new("b")),
            None
        );
    }
}
