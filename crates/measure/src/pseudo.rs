//! The in-kernel pseudo-device-driver timestamper (§5.2.1).
//!
//! The paper's first attempt: event-recording procedure calls inside the
//! Token Ring driver, read out through a pseudo device. Its documented
//! flaws, reproduced here:
//!
//! * clock granularity of only 122 µs,
//! * interaction error — with interrupts enabled during the recording
//!   procedure, "the time stamp could be significantly in error due to
//!   the possibility that another interrupt occurred while executing the
//!   recording procedure";
//! * with interrupts disabled, the procedure itself delays other
//!   measurement points (not modelled per-point; the enabled mode is the
//!   one the paper describes as used).
//!
//! "All in all, this was a poor method of recording data … but was
//! extremely good at helping to find bugs."

use ctms_sim::{Dur, EdgeLog, Pcg32};

/// Pseudo-driver configuration.
#[derive(Clone, Copy, Debug)]
pub struct PseudoCfg {
    /// Clock granularity (§5.2.1: 122 µs).
    pub granularity: Dur,
    /// Probability an interrupt perturbs a recording.
    pub interference_prob: f64,
    /// Maximum perturbation when interfered with.
    pub interference_max: Dur,
}

impl Default for PseudoCfg {
    fn default() -> Self {
        PseudoCfg {
            granularity: Dur::from_us(122),
            interference_prob: 0.05,
            interference_max: Dur::from_us(400),
        }
    }
}

/// The pseudo-driver instrument.
#[derive(Debug)]
pub struct PseudoDriver {
    cfg: PseudoCfg,
    rng: Pcg32,
}

impl PseudoDriver {
    /// Creates the instrument.
    pub fn new(cfg: PseudoCfg, rng: Pcg32) -> Self {
        PseudoDriver { cfg, rng }
    }

    /// Views a ground-truth log through the instrument's error model.
    pub fn observe(&mut self, log: &EdgeLog) -> EdgeLog {
        let mut out = EdgeLog::new(format!("pseudo-{}", log.name()));
        let mut last = ctms_sim::SimTime::ZERO;
        for e in log.edges() {
            let mut at = e.at;
            if self.rng.chance(self.cfg.interference_prob) {
                at += self.rng.uniform_dur(Dur::ZERO, self.cfg.interference_max);
            }
            let at = at.quantize(self.cfg.granularity).max(last);
            last = at;
            out.record(at, e.tag);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::SimTime;

    #[test]
    fn quantizes_to_122us() {
        let mut log = EdgeLog::new("x");
        log.record(SimTime::from_us(100), 1);
        log.record(SimTime::from_us(12_100), 2);
        let cfg = PseudoCfg {
            interference_prob: 0.0,
            ..PseudoCfg::default()
        };
        let mut p = PseudoDriver::new(cfg, Pcg32::new(1, 1));
        let got = p.observe(&log);
        for e in got.edges() {
            assert_eq!(e.at.as_ns() % 122_000, 0, "quantized: {}", e.at);
        }
        assert_eq!(got.edges()[0].at, SimTime::ZERO);
        assert_eq!(got.edges()[1].at, SimTime::from_us(12_078)); // 99×122
    }

    #[test]
    fn interference_widens_the_spread() {
        let mut log = EdgeLog::new("x");
        for k in 0..5_000u64 {
            log.record(SimTime::from_us(12_000 * k), k);
        }
        let cfg = PseudoCfg {
            interference_prob: 0.5,
            ..PseudoCfg::default()
        };
        let mut p = PseudoDriver::new(cfg, Pcg32::new(9, 9));
        let got = p.observe(&log);
        let spread: Vec<u64> = got.inter_occurrence().iter().map(|d| d.as_us()).collect();
        let min = *spread.iter().min().expect("samples");
        let max = *spread.iter().max().expect("samples");
        // Quantization alone gives ±122; interference adds up to 400.
        assert!(min < 12_000 && max > 12_000, "min={min} max={max}");
        assert!(max - 12_000 >= 122, "interference visible, max={max}");
    }

    #[test]
    fn monotonicity_preserved() {
        let mut log = EdgeLog::new("x");
        log.record(SimTime::from_us(100), 1);
        log.record(SimTime::from_us(130), 2); // 30 µs apart, same quantum
        let mut p = PseudoDriver::new(PseudoCfg::default(), Pcg32::new(4, 4));
        let got = p.observe(&log);
        assert!(got.edges()[1].at >= got.edges()[0].at);
    }
}
