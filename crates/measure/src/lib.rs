//! # ctms-measure — the measurement toolchain of §5
//!
//! The paper devotes half its length to *how* the prototype was measured;
//! each instrument is reproduced with its documented error model:
//!
//! * [`tap`] — IBM's Trace and Analysis Program: ring-wide capture with
//!   AC/FC/length records, capture-rate limitations, ordering/loss and
//!   traffic-class analyses,
//! * [`pcat`] — the PC/AT parallel-port timestamper: 2 µs clock, 16-bit
//!   roll-over with a 50 Hz marker, 60 µs worst-case service loop,
//! * [`logic`] — logic analyzer / oscilloscope: exact, but no histograms,
//! * [`pseudo`] — the in-kernel pseudo-driver: 122 µs granularity and
//!   interrupt-interaction error,
//! * [`points`] — the seven histogram definitions of §5.3,
//! * [`watchdog`] — the §5.2.1 halt-and-snapshot anomaly detector.

pub mod logic;
pub mod pcat;
pub mod points;
pub mod pseudo;
pub mod tap;
pub mod watchdog;

pub use logic::{analyze_period, irq_to_handler_variation, PeriodAnalysis};
pub use pcat::{PcAt, PcAtCapture, PcAtCfg, PcAtRecord, MARKER_CHANNEL};
pub use points::{HistId, MeasurementSet};
pub use pseudo::{PseudoCfg, PseudoDriver};
pub use tap::{StreamAnalysis, Tap, TapCfg, TapRecord, TrafficBreakdown};
pub use watchdog::{Anomaly, WatchEvent, Watchdog, WatchdogCfg};
