//! IBM Trace and Analysis Program (TAP) model (§5).
//!
//! "This tool allowed for the recording and time stamping of all packets
//! seen on the network, including all MAC frames. The tool also recorded
//! the first Token Ring adapter's buffer of actual packet data (up to 96
//! bytes) as well as the Token Ring's Access Control byte, Frame Control
//! byte and total length. However, there are limitations of the tool's
//! ability to record all packets." The model records frame observations
//! from the ring with a configurable minimum inter-record gap (the real
//! tool's capture limitation) and provides the §5 analyses: packet
//! ordering/loss detection for CTMSP streams, Ring Purge counting, and
//! the traffic-class breakdown of §5.3.

use ctms_sim::SimTime;
use ctms_tokenring::{fc_is_mac, FrameKind, FrameView, MacKind, Proto};

/// One TAP capture record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TapRecord {
    /// Capture timestamp.
    pub at: SimTime,
    /// Access Control byte.
    pub ac: u8,
    /// Frame Control byte.
    pub fc: u8,
    /// Total frame length on the wire.
    pub total_len: u32,
    /// First bytes of the frame (modelled as the classification + tag the
    /// real 96-byte prefix would reveal).
    pub kind: FrameKind,
    /// CTMSP packet number (0 otherwise).
    pub tag: u64,
}

/// TAP configuration.
#[derive(Clone, Copy, Debug)]
pub struct TapCfg {
    /// Minimum gap between records; closer frames are missed (the real
    /// tool's documented capture limitation).
    pub min_record_gap: ctms_sim::Dur,
    /// Capture buffer capacity; older records are not overwritten (the
    /// tool stops capturing when full).
    pub buffer_records: usize,
}

impl Default for TapCfg {
    fn default() -> Self {
        TapCfg {
            min_record_gap: ctms_sim::Dur::from_us(30),
            buffer_records: 2_000_000,
        }
    }
}

/// §5.3's traffic classes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficBreakdown {
    /// ~20-byte MAC frames.
    pub mac: u64,
    /// 60–300-byte ARP / AFS keep-alive class.
    pub small: u64,
    /// ~1522-byte file-transfer class.
    pub file_transfer: u64,
    /// CTMSP frames.
    pub ctmsp: u64,
    /// Anything else.
    pub other: u64,
}

/// Stream-order analysis of the CTMSP packets TAP saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamAnalysis {
    /// CTMSP frames captured.
    pub captured: u64,
    /// Sequence gaps (lost packets).
    pub gaps: u64,
    /// Packets missing inside gaps.
    pub missing: u64,
    /// Out-of-order observations.
    pub out_of_order: u64,
    /// Duplicate packet numbers.
    pub duplicates: u64,
}

/// The TAP monitor.
#[derive(Debug)]
pub struct Tap {
    cfg: TapCfg,
    records: Vec<TapRecord>,
    purges: u64,
    missed: u64,
    last_record: Option<SimTime>,
    busy_ns: u64,
    first_at: Option<SimTime>,
    last_at: Option<SimTime>,
}

impl Tap {
    /// Creates the monitor.
    pub fn new(cfg: TapCfg) -> Self {
        Tap {
            cfg,
            records: Vec::new(),
            purges: 0,
            missed: 0,
            last_record: None,
            busy_ns: 0,
            first_at: None,
            last_at: None,
        }
    }

    /// Feeds one ring observation.
    pub fn observe(&mut self, at: SimTime, view: &FrameView) {
        self.first_at.get_or_insert(at);
        self.last_at = Some(at);
        // Purges are counted even when the record is dropped: the monitor
        // port sees them as MAC frames and the analysis counts kinds.
        if view.kind == FrameKind::Mac(MacKind::RingPurge) {
            self.purges += 1;
        }
        self.busy_ns += u64::from(view.wire_bytes) * 8 * 250; // 4 Mbit/s
        if let Some(last) = self.last_record {
            if at.since(last) < self.cfg.min_record_gap {
                self.missed += 1;
                return;
            }
        }
        if self.records.len() >= self.cfg.buffer_records {
            self.missed += 1;
            return;
        }
        self.last_record = Some(at);
        self.records.push(TapRecord {
            at,
            ac: view.ac,
            fc: view.fc,
            total_len: view.wire_bytes,
            kind: view.kind,
            tag: view.tag,
        });
    }

    /// Captured records.
    pub fn records(&self) -> &[TapRecord] {
        &self.records
    }

    /// Frames seen but not recorded (capture limitation).
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Ring Purges observed.
    pub fn purges(&self) -> u64 {
        self.purges
    }

    /// Fraction of wire time occupied by observed frames over the
    /// observation window.
    pub fn utilization(&self) -> f64 {
        match (self.first_at, self.last_at) {
            (Some(a), Some(b)) if b > a => self.busy_ns as f64 / b.since(a).as_ns() as f64,
            _ => 0.0,
        }
    }

    /// §5.3 traffic-class breakdown of captured records.
    pub fn breakdown(&self) -> TrafficBreakdown {
        let mut b = TrafficBreakdown::default();
        for r in &self.records {
            match r.kind {
                FrameKind::Mac(_) => b.mac += 1,
                FrameKind::Llc(Proto::Ctmsp) => b.ctmsp += 1,
                FrameKind::Llc(_) => {
                    if (60..=321).contains(&r.total_len) {
                        b.small += 1;
                    } else if (1500..=1550).contains(&r.total_len) {
                        b.file_transfer += 1;
                    } else {
                        b.other += 1;
                    }
                }
            }
        }
        debug_assert!(self
            .records
            .iter()
            .all(|r| fc_is_mac(r.fc) == matches!(r.kind, FrameKind::Mac(_))));
        b
    }

    /// Ordering/loss analysis of the captured CTMSP stream (§5: "Using
    /// the TAP tool, we were able to detect when packets were out of
    /// order and lost").
    pub fn analyze_stream(&self) -> StreamAnalysis {
        let mut a = StreamAnalysis::default();
        let mut last_seq: Option<u64> = None;
        for r in &self.records {
            if r.kind != FrameKind::Llc(Proto::Ctmsp) {
                continue;
            }
            a.captured += 1;
            if let Some(prev) = last_seq {
                if r.tag == prev {
                    a.duplicates += 1;
                    continue;
                } else if r.tag < prev {
                    a.out_of_order += 1;
                    continue;
                } else if r.tag > prev + 1 {
                    a.gaps += 1;
                    a.missing += r.tag - prev - 1;
                }
            }
            last_seq = Some(r.tag);
        }
        a
    }
}

impl Tap {
    /// Appends a cheap rollback image: a truncation mark for the
    /// append-only capture buffer plus the scalar counters. The
    /// optimistic scheduler takes one of these per snapshot segment, so
    /// the cost must not grow with the records accumulated over the run
    /// (a full [`ctms_sim::Persist`] image would).
    pub fn save_mark(&self, enc: &mut ctms_sim::Enc) {
        // A bare length, not `seq_len`: no elements follow the mark, so
        // the decoder's remaining-bytes sanity check would misfire.
        enc.u64(self.records.len() as u64);
        enc.u64(self.purges);
        enc.u64(self.missed);
        enc.opt(self.last_record.as_ref(), |e, t| e.time(*t));
        enc.u64(self.busy_ns);
        enc.opt(self.first_at.as_ref(), |e, t| e.time(*t));
        enc.opt(self.last_at.as_ref(), |e, t| e.time(*t));
    }

    /// Rewinds to a state captured by [`Tap::save_mark`] on this same
    /// monitor: records past the mark are discarded, scalars restored.
    pub fn rollback_mark(
        &mut self,
        dec: &mut ctms_sim::Dec<'_>,
    ) -> Result<(), ctms_sim::PersistError> {
        let len = dec.u64()? as usize;
        if len > self.records.len() {
            return Err(ctms_sim::PersistError::mismatch(format!(
                "tap rollback mark {len} beyond {} records",
                self.records.len()
            )));
        }
        self.records.truncate(len);
        self.purges = dec.u64()?;
        self.missed = dec.u64()?;
        self.last_record = dec.opt(|d| d.time())?;
        self.busy_ns = dec.u64()?;
        self.first_at = dec.opt(|d| d.time())?;
        self.last_at = dec.opt(|d| d.time())?;
        Ok(())
    }
}

impl ctms_sim::Persist for Tap {
    /// The capture buffer and counters; `cfg` is structural.
    fn persist(&self, enc: &mut ctms_sim::Enc) {
        enc.seq_len(self.records.len());
        for r in &self.records {
            enc.time(r.at);
            enc.u8(r.ac);
            enc.u8(r.fc);
            enc.u32(r.total_len);
            ctms_tokenring::persist_frame_kind(enc, r.kind);
            enc.u64(r.tag);
        }
        enc.u64(self.purges);
        enc.u64(self.missed);
        enc.opt(self.last_record.as_ref(), |e, t| e.time(*t));
        enc.u64(self.busy_ns);
        enc.opt(self.first_at.as_ref(), |e, t| e.time(*t));
        enc.opt(self.last_at.as_ref(), |e, t| e.time(*t));
    }

    fn restore(&mut self, dec: &mut ctms_sim::Dec<'_>) -> Result<(), ctms_sim::PersistError> {
        self.records = dec.seq(|d| {
            Ok(TapRecord {
                at: d.time()?,
                ac: d.u8()?,
                fc: d.u8()?,
                total_len: d.u32()?,
                kind: ctms_tokenring::decode_frame_kind(d)?,
                tag: d.u64()?,
            })
        })?;
        self.purges = dec.u64()?;
        self.missed = dec.u64()?;
        self.last_record = dec.opt(|d| d.time())?;
        self.busy_ns = dec.u64()?;
        self.first_at = dec.opt(|d| d.time())?;
        self.last_at = dec.opt(|d| d.time())?;
        Ok(())
    }
}

impl ctms_sim::Instrument for Tap {
    /// Registers the monitor's capture summary: record/miss/purge counts,
    /// observed wire-busy time, the §5.3 class breakdown under `class.*`,
    /// the CTMSP stream analysis under `stream.*`, and utilization as an
    /// integer parts-per-million gauge (the registry carries no floats).
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("records", self.records.len() as u64);
        scope.counter("missed", self.missed);
        scope.counter("purges", self.purges);
        scope.counter("busy_ns", self.busy_ns);
        scope.gauge(
            "utilization_ppm",
            (self.utilization() * 1_000_000.0).round() as i64,
        );
        let b = self.breakdown();
        {
            let mut c = scope.scope("class");
            c.counter("mac", b.mac);
            c.counter("small", b.small);
            c.counter("file_transfer", b.file_transfer);
            c.counter("ctmsp", b.ctmsp);
            c.counter("other", b.other);
        }
        let a = self.analyze_stream();
        let mut s = scope.scope("stream");
        s.counter("captured", a.captured);
        s.counter("gaps", a.gaps);
        s.counter("missing", a.missing);
        s.counter("out_of_order", a.out_of_order);
        s.counter("duplicates", a.duplicates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctms_sim::Dur;
    use ctms_tokenring::{ac_byte, FrameId, StationId};

    fn ctmsp_view(tag: u64) -> FrameView {
        FrameView {
            ac: ac_byte(4, false, 0),
            fc: 0x40,
            wire_bytes: 2021,
            src: StationId(0),
            dst: Some(StationId(1)),
            kind: FrameKind::Llc(Proto::Ctmsp),
            tag,
            id: FrameId(tag),
        }
    }

    fn mac_view(kind: MacKind) -> FrameView {
        FrameView {
            ac: ac_byte(0, false, 0),
            fc: 0x05,
            wire_bytes: 25,
            src: StationId(0),
            dst: None,
            kind: FrameKind::Mac(kind),
            tag: 0,
            id: FrameId(999),
        }
    }

    #[test]
    fn records_and_classifies() {
        let mut tap = Tap::new(TapCfg::default());
        tap.observe(
            SimTime::from_ms(1),
            &mac_view(MacKind::ActiveMonitorPresent),
        );
        tap.observe(SimTime::from_ms(2), &ctmsp_view(1));
        tap.observe(
            SimTime::from_ms(3),
            &FrameView {
                ac: ac_byte(0, false, 0),
                fc: 0x40,
                wire_bytes: 1522,
                src: StationId(2),
                dst: Some(StationId(3)),
                kind: FrameKind::Llc(Proto::Ip),
                tag: 0,
                id: FrameId(5),
            },
        );
        tap.observe(
            SimTime::from_ms(4),
            &FrameView {
                ac: ac_byte(0, false, 0),
                fc: 0x40,
                wire_bytes: 120,
                src: StationId(2),
                dst: None,
                kind: FrameKind::Llc(Proto::Arp),
                tag: 0,
                id: FrameId(6),
            },
        );
        let b = tap.breakdown();
        assert_eq!(b.mac, 1);
        assert_eq!(b.ctmsp, 1);
        assert_eq!(b.file_transfer, 1);
        assert_eq!(b.small, 1);
        assert_eq!(tap.records().len(), 4);
    }

    #[test]
    fn detects_loss_order_and_duplicates() {
        let mut tap = Tap::new(TapCfg::default());
        for (ms, tag) in [(1, 1u64), (13, 2), (25, 4), (37, 4), (49, 3), (61, 5)] {
            tap.observe(SimTime::from_ms(ms), &ctmsp_view(tag));
        }
        let a = tap.analyze_stream();
        assert_eq!(a.captured, 6);
        assert_eq!(a.gaps, 1);
        assert_eq!(a.missing, 1); // packet 3 skipped at first
        assert_eq!(a.duplicates, 1); // 4 twice
        assert_eq!(a.out_of_order, 1); // 3 after 4
    }

    #[test]
    fn capture_limitation_drops_close_frames() {
        let cfg = TapCfg {
            min_record_gap: Dur::from_us(100),
            ..TapCfg::default()
        };
        let mut tap = Tap::new(cfg);
        tap.observe(SimTime::from_us(0), &ctmsp_view(1));
        tap.observe(SimTime::from_us(50), &ctmsp_view(2)); // too close
        tap.observe(SimTime::from_us(200), &ctmsp_view(3));
        assert_eq!(tap.records().len(), 2);
        assert_eq!(tap.missed(), 1);
    }

    #[test]
    fn purge_counted_even_when_dropped() {
        let cfg = TapCfg {
            min_record_gap: Dur::from_ms(1),
            ..TapCfg::default()
        };
        let mut tap = Tap::new(cfg);
        tap.observe(SimTime::from_us(10), &ctmsp_view(1));
        tap.observe(SimTime::from_us(20), &mac_view(MacKind::RingPurge));
        assert_eq!(tap.purges(), 1);
        assert_eq!(tap.records().len(), 1);
    }

    #[test]
    fn utilization_estimate() {
        let mut tap = Tap::new(TapCfg::default());
        // Two 2021-byte frames over 24 ms: 2 × 4042 µs of wire time.
        tap.observe(SimTime::from_ms(0), &ctmsp_view(1));
        tap.observe(SimTime::from_ms(24), &ctmsp_view(2));
        let u = tap.utilization();
        assert!((u - 2.0 * 4.042 / 24.0).abs() < 0.01, "u={u}");
    }

    #[test]
    fn buffer_cap_stops_capture() {
        let cfg = TapCfg {
            buffer_records: 2,
            min_record_gap: Dur::ZERO,
        };
        let mut tap = Tap::new(cfg);
        for k in 0..5u64 {
            tap.observe(SimTime::from_ms(k), &ctmsp_view(k));
        }
        assert_eq!(tap.records().len(), 2);
        assert_eq!(tap.missed(), 3);
    }
}
