//! The halt-and-snapshot watchdog of §5.2.1.
//!
//! "If a packet was lost, had an extremely long inter-departure or
//! inter-arrival time, or there was an incorrect ordering of packets on
//! the transmitter and/or receiver, all machines were halted and a
//! snapshot of the data was taken. We then examined the snapshots to
//! decide what error had occurred."
//!
//! [`Watchdog`] is that machinery: it consumes measurement-point
//! crossings online, flags the first anomaly (ordering violation,
//! sequence gap, or stalled stream) and keeps the window of events that
//! led up to it — the snapshot the paper's operators would examine.

use ctms_sim::{Dur, SimTime};
use std::collections::VecDeque;

/// One observed crossing, as fed to the watchdog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchEvent {
    /// Measurement-point index (0–3 for the paper's four points).
    pub point: u8,
    /// When.
    pub at: SimTime,
    /// Packet number.
    pub tag: u64,
}

/// The anomaly that halted the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Anomaly {
    /// A packet number went backwards at a point.
    OutOfOrder {
        /// Where.
        point: u8,
        /// The regressing tag.
        tag: u64,
        /// The tag seen before it.
        prev: u64,
    },
    /// Packet numbers skipped at a point (a loss upstream of it).
    Gap {
        /// Where.
        point: u8,
        /// Last tag before the hole.
        from: u64,
        /// First tag after the hole.
        to: u64,
    },
    /// A point went silent for longer than the configured bound
    /// ("extremely long inter-departure or inter-arrival time").
    Stall {
        /// Where.
        point: u8,
        /// The silent interval.
        gap: Dur,
    },
}

/// Watchdog configuration.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogCfg {
    /// Maximum tolerated inter-occurrence interval per point.
    pub max_interval: Dur,
    /// Events of pre-anomaly context to retain.
    pub snapshot_len: usize,
    /// Tolerate sequence gaps (the production recovery mode ignores
    /// single purge losses; the debugging mode halts on them).
    pub tolerate_gaps: bool,
}

impl Default for WatchdogCfg {
    fn default() -> Self {
        WatchdogCfg {
            // The paper's worst regular packet is 40 ms; anything past
            // 150 ms of silence on a 12 ms stream is an anomaly.
            max_interval: Dur::from_ms(150),
            snapshot_len: 64,
            tolerate_gaps: false,
        }
    }
}

/// The watchdog. See module docs.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogCfg,
    last: [Option<(SimTime, u64)>; 8],
    window: VecDeque<WatchEvent>,
    halted: Option<(SimTime, Anomaly)>,
    events: u64,
}

impl Watchdog {
    /// Creates the watchdog.
    pub fn new(cfg: WatchdogCfg) -> Self {
        Watchdog {
            cfg,
            last: [None; 8],
            window: VecDeque::new(),
            halted: None,
            events: 0,
        }
    }

    /// Feeds one crossing; returns the anomaly if this event halts the
    /// run. After a halt, further events are ignored (the machines have
    /// stopped).
    pub fn feed(&mut self, ev: WatchEvent) -> Option<Anomaly> {
        if self.halted.is_some() {
            return None;
        }
        self.events += 1;
        let slot = ev.point as usize;
        assert!(slot < 8, "point index out of range");
        let anomaly = match self.last[slot] {
            Some((prev_at, prev_tag)) => {
                if ev.tag <= prev_tag {
                    Some(Anomaly::OutOfOrder {
                        point: ev.point,
                        tag: ev.tag,
                        prev: prev_tag,
                    })
                } else if ev.tag > prev_tag + 1 && !self.cfg.tolerate_gaps {
                    Some(Anomaly::Gap {
                        point: ev.point,
                        from: prev_tag,
                        to: ev.tag,
                    })
                } else if ev.at.since(prev_at) > self.cfg.max_interval {
                    Some(Anomaly::Stall {
                        point: ev.point,
                        gap: ev.at.since(prev_at),
                    })
                } else {
                    None
                }
            }
            None => None,
        };
        self.last[slot] = Some((ev.at, ev.tag));
        self.window.push_back(ev);
        while self.window.len() > self.cfg.snapshot_len {
            self.window.pop_front();
        }
        if let Some(a) = anomaly {
            self.halted = Some((ev.at, a));
            return Some(a);
        }
        None
    }

    /// The halt, if one occurred.
    pub fn halted(&self) -> Option<(SimTime, Anomaly)> {
        self.halted
    }

    /// The snapshot: the events leading up to (and including) the halt.
    pub fn snapshot(&self) -> &VecDeque<WatchEvent> {
        &self.window
    }

    /// Events consumed before any halt.
    pub fn events_seen(&self) -> u64 {
        self.events
    }
}

impl ctms_sim::Instrument for Watchdog {
    /// Registers the watchdog's verdict: events consumed, whether it
    /// halted, and — when it did — when and on what anomaly (the `Debug`
    /// rendering, which is deterministic).
    fn publish(&self, scope: &mut ctms_sim::telemetry::Scope<'_>) {
        scope.counter("events_seen", self.events);
        scope.gauge("halted", i64::from(self.halted.is_some()));
        scope.counter("snapshot_len", self.window.len() as u64);
        if let Some((at, anomaly)) = self.halted {
            scope.gauge("halt_at_ns", at.as_ns() as i64);
            scope.text("anomaly", format!("{anomaly:?}"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(point: u8, ms: u64, tag: u64) -> WatchEvent {
        WatchEvent {
            point,
            at: SimTime::from_ms(ms),
            tag,
        }
    }

    #[test]
    fn clean_stream_never_halts() {
        let mut w = Watchdog::new(WatchdogCfg::default());
        for k in 1..200u64 {
            assert_eq!(w.feed(ev(0, 12 * k, k)), None);
            assert_eq!(w.feed(ev(3, 12 * k + 11, k)), None);
        }
        assert!(w.halted().is_none());
        assert_eq!(w.events_seen(), 398);
    }

    #[test]
    fn out_of_order_halts_with_snapshot() {
        let mut w = Watchdog::new(WatchdogCfg::default());
        for k in 1..10u64 {
            w.feed(ev(2, 12 * k, k));
        }
        let a = w.feed(ev(2, 120, 5)).expect("halt");
        assert_eq!(
            a,
            Anomaly::OutOfOrder {
                point: 2,
                tag: 5,
                prev: 9
            }
        );
        let snap = w.snapshot();
        assert_eq!(snap.back().map(|e| e.tag), Some(5));
        assert!(snap.len() >= 10);
        // Post-halt events are ignored.
        assert_eq!(w.feed(ev(2, 132, 10)), None);
        assert_eq!(w.events_seen(), 10);
    }

    #[test]
    fn gap_halts_unless_tolerated() {
        let mut w = Watchdog::new(WatchdogCfg::default());
        w.feed(ev(3, 12, 1));
        let a = w.feed(ev(3, 24, 3)).expect("halt on gap");
        assert_eq!(
            a,
            Anomaly::Gap {
                point: 3,
                from: 1,
                to: 3
            }
        );

        let mut tolerant = Watchdog::new(WatchdogCfg {
            tolerate_gaps: true,
            ..WatchdogCfg::default()
        });
        tolerant.feed(ev(3, 12, 1));
        assert_eq!(tolerant.feed(ev(3, 24, 3)), None);
    }

    #[test]
    fn stall_detected() {
        let mut w = Watchdog::new(WatchdogCfg::default());
        w.feed(ev(1, 12, 1));
        let a = w.feed(ev(1, 400, 2)).expect("halt on stall");
        match a {
            Anomaly::Stall { point: 1, gap } => assert_eq!(gap, Dur::from_ms(388)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn snapshot_window_is_bounded() {
        let mut w = Watchdog::new(WatchdogCfg {
            snapshot_len: 8,
            ..WatchdogCfg::default()
        });
        for k in 1..100u64 {
            w.feed(ev(0, 12 * k, k));
        }
        assert_eq!(w.snapshot().len(), 8);
        assert_eq!(w.snapshot().front().map(|e| e.tag), Some(92));
    }
}
